//! Design-space exploration: how the TSV budget (`max_ill`) and the
//! operating frequency move the best achievable power and latency on the
//! distributed `D_36_4` benchmark — the paper's §VIII-E study — driven
//! through the parallel sweep engine with a progress observer.
//!
//! Run with `cargo run --release --example design_space`.

use sunfloor_benchmarks::distributed;
use sunfloor_core::synthesis::{
    StopPolicy, SweepEvent, SynthesisConfig, SynthesisConfigBuilder, SynthesisEngine,
    SynthesisMode,
};

fn base_cfg() -> SynthesisConfigBuilder {
    // Candidates are independent, so fan the sweep out over every core;
    // outcomes are bit-for-bit identical to a serial run.
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    SynthesisConfig::builder().mode(SynthesisMode::Auto).switch_count_range(2, 14).jobs(jobs)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = distributed(4);
    let mut evaluated = 0usize;
    let mut accepted = 0usize;

    println!("== TSV budget sweep (400 MHz) ==");
    println!("  max_ill  best_power_mW  latency_cyc  switches");
    for max_ill in [6u32, 10, 14, 18, 22, 26] {
        let cfg = base_cfg().max_ill(max_ill).build()?;
        let engine = SynthesisEngine::new(&bench.soc, &bench.comm, cfg)?;
        // Stream the sweep: count terminal events as candidates resolve.
        let outcome = engine.run_with_observer(&mut |e: &SweepEvent| match e {
            SweepEvent::CandidateAccepted { .. } => {
                evaluated += 1;
                accepted += 1;
            }
            SweepEvent::CandidateRejected { .. } => evaluated += 1,
            _ => {}
        });
        match outcome.best_power() {
            Some(p) => println!(
                "  {:>7}  {:>13.1}  {:>11.2}  {:>8}",
                max_ill,
                p.metrics.power.total_mw(),
                p.metrics.avg_latency_cycles,
                p.metrics.switch_count
            ),
            None => println!("  {max_ill:>7}  infeasible"),
        }
    }
    println!("  ({accepted} of {evaluated} candidates feasible across the budget sweep)");

    println!("\n== frequency sweep (max_ill = 25) ==");
    println!("  MHz   max_switch_size  best_power_mW  latency_cyc");
    for freq in [300.0f64, 400.0, 500.0, 650.0] {
        let cfg = base_cfg().frequency_mhz(freq).build()?;
        let max_sw = cfg.library.switch.max_size_for_frequency(freq);
        let outcome = SynthesisEngine::new(&bench.soc, &bench.comm, cfg)?.run();
        match outcome.best_power() {
            Some(p) => println!(
                "  {freq:>4.0}  {max_sw:>15}  {:>13.1}  {:>11.2}",
                p.metrics.power.total_mw(),
                p.metrics.avg_latency_cycles
            ),
            None => println!("  {freq:>4.0}  {max_sw:>15}  infeasible"),
        }
    }

    // Early stop: when any feasible topology will do, the first-feasible
    // policy ends the sweep at the first accepted candidate.
    let quick = SynthesisEngine::new(&bench.soc, &bench.comm, base_cfg().build()?)?
        .run_with_policy(StopPolicy::FirstFeasible);
    if let Some(p) = quick.points.first() {
        println!(
            "\nfirst feasible point (early stop): {} switches, {:.1} mW",
            p.metrics.switch_count,
            p.metrics.power.total_mw()
        );
    }
    Ok(())
}
