//! Design-space exploration: how the TSV budget (`max_ill`) and the
//! operating frequency move the best achievable power and latency on the
//! distributed `D_36_4` benchmark — the paper's §VIII-E study.
//!
//! Run with `cargo run --release --example design_space`.

use sunfloor_benchmarks::distributed;
use sunfloor_core::synthesis::{synthesize, SynthesisConfig, SynthesisMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = distributed(4);

    println!("== TSV budget sweep (400 MHz) ==");
    println!("  max_ill  best_power_mW  latency_cyc  switches");
    for max_ill in [6u32, 10, 14, 18, 22, 26] {
        let cfg = SynthesisConfig {
            mode: SynthesisMode::Auto,
            max_ill,
            switch_count_range: Some((2, 14)),
            ..SynthesisConfig::default()
        };
        let outcome = synthesize(&bench.soc, &bench.comm, &cfg)?;
        match outcome.best_power() {
            Some(p) => println!(
                "  {:>7}  {:>13.1}  {:>11.2}  {:>8}",
                max_ill,
                p.metrics.power.total_mw(),
                p.metrics.avg_latency_cycles,
                p.metrics.switch_count
            ),
            None => println!("  {max_ill:>7}  infeasible"),
        }
    }

    println!("\n== frequency sweep (max_ill = 25) ==");
    println!("  MHz   max_switch_size  best_power_mW  latency_cyc");
    for freq in [300.0f64, 400.0, 500.0, 650.0] {
        let cfg = SynthesisConfig {
            frequencies_mhz: vec![freq],
            switch_count_range: Some((2, 14)),
            ..SynthesisConfig::default()
        };
        let max_sw = cfg.library.switch.max_size_for_frequency(freq);
        let outcome = synthesize(&bench.soc, &bench.comm, &cfg)?;
        match outcome.best_power() {
            Some(p) => println!(
                "  {freq:>4.0}  {max_sw:>15}  {:>13.1}  {:>11.2}",
                p.metrics.power.total_mw(),
                p.metrics.avg_latency_cycles
            ),
            None => println!("  {freq:>4.0}  {max_sw:>15}  infeasible"),
        }
    }
    Ok(())
}
