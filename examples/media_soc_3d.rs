//! The paper's case study: synthesize the 26-core multimedia SoC
//! (`D_26_media`) onto 3 layers and inspect the power/latency trade-off.
//!
//! Run with `cargo run --release --example media_soc_3d`.

use sunfloor_benchmarks::media26;
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine, SynthesisMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = media26();
    println!(
        "{}: {} cores on {} layers, {} flows, {:.1} MB/s total",
        bench.name,
        bench.soc.core_count(),
        bench.soc.layers,
        bench.comm.flow_count(),
        bench.comm.total_bandwidth_mbs()
    );

    let cfg = SynthesisConfig::builder()
        .mode(SynthesisMode::Phase1Only)
        .max_ill(25)
        .switch_count_range(1, 12)
        .jobs(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
        .build()?;
    let outcome = SynthesisEngine::new(&bench.soc, &bench.comm, cfg)?.run();

    println!("\n  switches  total_mW  latency_cyc  max_ill  area_mm2");
    let mut points: Vec<_> = outcome.points.iter().collect();
    points.sort_by_key(|p| p.requested_switches);
    for p in &points {
        println!(
            "  {:>8}  {:>8.1}  {:>11.2}  {:>7}  {:>8.2}",
            p.requested_switches,
            p.metrics.power.total_mw(),
            p.metrics.avg_latency_cycles,
            p.metrics.max_inter_layer_links(),
            p.layout.as_ref().map_or(0.0, |l| l.die_area_mm2()),
        );
    }

    let best = outcome.best_power().expect("feasible point");
    let names: Vec<String> = bench.soc.cores.iter().map(|c| c.name.clone()).collect();
    println!("\nmost power-efficient topology:");
    print!("{}", best.topology.describe(&names));

    println!("\nPareto front (power ascending):");
    for p in outcome.pareto_front() {
        println!(
            "  {} switches: {:.1} mW, {:.2} cycles",
            p.metrics.switch_count,
            p.metrics.power.total_mw(),
            p.metrics.avg_latency_cycles
        );
    }
    Ok(())
}
