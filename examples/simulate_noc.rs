//! Dynamic validation: synthesize a topology for the bottleneck benchmark,
//! then drive it with the cycle-level wormhole simulator at increasing
//! injection rates to see latency climb towards saturation.
//!
//! Run with `cargo run --release --example simulate_noc`.

use sunfloor_benchmarks::bottleneck;
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine, SynthesisMode};
use sunfloor_sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = bottleneck();
    let cfg = SynthesisConfig::builder()
        .mode(SynthesisMode::Auto)
        .switch_count_range(2, 10)
        .run_layout(false)
        .build()?;
    let outcome = SynthesisEngine::new(&bench.soc, &bench.comm, cfg)?.run();
    let best = outcome.best_power().expect("feasible point");
    println!(
        "synthesized {} switches; analytic zero-load latency {:.2} cycles",
        best.metrics.switch_count, best.metrics.avg_latency_cycles
    );

    println!("\n  load_scale  avg_latency_cyc  delivery_ratio  throughput_flits/cyc  deadlock");
    for scale in [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let sim_cfg = SimConfig { injection_scale: scale, ..SimConfig::default() };
        let report =
            Simulator::new(&best.topology, &bench.soc, &bench.comm, 400.0, &sim_cfg).run();
        println!(
            "  {:>10.2}  {:>15.2}  {:>14.3}  {:>20.3}  {}",
            scale,
            report.avg_latency_cycles,
            report.delivery_ratio(),
            report.throughput_flits_per_cycle,
            report.deadlock_suspected
        );
    }
    println!("\n(no deadlock at any load: the routing's channel-dependency graph is acyclic)");
    Ok(())
}
