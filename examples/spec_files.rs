//! Working with the plain-text specification files: export a generated
//! benchmark to the core/communication spec formats, read them back, and
//! synthesize from the parsed copies — the file-based workflow of the
//! original tool.
//!
//! Run with `cargo run --release --example spec_files`.

use std::fs;
use sunfloor_benchmarks::distributed;
use sunfloor_core::spec::{CommSpec, SocSpec};
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = distributed(4);
    let dir = std::env::temp_dir().join("sunfloor_specs");
    fs::create_dir_all(&dir)?;

    // Export.
    let core_path = dir.join("d36_4.cores");
    let comm_path = dir.join("d36_4.comm");
    fs::write(&core_path, bench.soc.to_text())?;
    fs::write(&comm_path, bench.comm.to_text(&bench.soc))?;
    println!("wrote {} and {}", core_path.display(), comm_path.display());

    // Re-import.
    let soc = SocSpec::parse(&fs::read_to_string(&core_path)?)?;
    let comm = CommSpec::parse(&fs::read_to_string(&comm_path)?, &soc)?;
    assert_eq!(soc, bench.soc);
    assert_eq!(comm, bench.comm);
    println!(
        "reparsed {} cores / {} flows identically",
        soc.core_count(),
        comm.flow_count()
    );

    // Synthesize from the parsed copies.
    let cfg = SynthesisConfig::builder().switch_count_range(3, 8).build()?;
    let outcome = SynthesisEngine::new(&soc, &comm, cfg)?.run();
    let best = outcome.best_power().expect("feasible point");
    println!(
        "best topology from file-based flow: {} switches, {:.1} mW, {:.2} cycles",
        best.metrics.switch_count,
        best.metrics.power.total_mw(),
        best.metrics.avg_latency_cycles
    );
    Ok(())
}
