//! Quickstart: synthesize a custom 3-D NoC for a hand-built four-core SoC.
//!
//! Run with `cargo run --release --example quickstart`.

use sunfloor_core::spec::{CommSpec, Core, Flow, MessageType, SocSpec};
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy stack: CPU + accelerator on the bottom die, two memories above.
    let soc = SocSpec::new(
        vec![
            Core { name: "cpu".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 0 },
            Core { name: "acc".into(), width: 1.5, height: 1.5, x: 2.5, y: 0.0, layer: 0 },
            Core { name: "mem0".into(), width: 1.8, height: 1.6, x: 0.0, y: 0.0, layer: 1 },
            Core { name: "mem1".into(), width: 1.8, height: 1.6, x: 2.5, y: 0.0, layer: 1 },
        ],
        2,
    )?;
    let flow = |src, dst, bw: f64, class| Flow {
        src,
        dst,
        bandwidth_mbs: bw,
        max_latency_cycles: 8.0,
        message_type: class,
    };
    let comm = CommSpec::new(
        vec![
            flow(0, 2, 400.0, MessageType::Request),
            flow(2, 0, 400.0, MessageType::Response),
            flow(1, 3, 250.0, MessageType::Request),
            flow(0, 1, 80.0, MessageType::Request),
        ],
        &soc,
    )?;

    // The builder validates eagerly; the engine then sweeps the candidate
    // design points.
    let cfg = SynthesisConfig::builder().frequency_mhz(400.0).max_ill(25).build()?;
    let outcome = SynthesisEngine::new(&soc, &comm, cfg)?.run();
    println!(
        "explored {} feasible design points ({} rejected)",
        outcome.points.len(),
        outcome.rejected.len()
    );

    let best = outcome.best_power().expect("at least one feasible topology");
    let names: Vec<String> = soc.cores.iter().map(|c| c.name.clone()).collect();
    println!("\nbest-power topology ({} switches):", best.metrics.switch_count);
    print!("{}", best.topology.describe(&names));
    println!(
        "\npower: {:.1} mW (switches {:.1}, switch links {:.1}, core links {:.1}, NIs {:.1})",
        best.metrics.power.total_mw(),
        best.metrics.power.switch_mw,
        best.metrics.power.switch_link_mw,
        best.metrics.power.core_link_mw,
        best.metrics.power.ni_mw,
    );
    println!("average zero-load latency: {:.2} cycles", best.metrics.avg_latency_cycles);
    println!("vertical links per boundary: {:?}", best.metrics.inter_layer_links);
    if let Some(layout) = &best.layout {
        println!("die area: {:.2} mm^2", layout.die_area_mm2());
    }
    Ok(())
}
