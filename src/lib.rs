//! Workspace facade for the SunFloor 3D reproduction.
//!
//! This crate exists so the repository-level integration suites
//! (`tests/`) and runnable examples (`examples/`) attach to the Cargo
//! workspace; it re-exports the member crates under one roof for
//! convenience. Library users should normally depend on the individual
//! `sunfloor-*` crates directly — start with [`core`]'s
//! `SynthesisConfig::builder()` + `SynthesisEngine` entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sunfloor_baselines as baselines;
pub use sunfloor_benchmarks as benchmarks;
pub use sunfloor_core as core;
pub use sunfloor_lp as lp;
pub use sunfloor_models as models;
pub use sunfloor_partition as partition;
pub use sunfloor_sim as sim;
