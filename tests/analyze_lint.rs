//! Tier-1 wiring for the determinism & hot-path lint pass: `cargo test`
//! at the workspace root runs exactly the check CI's `lint` job runs, so
//! a new violation (or a stale suppression) cannot land through the
//! normal test gate either.

use std::path::Path;
use sunfloor_analyze::{check_workspace, find_root};

#[test]
fn workspace_lints_clean_against_committed_baseline() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let report = check_workspace(&root).expect("lint pass runs");
    assert!(
        report.pass(),
        "sunfloor-analyze found new violations — fix them, add a \
         `// sf-allow(rule): reason`, or (for ratcheted rules) re-freeze \
         with `cargo run -p sunfloor-analyze -- --write-baseline`:\n{}",
        report.render()
    );
}
