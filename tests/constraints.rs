//! Constraint-satisfaction integration tests: every design point a
//! synthesis run reports must obey the TSV budget, the frequency-dependent
//! switch-size limit, layer-adjacency restrictions and latency budgets.

use sunfloor_benchmarks::{bottleneck, distributed, tvopd};
use sunfloor_core::spec::MessageType;
use sunfloor_core::synthesis::{
    PhaseKind, RejectReason, SynthesisConfig, SynthesisEngine, SynthesisMode,
};

#[test]
fn max_ill_respected_across_budgets() {
    let bench = distributed(4);
    for max_ill in [8u32, 14, 25] {
        let cfg = SynthesisConfig::builder()
            .max_ill(max_ill)
            .run_layout(false)
            .switch_count_range(2, 10)
            .build()
            .unwrap();
        let outcome = SynthesisEngine::new(&bench.soc, &bench.comm, cfg).unwrap().run();
        for p in &outcome.points {
            assert!(
                p.metrics.max_inter_layer_links() <= max_ill,
                "budget {max_ill} violated: {}",
                p.metrics.max_inter_layer_links()
            );
            // Census must also match a from-scratch recomputation.
            let layers: Vec<u32> = bench.soc.cores.iter().map(|c| c.layer).collect();
            assert_eq!(
                p.metrics.inter_layer_links,
                p.topology.inter_layer_link_census(&layers, bench.soc.layers)
            );
        }
    }
}

#[test]
fn switch_size_limit_scales_with_frequency() {
    let bench = bottleneck();
    for freq in [400.0f64, 550.0, 700.0] {
        let cfg = SynthesisConfig::builder()
            .frequency_mhz(freq)
            .run_layout(false)
            .switch_count_range(2, 12)
            .build()
            .unwrap();
        let max_sw = cfg.library.switch.max_size_for_frequency(freq);
        let outcome = SynthesisEngine::new(&bench.soc, &bench.comm, cfg).unwrap().run();
        for p in &outcome.points {
            for s in 0..p.topology.switch_count() {
                assert!(
                    p.topology.switch_size(s) <= max_sw,
                    "switch {s} exceeds {max_sw} ports at {freq} MHz"
                );
            }
        }
    }
}

#[test]
fn phase2_links_stay_within_adjacent_layers() {
    let bench = tvopd();
    let cfg = SynthesisConfig::builder()
        .mode(SynthesisMode::Phase2Only)
        .run_layout(false)
        .build()
        .unwrap();
    let outcome = SynthesisEngine::new(&bench.soc, &bench.comm, cfg).unwrap().run();
    assert!(!outcome.points.is_empty(), "rejected: {:?}", outcome.rejected);
    for p in &outcome.points {
        assert_eq!(p.phase, PhaseKind::Phase2);
        for l in &p.topology.links {
            let d = p.topology.switch_layer[l.from].abs_diff(p.topology.switch_layer[l.to]);
            assert!(d <= 1, "phase 2 link spans {d} layers");
        }
        for (c, &sw) in p.topology.core_attach.iter().enumerate() {
            assert_eq!(bench.soc.cores[c].layer, p.topology.switch_layer[sw]);
        }
    }
}

#[test]
fn request_and_response_never_share_links() {
    let bench = bottleneck(); // has explicit response flows
    let cfg = SynthesisConfig::builder()
        .run_layout(false)
        .switch_count_range(2, 8)
        .build()
        .unwrap();
    let outcome = SynthesisEngine::new(&bench.soc, &bench.comm, cfg).unwrap().run();
    assert!(!outcome.points.is_empty());
    for p in &outcome.points {
        for l in &p.topology.links {
            for &fi in &l.flows {
                assert_eq!(
                    bench.comm.flows[fi].message_type, l.class,
                    "flow {fi} rides a link of the wrong class"
                );
            }
        }
        // Both classes actually exist in this benchmark's topology.
        let has_resp = p.topology.links.iter().any(|l| l.class == MessageType::Response);
        let has_req = p.topology.links.iter().any(|l| l.class == MessageType::Request);
        if p.topology.links.len() >= 2 {
            assert!(has_req);
            // Responses may be single-switch-local; only check when
            // inter-switch response traffic exists.
            let resp_cross = bench.comm.flows.iter().enumerate().any(|(fi, f)| {
                f.message_type == MessageType::Response
                    && p.topology.flow_paths[fi].switches.len() > 1
            });
            if resp_cross {
                assert!(has_resp);
            }
        }
    }
}

#[test]
fn link_capacity_never_exceeded() {
    let bench = distributed(8);
    let cfg = SynthesisConfig::builder()
        .run_layout(false)
        .switch_count_range(2, 10)
        .build()
        .unwrap();
    let capacity = cfg.library.link.capacity_gbps(400.0);
    let outcome = SynthesisEngine::new(&bench.soc, &bench.comm, cfg).unwrap().run();
    for p in &outcome.points {
        for l in &p.topology.links {
            assert!(
                l.bandwidth_gbps <= capacity + 1e-9,
                "link {}->{} carries {} Gbps over the {} Gbps capacity",
                l.from,
                l.to,
                l.bandwidth_gbps,
                capacity
            );
        }
    }
}

#[test]
fn infeasible_latency_budget_rejects_points_with_reasons() {
    // Clamp every flow to an impossible 0.5-cycle budget (already below a
    // single switch traversal): synthesis must reject everything with a
    // latency reason rather than return violating points.
    let mut bench = distributed(4);
    for f in &mut bench.comm.flows {
        f.max_latency_cycles = 0.5;
    }
    let cfg = SynthesisConfig::builder()
        .run_layout(false)
        .switch_count_range(2, 6)
        .build()
        .unwrap();
    let outcome = SynthesisEngine::new(&bench.soc, &bench.comm, cfg).unwrap().run();
    assert!(outcome.points.is_empty());
    // The rejection reason is typed now — and its Display still carries the
    // legacy "latency" message text.
    let latency_reject = outcome
        .rejected
        .iter()
        .find(|r| matches!(r.reason, RejectReason::LatencyViolated { .. }));
    let reject = latency_reject.unwrap_or_else(|| panic!("reasons: {:?}", outcome.rejected));
    assert!(reject.reason.to_string().contains("latency"));
}
