//! Warm-start coverage for the Phase-1 partitioning pass (PR 4): the
//! adjacent-switch-count seed chain and the θ-escalation chain must be
//! deterministic for a fixed seed, and their cut costs must never exceed
//! the cold-start cuts — on `media26` and both seeded synthetic
//! generators.

use sunfloor_benchmarks::{media26, pipeline_seeded, tvopd_seeded, Benchmark};
use sunfloor_core::graph::{CommGraph, PartitionCache};
use sunfloor_core::phase1;
use sunfloor_core::synthesis::{SweepEvent, SynthesisConfig, SynthesisEngine};
use sunfloor_partition::PartitionConfig;

const SEED: u64 = 0x51B0_A7E5;
const ALPHA: f64 = 1.0;
const THETA_MAX: f64 = 15.0;

fn benches() -> Vec<(&'static str, Benchmark)> {
    vec![
        ("media26", media26()),
        ("pipeline_seeded(12,7)", pipeline_seeded(12, 7)),
        ("tvopd_seeded(9)", tvopd_seeded(9)),
    ]
}

/// Runs the adjacent-switch-count warm chain `k = 2..=10` the way the
/// engine's seed set does, returning each step's assignment.
fn warm_chain(graph: &CommGraph, bench: &Benchmark) -> Vec<(usize, Vec<u32>)> {
    let mut cache = PartitionCache::new();
    let mut prev: Option<Vec<u32>> = None;
    let mut chain = Vec::new();
    for k in 2..=10usize.min(bench.soc.core_count()) {
        let conn = phase1::connectivity_cached(
            graph,
            &bench.soc,
            k,
            ALPHA,
            None,
            THETA_MAX,
            SEED,
            prev.as_deref(),
            &mut cache,
        )
        .unwrap();
        let assignment: Vec<u32> = conn.core_attach.iter().map(|&a| a as u32).collect();
        prev = Some(assignment.clone());
        chain.push((k, assignment));
    }
    chain
}

/// Adjacent-switch-count warm starts: deterministic for a fixed seed, and
/// the warm-chained cut never exceeds the cold-start cut at the same
/// switch count.
#[test]
fn adjacent_count_warm_chain_is_deterministic_and_no_worse_than_cold() {
    for (name, bench) in benches() {
        let graph = CommGraph::new(&bench.soc, &bench.comm);
        let pg = graph.partitioning_graph(ALPHA);
        let first = warm_chain(&graph, &bench);
        let second = warm_chain(&graph, &bench);
        assert_eq!(first, second, "{name}: warm chain not deterministic for seed {SEED:#x}");
        for (k, assignment) in &first {
            let cold = pg.partition(&PartitionConfig::k_way(*k).with_seed(SEED)).unwrap();
            let warm_cut = pg.cut_weight(assignment);
            assert!(
                warm_cut <= cold.cut_weight + 1e-9,
                "{name} k={k}: warm cut {warm_cut} exceeds cold cut {}",
                cold.cut_weight
            );
        }
    }
}

/// θ-escalation warm starts, along the escalation trajectories the engine
/// actually takes on each benchmark: deterministic for a fixed seed, and
/// each warm-started SPG partition's cut never exceeds the cold-start cut
/// on the same SPG.
#[test]
fn theta_escalation_warm_starts_are_deterministic_and_no_worse_than_cold() {
    for (name, bench) in benches() {
        // Which (switch count, θ) steps does the real sweep escalate
        // through?
        let cfg = SynthesisConfig::builder()
            .switch_count_range(2, 10)
            .run_layout(false)
            .build()
            .unwrap();
        let engine = SynthesisEngine::new(&bench.soc, &bench.comm, cfg).unwrap();
        let mut trajectory: Vec<(usize, f64)> = Vec::new();
        let out = engine.run_with_observer(&mut |e: &SweepEvent| {
            if let SweepEvent::ThetaEscalated { candidate, theta } = e {
                trajectory.push((candidate.sweep.value(), *theta));
            }
        });
        assert!(!out.points.is_empty(), "{name}: sweep must stay feasible");

        let graph = CommGraph::new(&bench.soc, &bench.comm);
        let engine_cfg = SynthesisConfig::default();
        let replay = |_tag: &str| -> Vec<(usize, f64, Vec<u32>, f64)> {
            let mut cache = PartitionCache::new();
            let mut steps = Vec::new();
            let mut prev: Option<(usize, Vec<u32>)> = None;
            for &(k, theta) in &trajectory {
                // A new candidate's chain restarts from its base seed,
                // exactly like the engine.
                let base_needed = prev.as_ref().is_none_or(|(pk, _)| *pk != k);
                if base_needed {
                    let base = phase1::connectivity_cached(
                        &graph,
                        &bench.soc,
                        k,
                        engine_cfg.alpha,
                        None,
                        engine_cfg.theta_max,
                        engine_cfg.rng_seed,
                        None,
                        &mut cache,
                    )
                    .unwrap();
                    prev =
                        Some((k, base.core_attach.iter().map(|&a| a as u32).collect()));
                }
                let warm = &prev.as_ref().unwrap().1;
                let conn = phase1::connectivity_cached(
                    &graph,
                    &bench.soc,
                    k,
                    engine_cfg.alpha,
                    Some(theta),
                    engine_cfg.theta_max,
                    engine_cfg.rng_seed,
                    Some(warm),
                    &mut cache,
                )
                .unwrap();
                let assignment: Vec<u32> =
                    conn.core_attach.iter().map(|&a| a as u32).collect();
                let spg = graph.scaled_partitioning_graph(
                    &bench.soc,
                    engine_cfg.alpha,
                    theta,
                    engine_cfg.theta_max,
                );
                let cut = spg.cut_weight(&assignment);
                prev = Some((k, assignment.clone()));
                steps.push((k, theta, assignment, cut));
            }
            steps
        };
        let first = replay("first");
        let second = replay("second");
        assert_eq!(
            first, second,
            "{name}: θ-escalation warm starts not deterministic for a fixed seed"
        );
        for (k, theta, _, warm_cut) in &first {
            let spg = graph.scaled_partitioning_graph(
                &bench.soc,
                engine_cfg.alpha,
                *theta,
                engine_cfg.theta_max,
            );
            let cold =
                spg.partition(&PartitionConfig::k_way(*k).with_seed(engine_cfg.rng_seed)).unwrap();
            assert!(
                *warm_cut <= cold.cut_weight + 1e-9,
                "{name} k={k} θ={theta}: warm cut {warm_cut} exceeds cold cut {}",
                cold.cut_weight
            );
        }
    }
}

/// Sparse-θ quality anchor (PR 10): the production θ-step — a warm-started
/// partition of the sparse SPG, whose same-layer weak clique is folded into
/// a uniform group attraction instead of materialized as `O(n²)` edges,
/// seeded from the unchanged PG base
/// assignment exactly as the engine escalates — must produce cuts no worse
/// than the same warm-started step on the paper's literal dense SPG, judged
/// on the **dense** graph (the true Definition-4 objective), on media26 and
/// both seeded generators across the θ schedule.
#[test]
fn sparse_theta_partition_cut_is_no_worse_than_dense_on_the_dense_objective() {
    for (name, bench) in benches() {
        let graph = CommGraph::new(&bench.soc, &bench.comm);
        for (k, base_assignment) in warm_chain(&graph, &bench) {
            // Escalate θ exactly like the engine: each step warm-starts
            // from the previous assignment, the first from the PG base
            // (identical in both paths — sparsification only touches the
            // SPG's weak edges).
            let mut sparse_prev = base_assignment.clone();
            let mut dense_prev = base_assignment;
            for theta in [1.0, 4.0, 7.0, 10.0, 13.0] {
                let warm = |initial: &[u32]| {
                    PartitionConfig::k_way(k)
                        .with_seed(SEED)
                        .with_initial(initial.to_vec())
                };
                let sparse = graph.scaled_partitioning_graph(&bench.soc, ALPHA, theta, THETA_MAX);
                let dense =
                    graph.scaled_partitioning_graph_dense(&bench.soc, ALPHA, theta, THETA_MAX);
                let sparse_parts = sparse.partition(&warm(&sparse_prev)).unwrap();
                let dense_parts = dense.partition(&warm(&dense_prev)).unwrap();
                let sparse_cut_on_dense = dense.cut_weight(sparse_parts.assignment());
                assert!(
                    sparse_cut_on_dense <= dense_parts.cut_weight + 1e-9,
                    "{name} k={k} θ={theta}: sparse-θ cut {sparse_cut_on_dense} worse than \
                     dense-θ cut {} on the dense objective",
                    dense_parts.cut_weight
                );
                sparse_prev = sparse_parts.assignment().to_vec();
                dense_prev = dense_parts.assignment().to_vec();
            }
        }
    }
}

/// The engine's partition-cache diagnostics are deterministic and identical
/// between serial and parallel sweeps, and the cache actually serves the
/// sweep: every Phase-1 candidate's base partition is a cache hit.
#[test]
fn partition_cache_stats_are_deterministic_and_meaningful() {
    let bench = media26();
    let cfg = |jobs: usize| {
        SynthesisConfig::builder()
            .switch_count_range(2, 10)
            .run_layout(false)
            .jobs(jobs)
            .build()
            .unwrap()
    };
    let serial =
        SynthesisEngine::new(&bench.soc, &bench.comm, cfg(1)).unwrap().run();
    let stats = serial.partition_stats;
    assert_eq!(stats.base_cache_hits, 9, "one base hit per Phase-1 candidate (k = 2..=10)");
    assert_eq!(stats.cold_partitions, 1, "only the chain's first count partitions cold");
    assert_eq!(
        stats.warm_partitions,
        8 + stats.spg_derivations,
        "chain warm starts (8) plus one per θ derivation"
    );
    assert!(stats.cache_hits() >= 9);
    for jobs in [2usize, 4] {
        let parallel =
            SynthesisEngine::new(&bench.soc, &bench.comm, cfg(jobs)).unwrap().run();
        assert_eq!(
            parallel.partition_stats, stats,
            "jobs={jobs}: cache counters must not depend on worker scheduling"
        );
    }
}
