//! Warm-start coverage for the placement-LP subsystem (PR 5): warm-started
//! solves must agree with cold solves on the objective for arbitrary
//! placement problems, the vertex returned on a degenerate optimum is
//! pinned, and the engine's placement-LP diagnostics are deterministic and
//! scheduling-independent on the real media26 candidate trajectory.

use proptest::prelude::*;
use sunfloor_benchmarks::media26;
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine};
use sunfloor_lp::{PlacementProblem, PlacementState};

/// Builds a placement problem over `switches` movable points attracted to
/// the centers of a roster of (optionally rotated) core rectangles, plus a
/// ring of switch-switch attractions.
fn placement_from_cores(
    switches: usize,
    cores: &[(f64, f64, f64, f64, bool)], // (x, y, w, h, rotated)
    weights: &[f64],
    pair_weight: f64,
) -> PlacementProblem {
    let mut p = PlacementProblem::new(switches);
    for (k, &(x, y, w, h, rotated)) in cores.iter().enumerate() {
        let (w, h) = if rotated { (h, w) } else { (w, h) };
        let center = (x + w / 2.0, y + h / 2.0);
        p.attract_to_fixed(k % switches, center, weights[k % weights.len()]);
    }
    for s in 0..switches {
        p.attract_pair(s, (s + 1) % switches, pair_weight);
    }
    p
}

proptest! {
    /// Warm-started objective == cold objective on random placement
    /// problems: a persistent [`PlacementState`] chained across a sequence
    /// of solves (identical re-solves, reweighted re-solves and
    /// structurally fresh problems) must return the same optimum as a
    /// from-scratch solve at every step.
    #[test]
    fn warm_objective_matches_cold_on_random_placements(
        switches in 2usize..12,
        cores in proptest::collection::vec(
            (0.0f64..30.0, 0.0f64..30.0, 0.5f64..4.0, 0.5f64..4.0, proptest::bool::ANY),
            4..16,
        ),
        weights in proptest::collection::vec(0.1f64..8.0, 1..6),
        pair_weights in proptest::collection::vec(0.05f64..4.0, 3..4),
    ) {
        let mut state = PlacementState::new();
        for &pw in &pair_weights {
            let p = placement_from_cores(switches, &cores, &weights, pw);
            let warm = p.solve_with(&mut state).unwrap();
            let cold = p.solve().unwrap();
            let (wo, co) = (p.objective(&warm), p.objective(&cold));
            // Both paths terminate at an optimal vertex; the objectives
            // agree to floating-point rounding.
            let tol = 1e-9 * (1.0 + co.abs());
            prop_assert!((wo - co).abs() <= tol,
                "warm {wo} vs cold {co} (pair weight {pw})");
        }
    }
}

/// Degenerate-optimum regression: the A — s0 — s1 — B chain has a whole
/// segment of optimal placements (any `x0 ≤ x1` between the pins), so the
/// *returned* vertex is a solver-trajectory artifact. Pin it: cold and
/// warm re-solves must keep returning exactly this vertex — any pricing,
/// replay-order or tie-break change shows up here first.
#[test]
fn degenerate_optimum_vertex_is_pinned() {
    let build = || {
        let mut p = PlacementProblem::new(2);
        p.attract_to_fixed(0, (0.0, 0.0), 1.0);
        p.attract_pair(0, 1, 1.0);
        p.attract_to_fixed(1, (6.0, 0.0), 1.0);
        p
    };
    let p = build();
    let cold = p.solve().unwrap();
    assert_eq!(p.objective(&cold), 6.0, "optimal objective is the pin distance");
    // The pinned vertex: both switches collapse onto core B's pin.
    let expected = vec![(6.0, 0.0), (6.0, 0.0)];
    assert_eq!(cold, expected, "cold solve drifted off the pinned degenerate vertex");

    // Warm re-solves through a persistent state return the same vertex,
    // bit for bit.
    let mut state = PlacementState::new();
    let first = p.solve_with(&mut state).unwrap();
    assert_eq!(first, expected);
    for _ in 0..3 {
        let again = p.solve_with(&mut state).unwrap();
        let (rx, ry) = state.reports();
        assert!(rx.warm && ry.warm, "re-solve must warm-start both axes");
        assert_eq!(again, expected, "warm re-solve moved along the degenerate face");
    }
}

/// The engine's placement-LP diagnostics on the real media26 candidate
/// trajectory: deterministic run to run, identical between serial and
/// parallel sweeps (the counters are accumulated per candidate), and the
/// warm starts actually fire.
#[test]
fn engine_lp_stats_are_deterministic_and_warm_starts_fire() {
    let bench = media26();
    let cfg = |jobs: usize| {
        SynthesisConfig::builder()
            .switch_count_range(2, 10)
            .run_layout(false)
            .jobs(jobs)
            .build()
            .unwrap()
    };
    let run = |jobs| SynthesisEngine::new(&bench.soc, &bench.comm, cfg(jobs)).unwrap().run();
    let serial = run(1);
    let stats = serial.lp_stats;
    assert!(!serial.points.is_empty(), "media26 must stay feasible");
    assert_eq!(stats.total_solves() % 2, 0, "every placement solves one LP per axis");
    assert!(
        stats.cold_solves > 0,
        "the serial warm-up's first x-axis solve per switch count is cold"
    );
    assert!(
        stats.warm_solves > 0,
        "the y axis (and θ-retry placements) must warm-start: {stats:?}"
    );
    assert!(stats.iterations_saved > 0, "warm re-entries must skip pivots: {stats:?}");
    assert!(
        stats.cross_candidate_warm_solves > 0,
        "candidate base placements must re-enter from the warm-up seed bank: {stats:?}"
    );
    assert!(
        stats.cross_candidate_warm_solves <= stats.warm_solves,
        "seed-served re-entries are a subset of all warm solves: {stats:?}"
    );

    let again = run(1);
    assert_eq!(again.lp_stats, stats, "repeated serial sweeps must reproduce the counters");
    for jobs in [2usize, 4] {
        let parallel = run(jobs);
        assert_eq!(
            parallel.lp_stats, stats,
            "jobs={jobs}: LP counters must not depend on worker scheduling"
        );
        assert_eq!(parallel, serial, "jobs={jobs}: outcomes must stay bit-identical");
    }
}
