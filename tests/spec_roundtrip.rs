//! Specification file-format round trips on the real benchmarks: the
//! plain-text core/communication formats must reproduce every generator's
//! output exactly.

use sunfloor_benchmarks::{all_table1_benchmarks, media26};
use sunfloor_core::spec::{CommSpec, SocSpec, SpecError};

#[test]
fn every_benchmark_roundtrips_through_text() {
    let mut benches = all_table1_benchmarks();
    benches.push(media26());
    for b in &benches {
        let soc_text = b.soc.to_text();
        let comm_text = b.comm.to_text(&b.soc);
        let soc = SocSpec::parse(&soc_text)
            .unwrap_or_else(|e| panic!("{}: core spec reparse failed: {e}", b.name));
        let comm = CommSpec::parse(&comm_text, &soc)
            .unwrap_or_else(|e| panic!("{}: comm spec reparse failed: {e}", b.name));
        assert_eq!(soc, b.soc, "{} core spec drifted", b.name);
        assert_eq!(comm, b.comm, "{} comm spec drifted", b.name);
    }
}

#[test]
fn parse_errors_carry_line_numbers() {
    let bad = "layers 2\ncore a 1 1 0 0 0\ncore b 1 1 nope 0 1\n";
    match SocSpec::parse(bad) {
        Err(SpecError::Parse { line, .. }) => assert_eq!(line, 3),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn flow_referencing_missing_core_is_rejected_with_name() {
    let b = media26();
    let text = "flow arm warp_drive 10 5 request\n";
    let err = CommSpec::parse(text, &b.soc).unwrap_err();
    assert!(err.to_string().contains("warp_drive"), "{err}");
}

#[test]
fn truncated_flow_line_is_rejected() {
    let b = media26();
    let err = CommSpec::parse("flow arm dsp1\n", &b.soc).unwrap_err();
    assert!(matches!(err, SpecError::Parse { line: 1, .. }));
}

// ---------------------------------------------------------------------------
// Property tests: the parsers must be total (no panic on any input) and the
// parse -> to_text -> parse loop must be the identity on everything that
// parses at all.
// ---------------------------------------------------------------------------

use proptest::prelude::*;
use sunfloor_fuzz::generate_case;

/// Arbitrary Unicode text, including control characters, surrogate-adjacent
/// code points, and no structure whatsoever.
fn arb_garbage() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x11_0000u32, 0..400)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `SocSpec::parse` is total: any string yields `Ok` or a typed
    /// `SpecError`, never a panic.
    #[test]
    fn soc_parse_never_panics_on_arbitrary_text(text in arb_garbage()) {
        let _ = SocSpec::parse(&text);
    }

    /// `CommSpec::parse` is total against a small valid SoC.
    #[test]
    fn comm_parse_never_panics_on_arbitrary_text(text in arb_garbage()) {
        let soc = SocSpec::parse("layers 2\ncore a 1 1 0 0 0\ncore b 1 1 1 0 1\n")
            .expect("reference soc parses");
        let _ = CommSpec::parse(&text, &soc);
    }
}

/// Every adversarial spec the fuzzer generates (valid or mutated) that
/// parses at all must survive a `to_text` round trip: reparsing the
/// canonical text reproduces the same in-memory spec.
#[test]
fn fuzz_generated_specs_roundtrip_through_text() {
    let mut parsed_socs = 0u32;
    let mut parsed_comms = 0u32;
    for index in 0..300u64 {
        let case = generate_case(0x5EED_2026, index);
        let Ok(soc) = SocSpec::parse(&case.soc_text) else { continue };
        parsed_socs += 1;
        let re_soc = SocSpec::parse(&soc.to_text())
            .unwrap_or_else(|e| panic!("case {index}: canonical soc text failed to reparse: {e}"));
        assert_eq!(re_soc, soc, "case {index}: soc spec drifted through to_text");
        let Ok(comm) = CommSpec::parse(&case.comm_text, &soc) else { continue };
        parsed_comms += 1;
        let re_comm = CommSpec::parse(&comm.to_text(&soc), &soc)
            .unwrap_or_else(|e| panic!("case {index}: canonical comm text failed to reparse: {e}"));
        assert_eq!(re_comm, comm, "case {index}: comm spec drifted through to_text");
    }
    // The generator starts from valid specs, so a healthy share must parse;
    // if these trip, the mutation mix drifted and the property tests above
    // lost their subject matter.
    assert!(parsed_socs >= 50, "only {parsed_socs}/300 generated soc specs parsed");
    assert!(parsed_comms >= 25, "only {parsed_comms}/300 generated comm specs parsed");
}
