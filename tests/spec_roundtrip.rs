//! Specification file-format round trips on the real benchmarks: the
//! plain-text core/communication formats must reproduce every generator's
//! output exactly.

use sunfloor_benchmarks::{all_table1_benchmarks, media26};
use sunfloor_core::spec::{CommSpec, SocSpec, SpecError};

#[test]
fn every_benchmark_roundtrips_through_text() {
    let mut benches = all_table1_benchmarks();
    benches.push(media26());
    for b in &benches {
        let soc_text = b.soc.to_text();
        let comm_text = b.comm.to_text(&b.soc);
        let soc = SocSpec::parse(&soc_text)
            .unwrap_or_else(|e| panic!("{}: core spec reparse failed: {e}", b.name));
        let comm = CommSpec::parse(&comm_text, &soc)
            .unwrap_or_else(|e| panic!("{}: comm spec reparse failed: {e}", b.name));
        assert_eq!(soc, b.soc, "{} core spec drifted", b.name);
        assert_eq!(comm, b.comm, "{} comm spec drifted", b.name);
    }
}

#[test]
fn parse_errors_carry_line_numbers() {
    let bad = "layers 2\ncore a 1 1 0 0 0\ncore b 1 1 nope 0 1\n";
    match SocSpec::parse(bad) {
        Err(SpecError::Parse { line, .. }) => assert_eq!(line, 3),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn flow_referencing_missing_core_is_rejected_with_name() {
    let b = media26();
    let text = "flow arm warp_drive 10 5 request\n";
    let err = CommSpec::parse(text, &b.soc).unwrap_err();
    assert!(err.to_string().contains("warp_drive"), "{err}");
}

#[test]
fn truncated_flow_line_is_rejected() {
    let b = media26();
    let err = CommSpec::parse("flow arm dsp1\n", &b.soc).unwrap_err();
    assert!(matches!(err, SpecError::Parse { line: 1, .. }));
}
