//! Qualitative orderings from the paper's evaluation, checked end to end:
//! 3-D beats 2-D on interconnect power, custom topologies beat the
//! optimized mesh, Phase 1 is at least as power-efficient as Phase 2 while
//! Phase 2 uses no more vertical links.

use sunfloor_baselines::{optimized_mesh, synthesize_2d, MeshConfig};
use sunfloor_benchmarks::{distributed, flatten_to_2d};
use sunfloor_core::spec::{CommSpec, SocSpec};
use sunfloor_core::synthesis::{
    SynthesisConfig, SynthesisEngine, SynthesisMode, SynthesisOutcome,
};
use sunfloor_models::NocLibrary;

fn cfg(mode: SynthesisMode) -> SynthesisConfig {
    SynthesisConfig::builder()
        .mode(mode)
        .run_layout(false)
        .switch_count_range(2, 12)
        .build()
        .unwrap()
}

fn run(soc: &SocSpec, comm: &CommSpec, cfg: SynthesisConfig) -> SynthesisOutcome {
    SynthesisEngine::new(soc, comm, cfg).unwrap().run()
}

#[test]
fn three_d_saves_interconnect_power_over_two_d() {
    // Table I's headline: large link-power reduction in 3-D for the
    // distributed benchmarks, with the gap concentrated in link power.
    let b3 = distributed(4);
    let b2 = flatten_to_2d(&b3);
    let out3 = run(&b3.soc, &b3.comm, cfg(SynthesisMode::Auto));
    let out2 = synthesize_2d(&b2, &cfg(SynthesisMode::Phase1Only)).unwrap();
    let p3 = out3.best_power().expect("3-D feasible");
    let p2 = out2.best_power().expect("2-D feasible");

    assert!(
        p3.metrics.power.link_mw() < p2.metrics.power.link_mw(),
        "3-D link power {:.1} should be below 2-D {:.1}",
        p3.metrics.power.link_mw(),
        p2.metrics.power.link_mw()
    );
    assert!(
        p3.metrics.power.total_mw() < p2.metrics.power.total_mw(),
        "3-D total {:.1} vs 2-D {:.1}",
        p3.metrics.power.total_mw(),
        p2.metrics.power.total_mw()
    );
}

#[test]
fn two_d_has_longer_wires_than_three_d() {
    // Fig. 12: the 2-D wire-length distribution has a longer tail.
    let b3 = distributed(4);
    let b2 = flatten_to_2d(&b3);
    let out3 = run(&b3.soc, &b3.comm, cfg(SynthesisMode::Auto));
    let out2 = synthesize_2d(&b2, &cfg(SynthesisMode::Phase1Only)).unwrap();
    let w3 = &out3.best_power().unwrap().metrics.wire_lengths_mm;
    let w2 = &out2.best_power().unwrap().metrics.wire_lengths_mm;
    let max3 = w3.iter().copied().fold(0.0f64, f64::max);
    let max2 = w2.iter().copied().fold(0.0f64, f64::max);
    assert!(max2 > max3, "longest 2-D wire {max2:.2} vs 3-D {max3:.2}");
    let avg = |w: &[f64]| w.iter().sum::<f64>() / w.len() as f64;
    assert!(avg(w2) > avg(w3), "mean 2-D wire {:.2} vs 3-D {:.2}", avg(w2), avg(w3));
}

#[test]
fn custom_topology_beats_optimized_mesh() {
    let bench = distributed(4);
    let custom = run(&bench.soc, &bench.comm, cfg(SynthesisMode::Auto));
    let mesh = optimized_mesh(
        &bench,
        &NocLibrary::lp65(),
        &MeshConfig { sa_iterations: 10_000, ..MeshConfig::default() },
    );
    let best = custom.best_power().expect("feasible");
    assert!(
        best.metrics.power.total_mw() < mesh.metrics.power.total_mw(),
        "custom {:.1} mW should beat mesh {:.1} mW",
        best.metrics.power.total_mw(),
        mesh.metrics.power.total_mw()
    );
}

#[test]
fn phase1_no_worse_power_phase2_no_more_ills() {
    let bench = distributed(6);
    let p1 = run(&bench.soc, &bench.comm, cfg(SynthesisMode::Phase1Only));
    let p2 = run(&bench.soc, &bench.comm, cfg(SynthesisMode::Phase2Only));
    let b1 = p1.best_power().expect("phase 1 feasible");
    let b2 = p2.best_power().expect("phase 2 feasible");
    assert!(
        b1.metrics.power.total_mw() <= b2.metrics.power.total_mw() * 1.02,
        "phase 1 {:.1} mW should not lose to phase 2 {:.1} mW",
        b1.metrics.power.total_mw(),
        b2.metrics.power.total_mw()
    );
    assert!(
        b2.metrics.max_inter_layer_links() <= b1.metrics.max_inter_layer_links(),
        "phase 2 ills {} vs phase 1 {}",
        b2.metrics.max_inter_layer_links(),
        b1.metrics.max_inter_layer_links()
    );
}

#[test]
fn mesh_latency_not_better_than_custom() {
    // §VIII-E reports ~21% latency advantage for the custom topologies.
    let bench = distributed(6);
    let custom = run(&bench.soc, &bench.comm, cfg(SynthesisMode::Auto));
    let mesh = optimized_mesh(
        &bench,
        &NocLibrary::lp65(),
        &MeshConfig { sa_iterations: 10_000, ..MeshConfig::default() },
    );
    let best = custom.best_latency().expect("feasible");
    assert!(
        best.metrics.avg_latency_cycles <= mesh.metrics.avg_latency_cycles + 0.25,
        "custom latency {:.2} vs mesh {:.2}",
        best.metrics.avg_latency_cycles,
        mesh.metrics.avg_latency_cycles
    );
}
