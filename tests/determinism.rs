//! Reproducibility of the full flow: every random choice in the tool is
//! seeded from configuration, so identical inputs must produce identical
//! outputs — bit-for-bit, run after run.

use sunfloor_benchmarks::{media26, pipeline_seeded, tvopd_seeded};
use sunfloor_core::synthesis::{synthesize, SynthesisConfig};

/// Two identical `synthesize` runs on `media26` produce identical outcomes:
/// the same feasible points (metrics, topologies, layouts) and the same
/// rejections, in the same order.
#[test]
fn synthesize_media26_is_deterministic() {
    let bench = media26();
    let cfg = SynthesisConfig {
        switch_count_range: Some((2, 4)),
        run_layout: true,
        ..SynthesisConfig::default()
    };
    let first = synthesize(&bench.soc, &bench.comm, &cfg).expect("first run");
    let second = synthesize(&bench.soc, &bench.comm, &cfg).expect("second run");
    assert_eq!(first, second, "identical configs must reproduce identical outcomes");
    assert!(!first.points.is_empty(), "media26 must yield feasible points");
}

/// Changing only the config seed is allowed to change the outcome, but each
/// seed remains self-consistent.
#[test]
fn synthesize_media26_seeds_are_self_consistent() {
    let bench = media26();
    for seed in [1u64, 0xDEAD_BEEF] {
        let cfg = SynthesisConfig {
            switch_count_range: Some((3, 3)),
            run_layout: false,
            rng_seed: seed,
            ..SynthesisConfig::default()
        };
        let a = synthesize(&bench.soc, &bench.comm, &cfg).expect("run a");
        let b = synthesize(&bench.soc, &bench.comm, &cfg).expect("run b");
        assert_eq!(a, b, "seed {seed:#x} must reproduce itself");
    }
}

/// The seeded synthetic-benchmark generators are pure functions of their
/// seed: same seed, same benchmark; different seed, different roster.
#[test]
fn seeded_generators_are_pure_functions_of_their_seed() {
    assert_eq!(pipeline_seeded(12, 7), pipeline_seeded(12, 7));
    assert_eq!(tvopd_seeded(9), tvopd_seeded(9));
    assert_ne!(
        pipeline_seeded(12, 7).soc, pipeline_seeded(12, 8).soc,
        "distinct seeds should vary the generated core dimensions"
    );
}
