//! Reproducibility of the full flow: every random choice in the tool is
//! seeded from configuration, so identical inputs must produce identical
//! outputs — bit-for-bit, run after run, whatever the thread count.

use sunfloor_benchmarks::{media26, pipeline_seeded, tvopd_seeded};
use sunfloor_core::spec::MessageType;
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine, SynthesisOutcome};
use sunfloor_floorplan::{
    anneal, anneal_tempered, anneal_tempered_with_stats, AnnealConfig, Block, Floorplan, Net,
    TemperConfig,
};

fn run(cfg: SynthesisConfig) -> SynthesisOutcome {
    let bench = media26();
    SynthesisEngine::new(&bench.soc, &bench.comm, cfg).expect("valid benchmark").run()
}

// ---------------------------------------------------------------------------
// Golden fingerprints.
//
// The engine fingerprints below were consciously re-baselined three times:
//
// * for the warm-started partitioning pass (PR 4): the Phase-1 base
//   partitions come from a warm-chained seed set and every θ-escalation
//   step warm-starts from the previous assignment, so the partitioner's
//   search trajectory — and therefore the exact topologies — legitimately
//   changed;
// * for the warm-started placement-LP subsystem (PR 5): each placement's
//   y-axis LP now re-enters the simplex from the x-axis optimal basis
//   (and θ-retry placements from the previous attempt's basis), so on
//   degenerate placement optima the solver can return a different —
//   equally optimal — vertex than the cold two-phase path. The LP
//   objective is unchanged (pinned to the cold objective in
//   `tests/lp_warm.rs`); only the vertex choice, and hence the exact
//   switch coordinates, moved. The media26 fingerprint changed for this;
//   the seeded-pipeline and annealer fingerprints were unaffected;
// * for the cross-candidate placement seeds (PR 10): every candidate's
//   *first* placement now re-enters the simplex from a basis captured by
//   the engine's serial warm-up (one routed-and-placed pass per switch
//   count at the first swept frequency) instead of solving cold. Where a
//   candidate's placement LP is identical to the warm-up's, the replay is
//   bit-identical to the cold solve; where it differs but shares the LP
//   shape (a later frequency whose routing diverged), the warm re-entry
//   can again end at a different equally-optimal vertex. Same drift class
//   as PR 5, same guards: the quality anchors below and the cold-pinned
//   objective in `tests/lp_warm.rs`. Only the media26 fingerprint moved;
//   the seeded-pipeline and both annealer fingerprints were unaffected.
//
// The quality tests right below pin those changes down: best power and
// best hop count on media26, the seeded pipeline and (since PR 5) the
// tvopd 2–10 wide sweep must stay no worse than the cold-start values
// captured before each change. The annealer fingerprint is *unchanged*:
// the O(n log n) LCS packer and the incremental dimension/rank
// maintenance are bit-identical to the longest-path implementation.
//
// Hashing every coordinate and bandwidth through `f64::to_bits` makes any
// further drift — a reordered float accumulation, a different simplex
// pivot, a changed RNG consumption pattern — fail loudly here.
//
// The pipeline feeds `f64::powf`/`f64::exp` (the SA temperature schedule
// and accept probability) into seeded RNG decisions, and Rust documents
// those std functions as platform-specific in their last ulp. The
// hard-coded hashes are therefore only asserted on the platform they were
// captured on (x86_64 Linux — also what CI runs); elsewhere the suite
// still enforces run-to-run determinism via the tests above.
// ---------------------------------------------------------------------------

/// PR-3 cold-start quality anchors: best power (mW) and best per-flow
/// average hop count over the trade-off set, captured from the
/// pre-warm-start implementation on this configuration. The re-baselined
/// sweeps must not be worse on either axis.
const MEDIA26_COLD_BEST_POWER_MW: f64 = 270.726581;
const MEDIA26_COLD_BEST_AVG_HOPS: f64 = 1.184211;
const PIPELINE_COLD_BEST_POWER_MW: f64 = 77.403868;
const PIPELINE_COLD_BEST_AVG_HOPS: f64 = 1.142857;

/// PR-4 quality anchors for the tvopd 2–10 wide sweep (`tvopd_seeded(9)`,
/// no layout), captured at the PR-4 head *before* the warm-started
/// placement LP landed — the ROADMAP watch item: the warm-chained
/// partition seeds had left this sweep's best power ~1.7% above its
/// cold-start value, so it is pinned here to keep later changes (the LP
/// vertex choice included) from compounding that gap.
const TVOPD_PR4_BEST_POWER_MW: f64 = 248.567558;
const TVOPD_PR4_BEST_AVG_HOPS: f64 = 1.179487;
const TVOPD_PR4_POINTS: usize = 7;

fn avg_hops(p: &sunfloor_core::synthesis::DesignPoint) -> f64 {
    let total: usize = p.topology.flow_paths.iter().map(|fp| fp.switches.len()).sum();
    total as f64 / p.topology.flow_paths.len() as f64
}

fn assert_no_worse_than_cold(out: &SynthesisOutcome, power_mw: f64, hops: f64, name: &str) {
    let best_power = out
        .best_power()
        .map(|p| p.metrics.power.total_mw())
        .expect("feasible point");
    assert!(
        best_power <= power_mw + 1e-6,
        "{name}: warm-started best power {best_power} worse than cold-start {power_mw}"
    );
    let best_hops =
        out.points.iter().map(avg_hops).fold(f64::INFINITY, f64::min);
    assert!(
        best_hops <= hops + 1e-6,
        "{name}: warm-started best avg hops {best_hops} worse than cold-start {hops}"
    );
}

fn mix(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01B3);
}

fn mix_f(h: &mut u64, v: f64) {
    mix(h, v.to_bits());
}

fn fingerprint_floorplan(h: &mut u64, plan: &Floorplan) {
    mix(h, plan.blocks.len() as u64);
    for b in &plan.blocks {
        mix_f(h, b.x);
        mix_f(h, b.y);
        mix(h, u64::from(b.rotated));
        mix_f(h, b.block.width);
        mix_f(h, b.block.height);
    }
}

fn fingerprint_outcome(out: &SynthesisOutcome) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    mix(&mut h, out.points.len() as u64);
    mix(&mut h, out.rejected.len() as u64);
    for p in &out.points {
        let t = &p.topology;
        mix(&mut h, t.switch_count() as u64);
        for &l in &t.switch_layer {
            mix(&mut h, u64::from(l));
        }
        for &(x, y) in &t.switch_pos {
            mix_f(&mut h, x);
            mix_f(&mut h, y);
        }
        for &a in &t.core_attach {
            mix(&mut h, a as u64);
        }
        mix(&mut h, t.links.len() as u64);
        for l in &t.links {
            mix(&mut h, l.from as u64);
            mix(&mut h, l.to as u64);
            mix_f(&mut h, l.bandwidth_gbps);
            mix(&mut h, u64::from(l.class == MessageType::Response));
            for &f in &l.flows {
                mix(&mut h, f as u64);
            }
        }
        for fp in &t.flow_paths {
            mix(&mut h, fp.switches.len() as u64);
            for &s in &fp.switches {
                mix(&mut h, s as u64);
            }
        }
        for &s in &t.indirect_switches {
            mix(&mut h, s as u64);
        }
        mix_f(&mut h, p.metrics.power.total_mw());
        mix_f(&mut h, p.metrics.avg_latency_cycles);
        if let Some(layout) = &p.layout {
            for plan in &layout.layers {
                fingerprint_floorplan(&mut h, plan);
            }
            mix_f(&mut h, layout.core_displacement_mm);
            mix_f(&mut h, layout.switch_deviation_mm);
        }
    }
    h
}

/// Golden regression: the warm-started partitioning pass must reproduce
/// *this* media26 outcome exactly (topology link sets, flow paths, LP
/// switch positions, per-layer floorplans, metrics — every f64
/// bit-for-bit), and the outcome must be no worse than the PR-3
/// cold-start implementation on both quality axes.
#[test]
#[cfg_attr(not(all(target_arch = "x86_64", target_os = "linux")), ignore = "golden hashes captured on x86_64-linux; libm last-ulp differences flip SA decisions elsewhere")]
fn golden_media26_full_flow_is_reproducible_and_no_worse_than_cold_start() {
    let cfg = SynthesisConfig::builder()
        .switch_count_range(2, 4)
        .run_layout(true)
        .build()
        .unwrap();
    let bench = media26();
    let out = SynthesisEngine::new(&bench.soc, &bench.comm, cfg).unwrap().run();
    assert_eq!(out.points.len(), 2, "media26 2..4 sweep must keep its two feasible points");
    assert_no_worse_than_cold(
        &out,
        MEDIA26_COLD_BEST_POWER_MW,
        MEDIA26_COLD_BEST_AVG_HOPS,
        "media26",
    );
    assert_eq!(
        fingerprint_outcome(&out),
        0xc5a1_3b14_caf6_fc39,
        "media26 outcome drifted from the warm-start re-baseline"
    );
}

/// The tvopd 2–10 wide sweep, promoted into the pinned quality set (the
/// ROADMAP watch item): the sweep must keep its feasible-point count and
/// stay no worse than the PR-4 values on both quality axes, and repeated
/// runs must reproduce it exactly.
#[test]
fn tvopd_wide_sweep_quality_is_pinned_no_worse_than_pr4() {
    let bench = tvopd_seeded(9);
    let cfg = || {
        SynthesisConfig::builder()
            .switch_count_range(2, 10)
            .run_layout(false)
            .build()
            .unwrap()
    };
    let run = || {
        SynthesisEngine::new(&bench.soc, &bench.comm, cfg())
            .expect("valid benchmark")
            .run()
    };
    let out = run();
    assert_eq!(
        out.points.len(),
        TVOPD_PR4_POINTS,
        "tvopd 2..10 sweep must keep its {TVOPD_PR4_POINTS} feasible points"
    );
    assert_no_worse_than_cold(
        &out,
        TVOPD_PR4_BEST_POWER_MW,
        TVOPD_PR4_BEST_AVG_HOPS,
        "tvopd_seeded(9)",
    );
    assert_eq!(out, run(), "tvopd wide sweep must reproduce itself");
}

/// Golden regression on a seeded synthetic pipeline benchmark (no layout:
/// exercises the router + LP without the insertion pass), with the same
/// no-worse-than-cold-start quality gate.
#[test]
#[cfg_attr(not(all(target_arch = "x86_64", target_os = "linux")), ignore = "golden hashes captured on x86_64-linux; libm last-ulp differences flip SA decisions elsewhere")]
fn golden_seeded_pipeline_is_reproducible_and_no_worse_than_cold_start() {
    let bench = pipeline_seeded(12, 7);
    let cfg = SynthesisConfig::builder()
        .switch_count_range(2, 4)
        .run_layout(false)
        .build()
        .unwrap();
    let out = SynthesisEngine::new(&bench.soc, &bench.comm, cfg).unwrap().run();
    assert_eq!(out.points.len(), 3, "pipeline(12, seed 7) sweep must keep its three points");
    assert_no_worse_than_cold(
        &out,
        PIPELINE_COLD_BEST_POWER_MW,
        PIPELINE_COLD_BEST_AVG_HOPS,
        "pipeline(12, 7)",
    );
    assert_eq!(
        fingerprint_outcome(&out),
        0xef64_ed2f_c4c1_024f,
        "seeded pipeline outcome drifted from the warm-start re-baseline"
    );
}

/// Golden regression for the annealer alone: the mutate-and-undo loop with
/// cached net bounding boxes must produce the same floorplan as the
/// clone-per-iteration implementation for the same seed.
#[test]
#[cfg_attr(not(all(target_arch = "x86_64", target_os = "linux")), ignore = "golden hashes captured on x86_64-linux; libm last-ulp differences flip SA decisions elsewhere")]
fn golden_annealer_is_bit_identical_to_pre_optimization() {
    let (blocks, nets) = golden_blocks_and_nets();
    let cfg = AnnealConfig::default().with_iterations(5000).with_seed(42);
    let plan = anneal(&blocks, &nets, &cfg);
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    fingerprint_floorplan(&mut h, &plan);
    assert_eq!(
        h,
        0xd863_862b_0991_c7f2,
        "annealed floorplan drifted from the pre-optimization implementation"
    );
}

/// The 10-block roster and nets shared by the annealer golden tests.
fn golden_blocks_and_nets() -> (Vec<Block>, Vec<Net>) {
    let blocks: Vec<Block> = (0..10)
        .map(|i| {
            let b = Block::new(
                format!("b{i}"),
                1.0 + f64::from(i % 4) * 0.7,
                1.0 + f64::from(i % 3) * 0.9,
            );
            if i % 2 == 0 {
                b.rotatable()
            } else {
                b
            }
        })
        .collect();
    let nets = vec![
        Net::two_pin(0, 7, 3.0),
        Net::two_pin(2, 5, 1.5),
        Net { pins: vec![1, 4, 8], weight: 2.0 },
        Net { pins: vec![3, 6, 9, 0], weight: 0.8 },
    ];
    (blocks, nets)
}

/// Golden regression for the parallel-tempering annealer: the 4-replica
/// exchange run is a pure function of `(TemperConfig, replica count)` —
/// this pins its floorplan bit-for-bit so any drift in the swap-round
/// reduction, the replica RNG streams or the ladder arithmetic fails
/// loudly. The thread count must not appear anywhere in the result, so the
/// same fingerprint is asserted across thread counts.
#[test]
#[cfg_attr(not(all(target_arch = "x86_64", target_os = "linux")), ignore = "golden hashes captured on x86_64-linux; libm last-ulp differences flip SA decisions elsewhere")]
fn golden_tempered_annealer_is_pinned_and_thread_count_free() {
    let (blocks, nets) = golden_blocks_and_nets();
    for threads in [0usize, 1, 3] {
        let cfg = TemperConfig {
            base: AnnealConfig::default().with_iterations(5000).with_seed(42),
            replicas: 4,
            threads,
            ..TemperConfig::default()
        };
        let plan = anneal_tempered(&blocks, &nets, &cfg);
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        fingerprint_floorplan(&mut h, &plan);
        assert_eq!(
            h,
            0x756f_44ce_4c13_9147,
            "tempered floorplan drifted from the pinned result (threads={threads})"
        );
    }
}

/// Quality anchor on the 65-block pipeline-style design: at an equal
/// per-replica iteration budget, the 4-replica tempered run must end no
/// worse than the serial chain (replicas=1 is bit-identical to [`anneal`]),
/// since the exchange moves only ever adopt the coldest rung's best state.
#[test]
fn tempered_cost_no_worse_than_serial_on_65_block_design() {
    let blocks: Vec<Block> = (0..65)
        .map(|i| {
            Block::new(
                format!("stage{i}"),
                1.2 + f64::from(i % 5) * 0.3,
                1.1 + f64::from(i % 7) * 0.2,
            )
            .rotatable()
        })
        .collect();
    let mut nets = Vec::new();
    for i in 0..64usize {
        nets.push(Net::two_pin(i, i + 1, 1.0 + f64::from(i as u32 % 3) * 0.5));
        if i % 4 == 0 && i + 2 < 65 {
            nets.push(Net::two_pin(i, i + 2, 0.5));
        }
    }
    let cfg = |replicas: usize| TemperConfig {
        base: AnnealConfig::default().with_iterations(20_000).with_seed(0xF1A7),
        replicas,
        ..TemperConfig::default()
    };
    let (_, serial) = anneal_tempered_with_stats(&blocks, &nets, &cfg(1));
    let (_, tempered) = anneal_tempered_with_stats(&blocks, &nets, &cfg(4));
    assert!(
        tempered.best_cost <= serial.best_cost + 1e-9,
        "tempered best cost {} must not lose to the serial chain {} at equal per-replica budget",
        tempered.best_cost,
        serial.best_cost
    );
    assert!(tempered.swap_attempts > 0, "the exchange schedule must actually run");
}

/// Two identical engine runs on `media26` produce identical outcomes: the
/// same feasible points (metrics, topologies, layouts) and the same
/// rejections, in the same order.
#[test]
fn synthesize_media26_is_deterministic() {
    let cfg = || {
        SynthesisConfig::builder()
            .switch_count_range(2, 4)
            .run_layout(true)
            .build()
            .unwrap()
    };
    let first = run(cfg());
    let second = run(cfg());
    assert_eq!(first, second, "identical configs must reproduce identical outcomes");
    assert!(!first.points.is_empty(), "media26 must yield feasible points");
}

/// A parallel sweep commits results in candidate order, so it must be
/// bit-for-bit identical to the serial sweep — points, rejections and their
/// ordering — for any worker count.
#[test]
fn parallel_sweep_on_media26_matches_serial_bit_for_bit() {
    let cfg = |jobs: usize| {
        SynthesisConfig::builder()
            .switch_count_range(2, 6)
            .run_layout(false)
            .jobs(jobs)
            .build()
            .unwrap()
    };
    let serial = run(cfg(1));
    assert!(!serial.points.is_empty(), "media26 must yield feasible points");
    for jobs in [2usize, 4, 8] {
        let parallel = run(cfg(jobs));
        assert_eq!(
            serial, parallel,
            "jobs={jobs} must not change points, rejections or their order"
        );
    }
}

/// Changing only the config seed is allowed to change the outcome, but each
/// seed remains self-consistent.
#[test]
fn synthesize_media26_seeds_are_self_consistent() {
    for seed in [1u64, 0xDEAD_BEEF] {
        let cfg = || {
            SynthesisConfig::builder()
                .switch_count_range(3, 3)
                .run_layout(false)
                .rng_seed(seed)
                .build()
                .unwrap()
        };
        let a = run(cfg());
        let b = run(cfg());
        assert_eq!(a, b, "seed {seed:#x} must reproduce itself");
    }
}

/// The seeded synthetic-benchmark generators are pure functions of their
/// seed: same seed, same benchmark; different seed, different roster.
#[test]
fn seeded_generators_are_pure_functions_of_their_seed() {
    assert_eq!(pipeline_seeded(12, 7), pipeline_seeded(12, 7));
    assert_eq!(tvopd_seeded(9), tvopd_seeded(9));
    assert_ne!(
        pipeline_seeded(12, 7).soc, pipeline_seeded(12, 8).soc,
        "distinct seeds should vary the generated core dimensions"
    );
}
