//! Reproducibility of the full flow: every random choice in the tool is
//! seeded from configuration, so identical inputs must produce identical
//! outputs — bit-for-bit, run after run, whatever the thread count.

use sunfloor_benchmarks::{media26, pipeline_seeded, tvopd_seeded};
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine};

fn run(cfg: SynthesisConfig) -> sunfloor_core::synthesis::SynthesisOutcome {
    let bench = media26();
    SynthesisEngine::new(&bench.soc, &bench.comm, cfg).expect("valid benchmark").run()
}

/// Two identical engine runs on `media26` produce identical outcomes: the
/// same feasible points (metrics, topologies, layouts) and the same
/// rejections, in the same order.
#[test]
fn synthesize_media26_is_deterministic() {
    let cfg = || {
        SynthesisConfig::builder()
            .switch_count_range(2, 4)
            .run_layout(true)
            .build()
            .unwrap()
    };
    let first = run(cfg());
    let second = run(cfg());
    assert_eq!(first, second, "identical configs must reproduce identical outcomes");
    assert!(!first.points.is_empty(), "media26 must yield feasible points");
}

/// A parallel sweep commits results in candidate order, so it must be
/// bit-for-bit identical to the serial sweep — points, rejections and their
/// ordering — for any worker count.
#[test]
fn parallel_sweep_on_media26_matches_serial_bit_for_bit() {
    let cfg = |jobs: usize| {
        SynthesisConfig::builder()
            .switch_count_range(2, 6)
            .run_layout(false)
            .jobs(jobs)
            .build()
            .unwrap()
    };
    let serial = run(cfg(1));
    assert!(!serial.points.is_empty(), "media26 must yield feasible points");
    for jobs in [2usize, 4, 8] {
        let parallel = run(cfg(jobs));
        assert_eq!(
            serial, parallel,
            "jobs={jobs} must not change points, rejections or their order"
        );
    }
}

/// Changing only the config seed is allowed to change the outcome, but each
/// seed remains self-consistent.
#[test]
fn synthesize_media26_seeds_are_self_consistent() {
    for seed in [1u64, 0xDEAD_BEEF] {
        let cfg = || {
            SynthesisConfig::builder()
                .switch_count_range(3, 3)
                .run_layout(false)
                .rng_seed(seed)
                .build()
                .unwrap()
        };
        let a = run(cfg());
        let b = run(cfg());
        assert_eq!(a, b, "seed {seed:#x} must reproduce itself");
    }
}

/// The seeded synthetic-benchmark generators are pure functions of their
/// seed: same seed, same benchmark; different seed, different roster.
#[test]
fn seeded_generators_are_pure_functions_of_their_seed() {
    assert_eq!(pipeline_seeded(12, 7), pipeline_seeded(12, 7));
    assert_eq!(tvopd_seeded(9), tvopd_seeded(9));
    assert_ne!(
        pipeline_seeded(12, 7).soc, pipeline_seeded(12, 8).soc,
        "distinct seeds should vary the generated core dimensions"
    );
}
