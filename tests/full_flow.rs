//! End-to-end integration: full synthesis runs on realistic benchmarks,
//! spanning benchmarks -> partitioning -> routing -> LP placement ->
//! floorplan insertion -> evaluation.

use sunfloor_benchmarks::{distributed, media26};
use sunfloor_core::spec::{CommSpec, SocSpec};
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine, SynthesisMode, SynthesisOutcome};

fn quick(range: (usize, usize)) -> SynthesisConfig {
    SynthesisConfig::builder()
        .switch_count_range(range.0, range.1)
        .switch_count_step(1)
        .run_layout(true)
        .build()
        .unwrap()
}

fn run(soc: &SocSpec, comm: &CommSpec, cfg: SynthesisConfig) -> SynthesisOutcome {
    SynthesisEngine::new(soc, comm, cfg).unwrap().run()
}

#[test]
fn media26_full_flow_produces_consistent_points() {
    let bench = media26();
    let outcome = run(&bench.soc, &bench.comm, quick((3, 6)));
    assert!(!outcome.points.is_empty(), "rejected: {:?}", outcome.rejected);

    for p in &outcome.points {
        // Every flow routed through existing switches.
        assert_eq!(p.topology.flow_paths.len(), bench.comm.flow_count());
        for path in &p.topology.flow_paths {
            assert!(!path.switches.is_empty());
            for &s in &path.switches {
                assert!(s < p.topology.switch_count());
            }
        }
        // Path endpoints match the core attachments.
        for (fi, f) in bench.comm.flows.iter().enumerate() {
            let path = &p.topology.flow_paths[fi];
            assert_eq!(path.switches[0], p.topology.core_attach[f.src], "flow {fi} start");
            assert_eq!(
                *path.switches.last().unwrap(),
                p.topology.core_attach[f.dst],
                "flow {fi} end"
            );
        }
        // Link bandwidth equals the sum of its flows' bandwidths.
        for l in &p.topology.links {
            let sum: f64 =
                l.flows.iter().map(|&fi| bench.comm.flows[fi].bandwidth_gbps()).sum();
            assert!((l.bandwidth_gbps - sum).abs() < 1e-9);
        }
        // Layout legal on every layer.
        let layout = p.layout.as_ref().expect("layout enabled");
        assert_eq!(layout.layers.len(), bench.soc.layers as usize);
        for plan in &layout.layers {
            assert!(plan.overlapping_pair().is_none());
        }
        // Metrics are sane.
        assert!(p.metrics.power.total_mw() > 0.0);
        assert!(p.metrics.avg_latency_cycles >= 1.0);
        assert!(p.metrics.meets_latency());
    }
}

#[test]
fn media26_requires_at_least_three_switches_at_400mhz() {
    // The paper: "we could only obtain valid topologies with three or more
    // switches" for D_26_media at 400 MHz (max switch size 11).
    let bench = media26();
    let outcome = run(&bench.soc, &bench.comm, quick((1, 4)));
    for p in &outcome.points {
        assert!(
            p.requested_switches >= 3,
            "a {}-switch topology should be impossible at 400 MHz",
            p.requested_switches
        );
    }
    assert!(
        outcome.points.iter().any(|p| p.requested_switches == 3),
        "3 switches should be feasible; rejected: {:?}",
        outcome.rejected
    );
}

#[test]
fn distributed_flow_is_deterministic_end_to_end() {
    let bench = distributed(4);
    let a = run(&bench.soc, &bench.comm, quick((3, 5)));
    let b = run(&bench.soc, &bench.comm, quick((3, 5)));
    assert_eq!(a.points.len(), b.points.len());
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.topology, y.topology);
        assert_eq!(x.metrics, y.metrics);
    }
}

#[test]
fn power_vs_switch_count_is_u_shaped_not_flat() {
    // Figs. 10-11 show power varying with switch count with a clear best
    // point; verify the sweep produces meaningful variation.
    let bench = distributed(4);
    let outcome = run(&bench.soc, &bench.comm, quick((2, 10)));
    let powers: Vec<f64> =
        outcome.points.iter().map(|p| p.metrics.power.total_mw()).collect();
    assert!(powers.len() >= 4, "rejected: {:?}", outcome.rejected);
    let min = powers.iter().copied().fold(f64::INFINITY, f64::min);
    let max = powers.iter().copied().fold(0.0f64, f64::max);
    assert!(max > 1.05 * min, "sweep should discriminate design points: {powers:?}");
}

#[test]
fn indirect_switches_appear_only_when_needed() {
    let bench = media26();
    let outcome = run(&bench.soc, &bench.comm, quick((4, 6)));
    for p in &outcome.points {
        for &s in &p.topology.indirect_switches {
            // Indirect switches host no cores.
            assert!(p.topology.cores_of_switch(s).is_empty());
        }
    }
}

#[test]
fn phase2_fallback_engages_on_tight_budgets() {
    // With a very tight vertical budget, Phase 1 cannot deliver and Auto
    // mode must fall back to layer-by-layer Phase 2.
    let bench = distributed(4);
    let cfg = SynthesisConfig::builder()
        .max_ill(6)
        .mode(SynthesisMode::Auto)
        .run_layout(false)
        .switch_count_range(2, 12)
        .build()
        .unwrap();
    let outcome = run(&bench.soc, &bench.comm, cfg);
    for p in &outcome.points {
        assert!(p.metrics.max_inter_layer_links() <= 6);
    }
}
