//! Fault injection on the most machinery-heavy configuration: a tempered
//! (4-replica annealer) layout sweep cut short by a zero deadline or a
//! one-point budget must terminate promptly with a *well-formed* partial
//! outcome — every candidate either absent or fully classified, the
//! observer stream grouped, and serial/parallel schedules identical.

use std::time::Duration;
use sunfloor_benchmarks::pipeline_seeded;
use sunfloor_core::synthesis::{
    StopPolicy, SweepEvent, SynthesisConfig, SynthesisEngine, SynthesisOutcome,
};

fn tempered_cfg(jobs: usize) -> SynthesisConfig {
    SynthesisConfig::builder()
        .jobs(jobs)
        .run_layout(true)
        .anneal_replicas(4)
        .switch_count_range(1, 4)
        .build()
        .expect("tempered test config is valid")
}

fn engine(bench: &sunfloor_benchmarks::Benchmark, jobs: usize) -> SynthesisEngine<'_> {
    SynthesisEngine::new(&bench.soc, &bench.comm, tempered_cfg(jobs)).expect("valid benchmark")
}

/// Every candidate in the stream must appear as a complete group:
/// `CandidateStarted`, optional `ThetaEscalated`s, then exactly one
/// terminal — even when the run was cut off mid-sweep.
fn assert_stream_well_formed(events: &[SweepEvent], outcome: &SynthesisOutcome) {
    let mut open = false;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for ev in events {
        match ev {
            SweepEvent::CandidateStarted { .. } => {
                assert!(!open, "CandidateStarted while previous group still open");
                open = true;
            }
            SweepEvent::ThetaEscalated { .. } => {
                assert!(open, "ThetaEscalated outside a candidate group");
            }
            SweepEvent::CandidateAccepted { point_index, .. } => {
                assert!(open, "CandidateAccepted outside a candidate group");
                assert_eq!(*point_index, accepted, "accepted point indices must be sequential");
                accepted += 1;
                open = false;
            }
            SweepEvent::CandidateRejected { .. } => {
                assert!(open, "CandidateRejected outside a candidate group");
                rejected += 1;
                open = false;
            }
        }
    }
    assert!(!open, "stream ended with an unterminated candidate group");
    assert_eq!(accepted, outcome.points.len(), "accepted events must match reported points");
    // Each rejected *candidate* contributes >= 1 rejected *attempt*.
    assert!(
        outcome.rejected.len() >= rejected,
        "rejected attempts ({}) cannot undercut rejected candidates ({rejected})",
        outcome.rejected.len()
    );
}

#[test]
fn zero_deadline_on_tempered_config_yields_empty_well_formed_outcome() {
    let bench = pipeline_seeded(8, 0xFA01);
    for jobs in [1usize, 3] {
        let mut events = Vec::new();
        let outcome = engine(&bench, jobs)
            .run_with(StopPolicy::Deadline(Duration::ZERO), &mut |ev: &SweepEvent| {
                events.push(ev.clone());
            });
        // The deadline expired before the first candidate could commit, so
        // the outcome must be empty — not truncated mid-candidate.
        assert!(outcome.points.is_empty(), "jobs={jobs}: no point may beat a zero deadline");
        assert!(outcome.rejected.is_empty(), "jobs={jobs}: no rejection may beat a zero deadline");
        assert_stream_well_formed(&events, &outcome);
        let replay = outcome.clone();
        assert_eq!(replay, outcome, "jobs={jobs}: outcome must be self-equal (no NaN)");
    }
}

#[test]
fn one_point_budget_on_tempered_config_stops_early_and_matches_exhaustive_prefix() {
    let bench = pipeline_seeded(8, 0xFA01);
    let exhaustive = engine(&bench, 1).run();
    assert!(!exhaustive.points.is_empty(), "pipeline benchmark must be feasible");

    for jobs in [1usize, 3] {
        let mut events = Vec::new();
        let outcome = engine(&bench, jobs)
            .run_with(StopPolicy::PointBudget(1), &mut |ev: &SweepEvent| {
                events.push(ev.clone());
            });
        assert_eq!(outcome.points.len(), 1, "jobs={jobs}: budget of one point must hold");
        assert_stream_well_formed(&events, &outcome);
        // Budgeted stops are deterministic: the surviving point is the
        // exhaustive run's first point, bit for bit, on every schedule.
        assert_eq!(
            outcome.points[0], exhaustive.points[0],
            "jobs={jobs}: budgeted first point diverged from the exhaustive sweep"
        );
        for r in &outcome.rejected {
            assert!(!r.reason.kind().is_empty(), "every rejection carries a typed reason");
        }
    }
}
