//! Cross-validation of the analytic metrics with the cycle-level wormhole
//! simulator: synthesized topologies never deadlock, deliver the specified
//! bandwidth, and show low-load latency consistent with the analytic
//! zero-load number plus serialization.

use sunfloor_benchmarks::{bottleneck, distributed};
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine};
use sunfloor_sim::{SimConfig, Simulator};

fn synth_best(
    bench: &sunfloor_benchmarks::Benchmark,
) -> sunfloor_core::synthesis::DesignPoint {
    let cfg = SynthesisConfig::builder()
        .run_layout(false)
        .switch_count_range(2, 8)
        .build()
        .unwrap();
    SynthesisEngine::new(&bench.soc, &bench.comm, cfg)
        .unwrap()
        .run()
        .best_power()
        .expect("feasible point")
        .clone()
}

#[test]
fn no_deadlock_even_under_overload() {
    let bench = bottleneck();
    let best = synth_best(&bench);
    for scale in [1.0f64, 4.0] {
        let cfg = SimConfig {
            injection_scale: scale,
            measure_cycles: 10_000,
            ..SimConfig::default()
        };
        let report =
            Simulator::new(&best.topology, &bench.soc, &bench.comm, 400.0, &cfg).run();
        assert!(
            !report.deadlock_suspected,
            "deadlock at injection scale {scale} despite acyclic CDG"
        );
        assert!(report.delivered_packets > 0);
    }
}

#[test]
fn specified_bandwidth_is_sustained() {
    let bench = distributed(4);
    let best = synth_best(&bench);
    let report = Simulator::new(
        &best.topology,
        &bench.soc,
        &bench.comm,
        400.0,
        &SimConfig { measure_cycles: 30_000, ..SimConfig::default() },
    )
    .run();
    assert!(!report.deadlock_suspected);
    assert!(
        report.delivery_ratio() > 0.95,
        "network must keep up with the spec load: {:.3}",
        report.delivery_ratio()
    );
}

#[test]
fn low_load_latency_matches_analytic_zero_load() {
    let bench = distributed(4);
    let best = synth_best(&bench);
    let cfg = SimConfig {
        injection_scale: 0.15,
        packet_flits: 4,
        measure_cycles: 40_000,
        ..SimConfig::default()
    };
    let report =
        Simulator::new(&best.topology, &bench.soc, &bench.comm, 400.0, &cfg).run();
    assert!(!report.deadlock_suspected);

    // Analytic zero-load latency counts switch traversals (+ wire pipeline
    // stages); the simulator adds injection/ejection channel hops and
    // serialization of the 4-flit packet. Expected offset: +2 channel hops
    // + 3 serialization cycles, with a small congestion allowance.
    let analytic = best.metrics.avg_latency_cycles;
    let expected = analytic + 2.0 + 3.0;
    assert!(
        (report.avg_latency_cycles - expected).abs() <= 2.0,
        "simulated {:.2} vs analytic-derived {:.2}",
        report.avg_latency_cycles,
        expected
    );
}

#[test]
fn per_flow_stats_are_consistent() {
    let bench = distributed(4);
    let best = synth_best(&bench);
    let report = Simulator::new(
        &best.topology,
        &bench.soc,
        &bench.comm,
        400.0,
        &SimConfig::default(),
    )
    .run();
    assert_eq!(report.per_flow.len(), bench.comm.flow_count());
    let sum_injected: u64 = report.per_flow.iter().map(|f| f.injected_packets).sum();
    let sum_delivered: u64 = report.per_flow.iter().map(|f| f.delivered_packets).sum();
    assert_eq!(sum_injected, report.injected_packets);
    assert_eq!(sum_delivered, report.delivered_packets);
    for fs in &report.per_flow {
        assert!(fs.delivered_packets <= fs.injected_packets + 16, "{fs:?}");
        if fs.delivered_packets > 0 {
            assert!(fs.avg_latency_cycles as u64 <= fs.max_latency_cycles);
        }
    }
}
