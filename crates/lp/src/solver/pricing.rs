//! The pivot-selection loops: primal simplex (Dantzig pricing with a Bland
//! anti-cycling fallback, exactly the historical pivot sequence) and the
//! dual simplex used to re-enter from a dual-feasible warm basis whose
//! primal feasibility was lost to a right-hand-side change — the classic
//! sensitivity-analysis re-entry.

use super::tableau::Tableau;
use super::{SolveError, EPS};

/// Reusable pricing scratch: the objective vector of the current phase and
/// the `z_j` accumulators.
#[derive(Debug, Clone, Default)]
pub(crate) struct Pricing {
    pub(crate) cost: Vec<f64>,
    pub(crate) z: Vec<f64>,
}

impl Pricing {
    pub(crate) fn reset(&mut self, n_total: usize) {
        self.cost.clear();
        self.cost.resize(n_total, 0.0);
        self.z.clear();
        self.z.resize(n_total, 0.0);
    }
}

fn max_iterations(tab: &Tableau) -> u32 {
    u32::try_from(200 + 50 * (tab.rows() + tab.n_total)).unwrap_or(u32::MAX)
}

/// Accumulates `z_j = Σ_i cost[basis[i]] · a[i][j]` for `j < col_limit`,
/// row by row so each `z_j` sums in the same row order a per-column dot
/// product would use (bit-identical), but with sequential memory access.
/// Rows whose basic cost is exactly zero contribute exactly nothing and
/// are skipped.
// sf: hot-path
pub(crate) fn price(tab: &Tableau, cost: &[f64], col_limit: usize, z: &mut [f64]) {
    let m = tab.rows();
    for v in z[..col_limit].iter_mut() {
        *v = 0.0;
    }
    for i in 0..m {
        let yi = cost[tab.basis.rows[i]];
        if yi == 0.0 {
            continue;
        }
        let row = tab.row_prefix(i, col_limit);
        for (zj, &aij) in z[..col_limit].iter_mut().zip(row) {
            *zj += yi * aij;
        }
    }
}

// sf: hot-path
fn objective_value(tab: &Tableau, cost: &[f64]) -> f64 {
    let mut obj = 0.0;
    for i in 0..tab.rows() {
        obj += cost[tab.basis.rows[i]] * tab.rhs(i);
    }
    obj
}

/// Runs primal simplex minimizing `cost` over columns `0..col_limit`,
/// counting pivots into `iterations`. Returns the optimal objective value.
///
/// The pivot sequence is bit-identical to the pre-split single-file
/// implementation: Dantzig pricing (most negative reduced cost) with
/// Bland's smallest-index rule after half the iteration budget, and a
/// Bland smallest-basis-index tie-break in the ratio test.
// sf: hot-path
pub(crate) fn primal(
    tab: &mut Tableau,
    cost: &[f64],
    col_limit: usize,
    z: &mut [f64],
    iterations: &mut u32,
) -> Result<f64, SolveError> {
    let m = tab.rows();
    let max_iter = max_iterations(tab);
    for iter in 0..max_iter {
        price(tab, cost, col_limit, z);

        let mut entering = None;
        let mut best = -EPS;
        let use_bland = iter > max_iter / 2;
        #[allow(clippy::needless_range_loop)] // j indexes three arrays
        for j in 0..col_limit {
            if tab.basis.member[j] {
                continue;
            }
            let reduced = cost[j] - z[j];
            if use_bland {
                if reduced < -EPS {
                    entering = Some(j);
                    break;
                }
            } else if reduced < best {
                best = reduced;
                entering = Some(j);
            }
        }
        let Some(j) = entering else {
            // Optimal.
            return Ok(objective_value(tab, cost));
        };

        // Ratio test.
        let mut leaving = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let aij = tab.cell(i, j);
            if aij > EPS {
                let ratio = tab.rhs(i) / aij;
                // Bland tie-break: smallest basis index.
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS
                        && leaving
                            .is_some_and(|l: usize| tab.basis.rows[i] < tab.basis.rows[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(i) = leaving else {
            return Err(SolveError::Unbounded);
        };
        tab.pivot(i, j);
        *iterations += 1;
    }
    Err(SolveError::IterationLimit)
}

/// Runs dual simplex minimizing `cost` over columns `0..col_limit` from a
/// basis that is dual feasible (all reduced costs ≥ −ε) but primal
/// infeasible (some rhs < 0), counting pivots into `iterations`. Returns
/// the optimal objective value once every rhs is non-negative.
///
/// Leaving row: most negative rhs (Bland smallest-basis-index rule after
/// half the iteration budget). Entering column: the dual ratio test
/// `min (cost_j − z_j) / (−a_rj)` over `a_rj < −ε`, ties broken towards
/// the smallest column index. A row with no negative entry proves primal
/// infeasibility.
// sf: hot-path
pub(crate) fn dual(
    tab: &mut Tableau,
    cost: &[f64],
    col_limit: usize,
    z: &mut [f64],
    iterations: &mut u32,
) -> Result<f64, SolveError> {
    let m = tab.rows();
    let max_iter = max_iterations(tab);
    for iter in 0..max_iter {
        // Leaving row: most negative rhs.
        let mut leaving = None;
        let use_bland = iter > max_iter / 2;
        let mut most_negative = -EPS;
        for i in 0..m {
            let rhs = tab.rhs(i);
            if rhs < most_negative {
                leaving = Some(i);
                if use_bland {
                    break;
                }
                most_negative = rhs;
            }
        }
        let Some(r) = leaving else {
            // Primal feasible and (by invariant) dual feasible: optimal.
            return Ok(objective_value(tab, cost));
        };

        // Dual ratio test over the leaving row's negative entries.
        price(tab, cost, col_limit, z);
        let mut entering = None;
        let mut best_ratio = f64::INFINITY;
        for j in 0..col_limit {
            if tab.basis.member[j] {
                continue;
            }
            let arj = tab.cell(r, j);
            if arj < -EPS {
                let ratio = (cost[j] - z[j]) / -arj;
                if ratio < best_ratio - EPS {
                    best_ratio = ratio;
                    entering = Some(j);
                }
            }
        }
        let Some(j) = entering else {
            // The row demands a negative basic value no column can fix.
            return Err(SolveError::Infeasible);
        };
        tab.pivot(r, j);
        *iterations += 1;
    }
    Err(SolveError::IterationLimit)
}
