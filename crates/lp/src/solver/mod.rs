//! The simplex solver subsystem: the [`Problem`] model, the dense tableau
//! ([`tableau`]), basis bookkeeping and warm-start snapshots ([`basis`]),
//! the primal/dual pivot loops ([`pricing`]) and the persistent
//! [`SolverState`] warm-start machinery ([`warm`]).
//!
//! One-shot callers use [`Problem::solve`] — a cold two-phase primal
//! simplex, unchanged from the original single-file implementation. Callers
//! that solve *sequences* of related problems keep a [`SolverState`] and
//! call [`Problem::solve_from`]: the state retains the tableau buffers and
//! the previous optimal basis, and re-enters phase 2 (or runs the dual
//! simplex) from that basis whenever it fits the new problem, falling back
//! to the cold two-phase path when it does not.

pub(crate) mod basis;
pub(crate) mod pricing;
pub(crate) mod tableau;
pub(crate) mod warm;

pub use warm::{BasisSnapshot, SolveReport, SolverState};

use std::error::Error;
use std::fmt;

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

/// Why an LP could not be solved to optimality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The constraint set admits no point with all variables ≥ 0.
    Infeasible,
    /// The objective can be driven to −∞ within the feasible region.
    Unbounded,
    /// The pivot-iteration safety cap was exceeded (numerical trouble).
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "linear program is infeasible"),
            Self::Unbounded => write!(f, "linear program is unbounded"),
            Self::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl Error for SolveError {}

/// A linear program `minimize c·x subject to A x {≤,≥,=} b, x ≥ 0`.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Problem {
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Row {
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) op: ConstraintOp,
    pub(crate) rhs: f64,
}

/// Optimal solution of a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    pub(crate) objective: f64,
    pub(crate) values: Vec<f64>,
}

impl Solution {
    /// Optimal objective value.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of variable `var` at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[must_use]
    pub fn value(&self, var: usize) -> f64 {
        self.values[var]
    }

    /// All variable values, indexed by variable.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

pub(crate) const EPS: f64 = 1e-9;

impl Problem {
    /// Creates an empty minimization problem over `num_vars` non-negative
    /// variables with a zero objective.
    #[must_use]
    pub fn minimize(num_vars: usize) -> Self {
        Self { num_vars, objective: vec![0.0; num_vars], rows: Vec::new() }
    }

    /// Clears the problem back to `num_vars` fresh variables with a zero
    /// objective and no constraints, keeping the outer allocations so
    /// rebuild-heavy callers (the placement layer) do not churn memory.
    pub fn reset(&mut self, num_vars: usize) {
        self.num_vars = num_vars;
        self.objective.clear();
        self.objective.resize(num_vars, 0.0);
        self.rows.clear();
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets (overwrites) objective coefficients for the listed variables.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range.
    pub fn set_objective(&mut self, terms: &[(usize, f64)]) {
        for &(v, c) in terms {
            assert!(v < self.num_vars, "objective variable {v} out of range");
            self.objective[v] = c;
        }
    }

    /// Sets (overwrites) the objective coefficient of one variable — the
    /// in-place refresh used when re-solving a structurally identical
    /// problem with new weights.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coefficient(&mut self, var: usize, c: f64) {
        assert!(var < self.num_vars, "objective variable {var} out of range");
        self.objective[var] = c;
    }

    /// Adds the constraint `Σ terms {op} rhs`. Duplicate variable entries in
    /// `terms` accumulate.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range or any coefficient is
    /// non-finite.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], op: ConstraintOp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v < self.num_vars, "constraint variable {v} out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
            if let Some(e) = dense.iter_mut().find(|(dv, _)| *dv == v) {
                e.1 += c;
            } else {
                dense.push((v, c));
            }
        }
        self.rows.push(Row { terms: dense, op, rhs });
    }

    /// Overwrites the right-hand side of constraint `row`, leaving its
    /// terms and operator untouched — the in-place refresh used when
    /// re-solving a structurally identical problem with new constants.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `rhs` is not finite.
    pub fn set_constraint_rhs(&mut self, row: usize, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        self.rows[row].rhs = rhs;
    }

    pub(crate) fn constraint_rows(&self) -> &[Row] {
        &self.rows
    }

    pub(crate) fn objective_coefficients(&self) -> &[f64] {
        &self.objective
    }

    /// Solves the LP with two-phase primal simplex from scratch.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`] or (on numerical
    /// breakdown) [`SolveError::IterationLimit`].
    pub fn solve(&self) -> Result<Solution, SolveError> {
        SolverState::new().solve_cold(self)
    }

    /// Solves the LP through a persistent [`SolverState`], warm-starting
    /// from the basis of the state's previous solve when it fits this
    /// problem (see [`SolverState`] for the exact re-entry conditions) and
    /// falling back to the cold two-phase path of [`Problem::solve`]
    /// otherwise. [`SolverState::last_report`] tells which path ran.
    ///
    /// ```
    /// use sunfloor_lp::{ConstraintOp, Problem, SolverState};
    ///
    /// // minimize 2x + y  s.t.  x + y >= b  — solved for a sweep of b.
    /// let lp = |b: f64| {
    ///     let mut p = Problem::minimize(2);
    ///     p.set_objective(&[(0, 2.0), (1, 1.0)]);
    ///     p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, b);
    ///     p
    /// };
    /// let mut state = SolverState::new();
    /// let cold = lp(4.0).solve_from(&mut state)?;
    /// assert!(!state.last_report().warm);
    /// // The next solve re-enters from the previous optimal basis.
    /// let warm = lp(5.0).solve_from(&mut state)?;
    /// assert!(state.last_report().warm);
    /// assert!((cold.objective() - 4.0).abs() < 1e-9);
    /// assert!((warm.objective() - 5.0).abs() < 1e-9);
    /// # Ok::<(), sunfloor_lp::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Same as [`Problem::solve`]; warm-start failures are not errors (the
    /// state falls back to a cold solve internally).
    pub fn solve_from(&self, state: &mut SolverState) -> Result<Solution, SolveError> {
        state.solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(p: &Problem) -> Solution {
        p.solve().expect("LP should solve")
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 => opt at (2,6), obj 36.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, -3.0), (1, -5.0)]);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let s = solve(&p);
        assert!((s.objective() + 36.0).abs() < 1e-7);
        assert!((s.value(0) - 2.0).abs() < 1e-7);
        assert!((s.value(1) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min 2x + 3y s.t. x + y = 10, x >= 3 => (7,3)? obj 2*7+3*3=23;
        // but (x=10,y=0) violates nothing? x+y=10, x>=3: (10,0) obj 20 < 23.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 2.0), (1, 3.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 10.0);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 3.0);
        let s = solve(&p);
        assert!((s.objective() - 20.0).abs() < 1e-7);
        assert!((s.value(0) - 10.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // min x s.t. -x <= -5  (i.e. x >= 5)
        let mut p = Problem::minimize(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, -1.0)], ConstraintOp::Le, -5.0);
        let s = solve(&p);
        assert!((s.value(0) - 5.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(p.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::minimize(1);
        p.set_objective(&[(0, -1.0)]);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(p.solve(), Err(SolveError::Unbounded));
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut p = Problem::minimize(2);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 4.0);
        let s = solve(&p);
        assert!((s.value(0) + s.value(1) - 4.0).abs() < 1e-7);
        assert_eq!(s.objective(), 0.0);
    }

    #[test]
    fn redundant_constraints_are_harmless() {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (1, 1.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 2.0);
        p.add_constraint(&[(0, 2.0), (1, 2.0)], ConstraintOp::Ge, 4.0); // same halfspace
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        let s = solve(&p);
        assert!((s.objective() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut p = Problem::minimize(1);
        p.set_objective(&[(0, 1.0)]);
        // 0.5x + 0.5x >= 3  =>  x >= 3
        p.add_constraint(&[(0, 0.5), (0, 0.5)], ConstraintOp::Ge, 3.0);
        let s = solve(&p);
        assert!((s.value(0) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate vertex: multiple constraints through origin.
        let mut p = Problem::minimize(3);
        p.set_objective(&[(0, -0.75), (1, 150.0), (2, -0.02)]);
        p.add_constraint(&[(0, 0.25), (1, -60.0), (2, -0.04)], ConstraintOp::Le, 0.0);
        p.add_constraint(&[(0, 0.5), (1, -90.0), (2, -0.02)], ConstraintOp::Le, 0.0);
        p.add_constraint(&[(2, 1.0)], ConstraintOp::Le, 1.0);
        let s = solve(&p);
        // Known optimum of this Beale-style instance: objective -0.05.
        assert!(s.objective() <= -0.049, "got {}", s.objective());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_variable() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(1, 1.0)], ConstraintOp::Le, 1.0);
    }

    #[test]
    fn reset_clears_objective_and_constraints() {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 5.0)]);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 3.0);
        p.reset(3);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_constraints(), 0);
        assert!(p.objective_coefficients().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn set_constraint_rhs_moves_the_optimum() {
        let mut p = Problem::minimize(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 3.0);
        assert!((solve(&p).value(0) - 3.0).abs() < 1e-7);
        p.set_constraint_rhs(0, 8.0);
        assert!((solve(&p).value(0) - 8.0).abs() < 1e-7);
    }
}
