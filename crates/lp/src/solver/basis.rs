//! Basis bookkeeping: the per-row basic variable, the O(1) membership
//! bitmap the pricing loops skip on, and the [`SavedBasis`] snapshot a
//! [`super::SolverState`] replays to warm-start the next solve.

use super::tableau::Tableau;
use super::{ConstraintOp, Problem};

/// Pivot elements smaller than this abort a basis replay: the saved basis
/// is (numerically) singular for the new constraint matrix, so the solve
/// falls back to the cold two-phase path instead of dividing by noise.
const REPLAY_PIVOT_TOL: f64 = 1e-7;

/// The current basis of a tableau: `rows[i]` is the variable basic in row
/// `i`, `member[v]` mirrors membership so pricing skips basic columns in
/// O(1).
#[derive(Debug, Clone, Default)]
pub(crate) struct Basis {
    pub(crate) rows: Vec<usize>,
    pub(crate) member: Vec<bool>,
}

impl Basis {
    /// Clears to an empty basis over `rows` rows and `cols` columns.
    pub(crate) fn reset(&mut self, rows: usize, cols: usize) {
        self.rows.clear();
        self.rows.resize(rows, 0);
        self.member.clear();
        self.member.resize(cols, false);
    }

    /// Installs the initial basic variable of a row during tableau build.
    pub(crate) fn install(&mut self, row: usize, var: usize) {
        self.rows[row] = var;
        self.member[var] = true;
    }

    /// Swaps the basic variable of `row` to `var` (pivot bookkeeping).
    pub(crate) fn replace(&mut self, row: usize, var: usize) {
        self.member[self.rows[row]] = false;
        self.member[var] = true;
        self.rows[row] = var;
    }

    /// Whether any artificial variable (column ≥ `art_start`) is basic.
    pub(crate) fn contains_artificial(&self, art_start: usize) -> bool {
        self.rows.iter().any(|&b| b >= art_start)
    }
}

/// A basis snapshot from a solved problem together with the shape it
/// belongs to: variable count and the per-row constraint operators (which
/// fix the tableau's column layout). A snapshot only replays into problems
/// of the same shape; the constraint *coefficients* are allowed to differ —
/// replay re-derives the tableau and checks feasibility, falling back to a
/// cold solve when the old basis no longer fits.
#[derive(Debug, Clone, Default)]
pub(crate) struct SavedBasis {
    num_vars: usize,
    ops: Vec<ConstraintOp>,
    rows: Vec<usize>,
    valid: bool,
}

impl SavedBasis {
    /// Forgets the snapshot (keeps the buffers).
    pub(crate) fn clear(&mut self) {
        self.valid = false;
    }

    /// Whether the snapshot currently holds a replayable basis.
    pub(crate) fn is_valid(&self) -> bool {
        self.valid
    }

    /// Whether the snapshot's shape matches `p`, i.e. replay is
    /// structurally possible.
    pub(crate) fn matches(&self, p: &Problem) -> bool {
        self.valid
            && self.num_vars == p.num_vars()
            && self.ops.len() == p.constraint_rows().len()
            && p.constraint_rows().iter().zip(&self.ops).all(|(r, &op)| r.op == op)
    }

    /// Snapshots the basis of a finished solve of `p`.
    pub(crate) fn capture(&mut self, p: &Problem, basis_rows: &[usize]) {
        self.num_vars = p.num_vars();
        self.ops.clear();
        self.ops.extend(p.constraint_rows().iter().map(|r| r.op));
        self.rows.clear();
        self.rows.extend_from_slice(basis_rows);
        self.valid = true;
    }

    /// Copies another snapshot into this one (allocation-reusing).
    pub(crate) fn clone_from_other(&mut self, other: &SavedBasis) {
        self.num_vars = other.num_vars;
        self.ops.clear();
        self.ops.extend_from_slice(&other.ops);
        self.rows.clear();
        self.rows.extend_from_slice(&other.rows);
        self.valid = other.valid;
    }

    /// Replays the snapshot into a freshly rebuilt tableau: each saved
    /// basic column is pivoted in (columns processed in saved row order),
    /// choosing the pivot row by partial pivoting over the rows not yet
    /// claimed — largest magnitude, ties towards the smallest row index, so
    /// the elimination is deterministic and succeeds whenever the basis
    /// matrix is (numerically) nonsingular. Replay pivots skip the pricing
    /// and ratio-test scans, so they cost a fraction of a simplex iteration
    /// each.
    ///
    /// Returns the number of replay pivots, or `None` when the basis is
    /// singular for the new matrix (caller falls back to a cold solve).
    pub(crate) fn replay(&self, tab: &mut Tableau, claimed: &mut Vec<bool>) -> Option<u32> {
        let m = tab.rows();
        debug_assert_eq!(self.rows.len(), m);
        claimed.clear();
        claimed.resize(m, false);
        let mut pivots = 0;
        for &col in &self.rows {
            let mut best_row = None;
            let mut best_mag = REPLAY_PIVOT_TOL;
            for (i, &taken) in claimed.iter().enumerate() {
                if taken {
                    continue;
                }
                let mag = tab.cell(i, col).abs();
                if mag > best_mag {
                    best_mag = mag;
                    best_row = Some(i);
                }
            }
            let i = best_row?;
            claimed[i] = true;
            tab.pivot(i, col);
            pivots += 1;
        }
        Some(pivots)
    }
}
