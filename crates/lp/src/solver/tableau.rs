//! Dense simplex tableau in standard form.
//!
//! The tableau is stored as one flat row-major array and the inner loops —
//! pricing, the ratio test and the pivot elimination — run over contiguous
//! slices. Every floating-point operation happens in the same order and on
//! the same values as a naive row-of-rows implementation would produce, so
//! the pivot sequence (and therefore the exact optimal vertex returned on
//! degenerate problems) is reproducible; the restructuring only removes
//! bounds checks, cache misses and the `O(m)` basis-membership scans from
//! the hot path. This matters because the switch-placement LP runs once per
//! routed candidate of the synthesis sweep.
//!
//! A [`Tableau`] is a reusable buffer: [`Tableau::rebuild`] refills it for
//! a new [`Problem`] without reallocating, which is what lets a
//! [`super::SolverState`] survive across solves.

use super::basis::Basis;
use super::{ConstraintOp, Problem};

#[derive(Debug, Clone, Default)]
pub(crate) struct Tableau {
    /// Flat `m × (n_total + 1)` row-major matrix; last column is the rhs.
    a: Vec<f64>,
    /// Current basis (per-row basic variable + membership bitmap).
    pub(crate) basis: Basis,
    /// Total column count excluding rhs: structural + slack + artificial.
    pub(crate) n_total: usize,
    /// First artificial column index.
    pub(crate) art_start: usize,
    /// Pivot scratch: a copy of the scaled pivot row.
    prow: Vec<f64>,
}

impl Tableau {
    /// Rebuilds the tableau for `p`, reusing every buffer. Rows are
    /// normalized to a non-negative rhs; `≤` rows whose slack can serve as
    /// the initial basis start basic, all other rows start on their
    /// artificial.
    pub(crate) fn rebuild(&mut self, p: &Problem) {
        let rows = p.constraint_rows();
        let m = rows.len();
        let n = p.num_vars();

        // Count extra columns.
        let mut n_slack = 0;
        for r in rows {
            if matches!(r.op, ConstraintOp::Le | ConstraintOp::Ge) {
                n_slack += 1;
            }
        }
        // One artificial per row keeps the construction simple; phase 1
        // drives them all out.
        let art_start = n + n_slack;
        let n_total = art_start + m;
        let stride = n_total + 1;

        self.a.clear();
        self.a.resize(m * stride, 0.0);
        self.n_total = n_total;
        self.art_start = art_start;
        self.prow.clear();
        self.prow.resize(stride, 0.0);
        self.basis.reset(m, n_total);

        let mut slack_idx = n;
        for (i, r) in rows.iter().enumerate() {
            let row = &mut self.a[i * stride..(i + 1) * stride];
            let mut rhs = r.rhs;
            let mut sign = 1.0;
            // Normalize to rhs >= 0.
            if rhs < 0.0 {
                rhs = -rhs;
                sign = -1.0;
            }
            for &(v, c) in &r.terms {
                row[v] += sign * c;
            }
            let op = match (r.op, sign < 0.0) {
                (ConstraintOp::Le, true) => ConstraintOp::Ge,
                (ConstraintOp::Ge, true) => ConstraintOp::Le,
                (op, _) => op,
            };
            match op {
                ConstraintOp::Le => {
                    row[slack_idx] = 1.0;
                    // Slack can serve as the initial basis directly.
                    self.basis.install(i, slack_idx);
                    slack_idx += 1;
                }
                ConstraintOp::Ge => {
                    row[slack_idx] = -1.0; // surplus
                    slack_idx += 1;
                    self.basis.install(i, art_start + i);
                    row[art_start + i] = 1.0;
                }
                ConstraintOp::Eq => {
                    self.basis.install(i, art_start + i);
                    row[art_start + i] = 1.0;
                }
            }
            row[n_total] = rhs;
            // For Le rows the artificial column stays zero and unused.
        }
    }

    pub(crate) fn rows(&self) -> usize {
        self.basis.rows.len()
    }

    pub(crate) fn stride(&self) -> usize {
        self.n_total + 1
    }

    /// The matrix prefix of row `i` up to `col_limit` (excludes the rhs
    /// unless `col_limit == n_total + 1`).
    pub(crate) fn row_prefix(&self, i: usize, col_limit: usize) -> &[f64] {
        let stride = self.stride();
        &self.a[i * stride..i * stride + col_limit]
    }

    pub(crate) fn cell(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.stride() + j]
    }

    pub(crate) fn rhs(&self, i: usize) -> f64 {
        self.cell(i, self.n_total)
    }

    /// Pivots on `(row, col)`: scales the pivot row so the pivot element
    /// becomes 1 and eliminates `col` from every other row, then updates
    /// the basis bookkeeping.
    pub(crate) fn pivot(&mut self, row: usize, col: usize) {
        let m = self.rows();
        let stride = self.stride();
        let piv = self.a[row * stride + col];
        debug_assert!(piv.abs() > 1e-12, "pivot on (near-)zero element");
        let inv = 1.0 / piv;
        for x in &mut self.a[row * stride..(row + 1) * stride] {
            *x *= inv;
        }
        // Copy the scaled pivot row so the elimination loops below can
        // borrow it and the target rows disjointly.
        self.prow.copy_from_slice(&self.a[row * stride..(row + 1) * stride]);
        for i in 0..m {
            if i == row {
                continue;
            }
            let factor = self.a[i * stride + col];
            if factor.abs() <= 1e-12 {
                continue;
            }
            let target = &mut self.a[i * stride..(i + 1) * stride];
            for (x, &pv) in target.iter_mut().zip(&self.prow) {
                *x -= factor * pv;
            }
        }
        self.basis.replace(row, col);
    }

    /// Extracts the solution values of the structural variables.
    pub(crate) fn extract_values(&self, num_vars: usize, values: &mut Vec<f64>) {
        values.clear();
        values.resize(num_vars, 0.0);
        for (i, &b) in self.basis.rows.iter().enumerate() {
            if b < num_vars {
                values[b] = self.rhs(i);
            }
        }
    }
}
