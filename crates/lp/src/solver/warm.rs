//! The persistent solver state behind [`Problem::solve_from`]: reusable
//! tableau/pricing buffers plus the previous solve's optimal basis, and the
//! decision logic that re-enters the simplex from that basis.
//!
//! A warm re-entry goes through three gates, falling back to the cold
//! two-phase path whenever one fails:
//!
//! 1. **Shape** — the saved basis only replays into a problem with the same
//!    variable count and per-row constraint operators (the tableau column
//!    layout). Coefficients, right-hand sides and the objective may differ.
//! 2. **Replay** — the saved basis is pivoted into the freshly built
//!    tableau (deterministic Gauss–Jordan, cheap when the basis columns are
//!    already near identity). A numerically singular basis aborts.
//! 3. **Re-entry** — if the replayed basis is primal feasible, phase 2
//!    resumes directly (phase 1 is skipped entirely); if it is primal
//!    infeasible but dual feasible under the new objective — the classic
//!    changed-rhs sensitivity case — the dual simplex restores feasibility
//!    and terminates at the optimum. Neither feasible ⇒ cold.
//!
//! Warm and cold paths both end at an *optimal* vertex, so the objective
//! value agrees to floating-point rounding; on degenerate optima the two
//! paths may return different optimal vertices, which is why the synthesis
//! engine confines warm chains to deterministic scopes (see
//! `sunfloor_core::place::PlacementSolver`).

use super::basis::SavedBasis;
use super::pricing::{self, Pricing};
use super::tableau::Tableau;
use super::{Problem, Solution, SolveError, EPS};

/// What the most recent [`Problem::solve_from`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveReport {
    /// Whether the solve re-entered from the saved basis (`false`: cold
    /// two-phase).
    pub warm: bool,
    /// Simplex pivots performed (phase 1 + phase 2, or dual re-entry).
    pub iterations: u32,
    /// Basis-replay pivots performed before re-entry (warm only). These
    /// cost a fraction of a priced simplex iteration each.
    pub replayed_pivots: u32,
    /// Estimated pivots avoided versus a cold solve: the state's most
    /// recent cold solve took `iterations + iterations_saved` pivots.
    pub iterations_saved: u32,
}

/// An exported optimal-basis snapshot, detached from the [`SolverState`]
/// that produced it.
///
/// A snapshot is an opaque value: the only things to do with it are
/// [`SolverState::import_basis`] (install it into another state, so that
/// state's next shape-compatible solve warm-starts from it) and cloning.
/// It carries the donor state's cold-pivot baseline along, so
/// [`SolveReport::iterations_saved`] stays a meaningful estimate in the
/// importing state.
///
/// Snapshots let warm starts cross ownership boundaries that
/// [`SolverState::adopt_basis_from`] cannot: the donor state can be
/// dropped, and one snapshot can seed many states (the synthesis engine
/// captures one per switch count during a serial warm-up and seeds every
/// sweep worker's placement solver from the shared set).
#[derive(Debug, Clone, Default)]
pub struct BasisSnapshot {
    saved: SavedBasis,
    cold_iterations: u32,
}

/// Persistent, reusable solver state for [`Problem::solve_from`]: owns the
/// tableau and pricing buffers (so repeated solves allocate nothing) and
/// the previous solve's optimal basis (so a structurally matching next
/// problem skips phase 1 and most of phase 2).
///
/// A warm re-entry goes through three gates, falling back to the cold
/// two-phase path whenever one fails: the saved basis must fit the new
/// problem's *shape* (variable count and per-row constraint operators),
/// its replay into the rebuilt tableau must be nonsingular, and the
/// replayed basis must be primal feasible (phase 2 resumes) or dual
/// feasible under the new objective (the dual simplex finishes the solve —
/// the classic changed-rhs sensitivity re-entry). See the
/// [`Problem::solve_from`] example for typical use.
#[derive(Debug, Clone, Default)]
pub struct SolverState {
    tab: Tableau,
    pricing: Pricing,
    saved: SavedBasis,
    /// Replay scratch: which rows the basis replay has claimed.
    claimed: Vec<bool>,
    report: SolveReport,
    /// Pivot count of the most recent cold solve — the baseline
    /// [`SolveReport::iterations_saved`] is estimated against.
    last_cold_iterations: u32,
}

impl SolverState {
    /// A fresh state with no saved basis; the first solve through it is
    /// cold.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// What the most recent solve through this state did.
    #[must_use]
    pub fn last_report(&self) -> SolveReport {
        self.report
    }

    /// Whether the state holds a basis that could warm-start `p`.
    #[must_use]
    pub fn has_basis_for(&self, p: &Problem) -> bool {
        self.saved.matches(p)
    }

    /// Forgets the saved basis (keeps the buffers): the next solve is
    /// cold. Used to cut warm chains at determinism boundaries.
    pub fn clear_warm(&mut self) {
        self.saved.clear();
    }

    /// Copies `other`'s saved basis into this state, so the next
    /// compatible solve warm-starts from it. Useful when two states solve
    /// structurally identical problems (e.g. the x/y axes of a Manhattan
    /// placement, which share matrix and objective). The donor's
    /// cold-iteration baseline comes along, so
    /// [`SolveReport::iterations_saved`] stays a meaningful estimate for a
    /// state that never solved cold itself.
    pub fn adopt_basis_from(&mut self, other: &SolverState) {
        self.saved.clone_from_other(&other.saved);
        self.last_cold_iterations = other.last_cold_iterations;
    }

    /// Exports the saved optimal basis as a detached [`BasisSnapshot`], or
    /// `None` when the state holds no replayable basis (it never solved,
    /// its last solve failed, or the basis was cleared).
    #[must_use]
    pub fn export_basis(&self) -> Option<BasisSnapshot> {
        if !self.saved.is_valid() {
            return None;
        }
        Some(BasisSnapshot {
            saved: self.saved.clone(),
            cold_iterations: self.last_cold_iterations,
        })
    }

    /// Installs an exported snapshot: the next solve of a shape-compatible
    /// problem warm-starts from it exactly as if this state had produced
    /// the basis itself (a shape mismatch falls back to cold as usual).
    pub fn import_basis(&mut self, snapshot: &BasisSnapshot) {
        self.saved.clone_from_other(&snapshot.saved);
        self.last_cold_iterations = snapshot.cold_iterations;
    }

    pub(crate) fn solve(&mut self, p: &Problem) -> Result<Solution, SolveError> {
        if self.saved.matches(p) {
            if let Some(sol) = self.try_warm(p) {
                return Ok(sol);
            }
        }
        self.solve_cold(p)
    }

    /// Attempts the warm re-entry; `None` means "fall back to cold" (the
    /// basis replay went singular, neither re-entry applies, or the warm
    /// run hit a numerical guard — cold re-derives the authoritative
    /// answer, including genuine infeasibility/unboundedness errors).
    fn try_warm(&mut self, p: &Problem) -> Option<Solution> {
        self.tab.rebuild(p);
        let replayed = self.saved.replay(&mut self.tab, &mut self.claimed)?;
        self.pricing.reset(self.tab.n_total);
        let num_vars = p.num_vars();
        self.pricing.cost[..num_vars].copy_from_slice(p.objective_coefficients());
        let cost = &self.pricing.cost;
        let art_start = self.tab.art_start;

        let mut iterations = 0u32;
        let feasible = (0..self.tab.rows()).all(|i| self.tab.rhs(i) >= 0.0);
        let objective = if feasible {
            // Primal feasible: resume phase 2 directly.
            pricing::primal(&mut self.tab, cost, art_start, &mut self.pricing.z, &mut iterations)
                .ok()?
        } else {
            // Primal infeasibility from a rhs change: legal re-entry only
            // if the basis is still dual feasible under the new objective.
            pricing::price(&self.tab, cost, art_start, &mut self.pricing.z);
            let dual_feasible = (0..art_start).all(|j| {
                self.tab.basis.member[j] || cost[j] - self.pricing.z[j] >= -EPS
            });
            if !dual_feasible {
                return None;
            }
            pricing::dual(&mut self.tab, cost, art_start, &mut self.pricing.z, &mut iterations)
                .ok()?
        };

        // Phase 2 and the dual loop only ever enter structural or slack
        // columns, so a replayed (artificial-free) basis stays
        // artificial-free and is always worth saving.
        self.saved.capture(p, &self.tab.basis.rows);
        self.report = SolveReport {
            warm: true,
            iterations,
            replayed_pivots: replayed,
            iterations_saved: self.last_cold_iterations.saturating_sub(iterations),
        };
        let mut values = Vec::new();
        self.tab.extract_values(num_vars, &mut values);
        Some(Solution { objective, values })
    }

    /// The cold two-phase primal simplex, bit-identical to
    /// [`Problem::solve`] (which delegates here through a fresh state).
    pub(crate) fn solve_cold(&mut self, p: &Problem) -> Result<Solution, SolveError> {
        self.tab.rebuild(p);
        self.pricing.reset(self.tab.n_total);
        let m = self.tab.rows();
        let n_total = self.tab.n_total;
        let art_start = self.tab.art_start;
        let mut iterations = 0u32;

        if self.tab.basis.contains_artificial(art_start) {
            // Phase 1 objective: minimize sum of artificials.
            for c in self.pricing.cost.iter_mut().skip(art_start) {
                *c = 1.0;
            }
            let obj = match pricing::primal(
                &mut self.tab,
                &self.pricing.cost,
                n_total,
                &mut self.pricing.z,
                &mut iterations,
            ) {
                Ok(obj) => obj,
                Err(e) => return Err(self.record_failure(iterations, e)),
            };
            if obj > 1e-7 {
                return Err(self.record_failure(iterations, SolveError::Infeasible));
            }
            // Pivot remaining artificials out of the basis if possible.
            for i in 0..m {
                if self.tab.basis.rows[i] >= art_start {
                    if let Some(j) =
                        (0..art_start).find(|&j| self.tab.cell(i, j).abs() > 1e-7)
                    {
                        self.tab.pivot(i, j);
                    }
                    // Else the row is all-zero in structural columns: a
                    // redundant constraint; leave the (zero-valued)
                    // artificial in the basis — it can never re-enter
                    // because phase 2 restricts columns below art_start.
                }
            }
        }

        // Phase 2: original objective over structural + slack columns only.
        let num_vars = p.num_vars();
        for c in &mut self.pricing.cost {
            *c = 0.0;
        }
        self.pricing.cost[..num_vars].copy_from_slice(p.objective_coefficients());
        let objective = match pricing::primal(
            &mut self.tab,
            &self.pricing.cost,
            art_start,
            &mut self.pricing.z,
            &mut iterations,
        ) {
            Ok(obj) => obj,
            Err(e) => return Err(self.record_failure(iterations, e)),
        };

        self.last_cold_iterations = iterations;
        self.report =
            SolveReport { warm: false, iterations, replayed_pivots: 0, iterations_saved: 0 };
        // A basis holding a (zero-valued) artificial from a redundant
        // constraint cannot be replayed; forget it rather than warm-start
        // the next solve from an invalid snapshot.
        if self.tab.basis.contains_artificial(art_start) {
            self.saved.clear();
        } else {
            self.saved.capture(p, &self.tab.basis.rows);
        }
        let mut values = Vec::new();
        self.tab.extract_values(num_vars, &mut values);
        Ok(Solution { objective, values })
    }

    /// Records a failed cold solve — the report reflects *this* attempt
    /// (not the previous solve's), and the saved basis is dropped since it
    /// no longer corresponds to a solved problem.
    fn record_failure(&mut self, iterations: u32, e: SolveError) -> SolveError {
        self.saved.clear();
        self.report = SolveReport { iterations, ..SolveReport::default() };
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp;

    fn sweep_problem(b: f64, w: f64) -> Problem {
        // min 2x + wy s.t. x + y >= b, y <= 3.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 2.0), (1, w)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, b);
        p.add_constraint(&[(1, 1.0)], ConstraintOp::Le, 3.0);
        p
    }

    #[test]
    fn first_solve_is_cold_then_warm() {
        let mut state = SolverState::new();
        let p = sweep_problem(4.0, 1.0);
        let cold = p.solve_from(&mut state).unwrap();
        assert!(!state.last_report().warm);
        let warm = p.solve_from(&mut state).unwrap();
        assert!(state.last_report().warm);
        assert!((cold.objective() - warm.objective()).abs() < 1e-9);
        assert_eq!(cold.values(), warm.values(), "same basis replayed, same vertex");
    }

    #[test]
    fn rhs_change_re_enters_via_dual_simplex() {
        let mut state = SolverState::new();
        sweep_problem(4.0, 1.0).solve_from(&mut state).unwrap();
        // Growing b breaks primal feasibility of the old basis but keeps
        // dual feasibility (objective unchanged).
        for b in [5.0, 7.5, 11.0] {
            let p = sweep_problem(b, 1.0);
            let warm = p.solve_from(&mut state).unwrap();
            assert!(state.last_report().warm, "b={b} should warm-start");
            let cold = p.solve().unwrap();
            assert!(
                (warm.objective() - cold.objective()).abs() < 1e-9,
                "b={b}: warm {} vs cold {}",
                warm.objective(),
                cold.objective()
            );
        }
    }

    #[test]
    fn objective_change_re_enters_via_primal() {
        let mut state = SolverState::new();
        sweep_problem(4.0, 1.0).solve_from(&mut state).unwrap();
        let p = sweep_problem(4.0, 0.5);
        let warm = p.solve_from(&mut state).unwrap();
        assert!(state.last_report().warm);
        let cold = p.solve().unwrap();
        assert!((warm.objective() - cold.objective()).abs() < 1e-9);
    }

    #[test]
    fn shape_mismatch_falls_back_to_cold() {
        let mut state = SolverState::new();
        sweep_problem(4.0, 1.0).solve_from(&mut state).unwrap();
        let mut p = Problem::minimize(3);
        p.set_objective(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Ge, 6.0);
        let s = p.solve_from(&mut state).unwrap();
        assert!(!state.last_report().warm, "different shape must solve cold");
        assert!((s.objective() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_after_warm_history_is_still_detected() {
        let mut state = SolverState::new();
        let mut feasible = Problem::minimize(1);
        feasible.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 1.0);
        feasible.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 0.5);
        feasible.solve_from(&mut state).unwrap();
        let mut infeasible = Problem::minimize(1);
        infeasible.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 1.0);
        infeasible.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(infeasible.solve_from(&mut state), Err(SolveError::Infeasible));
    }

    #[test]
    fn unbounded_after_warm_history_is_still_detected() {
        let mut state = SolverState::new();
        let mut bounded = Problem::minimize(1);
        bounded.set_objective(&[(0, 1.0)]);
        bounded.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 1.0);
        bounded.solve_from(&mut state).unwrap();
        bounded.solve_from(&mut state).unwrap();
        let mut unbounded = Problem::minimize(1);
        unbounded.set_objective(&[(0, -1.0)]);
        unbounded.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 1.0);
        assert!(state.last_report().warm, "precondition: previous solve was warm");
        assert_eq!(unbounded.solve_from(&mut state), Err(SolveError::Unbounded));
        // The report describes the failed attempt, not the previous solve.
        assert!(!state.last_report().warm);
        assert_eq!(state.last_report().iterations_saved, 0);
    }

    #[test]
    fn clear_warm_forces_a_cold_solve() {
        let mut state = SolverState::new();
        let p = sweep_problem(4.0, 1.0);
        p.solve_from(&mut state).unwrap();
        assert!(state.has_basis_for(&p));
        state.clear_warm();
        assert!(!state.has_basis_for(&p));
        p.solve_from(&mut state).unwrap();
        assert!(!state.last_report().warm);
    }

    #[test]
    fn exported_snapshot_seeds_a_detached_state() {
        let mut donor = SolverState::new();
        let p = sweep_problem(4.0, 1.0);
        p.solve_from(&mut donor).unwrap();
        let snapshot = donor.export_basis().expect("solved state exports a basis");
        drop(donor);
        let mut fresh = SolverState::new();
        assert!(!fresh.has_basis_for(&p));
        fresh.import_basis(&snapshot);
        assert!(fresh.has_basis_for(&p));
        let warm = p.solve_from(&mut fresh).unwrap();
        assert!(fresh.last_report().warm);
        // Re-solving the donor's exact problem replays its optimal basis:
        // zero pivots, and the saved-iterations estimate carries over.
        assert_eq!(fresh.last_report().iterations, 0);
        assert!(fresh.last_report().iterations_saved > 0);
        assert_eq!(warm.values(), p.solve().unwrap().values());
    }

    #[test]
    fn unsolved_state_exports_nothing() {
        let state = SolverState::new();
        assert!(state.export_basis().is_none());
        let mut cleared = SolverState::new();
        sweep_problem(4.0, 1.0).solve_from(&mut cleared).unwrap();
        cleared.clear_warm();
        assert!(cleared.export_basis().is_none());
    }

    #[test]
    fn adopted_basis_warm_starts_a_sibling_state() {
        let mut a = SolverState::new();
        let p = sweep_problem(4.0, 1.0);
        p.solve_from(&mut a).unwrap();
        let mut b = SolverState::new();
        assert!(!b.has_basis_for(&p));
        b.adopt_basis_from(&a);
        assert!(b.has_basis_for(&p));
        let q = sweep_problem(6.0, 1.0);
        let warm = q.solve_from(&mut b).unwrap();
        assert!(b.last_report().warm);
        assert!((warm.objective() - q.solve().unwrap().objective()).abs() < 1e-9);
    }

    #[test]
    fn warm_solves_report_replay_and_saved_iterations() {
        let mut state = SolverState::new();
        let p = sweep_problem(4.0, 1.0);
        p.solve_from(&mut state).unwrap();
        let cold_iters = state.last_report().iterations;
        assert!(cold_iters > 0);
        p.solve_from(&mut state).unwrap();
        let r = state.last_report();
        assert!(r.warm);
        assert!(r.replayed_pivots > 0);
        assert_eq!(r.iterations, 0, "re-solving the identical problem needs no pivots");
        assert_eq!(r.iterations_saved, cold_iters);
    }

    #[test]
    fn redundant_constraint_basis_is_not_saved() {
        // A redundant equality leaves a zero artificial basic; the state
        // must not try to replay that basis.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (1, 1.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        p.add_constraint(&[(0, 2.0), (1, 2.0)], ConstraintOp::Eq, 4.0); // redundant
        let mut state = SolverState::new();
        let first = p.solve_from(&mut state).unwrap();
        assert!(!state.has_basis_for(&p));
        let second = p.solve_from(&mut state).unwrap();
        assert!(!state.last_report().warm);
        assert_eq!(first, second);
    }
}
