//! Bandwidth-weighted Manhattan-distance placement objective.

use crate::solver::{BasisSnapshot, ConstraintOp, Problem, SolveError, SolveReport, SolverState};

/// Builder and solver for the switch-placement problem of paper §VII:
/// place `n` free points (switches) so that the sum of *weighted Manhattan
/// distances* to fixed points (core pins, eq. 2) and between connected free
/// points (switch-to-switch links, eq. 3) is minimal (eq. 4–5).
///
/// The x and y coordinates decouple, so two independent LPs are solved, each
/// linearizing `|a − b|` with one distance variable `d ≥ a − b, d ≥ b − a`.
///
/// One-shot callers use [`PlacementProblem::solve`]; callers that place
/// repeatedly (the synthesis engine solves one placement per routed
/// candidate attempt) keep a [`PlacementState`] and call
/// [`PlacementProblem::solve_with`], which reuses the axis LPs and
/// warm-starts the simplex from the previous optimal basis.
///
/// # Example
///
/// ```
/// use sunfloor_lp::PlacementProblem;
///
/// // One switch attracted to two cores; the heavier core wins.
/// let mut p = PlacementProblem::new(1);
/// p.attract_to_fixed(0, (0.0, 0.0), 1.0);
/// p.attract_to_fixed(0, (10.0, 4.0), 3.0);
/// let pos = p.solve()?;
/// assert_eq!(pos[0], (10.0, 4.0)); // weighted median sits on the heavy pin
/// # Ok::<(), sunfloor_lp::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlacementProblem {
    free_points: usize,
    fixed: Vec<(usize, f64, f64, f64)>, // (free, x, y, weight)
    pairs: Vec<(usize, usize, f64)>,    // (free a, free b, weight)
}

/// Reusable warm-start state for [`PlacementProblem::solve_with`]: the two
/// per-axis LPs plus a [`SolverState`] for each axis.
///
/// Across solves the state retains
///
/// * the axis [`Problem`]s — [`PlacementProblem::rebuild_into`] refreshes
///   only the right-hand sides and objective weights in place when the
///   attraction *structure* (which free point each attraction pulls on)
///   is unchanged, and rebuilds them otherwise;
/// * the previous optimal bases — each axis re-enters the simplex from its
///   last basis when the shape still fits, and the y axis seeds from the
///   *x* basis when it has none of its own (the two axes share constraint
///   matrix and objective, so the x optimum is a dual-feasible start
///   for y).
///
/// [`PlacementState::clear_warm`] forgets the bases (the next solve is
/// cold) while keeping every buffer; the synthesis engine calls it at
/// candidate boundaries so warm chains never depend on worker scheduling.
#[derive(Debug, Clone, Default)]
pub struct PlacementState {
    x_lp: Problem,
    y_lp: Problem,
    x: SolverState,
    y: SolverState,
    sig_free: usize,
    sig_fixed: Vec<usize>,
    sig_pairs: Vec<(usize, usize)>,
    built: bool,
    reports: (SolveReport, SolveReport),
}

/// A detached pair of per-axis [`BasisSnapshot`]s exported from a solved
/// [`PlacementState`]: the portable form of "how this placement's simplex
/// ended", installable into any number of other states with
/// [`PlacementState::seed_from`] so their next shape-compatible placement
/// re-enters warm instead of solving two-phase from scratch.
#[derive(Debug, Clone)]
pub struct PlacementSeed {
    x: BasisSnapshot,
    y: BasisSnapshot,
}

impl PlacementState {
    /// A fresh state; the first placement through it solves cold.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Exports both axes' optimal bases as a detached [`PlacementSeed`],
    /// or `None` unless *both* axes hold a replayable basis (i.e. the
    /// state has completed at least one successful placement).
    #[must_use]
    pub fn export_seed(&self) -> Option<PlacementSeed> {
        Some(PlacementSeed { x: self.x.export_basis()?, y: self.y.export_basis()? })
    }

    /// Installs an exported seed into both axes: the next placement of a
    /// shape-compatible problem warm-starts from it (a shape mismatch
    /// falls back to the cold path as usual).
    pub fn seed_from(&mut self, seed: &PlacementSeed) {
        self.x.import_basis(&seed.x);
        self.y.import_basis(&seed.y);
    }

    /// What the most recent [`PlacementProblem::solve_with`] did, per axis:
    /// `(x report, y report)`.
    #[must_use]
    pub fn reports(&self) -> (SolveReport, SolveReport) {
        self.reports
    }

    /// Forgets both axes' saved bases (keeps all buffers): the next solve
    /// is cold.
    pub fn clear_warm(&mut self) {
        self.x.clear_warm();
        self.y.clear_warm();
    }
}

impl PlacementProblem {
    /// A placement problem over `free_points` movable points.
    #[must_use]
    pub fn new(free_points: usize) -> Self {
        Self { free_points, fixed: Vec::new(), pairs: Vec::new() }
    }

    /// Clears the problem back to `free_points` movable points with no
    /// attractions, keeping the allocations (for callers that rebuild one
    /// placement per candidate).
    pub fn reset(&mut self, free_points: usize) {
        self.free_points = free_points;
        self.fixed.clear();
        self.pairs.clear();
    }

    /// Number of movable points.
    #[must_use]
    pub fn free_point_count(&self) -> usize {
        self.free_points
    }

    /// Attracts free point `free` towards the fixed location `(x, y)` with
    /// the given weight (e.g. the core↔switch bandwidth, eq. 2/4).
    /// Non-positive weights are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `free` is out of range or the location is not finite.
    pub fn attract_to_fixed(&mut self, free: usize, location: (f64, f64), weight: f64) {
        assert!(free < self.free_points, "free point {free} out of range");
        assert!(location.0.is_finite() && location.1.is_finite(), "location must be finite");
        if weight > 0.0 {
            self.fixed.push((free, location.0, location.1, weight));
        }
    }

    /// Attracts free points `a` and `b` towards each other with the given
    /// weight (the switch↔switch bandwidth, eq. 3/4). Self-attractions and
    /// non-positive weights are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn attract_pair(&mut self, a: usize, b: usize, weight: f64) {
        assert!(a < self.free_points && b < self.free_points, "free point out of range");
        if a != b && weight > 0.0 {
            self.pairs.push((a, b, weight));
        }
    }

    /// Total weighted Manhattan objective of a candidate placement.
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != self.free_point_count()`.
    #[must_use]
    pub fn objective(&self, positions: &[(f64, f64)]) -> f64 {
        assert_eq!(positions.len(), self.free_points, "position count mismatch");
        let mut obj = 0.0;
        for &(i, x, y, w) in &self.fixed {
            obj += w * ((positions[i].0 - x).abs() + (positions[i].1 - y).abs());
        }
        for &(a, b, w) in &self.pairs {
            obj += w
                * ((positions[a].0 - positions[b].0).abs()
                    + (positions[a].1 - positions[b].1).abs());
        }
        obj
    }

    /// Solves the placement to global optimality with the simplex LP,
    /// from scratch (equivalent to [`PlacementProblem::solve_with`] on a
    /// fresh [`PlacementState`]).
    ///
    /// Free points with no attractions at all are placed at the centroid of
    /// the fixed pins (or the origin when there are none).
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the solver; with the convex objective
    /// built here that indicates numerical breakdown, not model error.
    pub fn solve(&self) -> Result<Vec<(f64, f64)>, SolveError> {
        self.solve_with(&mut PlacementState::new())
    }

    /// Solves the placement through a persistent [`PlacementState`],
    /// warm-starting each axis LP from the state's previous optimal basis
    /// where possible (see [`PlacementState`]). The returned positions are
    /// a global optimum either way; [`PlacementState::reports`] says which
    /// solves re-entered warm.
    ///
    /// # Errors
    ///
    /// Same as [`PlacementProblem::solve`].
    pub fn solve_with(
        &self,
        state: &mut PlacementState,
    ) -> Result<Vec<(f64, f64)>, SolveError> {
        self.rebuild_into(state);
        let xs = state.x_lp.solve_from(&mut state.x)?;
        state.reports.0 = state.x.last_report();
        // The axes share matrix and objective, so the x optimum is a
        // dual-feasible basis for y; adopt it when y has nothing better.
        if !state.y.has_basis_for(&state.y_lp) {
            state.y.adopt_basis_from(&state.x);
        }
        let ys = state.y_lp.solve_from(&mut state.y)?;
        state.reports.1 = state.y.last_report();
        let mut out: Vec<(f64, f64)> =
            (0..self.free_points).map(|i| (xs.value(i), ys.value(i))).collect();
        self.settle_unattracted(&mut out);
        Ok(out)
    }

    /// Builds (or refreshes) the two per-axis LPs inside `state`.
    ///
    /// When the attraction *structure* — free-point count, the target of
    /// every fixed attraction and the endpoints of every pair, in order —
    /// matches what the state already holds, only the right-hand sides
    /// (pin coordinates) and objective weights are overwritten in place:
    /// no constraint rows are re-derived and nothing reallocates. Any
    /// structural change rebuilds both LPs from scratch (reusing buffers).
    pub fn rebuild_into(&self, state: &mut PlacementState) {
        let n = self.free_points;
        let structure_matches = state.built
            && state.sig_free == n
            && state.sig_fixed.len() == self.fixed.len()
            && state.sig_fixed.iter().zip(&self.fixed).all(|(&i, f)| i == f.0)
            && state.sig_pairs.len() == self.pairs.len()
            && state
                .sig_pairs
                .iter()
                .zip(&self.pairs)
                .all(|(&(a, b), p)| a == p.0 && b == p.1);

        if structure_matches {
            let mut d = n;
            let mut row = 0;
            for &(_, x, y, w) in &self.fixed {
                state.x_lp.set_constraint_rhs(row, x);
                state.x_lp.set_constraint_rhs(row + 1, -x);
                state.y_lp.set_constraint_rhs(row, y);
                state.y_lp.set_constraint_rhs(row + 1, -y);
                state.x_lp.set_objective_coefficient(d, w);
                state.y_lp.set_objective_coefficient(d, w);
                row += 2;
                d += 1;
            }
            for &(_, _, w) in &self.pairs {
                // Pair rows compare two free coordinates: rhs stays 0.
                state.x_lp.set_objective_coefficient(d, w);
                state.y_lp.set_objective_coefficient(d, w);
                d += 1;
            }
            return;
        }

        let n_dist = self.fixed.len() + self.pairs.len();
        for axis in 0..2 {
            let lp = if axis == 0 { &mut state.x_lp } else { &mut state.y_lp };
            // Variables: [0..n) = coordinates, [n..n+n_dist) = distances.
            lp.reset(n + n_dist);
            let mut d = n;
            for &(i, x, y, w) in &self.fixed {
                let c = if axis == 0 { x } else { y };
                // d >= s_i - c   =>  s_i - d <= c
                lp.add_constraint(&[(i, 1.0), (d, -1.0)], ConstraintOp::Le, c);
                // d >= c - s_i   =>  -s_i - d <= -c
                lp.add_constraint(&[(i, -1.0), (d, -1.0)], ConstraintOp::Le, -c);
                lp.set_objective_coefficient(d, w);
                d += 1;
            }
            for &(a, b, w) in &self.pairs {
                lp.add_constraint(&[(a, 1.0), (b, -1.0), (d, -1.0)], ConstraintOp::Le, 0.0);
                lp.add_constraint(&[(b, 1.0), (a, -1.0), (d, -1.0)], ConstraintOp::Le, 0.0);
                lp.set_objective_coefficient(d, w);
                d += 1;
            }
        }
        state.sig_free = n;
        state.sig_fixed.clear();
        state.sig_fixed.extend(self.fixed.iter().map(|f| f.0));
        state.sig_pairs.clear();
        state.sig_pairs.extend(self.pairs.iter().map(|p| (p.0, p.1)));
        state.built = true;
    }

    /// Iterated weighted-median heuristic: each free point repeatedly jumps
    /// to the weighted median of its attraction set (fixed pins + current
    /// partner positions). Converges quickly; optimal when the free-free
    /// attraction graph is a forest, and never better than [`Self::solve`].
    #[must_use]
    pub fn solve_weighted_median(&self, max_rounds: u32) -> Vec<(f64, f64)> {
        let n = self.free_points;
        let mut pos = vec![(0.0, 0.0); n];
        self.settle_unattracted(&mut pos);
        // Warm start every point at the weighted mean of its fixed pins.
        let mut wsum = vec![0.0f64; n];
        for &(i, x, y, w) in &self.fixed {
            pos[i].0 += x * w;
            pos[i].1 += y * w;
            wsum[i] += w;
        }
        for i in 0..n {
            if wsum[i] > 0.0 {
                pos[i].0 /= wsum[i];
                pos[i].1 /= wsum[i];
            }
        }

        for _ in 0..max_rounds {
            let mut moved = false;
            for i in 0..n {
                let mut xs: Vec<(f64, f64)> = Vec::new();
                let mut ys: Vec<(f64, f64)> = Vec::new();
                for &(fi, x, y, w) in &self.fixed {
                    if fi == i {
                        xs.push((x, w));
                        ys.push((y, w));
                    }
                }
                for &(a, b, w) in &self.pairs {
                    if a == i {
                        xs.push((pos[b].0, w));
                        ys.push((pos[b].1, w));
                    } else if b == i {
                        xs.push((pos[a].0, w));
                        ys.push((pos[a].1, w));
                    }
                }
                if xs.is_empty() {
                    continue;
                }
                let nx = weighted_median(&mut xs);
                let ny = weighted_median(&mut ys);
                if (nx - pos[i].0).abs() > 1e-9 || (ny - pos[i].1).abs() > 1e-9 {
                    pos[i] = (nx, ny);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        pos
    }

    /// Places points with no attractions at the centroid of the fixed pins.
    fn settle_unattracted(&self, pos: &mut [(f64, f64)]) {
        let mut attracted = vec![false; self.free_points];
        for &(i, ..) in &self.fixed {
            attracted[i] = true;
        }
        for &(a, b, _) in &self.pairs {
            attracted[a] = true;
            attracted[b] = true;
        }
        if attracted.iter().all(|&a| a) {
            return;
        }
        let (mut cx, mut cy, mut k) = (0.0, 0.0, 0.0);
        for &(_, x, y, _) in &self.fixed {
            cx += x;
            cy += y;
            k += 1.0;
        }
        let centroid = if k > 0.0 { (cx / k, cy / k) } else { (0.0, 0.0) };
        for (i, p) in pos.iter_mut().enumerate() {
            if !attracted[i] {
                *p = centroid;
            }
        }
    }
}

/// Weighted median of `(value, weight)` samples: the smallest value at which
/// the cumulative weight reaches half the total.
fn weighted_median(samples: &mut [(f64, f64)]) -> f64 {
    debug_assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = samples.iter().map(|(_, w)| w).sum();
    let mut acc = 0.0;
    for &(v, w) in samples.iter() {
        acc += w;
        if acc + 1e-12 >= total / 2.0 {
            return v;
        }
    }
    samples[samples.len() - 1].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_point_lands_on_weighted_median() {
        let mut p = PlacementProblem::new(1);
        p.attract_to_fixed(0, (0.0, 0.0), 1.0);
        p.attract_to_fixed(0, (4.0, 0.0), 1.0);
        p.attract_to_fixed(0, (10.0, 8.0), 2.1);
        let pos = p.solve().unwrap();
        // Total weight 4.1, half = 2.05; cumulative reaches 2.05 at the
        // heavy pin => median at (10, 8).
        assert!((pos[0].0 - 10.0).abs() < 1e-6);
        assert!((pos[0].1 - 8.0).abs() < 1e-6);
    }

    #[test]
    fn chain_of_two_switches() {
        // core A -- s0 -- s1 -- core B, all weight 1: any placement with
        // x0 <= x1 on the segment is optimal; objective = distance A..B.
        let mut p = PlacementProblem::new(2);
        p.attract_to_fixed(0, (0.0, 0.0), 1.0);
        p.attract_pair(0, 1, 1.0);
        p.attract_to_fixed(1, (6.0, 0.0), 1.0);
        let pos = p.solve().unwrap();
        assert!((p.objective(&pos) - 6.0).abs() < 1e-6, "objective {}", p.objective(&pos));
    }

    #[test]
    fn heavier_pair_weight_pulls_switches_together() {
        let mut p = PlacementProblem::new(2);
        p.attract_to_fixed(0, (0.0, 0.0), 1.0);
        p.attract_to_fixed(1, (10.0, 0.0), 1.0);
        p.attract_pair(0, 1, 5.0);
        let pos = p.solve().unwrap();
        let gap = (pos[0].0 - pos[1].0).abs() + (pos[0].1 - pos[1].1).abs();
        assert!(gap < 1e-6, "heavy link should be shrunk to zero, gap={gap}");
    }

    #[test]
    fn unattracted_point_sits_at_centroid() {
        let mut p = PlacementProblem::new(2);
        p.attract_to_fixed(0, (2.0, 2.0), 1.0);
        p.attract_to_fixed(0, (4.0, 6.0), 1.0);
        let pos = p.solve().unwrap();
        assert_eq!(pos[1], (3.0, 4.0));
    }

    #[test]
    fn empty_problem_solves() {
        let p = PlacementProblem::new(3);
        let pos = p.solve().unwrap();
        assert_eq!(pos, vec![(0.0, 0.0); 3]);
    }

    #[test]
    fn median_heuristic_matches_lp_on_single_point() {
        let mut p = PlacementProblem::new(1);
        p.attract_to_fixed(0, (1.0, 7.0), 2.0);
        p.attract_to_fixed(0, (5.0, 3.0), 1.0);
        p.attract_to_fixed(0, (9.0, 1.0), 1.5);
        let lp = p.solve().unwrap();
        let med = p.solve_weighted_median(20);
        assert!((p.objective(&lp) - p.objective(&med)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_free_index() {
        let mut p = PlacementProblem::new(1);
        p.attract_to_fixed(1, (0.0, 0.0), 1.0);
    }

    #[test]
    fn warm_resolve_matches_cold_objective() {
        let mut p = PlacementProblem::new(3);
        p.attract_to_fixed(0, (0.0, 1.0), 2.0);
        p.attract_to_fixed(1, (8.0, 3.0), 1.0);
        p.attract_to_fixed(2, (4.0, 9.0), 1.5);
        p.attract_pair(0, 1, 0.5);
        p.attract_pair(1, 2, 0.25);
        let mut state = PlacementState::new();
        let first = p.solve_with(&mut state).unwrap();
        // Second solve of the identical problem: both axes warm, and the
        // returned vertex is pinned to the first solve's.
        let second = p.solve_with(&mut state).unwrap();
        let (rx, ry) = state.reports();
        assert!(rx.warm && ry.warm);
        assert_eq!(first, second);
        assert!((p.objective(&first) - p.objective(&p.solve().unwrap())).abs() < 1e-9);
    }

    #[test]
    fn exported_seed_warms_a_fresh_state_to_the_same_vertex() {
        let mut p = PlacementProblem::new(3);
        p.attract_to_fixed(0, (0.0, 1.0), 2.0);
        p.attract_to_fixed(1, (8.0, 3.0), 1.0);
        p.attract_to_fixed(2, (4.0, 9.0), 1.5);
        p.attract_pair(0, 1, 0.5);
        p.attract_pair(1, 2, 0.25);
        let mut donor = PlacementState::new();
        assert!(donor.export_seed().is_none(), "unsolved state has no seed");
        let cold = p.solve_with(&mut donor).unwrap();
        let seed = donor.export_seed().expect("solved state exports a seed");
        // A freshly seeded state re-solves the same problem warm on both
        // axes and lands on the exact same vertex.
        let mut seeded = PlacementState::new();
        seeded.seed_from(&seed);
        let warm = p.solve_with(&mut seeded).unwrap();
        let (rx, ry) = seeded.reports();
        assert!(rx.warm && ry.warm, "both axes must re-enter warm from the seed");
        assert_eq!(cold, warm);
    }

    #[test]
    fn rebuild_in_place_tracks_weight_and_pin_changes() {
        let build = |w: f64, px: f64| {
            let mut p = PlacementProblem::new(2);
            p.attract_to_fixed(0, (px, 2.0), w);
            p.attract_to_fixed(1, (10.0, 6.0), 1.0);
            p.attract_pair(0, 1, 0.75);
            p
        };
        let mut state = PlacementState::new();
        build(1.0, 0.0).solve_with(&mut state).unwrap();
        // Same structure, new weight + pin location: refreshed in place,
        // solved warm, optimum matches a cold solve.
        for (w, px) in [(3.0, 1.0), (0.5, 5.0), (2.0, 0.5)] {
            let p = build(w, px);
            let warm = p.solve_with(&mut state).unwrap();
            let cold = p.solve().unwrap();
            assert!(
                (p.objective(&warm) - p.objective(&cold)).abs() < 1e-9,
                "w={w} px={px}: warm {} vs cold {}",
                p.objective(&warm),
                p.objective(&cold)
            );
        }
    }

    #[test]
    fn structural_change_rebuilds_and_still_solves() {
        let mut state = PlacementState::new();
        let mut p = PlacementProblem::new(2);
        p.attract_to_fixed(0, (0.0, 0.0), 1.0);
        p.attract_to_fixed(1, (4.0, 4.0), 1.0);
        p.solve_with(&mut state).unwrap();
        // Different attachment pattern and an extra pair: full rebuild.
        let mut q = PlacementProblem::new(2);
        q.attract_to_fixed(1, (0.0, 0.0), 1.0);
        q.attract_to_fixed(0, (4.0, 4.0), 1.0);
        q.attract_pair(0, 1, 2.0);
        let warm = q.solve_with(&mut state).unwrap();
        let cold = q.solve().unwrap();
        assert!((q.objective(&warm) - q.objective(&cold)).abs() < 1e-9);
    }

    proptest! {
        /// The LP solution is never worse than the weighted-median heuristic
        /// (global optimality of the simplex on this convex problem).
        #[test]
        fn lp_at_least_as_good_as_median(
            pins in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0, 0.1f64..5.0), 2..8),
            pairs in proptest::collection::vec((0usize..3, 0usize..3, 0.1f64..5.0), 0..4),
        ) {
            let mut p = PlacementProblem::new(3);
            for (k, &(x, y, w)) in pins.iter().enumerate() {
                p.attract_to_fixed(k % 3, (x, y), w);
            }
            for &(a, b, w) in &pairs {
                p.attract_pair(a, b, w);
            }
            let lp = p.solve().unwrap();
            let med = p.solve_weighted_median(30);
            prop_assert!(p.objective(&lp) <= p.objective(&med) + 1e-6,
                "LP {} worse than median {}", p.objective(&lp), p.objective(&med));
        }

        /// LP optimum is no worse than pins' centroid or any individual pin.
        #[test]
        fn lp_beats_naive_candidates(
            pins in proptest::collection::vec((0.0f64..20.0, 0.0f64..20.0, 0.1f64..5.0), 1..7),
        ) {
            let mut p = PlacementProblem::new(1);
            for &(x, y, w) in &pins {
                p.attract_to_fixed(0, (x, y), w);
            }
            let lp = p.solve().unwrap();
            let best_obj = p.objective(&lp);
            for &(x, y, _) in &pins {
                prop_assert!(best_obj <= p.objective(&[(x, y)]) + 1e-6);
            }
        }
    }
}
