//! Dense two-phase primal simplex.

use std::error::Error;
use std::fmt;

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `lhs ≤ rhs`
    Le,
    /// `lhs ≥ rhs`
    Ge,
    /// `lhs = rhs`
    Eq,
}

/// Why an LP could not be solved to optimality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The constraint set admits no point with all variables ≥ 0.
    Infeasible,
    /// The objective can be driven to −∞ within the feasible region.
    Unbounded,
    /// The pivot-iteration safety cap was exceeded (numerical trouble).
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible => write!(f, "linear program is infeasible"),
            Self::Unbounded => write!(f, "linear program is unbounded"),
            Self::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl Error for SolveError {}

/// A linear program `minimize c·x subject to A x {≤,≥,=} b, x ≥ 0`.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Problem {
    num_vars: usize,
    objective: Vec<f64>,
    rows: Vec<Row>,
}

#[derive(Debug, Clone, PartialEq)]
struct Row {
    terms: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
}

/// Optimal solution of a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    objective: f64,
    values: Vec<f64>,
}

impl Solution {
    /// Optimal objective value.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of variable `var` at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[must_use]
    pub fn value(&self, var: usize) -> f64 {
        self.values[var]
    }

    /// All variable values, indexed by variable.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

const EPS: f64 = 1e-9;

impl Problem {
    /// Creates an empty minimization problem over `num_vars` non-negative
    /// variables with a zero objective.
    #[must_use]
    pub fn minimize(num_vars: usize) -> Self {
        Self { num_vars, objective: vec![0.0; num_vars], rows: Vec::new() }
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets (overwrites) objective coefficients for the listed variables.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range.
    pub fn set_objective(&mut self, terms: &[(usize, f64)]) {
        for &(v, c) in terms {
            assert!(v < self.num_vars, "objective variable {v} out of range");
            self.objective[v] = c;
        }
    }

    /// Adds the constraint `Σ terms {op} rhs`. Duplicate variable entries in
    /// `terms` accumulate.
    ///
    /// # Panics
    ///
    /// Panics if any variable index is out of range or any coefficient is
    /// non-finite.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], op: ConstraintOp, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v < self.num_vars, "constraint variable {v} out of range");
            assert!(c.is_finite(), "constraint coefficient must be finite");
            if let Some(e) = dense.iter_mut().find(|(dv, _)| *dv == v) {
                e.1 += c;
            } else {
                dense.push((v, c));
            }
        }
        self.rows.push(Row { terms: dense, op, rhs });
    }

    /// Solves the LP with two-phase primal simplex.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`] or (on numerical
    /// breakdown) [`SolveError::IterationLimit`].
    pub fn solve(&self) -> Result<Solution, SolveError> {
        Tableau::build(self).solve(self)
    }
}

/// Dense simplex tableau in standard form.
///
/// The tableau is stored as one flat row-major array and the inner loops —
/// pricing, the ratio test and the pivot elimination — run over contiguous
/// slices. Every floating-point operation happens in the same order and on
/// the same values as a naive row-of-rows implementation would produce, so
/// the pivot sequence (and therefore the exact optimal vertex returned on
/// degenerate problems) is reproducible; the restructuring only removes
/// bounds checks, cache misses and the `O(m)` basis-membership scans from
/// the hot path. This matters because the switch-placement LP runs once per
/// routed candidate of the synthesis sweep.
struct Tableau {
    /// Flat `m × (n_total + 1)` row-major matrix; last column is the rhs.
    a: Vec<f64>,
    /// Basis variable of each row.
    basis: Vec<usize>,
    /// Whether each column is currently basic (kept in sync with `basis`).
    in_basis: Vec<bool>,
    /// Total column count excluding rhs: structural + slack + artificial.
    n_total: usize,
    /// First artificial column index.
    art_start: usize,
    /// Pricing scratch: `z_j` accumulators, one per column.
    z: Vec<f64>,
    /// Pivot scratch: a copy of the scaled pivot row.
    prow: Vec<f64>,
}

impl Tableau {
    fn build(p: &Problem) -> Self {
        let m = p.rows.len();
        let n = p.num_vars;

        // Count extra columns.
        let mut n_slack = 0;
        for r in &p.rows {
            if matches!(r.op, ConstraintOp::Le | ConstraintOp::Ge) {
                n_slack += 1;
            }
        }
        // One artificial per row keeps the construction simple; phase 1
        // drives them all out.
        let art_start = n + n_slack;
        let n_total = art_start + m;
        let stride = n_total + 1;

        let mut a = vec![0.0; m * stride];
        let mut basis = vec![0usize; m];
        let mut slack_idx = n;

        for (i, r) in p.rows.iter().enumerate() {
            let row = &mut a[i * stride..(i + 1) * stride];
            let mut rhs = r.rhs;
            let mut sign = 1.0;
            // Normalize to rhs >= 0.
            if rhs < 0.0 {
                rhs = -rhs;
                sign = -1.0;
            }
            for &(v, c) in &r.terms {
                row[v] += sign * c;
            }
            let op = match (r.op, sign < 0.0) {
                (ConstraintOp::Le, true) => ConstraintOp::Ge,
                (ConstraintOp::Ge, true) => ConstraintOp::Le,
                (op, _) => op,
            };
            match op {
                ConstraintOp::Le => {
                    row[slack_idx] = 1.0;
                    // Slack can serve as the initial basis directly.
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                ConstraintOp::Ge => {
                    row[slack_idx] = -1.0; // surplus
                    slack_idx += 1;
                    basis[i] = art_start + i;
                    row[art_start + i] = 1.0;
                }
                ConstraintOp::Eq => {
                    basis[i] = art_start + i;
                    row[art_start + i] = 1.0;
                }
            }
            row[n_total] = rhs;
            // For Le rows the artificial column stays zero and unused.
        }

        let mut in_basis = vec![false; n_total];
        for &b in &basis {
            in_basis[b] = true;
        }
        Self {
            a,
            basis,
            in_basis,
            n_total,
            art_start,
            z: vec![0.0; n_total],
            prow: vec![0.0; stride],
        }
    }

    fn rows(&self) -> usize {
        self.basis.len()
    }

    fn row(&self, i: usize) -> &[f64] {
        let stride = self.n_total + 1;
        &self.a[i * stride..(i + 1) * stride]
    }

    fn solve(mut self, p: &Problem) -> Result<Solution, SolveError> {
        let m = self.rows();
        let needs_phase1 = self.basis.iter().any(|&b| b >= self.art_start);

        if needs_phase1 {
            // Phase 1 objective: minimize sum of artificials.
            let mut cost = vec![0.0; self.n_total];
            for c in cost.iter_mut().skip(self.art_start) {
                *c = 1.0;
            }
            let obj = self.run(&cost, self.n_total)?;
            if obj > 1e-7 {
                return Err(SolveError::Infeasible);
            }
            // Pivot remaining artificials out of the basis if possible.
            for i in 0..m {
                if self.basis[i] >= self.art_start {
                    if let Some(j) = (0..self.art_start)
                        .find(|&j| self.row(i)[j].abs() > 1e-7)
                    {
                        self.pivot(i, j);
                    }
                    // Else the row is all-zero in structural columns: a
                    // redundant constraint; leave the (zero-valued)
                    // artificial in the basis — it can never re-enter
                    // because phase 2 restricts columns below art_start.
                }
            }
        }

        // Phase 2: original objective over structural + slack columns only.
        let mut cost = vec![0.0; self.n_total];
        cost[..p.num_vars].copy_from_slice(&p.objective);
        let objective = self.run(&cost, self.art_start)?;

        let mut values = vec![0.0; p.num_vars];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < p.num_vars {
                values[b] = self.row(i)[self.n_total];
            }
        }
        Ok(Solution { objective, values })
    }

    /// Runs simplex minimizing `cost` over columns `0..col_limit`.
    /// Returns the optimal objective value.
    fn run(&mut self, cost: &[f64], col_limit: usize) -> Result<f64, SolveError> {
        let m = self.rows();
        let stride = self.n_total + 1;
        let max_iter = 200 + 50 * (m + self.n_total);
        for iter in 0..max_iter {
            // Pricing: z_j = Σ_i cost[basis[i]] · a[i][j], accumulated row
            // by row so each z_j sums in the same row order a per-column
            // dot product would use (bit-identical), but with sequential
            // memory access. Rows whose basic cost is exactly zero
            // contribute exactly nothing and are skipped.
            let z = &mut self.z;
            for v in z[..col_limit].iter_mut() {
                *v = 0.0;
            }
            for i in 0..m {
                let yi = cost[self.basis[i]];
                if yi == 0.0 {
                    continue;
                }
                let row = &self.a[i * stride..i * stride + col_limit];
                for (zj, &aij) in z[..col_limit].iter_mut().zip(row) {
                    *zj += yi * aij;
                }
            }

            let mut entering = None;
            let mut best = -EPS;
            let use_bland = iter > max_iter / 2;
            #[allow(clippy::needless_range_loop)] // j indexes three arrays
            for j in 0..col_limit {
                if self.in_basis[j] {
                    continue;
                }
                let reduced = cost[j] - self.z[j];
                if use_bland {
                    if reduced < -EPS {
                        entering = Some(j);
                        break;
                    }
                } else if reduced < best {
                    best = reduced;
                    entering = Some(j);
                }
            }
            let Some(j) = entering else {
                // Optimal.
                let mut obj = 0.0;
                for i in 0..m {
                    obj += cost[self.basis[i]] * self.row(i)[self.n_total];
                }
                return Ok(obj);
            };

            // Ratio test.
            let mut leaving = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let aij = self.a[i * stride + j];
                if aij > EPS {
                    let ratio = self.a[i * stride + self.n_total] / aij;
                    // Bland tie-break: smallest basis index.
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leaving.is_some_and(|l: usize| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leaving = Some(i);
                    }
                }
            }
            let Some(i) = leaving else {
                return Err(SolveError::Unbounded);
            };
            self.pivot(i, j);
        }
        Err(SolveError::IterationLimit)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let m = self.rows();
        let stride = self.n_total + 1;
        let piv = self.a[row * stride + col];
        debug_assert!(piv.abs() > 1e-12, "pivot on (near-)zero element");
        let inv = 1.0 / piv;
        for x in &mut self.a[row * stride..(row + 1) * stride] {
            *x *= inv;
        }
        // Copy the scaled pivot row so the elimination loops below can
        // borrow it and the target rows disjointly.
        self.prow.copy_from_slice(&self.a[row * stride..(row + 1) * stride]);
        for i in 0..m {
            if i == row {
                continue;
            }
            let factor = self.a[i * stride + col];
            if factor.abs() <= 1e-12 {
                continue;
            }
            let target = &mut self.a[i * stride..(i + 1) * stride];
            for (x, &pv) in target.iter_mut().zip(&self.prow) {
                *x -= factor * pv;
            }
        }
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(p: &Problem) -> Solution {
        p.solve().expect("LP should solve")
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 => opt at (2,6), obj 36.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, -3.0), (1, -5.0)]);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint(&[(1, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint(&[(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let s = solve(&p);
        assert!((s.objective() + 36.0).abs() < 1e-7);
        assert!((s.value(0) - 2.0).abs() < 1e-7);
        assert!((s.value(1) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min 2x + 3y s.t. x + y = 10, x >= 3 => (7,3)? obj 2*7+3*3=23;
        // but (x=10,y=0) violates nothing? x+y=10, x>=3: (10,0) obj 20 < 23.
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 2.0), (1, 3.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 10.0);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 3.0);
        let s = solve(&p);
        assert!((s.objective() - 20.0).abs() < 1e-7);
        assert!((s.value(0) - 10.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // min x s.t. -x <= -5  (i.e. x >= 5)
        let mut p = Problem::minimize(1);
        p.set_objective(&[(0, 1.0)]);
        p.add_constraint(&[(0, -1.0)], ConstraintOp::Le, -5.0);
        let s = solve(&p);
        assert!((s.value(0) - 5.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(p.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::minimize(1);
        p.set_objective(&[(0, -1.0)]);
        p.add_constraint(&[(0, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(p.solve(), Err(SolveError::Unbounded));
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut p = Problem::minimize(2);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 4.0);
        let s = solve(&p);
        assert!((s.value(0) + s.value(1) - 4.0).abs() < 1e-7);
        assert_eq!(s.objective(), 0.0);
    }

    #[test]
    fn redundant_constraints_are_harmless() {
        let mut p = Problem::minimize(2);
        p.set_objective(&[(0, 1.0), (1, 1.0)]);
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 2.0);
        p.add_constraint(&[(0, 2.0), (1, 2.0)], ConstraintOp::Ge, 4.0); // same halfspace
        p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 2.0);
        let s = solve(&p);
        assert!((s.objective() - 2.0).abs() < 1e-7);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut p = Problem::minimize(1);
        p.set_objective(&[(0, 1.0)]);
        // 0.5x + 0.5x >= 3  =>  x >= 3
        p.add_constraint(&[(0, 0.5), (0, 0.5)], ConstraintOp::Ge, 3.0);
        let s = solve(&p);
        assert!((s.value(0) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate vertex: multiple constraints through origin.
        let mut p = Problem::minimize(3);
        p.set_objective(&[(0, -0.75), (1, 150.0), (2, -0.02)]);
        p.add_constraint(&[(0, 0.25), (1, -60.0), (2, -0.04)], ConstraintOp::Le, 0.0);
        p.add_constraint(&[(0, 0.5), (1, -90.0), (2, -0.02)], ConstraintOp::Le, 0.0);
        p.add_constraint(&[(2, 1.0)], ConstraintOp::Le, 1.0);
        let s = solve(&p);
        // Known optimum of this Beale-style instance: objective -0.05.
        assert!(s.objective() <= -0.049, "got {}", s.objective());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_variable() {
        let mut p = Problem::minimize(1);
        p.add_constraint(&[(1, 1.0)], ConstraintOp::Le, 1.0);
    }
}
