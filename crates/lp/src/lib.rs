//! A small, dependency-free linear-programming toolkit with warm-startable
//! solver state.
//!
//! SunFloor 3D computes the positions of the NoC switches by solving a linear
//! program that minimizes bandwidth-weighted Manhattan wire length (paper
//! §VII, equations (2)–(5)). The original tool delegated to the `lp_solve`
//! package; this crate rebuilds the needed capability:
//!
//! * [`Problem`] — a general minimization LP over non-negative variables with
//!   `≤` / `≥` / `=` constraints, solved by a dense **two-phase primal
//!   simplex** with Bland's anti-cycling rule ([`Problem::solve`]).
//! * [`SolverState`] — a persistent solver state for *sequences* of related
//!   LPs: [`Problem::solve_from`] keeps the tableau buffers and the previous
//!   optimal basis across solves, re-entering phase 2 directly (or running
//!   the **dual simplex** after a right-hand-side change) whenever the saved
//!   basis fits the new problem, and falling back to the cold two-phase path
//!   when it does not. [`SolveReport`] says which path ran and how many
//!   pivots it took.
//! * [`PlacementProblem`] — the Manhattan-distance objective builder: it
//!   linearizes every `|xi − xk|` with a distance variable pair and solves
//!   per-axis LPs (the x and y problems are separable). Repeated placements
//!   solve through a [`PlacementState`] ([`PlacementProblem::solve_with`]),
//!   which rebuilds the axis LPs in place when only weights and constants
//!   changed and chains warm starts — the y axis seeds from the x basis
//!   (same matrix and objective), and successive placements reuse the last
//!   optimal basis. A [`PlacementProblem::solve_weighted_median`] fast path
//!   provides the classic iterated-weighted-median heuristic for
//!   cross-checking.
//!
//! The LPs arising in topology synthesis are small — a few hundred variables
//! for the paper's largest 65-core design ("even for big applications … the
//! optimal solution is obtained in few seconds", §VII) — so a dense tableau
//! is the right tool, and the per-candidate cost is dominated by simplex
//! pivots, which is exactly what the warm starts cut.
//!
//! # Example
//!
//! ```
//! use sunfloor_lp::{ConstraintOp, Problem};
//!
//! // minimize x + 2y  s.t.  x + y >= 4, y <= 3, x,y >= 0
//! let mut p = Problem::minimize(2);
//! p.set_objective(&[(0, 1.0), (1, 2.0)]);
//! p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
//! p.add_constraint(&[(1, 1.0)], ConstraintOp::Le, 3.0);
//! let s = p.solve()?;
//! assert!((s.objective() - 4.0).abs() < 1e-9); // x=4, y=0
//! # Ok::<(), sunfloor_lp::SolveError>(())
//! ```
//!
//! For the warm-started form, see the example on [`Problem::solve_from`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manhattan;
mod solver;

pub use manhattan::{PlacementProblem, PlacementSeed, PlacementState};
pub use solver::{
    BasisSnapshot, ConstraintOp, Problem, Solution, SolveError, SolveReport, SolverState,
};
