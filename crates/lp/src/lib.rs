//! A small, dependency-free linear-programming toolkit.
//!
//! SunFloor 3D computes the positions of the NoC switches by solving a linear
//! program that minimizes bandwidth-weighted Manhattan wire length (paper
//! §VII, equations (2)–(5)). The original tool delegated to the `lp_solve`
//! package; this crate rebuilds the needed capability:
//!
//! * [`Problem`] — a general minimization LP over non-negative variables with
//!   `≤` / `≥` / `=` constraints, solved by a dense **two-phase primal
//!   simplex** with Bland's anti-cycling rule.
//! * [`PlacementProblem`] — the Manhattan-distance objective builder: it
//!   linearizes every `|xi − xk|` with a distance variable pair and solves
//!   per-axis LPs (the x and y problems are separable). A
//!   [`PlacementProblem::solve_weighted_median`] fast path provides the
//!   classic iterated-weighted-median heuristic, used for cross-checking and
//!   warm starts.
//!
//! The LPs arising in topology synthesis are small — a few hundred variables
//! for the paper's largest 65-core design ("even for big applications … the
//! optimal solution is obtained in few seconds", §VII) — so a dense tableau
//! is the right tool.
//!
//! # Example
//!
//! ```
//! use sunfloor_lp::{ConstraintOp, Problem};
//!
//! // minimize x + 2y  s.t.  x + y >= 4, y <= 3, x,y >= 0
//! let mut p = Problem::minimize(2);
//! p.set_objective(&[(0, 1.0), (1, 2.0)]);
//! p.add_constraint(&[(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
//! p.add_constraint(&[(1, 1.0)], ConstraintOp::Le, 3.0);
//! let s = p.solve()?;
//! assert!((s.objective() - 4.0).abs() < 1e-9); // x=4, y=0
//! # Ok::<(), sunfloor_lp::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manhattan;
mod simplex;

pub use manhattan::PlacementProblem;
pub use simplex::{ConstraintOp, Problem, Solution, SolveError};
