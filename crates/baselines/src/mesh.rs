//! The optimized-mesh baseline (paper §VIII-E, Fig. 23).
//!
//! "We generate best mapping (optimizing for power, meeting the latency
//! constraints) of the cores on to a mesh topology, and remove any unused
//! switch-to-switch links."
//!
//! Cores are mapped to mesh tiles (a 2-D grid per layer, with vertical links
//! between vertically adjacent tiles) by simulated annealing over tile
//! swaps, minimizing bandwidth-weighted hop count with a penalty for latency
//! violations — the classic NMAP-style objective. Flows are then routed with
//! deterministic dimension-order (Z → X → Y) routing, which is deadlock-free
//! on meshes, and only the links that actually carry traffic materialize.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sunfloor_benchmarks::Benchmark;
use sunfloor_core::eval::{evaluate, DesignMetrics};
use sunfloor_core::graph::CommGraph;
use sunfloor_core::spec::MessageType;
use sunfloor_core::topology::{FlowPath, Link, Topology};
use sunfloor_models::NocLibrary;

/// Mesh-baseline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshConfig {
    /// Operating frequency, MHz.
    pub frequency_mhz: f64,
    /// Mapping-annealer iterations.
    pub sa_iterations: u32,
    /// RNG seed for the mapping annealer.
    pub rng_seed: u64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self { frequency_mhz: 400.0, sa_iterations: 30_000, rng_seed: 0x3E5 }
    }
}

/// Result of the mesh mapping baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshResult {
    /// The mesh topology with routed flows and trimmed links.
    pub topology: Topology,
    /// Metrics under the same models as the custom flow.
    pub metrics: DesignMetrics,
    /// Mesh dimensions `(cols, rows)` per layer.
    pub dims: (usize, usize),
}

/// Maps `bench` onto an optimized mesh and evaluates it with the shared
/// component models.
#[must_use]
pub fn optimized_mesh(bench: &Benchmark, lib: &NocLibrary, cfg: &MeshConfig) -> MeshResult {
    let soc = &bench.soc;
    let layers = soc.layers as usize;
    // Spec validation guarantees at least one core; the `.max(1)` keeps the
    // grid arithmetic well-defined even for a degenerate hand-built spec.
    let per_layer_max = (0..soc.layers)
        .map(|l| soc.cores_in_layer(l).len())
        .max()
        .unwrap_or(1)
        .max(1);
    let cols = (per_layer_max as f64).sqrt().ceil() as usize;
    let rows = per_layer_max.div_ceil(cols);
    let tiles_per_layer = cols * rows;
    let nsw = tiles_per_layer * layers;

    // Tile pitch from the existing die extent, so mesh wire lengths live on
    // the same die the custom topology uses.
    let die_w = soc.cores.iter().map(|c| c.x + c.width).fold(1.0f64, f64::max);
    let die_h = soc.cores.iter().map(|c| c.y + c.height).fold(1.0f64, f64::max);
    let pitch = ((die_w / cols as f64).max(die_h / rows as f64)).max(0.5);

    // --- initial mapping: row-major per layer ---------------------------
    // tile_of[core] = tile index within its own layer.
    let mut tile_of = vec![usize::MAX; soc.core_count()];
    let mut tile_used: Vec<Vec<Option<usize>>> = vec![vec![None; tiles_per_layer]; layers];
    for (l, layer_tiles) in tile_used.iter_mut().enumerate() {
        for (k, core) in soc.cores_in_layer(l as u32).into_iter().enumerate() {
            tile_of[core] = k;
            layer_tiles[k] = Some(core);
        }
    }

    let graph = CommGraph::new(soc, &bench.comm);
    let hops = |tile_a: usize, la: u32, tile_b: usize, lb: u32| -> f64 {
        let (ax, ay) = ((tile_a % cols) as i64, (tile_a / cols) as i64);
        let (bx, by) = ((tile_b % cols) as i64, (tile_b / cols) as i64);
        ((ax - bx).abs() + (ay - by).abs()) as f64 + f64::from(la.abs_diff(lb))
    };
    let cost = |tile_of: &[usize]| -> f64 {
        let mut c = 0.0;
        for e in graph.edge_list() {
            let h = hops(
                tile_of[e.src],
                soc.cores[e.src].layer,
                tile_of[e.dst],
                soc.cores[e.dst].layer,
            );
            c += e.bandwidth_mbs * h;
            // Latency: h+1 switches on a dimension-ordered route.
            let zero_load = h + 1.0;
            if zero_load > e.latency_cycles {
                c += 1e5 * (zero_load - e.latency_cycles);
            }
        }
        c
    };

    // --- SA over same-layer tile swaps -----------------------------------
    let mut rng = StdRng::seed_from_u64(cfg.rng_seed);
    let mut cur = cost(&tile_of);
    let mut best = tile_of.clone();
    let mut best_cost = cur;
    let mut temp = (cur * 0.05).max(1.0);
    let alpha = (1e-4f64).powf(1.0 / f64::from(cfg.sa_iterations.max(2)));
    for _ in 0..cfg.sa_iterations {
        let l = rng.gen_range(0..layers);
        let a = rng.gen_range(0..tiles_per_layer);
        let b = rng.gen_range(0..tiles_per_layer);
        if a == b {
            continue;
        }
        let (ca, cb) = (tile_used[l][a], tile_used[l][b]);
        if ca.is_none() && cb.is_none() {
            continue;
        }
        // Swap occupants (either may be an empty tile).
        if let Some(c) = ca {
            tile_of[c] = b;
        }
        if let Some(c) = cb {
            tile_of[c] = a;
        }
        tile_used[l][a] = cb;
        tile_used[l][b] = ca;
        let cand = cost(&tile_of);
        let delta = cand - cur;
        if delta <= 0.0 || rng.gen_bool((-delta / temp).exp().clamp(0.0, 1.0)) {
            cur = cand;
            if cur < best_cost {
                best_cost = cur;
                best = tile_of.clone();
            }
        } else {
            // Undo.
            if let Some(c) = ca {
                tile_of[c] = a;
            }
            if let Some(c) = cb {
                tile_of[c] = b;
            }
            tile_used[l][a] = ca;
            tile_used[l][b] = cb;
        }
        temp *= alpha;
    }
    let tile_of = best;

    // --- build the mesh topology with ZXY routing -------------------------
    let sw_index = |tile: usize, layer: usize| layer * tiles_per_layer + tile;
    let mut topo = Topology {
        switch_layer: (0..nsw).map(|s| (s / tiles_per_layer) as u32).collect(),
        switch_pos: (0..nsw)
            .map(|s| {
                let t = s % tiles_per_layer;
                (
                    (t % cols) as f64 * pitch + pitch / 2.0,
                    (t / cols) as f64 * pitch + pitch / 2.0,
                )
            })
            .collect(),
        core_attach: (0..soc.core_count())
            .map(|c| sw_index(tile_of[c], soc.cores[c].layer as usize))
            .collect(),
        links: Vec::new(),
        flow_paths: vec![FlowPath::default(); graph.edge_list().len()],
        indirect_switches: Vec::new(),
    };

    // sf-allow(det-hash-iter): keyed lookups only — never iterated; links are pushed in flow order
    let mut link_index: std::collections::HashMap<(usize, usize, MessageType), usize> =
        std::collections::HashMap::new(); // sf-allow(det-hash-iter): same map, continuation line
    for e in graph.edge_list() {
        let mut path = Vec::new();
        let (mut x, mut y, mut z) = (
            (tile_of[e.src] % cols) as i64,
            (tile_of[e.src] / cols) as i64,
            soc.cores[e.src].layer as i64,
        );
        let (tx, ty, tz) = (
            (tile_of[e.dst] % cols) as i64,
            (tile_of[e.dst] / cols) as i64,
            soc.cores[e.dst].layer as i64,
        );
        path.push(sw_index((y * cols as i64 + x) as usize, z as usize));
        // Z first (cheap vertical hops), then X, then Y — dimension order.
        while z != tz {
            z += (tz - z).signum();
            path.push(sw_index((y * cols as i64 + x) as usize, z as usize));
        }
        while x != tx {
            x += (tx - x).signum();
            path.push(sw_index((y * cols as i64 + x) as usize, z as usize));
        }
        while y != ty {
            y += (ty - y).signum();
            path.push(sw_index((y * cols as i64 + x) as usize, z as usize));
        }
        for w in path.windows(2) {
            let key = (w[0], w[1], e.class);
            let li = *link_index.entry(key).or_insert_with(|| {
                topo.links.push(Link {
                    from: w[0],
                    to: w[1],
                    bandwidth_gbps: 0.0,
                    flows: Vec::new(),
                    class: e.class,
                });
                topo.links.len() - 1
            });
            topo.links[li].bandwidth_gbps += e.bandwidth_mbs * 8.0 / 1000.0;
            topo.links[li].flows.push(e.flow);
        }
        topo.flow_paths[e.flow] = FlowPath { switches: path };
    }

    let metrics = evaluate(&topo, soc, &graph, lib, cfg.frequency_mhz);
    MeshResult { topology: topo, metrics, dims: (cols, rows) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunfloor_benchmarks::distributed;

    fn quick() -> MeshConfig {
        MeshConfig { sa_iterations: 4000, ..MeshConfig::default() }
    }

    #[test]
    fn mesh_routes_every_flow() {
        let b = distributed(4);
        let r = optimized_mesh(&b, &NocLibrary::lp65(), &quick());
        assert_eq!(r.topology.flow_paths.len(), b.comm.flow_count());
        for p in &r.topology.flow_paths {
            assert!(!p.switches.is_empty());
        }
        // 18 cores per layer -> 5x4 grid.
        assert_eq!(r.dims, (5, 4));
    }

    #[test]
    fn dimension_order_routes_are_minimal() {
        let b = distributed(4);
        let r = optimized_mesh(&b, &NocLibrary::lp65(), &quick());
        let cols = r.dims.0;
        let tiles = r.dims.0 * r.dims.1;
        for (fi, path) in r.topology.flow_paths.iter().enumerate() {
            let f = &b.comm.flows[fi];
            let s = r.topology.core_attach[f.src];
            let d = r.topology.core_attach[f.dst];
            let (sx, sy, sz) = (s % tiles % cols, s % tiles / cols, s / tiles);
            let (dx, dy, dz) = (d % tiles % cols, d % tiles / cols, d / tiles);
            let manhattan = sx.abs_diff(dx) + sy.abs_diff(dy) + sz.abs_diff(dz);
            assert_eq!(
                path.switches.len(),
                manhattan + 1,
                "flow {fi} route is not minimal"
            );
        }
    }

    #[test]
    fn unused_links_are_not_materialized() {
        let b = distributed(4);
        let r = optimized_mesh(&b, &NocLibrary::lp65(), &quick());
        for l in &r.topology.links {
            assert!(!l.flows.is_empty());
            assert!(l.bandwidth_gbps > 0.0);
        }
        // A full 5x4x2 mesh would have 2*(4*4+3*5)*2 + 20*2 directed links;
        // trimming must leave fewer than that.
        let full = 2 * (4 * 4 + 3 * 5) * 2 + 20 * 2;
        assert!(
            r.topology.links.len() < full,
            "expected trimming below {full}, got {}",
            r.topology.links.len()
        );
    }

    #[test]
    fn mapping_beats_identity_on_cost() {
        // The SA mapping should not be worse than the trivial row-major
        // mapping in weighted hops.
        let b = distributed(8);
        let lib = NocLibrary::lp65();
        let sa = optimized_mesh(&b, &lib, &quick());
        let trivial = optimized_mesh(&b, &lib, &MeshConfig { sa_iterations: 0, ..quick() });
        let weighted = |r: &MeshResult| -> f64 {
            r.topology
                .flow_paths
                .iter()
                .enumerate()
                .map(|(fi, p)| {
                    b.comm.flows[fi].bandwidth_mbs * (p.switches.len() - 1) as f64
                })
                .sum()
        };
        assert!(weighted(&sa) <= weighted(&trivial) + 1e-9);
    }

    #[test]
    fn deterministic() {
        let b = distributed(4);
        let lib = NocLibrary::lp65();
        let a = optimized_mesh(&b, &lib, &quick());
        let c = optimized_mesh(&b, &lib, &quick());
        assert_eq!(a.topology, c.topology);
    }
}
