//! Comparison baselines used in the SunFloor 3D evaluation.
//!
//! * [`synthesize_2d`] — the 2-D custom-topology synthesis flow of Murali et
//!   al. (paper reference \[16\]) that §VIII-C compares against: the same
//!   partition → route → place pipeline restricted to a single die, which
//!   is exactly what the original 2-D SunFloor was.
//! * [`optimized_mesh`] — the standard-topology baseline of §VIII-E: cores
//!   mapped onto a (2-D or 3-D) mesh minimizing bandwidth-weighted hop
//!   count under the latency constraints, dimension-ordered routing, and
//!   unused switch-to-switch links removed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow2d;
mod mesh;

pub use flow2d::synthesize_2d;
pub use mesh::{optimized_mesh, MeshConfig, MeshResult};
