//! The 2-D synthesis flow (paper reference [16]) used for the 2-D vs 3-D
//! comparison of §VIII-C / Table I.

use sunfloor_benchmarks::Benchmark;
use sunfloor_core::synthesis::{
    SynthesisConfig, SynthesisEngine, SynthesisError, SynthesisMode, SynthesisOutcome,
};

/// Runs the 2-D topology synthesis flow on a single-die benchmark (use
/// [`sunfloor_benchmarks::flatten_to_2d`] to produce one from a 3-D
/// benchmark).
///
/// On one layer, Phase 1 degenerates to exactly the 2-D SunFloor flow:
/// min-cut core-to-switch partitioning, deadlock-free path computation and
/// LP placement, with no vertical-link constraints in play.
///
/// # Errors
///
/// Returns [`SynthesisError`] for invalid specifications, and
/// `SynthesisError::Spec` when the benchmark is not single-layer.
pub fn synthesize_2d(
    bench: &Benchmark,
    cfg: &SynthesisConfig,
) -> Result<SynthesisOutcome, SynthesisError> {
    assert_eq!(
        bench.soc.layers, 1,
        "synthesize_2d expects a flattened single-layer benchmark"
    );
    let cfg2d = SynthesisConfig {
        mode: SynthesisMode::Phase1Only,
        // A single layer has no inter-layer links; the constraint is moot.
        max_ill: u32::MAX,
        ..cfg.clone()
    };
    Ok(SynthesisEngine::new(&bench.soc, &bench.comm, cfg2d)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunfloor_benchmarks::{distributed, flatten_to_2d};

    #[test]
    fn flow_produces_points_on_flattened_benchmark() {
        let b2 = flatten_to_2d(&distributed(4));
        let cfg = SynthesisConfig::builder()
            .switch_count_range(3, 8)
            .run_layout(false)
            .build()
            .unwrap();
        let outcome = synthesize_2d(&b2, &cfg).unwrap();
        assert!(!outcome.points.is_empty(), "rejected: {:?}", outcome.rejected);
        for p in &outcome.points {
            // A 2-D design has no vertical links at all.
            assert_eq!(p.metrics.max_inter_layer_links(), 0);
            assert!(p.topology.switch_layer.iter().all(|&l| l == 0));
        }
    }

    #[test]
    #[should_panic(expected = "single-layer")]
    fn rejects_multi_layer_input() {
        let b3 = distributed(4);
        let _ = synthesize_2d(&b3, &SynthesisConfig::default());
    }
}
