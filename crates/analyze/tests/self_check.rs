//! Acceptance tests running the analyzer over the *real* workspace tree
//! against the *committed* `lint-baseline.json`:
//!
//! - the tree is clean (no findings beyond the frozen baseline),
//! - deleting any one committed suppression makes the pass fail (every
//!   suppression is load-bearing, none is stale), and
//! - injecting a synthetic violation — a brand-new file or one more
//!   panic site in an already-baselined file — makes the pass fail.

use std::path::{Path, PathBuf};
use sunfloor_analyze::source::SourceFile;
use sunfloor_analyze::{analyze_sources, check_workspace, collect_sources, find_root, load_baseline};

fn root() -> PathBuf {
    find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root above crates/analyze")
}

#[test]
fn workspace_is_clean_against_committed_baseline() {
    let report = check_workspace(&root()).expect("workspace check runs");
    assert!(report.pass(), "workspace must lint clean:\n{}", report.render());
    assert!(
        report.findings.iter().all(|f| f.rule != "bad-suppression"),
        "no malformed or unused suppressions:\n{}",
        report.render()
    );
}

/// Strips the suppression comment starting on `comment_line` (1-indexed)
/// from `text`, keeping the line itself so numbering is undisturbed for
/// trailing suppressions.
fn strip_suppression(text: &str, comment_line: u32) -> String {
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        if i as u32 + 1 == comment_line {
            let cut = line.find("// sf-allow").expect("suppression on its recorded line");
            out.push_str(line[..cut].trim_end());
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn deleting_any_committed_suppression_fails_the_pass() {
    let root = root();
    let baseline = load_baseline(&root).expect("committed baseline parses");
    let sources = collect_sources(&root).expect("sources readable");

    let mut checked = 0usize;
    for (idx, (path, text)) in sources.iter().enumerate() {
        // The analyzer's own sources build suppression fixtures in string
        // literals and tests; only probe real, honored suppressions.
        let parsed = SourceFile::parse(path, text);
        for sup in &parsed.suppressions {
            let mut mutated = sources.clone();
            mutated[idx].1 = strip_suppression(text, sup.comment_line);
            let report = analyze_sources(&mutated, &baseline);
            assert!(
                !report.pass(),
                "removing the {} suppression at {path}:{} should fail the pass",
                sup.rule,
                sup.comment_line
            );
            checked += 1;
        }
    }
    assert!(checked >= 6, "expected the committed suppressions to be exercised, saw {checked}");
}

#[test]
fn injecting_a_synthetic_violation_fails_the_pass() {
    let root = root();
    let baseline = load_baseline(&root).expect("committed baseline parses");
    let sources = collect_sources(&root).expect("sources readable");

    // A brand-new file with a determinism violation: no baseline entry can
    // exist for it, so it must fail outright.
    let mut with_new_file = sources.clone();
    with_new_file.push((
        "crates/core/src/injected.rs".to_string(),
        "use std::collections::HashMap;\n".to_string(),
    ));
    let report = analyze_sources(&with_new_file, &baseline);
    assert!(!report.pass(), "new det-hash-iter file must fail");
    assert!(report.render().contains("crates/core/src/injected.rs"), "{}", report.render());

    // One more panic site in a file whose debt is already frozen: the
    // group exceeds its baselined count, so the ratchet must fire.
    let idx = sources
        .iter()
        .position(|(p, _)| p == "crates/benchmarks/src/synthetic.rs")
        .expect("synthetic.rs is analyzed");
    let mut grown = sources.clone();
    grown[idx].1.push_str("\nfn injected_probe(x: Option<u32>) -> u32 { x.unwrap() }\n");
    let report = analyze_sources(&grown, &baseline);
    assert!(!report.pass(), "one unwrap beyond the frozen count must fail");
    assert!(
        report
            .verdict
            .new_findings
            .iter()
            .any(|f| f.rule == "panic-in-lib" && f.path == "crates/benchmarks/src/synthetic.rs"),
        "{}",
        report.render()
    );
}

#[test]
fn allocation_in_unfenced_helper_reachable_from_hot_path_fails_with_chain() {
    let root = root();
    let baseline = load_baseline(&root).expect("committed baseline parses");
    let sources = collect_sources(&root).expect("sources readable");

    // `Tableau::row_prefix` carries no `// sf: hot-path` fence of its own,
    // but the fenced `price` in pricing.rs calls it — the transitive rule
    // must walk that edge and flag an allocation injected into the helper,
    // reporting the call chain from the fenced root.
    let idx = sources
        .iter()
        .position(|(p, _)| p == "crates/lp/src/solver/tableau.rs")
        .expect("tableau.rs is analyzed");
    let marker = "let stride = self.stride();";
    assert!(sources[idx].1.contains(marker), "row_prefix body changed; update this test");
    let mut mutated = sources.clone();
    mutated[idx].1 = mutated[idx].1.replacen(
        marker,
        "let stride = self.stride();\n        let _probe = vec![0u8; col_limit];",
        1,
    );
    let report = analyze_sources(&mutated, &baseline);
    assert!(!report.pass(), "allocation in a hot-reachable helper must fail the pass");
    let finding = report
        .verdict
        .new_findings
        .iter()
        .find(|f| f.rule == "hot-path-alloc" && f.path == "crates/lp/src/solver/tableau.rs")
        .unwrap_or_else(|| {
            panic!("expected a transitive hot-path-alloc finding:\n{}", report.render())
        });
    assert!(finding.message.contains("reachable from the hot path"), "{}", finding.message);
    assert!(finding.message.contains("row_prefix"), "names the helper: {}", finding.message);
    assert!(finding.message.contains(" → "), "renders the chain: {}", finding.message);
    assert!(finding.message.contains("price"), "chain starts at a fenced root: {}", finding.message);
}
