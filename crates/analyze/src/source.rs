//! The analyzed view of one source file: its tokens plus the structural
//! facts rules need — which crate it belongs to, which token ranges are
//! test code, which functions are fenced `// sf: hot-path`, and which
//! lines carry `// sf-allow(rule): reason` suppressions.

use crate::lexer::{lex, Token, TokenKind};

/// Crates whose results must be bit-for-bit reproducible: everything that
/// feeds the golden-fingerprint determinism suites. The `det-*` rules only
/// fire inside these.
pub const DETERMINISTIC_CRATES: &[&str] =
    &["core", "partition", "floorplan", "lp", "models", "baselines"];

/// An inline suppression: `// sf-allow(rule): reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule the suppression targets.
    pub rule: String,
    /// Mandatory justification (trimmed, non-empty once validated).
    pub reason: String,
    /// Line the suppression comment sits on.
    pub comment_line: u32,
    /// Line whose findings it suppresses (same line for trailing comments,
    /// the next code line for standalone comment lines).
    pub target_line: u32,
}

/// A `// sf-allow` comment that does not parse: missing reason, missing
/// rule, or bad shape. Always a hard failure — suppressions must justify
/// themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedSuppression {
    /// Line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// A function body fenced `// sf: hot-path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotRegion {
    /// Name of the fenced function.
    pub fn_name: String,
    /// Token-index range of the function (from the `fn` keyword through
    /// the closing brace of its body).
    pub tokens: (usize, usize),
}

/// One source file, lexed and annotated.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Crate directory name (`core` for `crates/core/src/…`), or the
    /// workspace-root facade name for `src/`, `tests/`, `examples/`.
    pub crate_name: String,
    /// Whether the *whole file* is test/bench/example code by location.
    pub file_is_test: bool,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Token-index ranges under `#[cfg(test)]`.
    pub test_regions: Vec<(usize, usize)>,
    /// Hot-path fenced functions.
    pub hot_regions: Vec<HotRegion>,
    /// Parsed suppressions.
    pub suppressions: Vec<Suppression>,
    /// Suppression comments that failed to parse.
    pub malformed: Vec<MalformedSuppression>,
}

impl SourceFile {
    /// Lexes and annotates `text` as the file at `path` (repo-relative,
    /// forward slashes).
    #[must_use]
    pub fn parse(path: &str, text: &str) -> Self {
        let tokens = lex(text);
        let crate_name = crate_of(path);
        let file_is_test = path_is_test(path);
        let test_regions = find_test_regions(&tokens);
        let hot_regions = find_hot_regions(&tokens);
        let (suppressions, malformed) = find_suppressions(&tokens);
        Self {
            path: path.to_string(),
            crate_name,
            file_is_test,
            tokens,
            test_regions,
            hot_regions,
            suppressions,
            malformed,
        }
    }

    /// Whether this file belongs to a deterministic crate.
    #[must_use]
    pub fn is_deterministic_crate(&self) -> bool {
        DETERMINISTIC_CRATES.contains(&self.crate_name.as_str())
    }

    /// Whether token `idx` is test code — either the whole file is, or the
    /// token falls in a `#[cfg(test)]` region.
    #[must_use]
    pub fn token_is_test(&self, idx: usize) -> bool {
        self.file_is_test || self.test_regions.iter().any(|&(s, e)| idx >= s && idx <= e)
    }

    /// The hot region containing token `idx`, if any.
    #[must_use]
    pub fn hot_region_of(&self, idx: usize) -> Option<&HotRegion> {
        self.hot_regions.iter().find(|h| idx >= h.tokens.0 && idx <= h.tokens.1)
    }
}

/// Crate directory name from a repo-relative path.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("").to_string(),
        // Workspace-root facade package: src/, tests/, examples/.
        _ => "sunfloor".to_string(),
    }
}

/// Test/bench/example code by file location alone.
fn path_is_test(path: &str) -> bool {
    let in_dir = |d: &str| path.starts_with(&format!("{d}/")) || path.contains(&format!("/{d}/"));
    in_dir("tests") || in_dir("benches") || in_dir("examples") || path.ends_with("/tests.rs")
}

/// Index of the matching close brace for the open brace at `open`
/// (comments ignored); `None` if unbalanced.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Finds token ranges guarded by `#[cfg(test)]`: from the attribute through
/// the guarded item's closing `}` (or `;` for `mod tests;` / `use` items).
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            // Scan forward to the guarded item's body (first `{` before any
            // `;` ends the item at its matching brace; a `;` first means a
            // braceless item).
            let mut j = i;
            let mut end = None;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    end = matching_brace(tokens, j);
                    break;
                }
                if tokens[j].is_punct(';') {
                    end = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(e) = end {
                out.push((i, e));
                i = e + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Whether tokens at `i` spell `#[cfg(test)]` (comments skipped).
fn is_cfg_test_at(tokens: &[Token], i: usize) -> bool {
    let expected: [&dyn Fn(&Token) -> bool; 7] = [
        &|t| t.is_punct('#'),
        &|t| t.is_punct('['),
        &|t| t.is_ident("cfg"),
        &|t| t.is_punct('('),
        &|t| t.is_ident("test"),
        &|t| t.is_punct(')'),
        &|t| t.is_punct(']'),
    ];
    let mut j = i;
    for check in expected {
        // Comments may sit between attribute tokens; skip them.
        while tokens.get(j).is_some_and(|t| t.kind == TokenKind::Comment) {
            j += 1;
        }
        match tokens.get(j) {
            Some(t) if check(t) => j += 1,
            _ => return false,
        }
    }
    true
}

/// Finds `// sf: hot-path` fences. The fence marks the *next* `fn` after
/// the comment; the region runs from that `fn` keyword through its body's
/// closing brace, so attributes and doc lines between fence and `fn` are
/// fine.
fn find_hot_regions(tokens: &[Token]) -> Vec<HotRegion> {
    let mut out = Vec::new();
    for (ci, c) in tokens.iter().enumerate() {
        if c.kind != TokenKind::Comment || c.text.trim() != "sf: hot-path" {
            continue;
        }
        let Some(fn_idx) = (ci + 1..tokens.len()).find(|&j| tokens[j].is_ident("fn")) else {
            continue;
        };
        let fn_name = tokens
            .get(fn_idx + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map_or_else(|| "<anonymous>".to_string(), |t| t.text.clone());
        let Some(open) = (fn_idx..tokens.len()).find(|&j| tokens[j].is_punct('{')) else {
            continue;
        };
        if let Some(close) = matching_brace(tokens, open) {
            out.push(HotRegion { fn_name, tokens: (fn_idx, close) });
        }
    }
    out
}

/// Parses every `sf-allow` comment into a [`Suppression`] or a
/// [`MalformedSuppression`].
fn find_suppressions(tokens: &[Token]) -> (Vec<Suppression>, Vec<MalformedSuppression>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for (ci, c) in tokens.iter().enumerate() {
        if c.kind != TokenKind::Comment {
            continue;
        }
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("sf-allow") else { continue };
        let parsed = parse_allow(rest);
        match parsed {
            Ok((rule, reason)) => {
                let target_line = suppression_target(tokens, ci);
                ok.push(Suppression { rule, reason, comment_line: c.line, target_line });
            }
            Err(problem) => bad.push(MalformedSuppression { line: c.line, problem }),
        }
    }
    (ok, bad)
}

/// Parses the tail of `sf-allow…`: expects `(rule): reason`.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `sf-allow(rule): reason`".to_string())?;
    let (rule, after) =
        rest.split_once(')').ok_or_else(|| "unclosed rule name parenthesis".to_string())?;
    let rule = rule.trim();
    if rule.is_empty() {
        return Err("empty rule name".to_string());
    }
    let reason = after
        .strip_prefix(':')
        .ok_or_else(|| "missing `:` before the reason".to_string())?
        .trim();
    if reason.is_empty() {
        return Err(format!("suppression of `{rule}` carries no reason — a reason is mandatory"));
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// The line a suppression applies to: its own line when code precedes the
/// comment on that line, otherwise the next line holding a non-comment
/// token.
fn suppression_target(tokens: &[Token], comment_idx: usize) -> u32 {
    let line = tokens[comment_idx].line;
    let has_code_before = tokens[..comment_idx]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .any(|t| t.kind != TokenKind::Comment);
    if has_code_before {
        return line;
    }
    tokens[comment_idx + 1..]
        .iter()
        .find(|t| t.kind != TokenKind::Comment)
        .map_or(line, |t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/core/src/paths.rs"), "core");
        assert_eq!(crate_of("crates/lp/src/solver/warm.rs"), "lp");
        assert_eq!(crate_of("src/lib.rs"), "sunfloor");
        assert_eq!(crate_of("tests/determinism.rs"), "sunfloor");
    }

    #[test]
    fn test_paths_detected() {
        assert!(path_is_test("tests/full_flow.rs"));
        assert!(path_is_test("crates/core/tests/properties.rs"));
        assert!(path_is_test("crates/bench/benches/synthesis.rs"));
        assert!(path_is_test("examples/quickstart.rs"));
        assert!(path_is_test("crates/partition/src/tests.rs"));
        assert!(!path_is_test("crates/core/src/paths.rs"));
    }

    #[test]
    fn cfg_test_region_covers_mod_block() {
        let f = SourceFile::parse(
            "crates/core/src/x.rs",
            "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn t() { inner(); }\n}\nfn after() {}",
        );
        assert_eq!(f.test_regions.len(), 1);
        let lib = f.tokens.iter().position(|t| t.is_ident("lib_code"));
        let inner = f.tokens.iter().position(|t| t.is_ident("inner"));
        let after = f.tokens.iter().position(|t| t.is_ident("after"));
        assert!(lib.is_some_and(|i| !f.token_is_test(i)));
        assert!(inner.is_some_and(|i| f.token_is_test(i)));
        assert!(after.is_some_and(|i| !f.token_is_test(i)));
    }

    #[test]
    fn cfg_test_on_braceless_item() {
        let f = SourceFile::parse("crates/core/src/x.rs", "#[cfg(test)]\nmod tests;\nfn real() {}");
        assert_eq!(f.test_regions.len(), 1);
        let real = f.tokens.iter().position(|t| t.is_ident("real"));
        assert!(real.is_some_and(|i| !f.token_is_test(i)));
    }

    #[test]
    fn hot_fence_marks_next_fn_body() {
        let src = "// sf: hot-path\n#[inline]\nfn fast(x: u32) -> u32 { x + helper() }\nfn slow() { other(); }";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.hot_regions.len(), 1);
        assert_eq!(f.hot_regions[0].fn_name, "fast");
        let helper = f.tokens.iter().position(|t| t.is_ident("helper"));
        let other = f.tokens.iter().position(|t| t.is_ident("other"));
        assert!(helper.is_some_and(|i| f.hot_region_of(i).is_some()));
        assert!(other.is_some_and(|i| f.hot_region_of(i).is_none()));
    }

    #[test]
    fn suppressions_parse_with_targets() {
        let src = "// sf-allow(det-hash-iter): keyed lookups only\nuse std::collections::HashMap;\nlet x = 1; // sf-allow(panic-in-lib): trailing case\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rule, "det-hash-iter");
        assert_eq!(f.suppressions[0].target_line, 2, "standalone comment targets the next line");
        assert_eq!(f.suppressions[1].target_line, 3, "trailing comment targets its own line");
        assert!(f.malformed.is_empty());
    }

    #[test]
    fn suppression_without_reason_is_malformed() {
        for bad in
            ["// sf-allow(det-hash-iter):", "// sf-allow(det-hash-iter)", "// sf-allow(): why"]
        {
            let f = SourceFile::parse("crates/core/src/x.rs", bad);
            assert!(f.suppressions.is_empty(), "{bad}");
            assert_eq!(f.malformed.len(), 1, "{bad}");
        }
    }

    #[test]
    fn suppression_inside_string_or_doc_example_is_inert() {
        let src = "let s = \"// sf-allow(det-hash-iter): in a string\";\n/// e.g. `// sf-allow(x): y`\nfn f() {}";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.suppressions.is_empty());
        assert!(f.malformed.is_empty());
    }
}
