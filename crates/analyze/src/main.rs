//! `sunfloor-analyze` — run the determinism & hot-path lint pass over the
//! workspace.
//!
//! ```text
//! sunfloor-analyze [--root DIR] [--write-baseline] [--quiet]
//!
//!   --root DIR         workspace root (default: nearest ancestor with
//!                      Cargo.toml + crates/)
//!   --write-baseline   rewrite lint-baseline.json to freeze the current
//!                      findings (use after paying down debt, or to ratchet
//!                      tighter after improvements)
//!   --quiet            print nothing on a clean pass
//! ```
//!
//! Exit codes: 0 clean, 1 new findings, 2 usage/I-O error.

use std::path::PathBuf;
use std::process::ExitCode;
use sunfloor_analyze::{baseline::Baseline, check_workspace, find_root, BASELINE_FILE};

struct Args {
    root: Option<PathBuf>,
    write_baseline: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args { root: None, write_baseline: false, quiet: false };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                parsed.root = Some(PathBuf::from(v));
            }
            "--write-baseline" => parsed.write_baseline = true,
            "--quiet" => parsed.quiet = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: sunfloor-analyze [--root DIR] [--write-baseline] [--quiet]");
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = args.root.or_else(|| find_root(&cwd)) else {
        eprintln!("error: no workspace root found above {} (want Cargo.toml + crates/)", cwd.display());
        return ExitCode::from(2);
    };

    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let frozen = Baseline::from_findings(&report.findings);
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, frozen.to_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} entries freezing {} findings)",
            path.display(),
            frozen.entries.len(),
            report.findings.iter().filter(|f| f.rule != "bad-suppression").count()
        );
        // Bad suppressions are never baselinable; still fail on them.
        let bad = report.findings.iter().filter(|f| f.rule == "bad-suppression").count();
        if bad > 0 {
            eprintln!("{bad} bad-suppression finding(s) cannot be baselined:");
            for f in report.findings.iter().filter(|f| f.rule == "bad-suppression") {
                eprintln!("  {f}");
            }
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    if !report.pass() {
        print!("{}", report.render());
        return ExitCode::from(1);
    }
    if !args.quiet {
        print!("{}", report.render());
    }
    ExitCode::SUCCESS
}
