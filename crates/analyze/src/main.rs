//! `sunfloor-analyze` — run the determinism & hot-path lint pass over the
//! workspace.
//!
//! ```text
//! sunfloor-analyze [--root DIR] [--write-baseline] [--quiet] [--json] [--github]
//!
//!   --root DIR         workspace root (default: nearest ancestor with
//!                      Cargo.toml + crates/)
//!   --write-baseline   rewrite lint-baseline.json to freeze the current
//!                      findings (use after paying down debt, or to ratchet
//!                      tighter after improvements)
//!   --quiet            print nothing on a clean pass
//!   --json             machine-readable report on stdout: a stable, sorted
//!                      findings array plus counters (for tooling; implies
//!                      nothing about exit codes, which are unchanged)
//!   --github           emit GitHub Actions `::error file=…,line=…::`
//!                      workflow annotations for every NEW finding, so CI
//!                      failures surface inline on the PR diff
//! ```
//!
//! Exit codes: 0 clean, 1 new findings, 2 usage/I-O error.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use sunfloor_analyze::rules::Finding;
use sunfloor_analyze::{baseline::Baseline, check_workspace, find_root, Report, BASELINE_FILE};

struct Args {
    root: Option<PathBuf>,
    write_baseline: bool,
    quiet: bool,
    json: bool,
    github: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed =
        Args { root: None, write_baseline: false, quiet: false, json: false, github: false };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                parsed.root = Some(PathBuf::from(v));
            }
            "--write-baseline" => parsed.write_baseline = true,
            "--quiet" => parsed.quiet = true,
            "--json" => parsed.json = true,
            "--github" => parsed.github = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report: the full (already path/line/rule-sorted)
/// findings array, whether each is frozen by the baseline, and the
/// counters the human rendering summarizes. Output is byte-stable for a
/// given tree + baseline.
fn render_json(report: &Report) -> String {
    let is_new = |f: &Finding| {
        report.verdict.new_findings.iter().any(|n| {
            n.path == f.path && n.line == f.line && n.rule == f.rule && n.message == f.message
        })
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files\": {},", report.files);
    let _ = writeln!(out, "  \"suppressions_used\": {},", report.suppressions_used);
    let _ = writeln!(out, "  \"frozen\": {},", report.verdict.frozen);
    let _ = writeln!(out, "  \"new\": {},", report.verdict.new_findings.len());
    let _ = writeln!(out, "  \"stale_ratchet\": {},", !report.verdict.improved.is_empty());
    let _ = writeln!(out, "  \"pass\": {},", report.pass());
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"new\": {}, \"message\": \"{}\"}}",
            if i == 0 { "" } else { "," },
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            is_new(f),
            json_escape(&f.message)
        );
    }
    if report.findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// GitHub Actions workflow annotations for the findings CI should block
/// on: one `::error` per new finding, one per stale-ratchet group.
/// Annotation bodies must be single-line; `%`, CR and LF are escaped per
/// the workflow-command encoding rules.
fn render_github(report: &Report) -> String {
    let esc = |s: &str| s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A");
    let mut out = String::new();
    for f in &report.verdict.new_findings {
        let _ = writeln!(
            out,
            "::error file={},line={},title=sunfloor-analyze {}::{}",
            esc(&f.path),
            f.line,
            esc(f.rule),
            esc(&f.message)
        );
    }
    for (k, allowed, current) in &report.verdict.improved {
        let _ = writeln!(
            out,
            "::error title=sunfloor-analyze stale ratchet::{} is down to {} (baseline {}); \
             lock the improvement in with --write-baseline",
            esc(k),
            current,
            allowed
        );
    }
    out
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: sunfloor-analyze [--root DIR] [--write-baseline] [--quiet] [--json] [--github]"
            );
            return ExitCode::from(2);
        }
    };
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = args.root.or_else(|| find_root(&cwd)) else {
        eprintln!("error: no workspace root found above {} (want Cargo.toml + crates/)", cwd.display());
        return ExitCode::from(2);
    };

    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let frozen = Baseline::from_findings(&report.findings);
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, frozen.to_json()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} entries freezing {} findings)",
            path.display(),
            frozen.entries.len(),
            report.findings.iter().filter(|f| f.rule != "bad-suppression").count()
        );
        // Bad suppressions are never baselinable; still fail on them.
        let bad = report.findings.iter().filter(|f| f.rule == "bad-suppression").count();
        if bad > 0 {
            eprintln!("{bad} bad-suppression finding(s) cannot be baselined:");
            for f in report.findings.iter().filter(|f| f.rule == "bad-suppression") {
                eprintln!("  {f}");
            }
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    if args.github {
        // Annotations go to stdout — the Actions runner scans it for
        // workflow commands; a clean pass emits none.
        print!("{}", render_github(&report));
    }
    if args.json {
        print!("{}", render_json(&report));
        return if report.pass() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    if !report.pass() {
        print!("{}", report.render());
        return ExitCode::from(1);
    }
    if !args.quiet {
        print!("{}", report.render());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunfloor_analyze::analyze_sources;

    fn report_for(sources: &[(&str, &str)], baseline: &Baseline) -> Report {
        let owned: Vec<(String, String)> =
            sources.iter().map(|(p, t)| ((*p).to_string(), (*t).to_string())).collect();
        analyze_sources(&owned, baseline)
    }

    #[test]
    fn json_output_is_byte_stable_and_flags_new_vs_frozen() {
        let frozen_src = ("crates/sim/src/a.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        let base = Baseline::from_findings(
            &report_for(&[frozen_src], &Baseline::default()).findings,
        );
        let sources =
            [frozen_src, ("crates/sim/src/b.rs", "fn g(x: Option<u32>) -> u32 { x.unwrap() }")];
        let report = report_for(&sources, &base);
        let json = render_json(&report);
        assert_eq!(json, render_json(&report_for(&sources, &base)), "byte-stable");
        assert!(json.contains("\"pass\": false"), "{json}");
        assert!(json.contains(r#""path": "crates/sim/src/a.rs", "line": 1, "new": false"#), "{json}");
        assert!(json.contains(r#""path": "crates/sim/src/b.rs", "line": 1, "new": true"#), "{json}");
        let a = json.find("crates/sim/src/a.rs").expect("frozen finding listed");
        let b = json.find("crates/sim/src/b.rs").expect("new finding listed");
        assert!(a < b, "findings sorted by path");
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn github_annotations_cover_new_findings_and_stale_ratchets_only() {
        let frozen_src = ("crates/sim/src/a.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        let base = Baseline::from_findings(
            &report_for(&[frozen_src], &Baseline::default()).findings,
        );
        // Frozen debt: no annotations.
        assert_eq!(render_github(&report_for(&[frozen_src], &base)), "");
        // A new finding annotates its file and line.
        let grown = [frozen_src, ("crates/sim/src/b.rs", "fn g() { panic!(\"x\") }")];
        let gh = render_github(&report_for(&grown, &base));
        assert!(gh.contains("::error file=crates/sim/src/b.rs,line=1,"), "{gh}");
        assert!(!gh.contains("a.rs"), "frozen debt is not annotated: {gh}");
        // A stale ratchet (debt paid down, baseline not re-frozen) annotates.
        let gh = render_github(&report_for(&[("crates/sim/src/a.rs", "fn f() {}")], &base));
        assert!(gh.contains("stale ratchet"), "{gh}");
        assert!(gh.contains("--write-baseline"), "{gh}");
    }
}
