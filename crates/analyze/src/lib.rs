//! `sunfloor-analyze` — the workspace's determinism & hot-path lint pass.
//!
//! The engine's headline guarantee — serial and parallel sweeps are
//! bit-for-bit identical — used to rest on convention. This crate turns the
//! conventions into enforced rules: a dependency-free, hand-rolled Rust
//! lexer ([`lexer`]), a workspace symbol table and call graph
//! ([`symbols`], [`callgraph`]), a rule engine ([`rules`]) with six rules,
//! inline `// sf-allow(rule): reason` suppressions that *require* a reason
//! ([`source`]), and a committed ratchet baseline (`lint-baseline.json`,
//! [`baseline`]) that freezes pre-existing debt so only new findings fail —
//! and fails when the frozen budget goes stale (self-tightening).
//!
//! The rules:
//!
//! | rule | scope | what it catches |
//! |------|-------|-----------------|
//! | `det-hash-iter` | deterministic crates | `HashMap`/`HashSet` (nondeterministic iteration order) |
//! | `float-partial-cmp` | everywhere | `partial_cmp(…).unwrap()` instead of `total_cmp` |
//! | `nondet-source` | deterministic crates | `Instant::now`, `SystemTime::now`, `thread_rng`, env reads |
//! | `panic-in-lib` | non-test code, ratcheted | `unwrap()`/`expect(…)`/`panic!` |
//! | `hot-path-alloc` | `// sf: hot-path` fenced fns + transitive callees | `Vec::new`, `vec!`, `collect`, `clone`, `format!`, `Box::new` |
//! | `hot-path-panic` | fenced fns + transitive callees | `unwrap()`/`expect(…)`/`panic!` reachable from a hot loop |
//!
//! The two hot-path rules are *transitive*: reachability is computed over
//! the workspace call graph from every fenced fn (within the hot crates
//! `core`, `partition`, `floorplan`, `lp`), and a violation in an unfenced
//! helper is reported at the offending line together with the call chain
//! that makes it hot.
//!
//! Run it over the workspace with `cargo run -p sunfloor-analyze`; CI runs
//! the same command, and the repo's tier-1 integration tests call
//! [`check_workspace`] directly so `cargo test -q` enforces a clean pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod symbols;

use baseline::{Baseline, RatchetVerdict};
use rules::{check_files, Finding};
use source::SourceFile;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed ratchet baseline at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Directories never analyzed: build output, VCS metadata, and the
/// `shims/` stand-ins for unreachable crates.io dependencies (vendored
/// API mimicry, not code this workspace owns the style of).
const SKIP_DIRS: &[&str] = &["target", ".git", "shims"];

/// The result of analyzing a set of sources against a baseline.
#[derive(Debug)]
pub struct Report {
    /// Files analyzed.
    pub files: usize,
    /// Suppressions consumed by a matching finding.
    pub suppressions_used: usize,
    /// All unsuppressed findings (pre-ratchet).
    pub findings: Vec<Finding>,
    /// The ratchet verdict against the baseline.
    pub verdict: RatchetVerdict,
}

impl Report {
    /// Whether the pass is clean (no findings beyond the frozen baseline).
    #[must_use]
    pub fn pass(&self) -> bool {
        self.verdict.pass()
    }

    /// Human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.verdict.new_findings.is_empty() {
            let _ = writeln!(out, "new findings (not in {BASELINE_FILE}):");
            for f in &self.verdict.new_findings {
                let _ = writeln!(out, "  {f}");
            }
        }
        for (k, allowed, current) in &self.verdict.improved {
            let _ = writeln!(
                out,
                "ratchet is stale — re-freeze: {k} is down to {current} (baseline {allowed}); \
                 lock the improvement in with --write-baseline"
            );
        }
        let _ = writeln!(
            out,
            "sunfloor-analyze: {} files, {} findings ({} frozen by baseline, {} new), \
             {} suppressions honored — {}",
            self.files,
            self.findings.len(),
            self.verdict.frozen,
            self.verdict.new_findings.len(),
            self.suppressions_used,
            if self.pass() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Analyzes in-memory `(path, text)` sources against `baseline`.
///
/// This is the seam the tests use: the workspace runner loads files from
/// disk, while unit/acceptance tests can rewrite sources (e.g. delete a
/// suppression) and re-analyze without touching the tree.
#[must_use]
pub fn analyze_sources(inputs: &[(String, String)], baseline: &Baseline) -> Report {
    let files: Vec<SourceFile> =
        inputs.iter().map(|(path, text)| SourceFile::parse(path, text)).collect();
    let (mut findings, suppressions_used) = check_files(&files);
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let verdict = baseline.ratchet(&findings);
    Report { files: inputs.len(), suppressions_used, findings, verdict }
}

/// Recursively collects every `.rs` file under `root` (skipping
/// `SKIP_DIRS`), as repo-relative forward-slash paths with their text,
/// sorted by path so analysis order — and therefore output — is
/// deterministic.
///
/// # Errors
///
/// Propagates I/O failures from directory walking or file reads.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = fs::read_to_string(root.join(&rel))?;
        out.push((rel, text));
    }
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                walk(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Errors from the full workspace check.
#[derive(Debug)]
pub enum CheckError {
    /// Reading sources or the baseline failed.
    Io(io::Error),
    /// `lint-baseline.json` exists but does not parse — a hard error, never
    /// a silent pass.
    BadBaseline(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadBaseline(e) => write!(f, "malformed {BASELINE_FILE}: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<io::Error> for CheckError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Loads the baseline at `root` (absent file = empty baseline, so a fresh
/// checkout without one simply requires a fully clean tree).
///
/// # Errors
///
/// I/O failures and parse failures ([`CheckError::BadBaseline`]).
pub fn load_baseline(root: &Path) -> Result<Baseline, CheckError> {
    let path = root.join(BASELINE_FILE);
    if !path.exists() {
        return Ok(Baseline::default());
    }
    let text = fs::read_to_string(path)?;
    Baseline::parse(&text).map_err(CheckError::BadBaseline)
}

/// Runs the full pass over the workspace at `root` against its committed
/// baseline.
///
/// # Errors
///
/// See [`CheckError`].
pub fn check_workspace(root: &Path) -> Result<Report, CheckError> {
    let baseline = load_baseline(root)?;
    let sources = collect_sources(root)?;
    Ok(analyze_sources(&sources, &baseline))
}

/// Locates the workspace root from `start`: the nearest ancestor holding
/// both a `Cargo.toml` and a `crates/` directory.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").exists() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> (String, String) {
        (path.to_string(), text.to_string())
    }

    #[test]
    fn clean_sources_pass_against_empty_baseline() {
        let files = [src("crates/core/src/x.rs", "fn f(a: u32) -> u32 { a + 1 }")];
        let r = analyze_sources(&files, &Baseline::default());
        assert!(r.pass(), "{}", r.render());
        assert_eq!(r.files, 1);
    }

    #[test]
    fn injected_violation_fails_and_render_names_it() {
        let files = [
            src("crates/core/src/x.rs", "fn f(a: u32) -> u32 { a + 1 }"),
            src("crates/core/src/bad.rs", "use std::collections::HashMap;"),
        ];
        let r = analyze_sources(&files, &Baseline::default());
        assert!(!r.pass());
        let text = r.render();
        assert!(text.contains("crates/core/src/bad.rs:1"), "{text}");
        assert!(text.contains("det-hash-iter"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn baseline_freezes_existing_debt_but_not_growth() {
        let debt = src("crates/sim/src/x.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        let base = Baseline::from_findings(
            &analyze_sources(std::slice::from_ref(&debt), &Baseline::default()).findings,
        );
        assert!(analyze_sources(&[debt], &base).pass(), "frozen debt passes");
        let grown = src(
            "crates/sim/src/x.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        let r = analyze_sources(&[grown], &base);
        assert!(!r.pass(), "one new unwrap beyond the baseline fails");
        assert_eq!(r.verdict.new_findings.len(), 2, "the whole grown group is listed");
    }

    #[test]
    fn find_root_walks_up() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("repo root");
        assert!(root.join("crates/analyze").is_dir());
    }
}
