//! Intra-workspace call-edge extraction and hot-path reachability.
//!
//! For every symbol in a [`SymbolTable`], the call graph records which
//! other workspace symbols its body may call. Resolution is lexical and
//! deliberately conservative-towards-edges for the names that matter:
//!
//! - `foo(…)` — free call: resolves to free fns named `foo`, preferring a
//!   same-file definition, then same-crate, then workspace-wide.
//! - `Type::foo(…)` — qualified call: resolves to `foo` in `impl Type`
//!   (with `Self::` mapped to the enclosing impl); a lowercase qualifier
//!   is treated as a module path and resolves to free fns named `foo`.
//! - `recv.foo(…)` — method call: the receiver type is unknown to a
//!   lexer, so it resolves to every workspace *method* named `foo` —
//!   except ubiquitous std names ([`STD_METHODS`]), which would wire the
//!   whole workspace together through `push`/`get`/`len` lookalikes.
//!
//! [`Reachability`] then walks edges from the `// sf: hot-path` fenced
//! fns, restricted to the deterministic hot crates
//! ([`HOT_TRANSITIVE_CRATES`]), and keeps the shortest call chain to each
//! reached symbol so findings can explain *how* the hot path gets there.

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;
use std::collections::{BTreeMap, VecDeque};

/// Crates whose fns participate in transitive hot-path checking. The
/// other deterministic crates (`models`, `baselines`) hold no hot loops
/// and stay out so their accessors cannot create spurious chains.
pub const HOT_TRANSITIVE_CRATES: &[&str] = &["core", "partition", "floorplan", "lp"];

/// Std-prelude method names that are never resolved as workspace call
/// edges: a lexical resolver cannot tell `vec.push(x)` from a workspace
/// method named `push`, and these names are pervasive enough that linking
/// them would connect everything to everything.
pub const STD_METHODS: &[&str] = &[
    "push", "pop", "get", "get_mut", "len", "is_empty", "iter", "iter_mut", "into_iter", "next",
    "insert", "remove", "contains", "contains_key", "clear", "extend", "clone", "clone_from",
    "to_vec", "to_owned", "to_string", "collect", "map", "filter", "find", "position", "any",
    "all", "fold", "sum", "min", "max", "rev", "zip", "enumerate", "take", "skip", "chain",
    "count", "last", "first", "sort", "sort_by", "sort_by_key", "sort_unstable",
    "sort_unstable_by", "binary_search", "binary_search_by", "windows", "chunks", "split",
    "split_at", "swap", "fill", "resize", "truncate", "drain", "retain", "entry", "keys",
    "values", "unwrap", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "expect", "ok",
    "err", "as_ref", "as_mut", "as_slice", "as_str", "as_bytes", "borrow", "borrow_mut", "abs",
    "min_by", "max_by", "min_by_key", "max_by_key", "total_cmp", "partial_cmp", "cmp", "eq",
    "ne", "lt", "gt", "le", "ge", "hash", "fmt", "write", "writeln", "read", "flush", "lock",
    "load", "store", "fetch_add", "wait", "notify_all", "join", "spawn", "copied", "cloned",
    "flatten", "flat_map", "step_by", "saturating_sub", "saturating_add", "checked_sub",
    "checked_add", "wrapping_sub", "wrapping_add", "powi", "powf", "sqrt", "floor", "ceil",
    "round", "exp", "ln", "log2", "mul_add", "rem_euclid", "div_euclid", "to_bits",
    "from_bits", "is_finite", "is_nan", "then", "then_some", "and_then", "or_else", "map_or",
    "map_or_else", "ok_or", "ok_or_else", "take_while", "skip_while", "peekable", "peek",
    "starts_with", "ends_with", "trim", "parse", "chars", "bytes", "lines", "split_once",
    "replace", "concat", "repeat", "extend_from_slice", "push_str", "push_front", "push_back",
    "pop_front", "pop_back", "front", "back", "with_capacity", "reserve", "shrink_to_fit",
];

/// Rust keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "fn", "impl", "struct", "enum", "trait", "where", "unsafe", "let", "pub", "mod",
    "use", "ref", "mut", "dyn", "type", "const", "static", "crate", "super", "await", "async",
    "box", "yield",
];

/// One call site inside a symbol's body (kept for diagnostics/tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Calling symbol id.
    pub caller: usize,
    /// Called symbol id.
    pub callee: usize,
    /// 1-based line of the call.
    pub line: u32,
}

/// The per-symbol call edges of a workspace.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[sym]` — callee symbol ids, sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Every resolved call site.
    pub sites: Vec<CallSite>,
}

impl CallGraph {
    /// Extracts and resolves every call edge in `files` against `syms`.
    #[must_use]
    pub fn build(files: &[SourceFile], syms: &SymbolTable) -> Self {
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); syms.fns.len()];
        let mut sites = Vec::new();
        // Token index → symbol id per file, so call sites land in the
        // innermost enclosing symbol (symbols never partially overlap).
        for (caller, def) in syms.fns.iter().enumerate() {
            let file = &files[def.file];
            collect_calls(file, def.file, caller, def.body, syms, &mut edges, &mut sites);
        }
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
        }
        Self { edges, sites }
    }
}

/// Scans the body token range of `caller` for call sites and resolves
/// them.
#[allow(clippy::too_many_arguments)]
fn collect_calls(
    file: &SourceFile,
    file_idx: usize,
    caller: usize,
    body: (usize, usize),
    syms: &SymbolTable,
    edges: &mut [Vec<usize>],
    sites: &mut Vec<CallSite>,
) {
    let toks = &file.tokens;
    let next_code =
        |from: usize| (from..=body.1.min(toks.len() - 1)).find(|&j| toks[j].kind != TokenKind::Comment);
    let prev_code = |at: usize| (body.0..at).rev().find(|&j| toks[j].kind != TokenKind::Comment);
    let caller_owner = syms.fns[caller].owner.clone();

    for i in body.0..=body.1.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // A call looks like `name (` with no `!` (macro) in between.
        let Some(after) = next_code(i + 1) else { continue };
        if !toks[after].is_punct('(') {
            continue;
        }
        // `fn name(` is a definition (nested fn), not a call.
        if prev_code(i).is_some_and(|j| toks[j].is_ident("fn")) {
            continue;
        }
        let name = t.text.as_str();
        // Qualifier: `Q :: name (` or `. name (`.
        let mut qualifier: Option<&str> = None;
        let mut is_method_call = false;
        if let Some(p1) = prev_code(i) {
            if toks[p1].is_punct('.') {
                is_method_call = true;
            } else if toks[p1].is_punct(':') {
                if let Some(p2) = prev_code(p1) {
                    if toks[p2].is_punct(':') {
                        if let Some(p3) = prev_code(p2) {
                            if toks[p3].kind == TokenKind::Ident {
                                qualifier = Some(toks[p3].text.as_str());
                            }
                        }
                    }
                }
            }
        }
        let resolved = resolve(
            syms,
            name,
            qualifier,
            is_method_call,
            caller_owner.as_deref(),
            file_idx,
            &syms.fns[caller].crate_name,
        );
        for callee in resolved {
            if callee != caller {
                edges[caller].push(callee);
                sites.push(CallSite { caller, callee, line: t.line });
            }
        }
    }
}

/// Resolves one call by name/qualifier to candidate symbol ids. Test
/// symbols are never call targets (test helpers are unreachable from lib
/// code; shadowing lib names with test names must not create edges).
fn resolve(
    syms: &SymbolTable,
    name: &str,
    qualifier: Option<&str>,
    is_method_call: bool,
    caller_owner: Option<&str>,
    caller_file: usize,
    caller_crate: &str,
) -> Vec<usize> {
    let all = syms.candidates(name);
    if all.is_empty() {
        return Vec::new();
    }
    let live = |&id: &usize| !syms.fns[id].is_test;
    if is_method_call {
        if STD_METHODS.contains(&name) {
            return Vec::new();
        }
        return all.iter().copied().filter(live).filter(|&id| syms.fns[id].is_method).collect();
    }
    if let Some(q) = qualifier {
        let owner = if q == "Self" { caller_owner } else { Some(q) };
        let by_owner: Vec<usize> = all
            .iter()
            .copied()
            .filter(live)
            .filter(|&id| syms.fns[id].owner.as_deref() == owner)
            .collect();
        if !by_owner.is_empty() {
            return by_owner;
        }
        // A lowercase qualifier is a module path (`phase1::connectivity`),
        // which still names a free fn.
        if q.starts_with(|c: char| c.is_lowercase()) {
            return all
                .iter()
                .copied()
                .filter(live)
                .filter(|&id| syms.fns[id].owner.is_none())
                .collect();
        }
        return Vec::new();
    }
    // Free call: innermost match wins — same file, then same crate, then
    // anywhere (pub use re-exports make cross-crate free calls real).
    let free: Vec<usize> =
        all.iter().copied().filter(live).filter(|&id| syms.fns[id].owner.is_none()).collect();
    let same_file: Vec<usize> =
        free.iter().copied().filter(|&id| syms.fns[id].file == caller_file).collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> =
        free.iter().copied().filter(|&id| syms.fns[id].crate_name == caller_crate).collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    free
}

/// Shortest hot-path call chains: for each symbol reachable from a fenced
/// fn (roots included), the chain of symbol ids leading to it.
#[derive(Debug, Default)]
pub struct Reachability {
    /// Symbol id → call chain from a fenced root (`chain[0]` is the root,
    /// last element is the symbol itself).
    pub chains: BTreeMap<usize, Vec<usize>>,
}

impl Reachability {
    /// BFS from every hot-fenced symbol over `graph`, restricted to
    /// [`HOT_TRANSITIVE_CRATES`]. Roots are visited in symbol order, so
    /// chains are deterministic; ties keep the earliest-rooted, shortest
    /// chain.
    #[must_use]
    pub fn from_hot_fences(files: &[SourceFile], syms: &SymbolTable, graph: &CallGraph) -> Self {
        let mut roots: Vec<usize> = Vec::new();
        for (id, def) in syms.fns.iter().enumerate() {
            if def.is_test || !HOT_TRANSITIVE_CRATES.contains(&def.crate_name.as_str()) {
                continue;
            }
            let file = &files[def.file];
            if file.hot_regions.iter().any(|h| h.tokens.0 == def.body.0) {
                roots.push(id);
            }
        }
        let mut chains: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in &roots {
            if let std::collections::btree_map::Entry::Vacant(e) = chains.entry(r) {
                e.insert(vec![r]);
                queue.push_back(r);
            }
        }
        while let Some(s) = queue.pop_front() {
            let chain = chains[&s].clone();
            for &callee in &graph.edges[s] {
                let def = &syms.fns[callee];
                if def.is_test || !HOT_TRANSITIVE_CRATES.contains(&def.crate_name.as_str()) {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = chains.entry(callee) {
                    let mut c = chain.clone();
                    c.push(callee);
                    e.insert(c);
                    queue.push_back(callee);
                }
            }
        }
        Self { chains }
    }

    /// Renders a chain as `root → … → symbol` display names.
    #[must_use]
    pub fn render_chain(&self, syms: &SymbolTable, id: usize) -> String {
        self.chains.get(&id).map_or_else(String::new, |chain| {
            chain.iter().map(|&s| syms.display(s)).collect::<Vec<_>>().join(" → ")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolTable) {
        let files: Vec<SourceFile> =
            srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let syms = SymbolTable::build(&files);
        (files, syms)
    }

    fn id_of(syms: &SymbolTable, name: &str) -> usize {
        let c = syms.candidates(name);
        assert_eq!(c.len(), 1, "ambiguous {name}");
        c[0]
    }

    #[test]
    fn free_calls_resolve_same_file_first() {
        let (files, syms) = setup(&[
            ("crates/core/src/a.rs", "fn helper() {}\nfn caller() { helper(); }"),
            ("crates/lp/src/b.rs", "fn helper() {}"),
        ]);
        let g = CallGraph::build(&files, &syms);
        let caller = id_of(&syms, "caller");
        let helpers = syms.candidates("helper");
        let same_file =
            *helpers.iter().find(|&&h| syms.fns[h].file == syms.fns[caller].file).unwrap();
        assert_eq!(g.edges[caller], vec![same_file]);
    }

    #[test]
    fn qualified_and_method_calls_resolve_by_owner_and_name() {
        let (files, syms) = setup(&[(
            "crates/core/src/a.rs",
            "struct S;\nimpl S {\n    fn new() -> S { S }\n    fn work(&self) {}\n}\n\
             fn caller(s: &S) { let t = S::new(); s.work(); }",
        )]);
        let g = CallGraph::build(&files, &syms);
        let caller = id_of(&syms, "caller");
        let mut expect = vec![id_of(&syms, "new"), id_of(&syms, "work")];
        expect.sort_unstable();
        assert_eq!(g.edges[caller], expect);
    }

    #[test]
    fn std_method_names_do_not_create_edges() {
        let (files, syms) = setup(&[(
            "crates/core/src/a.rs",
            "struct S;\nimpl S {\n    fn push(&self) {}\n}\nfn caller(v: &mut Vec<u32>) { v.push(1); }",
        )]);
        let g = CallGraph::build(&files, &syms);
        let caller = id_of(&syms, "caller");
        assert!(g.edges[caller].is_empty(), "`push` is a std-prelude name: {:?}", g.edges);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (files, syms) = setup(&[(
            "crates/core/src/a.rs",
            "fn target() {}\nfn caller(n: u32) { if n > 0 { } vec![target; 1]; }",
        )]);
        let g = CallGraph::build(&files, &syms);
        let caller = id_of(&syms, "caller");
        assert!(g.edges[caller].is_empty(), "{:?}", g.sites);
    }

    #[test]
    fn reachability_follows_chains_within_hot_crates() {
        let (files, syms) = setup(&[(
            "crates/core/src/a.rs",
            "// sf: hot-path\nfn hot() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn cold() { leaf(); }",
        )]);
        let g = CallGraph::build(&files, &syms);
        let r = Reachability::from_hot_fences(&files, &syms, &g);
        let hot = id_of(&syms, "hot");
        let mid = id_of(&syms, "mid");
        let leaf = id_of(&syms, "leaf");
        let cold = id_of(&syms, "cold");
        assert_eq!(r.chains[&hot], vec![hot]);
        assert_eq!(r.chains[&mid], vec![hot, mid]);
        assert_eq!(r.chains[&leaf], vec![hot, mid, leaf]);
        assert!(!r.chains.contains_key(&cold));
        assert_eq!(r.render_chain(&syms, leaf), "core::a::hot → core::a::mid → core::a::leaf");
    }

    #[test]
    fn reachability_stops_at_non_hot_crates() {
        let (files, syms) = setup(&[
            ("crates/core/src/a.rs", "// sf: hot-path\nfn hot() { model_helper(); }"),
            ("crates/models/src/b.rs", "pub fn model_helper() { deeper(); }\nfn deeper() {}"),
        ]);
        let g = CallGraph::build(&files, &syms);
        let r = Reachability::from_hot_fences(&files, &syms, &g);
        assert_eq!(r.chains.len(), 1, "models is not a hot-transitive crate: {:?}", r.chains);
    }
}
