//! A hand-rolled Rust lexer — just enough tokenization for lint rules.
//!
//! The lexer splits source text into identifiers, punctuation, literals,
//! comments and lifetimes, each stamped with its 1-based line number. It is
//! deliberately *not* a full Rust lexer: its one job is to make sure rules
//! never match inside string literals or comments, and that comments (which
//! carry `sf-allow` suppressions and `sf: hot-path` fences) survive with
//! their text intact. The tricky corners it does handle correctly:
//!
//! - nested block comments (`/* /* */ */`),
//! - string escapes and raw strings (`r"…"`, `r#"…"#`, `br##"…"##`),
//! - char literals vs lifetimes (`'a'` vs `'a`),
//! - numbers containing `.` without swallowing range operators (`0..n`).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String, char, byte or numeric literal.
    Literal,
    /// Line or block comment; `text` holds the content after `//` or
    /// between `/*` and `*/`.
    Comment,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The token's text. For comments, the content without the delimiters.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexes `src` into tokens. Malformed input (unterminated strings or
/// comments) never panics: the open token simply extends to end of file.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { b: src.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push(TokenKind::Punct, self.pos, self.pos + 1, self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize, line: u32) {
        let text = String::from_utf8_lossy(&self.b[start..end.min(self.b.len())]).into_owned();
        self.out.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        let mut end = start;
        while end < self.b.len() && self.b[end] != b'\n' {
            end += 1;
        }
        self.push(TokenKind::Comment, start, end, line);
        self.pos = end;
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.b.len() && depth > 0 {
            match self.b[self.pos] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let end = if depth == 0 { self.pos - 2 } else { self.pos };
        self.push(TokenKind::Comment, start, end, line);
    }

    /// Ordinary (possibly byte-) string: `"…"` with `\` escapes.
    fn string(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.pos += 1;
        while self.pos < self.b.len() {
            match self.b[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Literal, start, self.pos.min(self.b.len()), line);
    }

    /// Raw string starting at `self.pos` (the `r`/`b` prefix already
    /// consumed by the caller): `#…#"` then content until `"` + same `#`s.
    fn raw_string(&mut self, start: usize) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.b.len() {
            if self.b[self.pos] == b'\n' {
                self.line += 1;
            }
            if self.b[self.pos] == b'"'
                && self.b[self.pos + 1..].iter().take(hashes).filter(|&&c| c == b'#').count()
                    == hashes
            {
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        self.push(TokenKind::Literal, start, self.pos.min(self.b.len()), line);
    }

    /// `'a'` / `'\n'` are char literals; `'a` / `'static` are lifetimes.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let start = self.pos;
        let next = self.peek(1);
        let is_char = match next {
            Some(b'\\') => true,
            Some(c) if is_ident_continue(c) => self.peek(2) == Some(b'\''),
            Some(_) => true, // e.g. `'.'`, `' '`
            None => false,
        };
        if is_char {
            self.pos += 1;
            if self.peek(0) == Some(b'\\') {
                self.pos += 2; // escape + escaped char
                while self.pos < self.b.len() && self.b[self.pos] != b'\'' {
                    self.pos += 1; // `\u{…}` payloads
                }
                self.pos += 1;
            } else {
                self.pos += 2; // char + closing quote
            }
            self.push(TokenKind::Literal, start, self.pos.min(self.b.len()), line);
        } else {
            self.pos += 1;
            let id_start = self.pos;
            while self.pos < self.b.len() && is_ident_continue(self.b[self.pos]) {
                self.pos += 1;
            }
            self.push(TokenKind::Lifetime, id_start, self.pos, line);
        }
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.b.len() && is_ident_continue(self.b[self.pos]) {
            self.pos += 1;
        }
        let ident = &self.b[start..self.pos];
        // Raw-string prefixes: the quote (or `#…"`) follows immediately.
        let raw_prefix = matches!(ident, b"r" | b"br" | b"rb");
        match self.peek(0) {
            Some(b'"') if raw_prefix => self.raw_string(start),
            Some(b'#') if raw_prefix && self.raw_hashes_then_quote() => self.raw_string(start),
            // Raw identifier `r#type`: one Ident token whose text keeps the
            // `r#` prefix, so `r#fn` / `r#unwrap` never masquerade as the
            // bare keyword or method name to the rules.
            Some(b'#') if ident == b"r" && self.peek(1).is_some_and(is_ident_start) => {
                self.pos += 1; // the `#`
                while self.pos < self.b.len() && is_ident_continue(self.b[self.pos]) {
                    self.pos += 1;
                }
                self.push(TokenKind::Ident, start, self.pos, line);
            }
            _ => self.push(TokenKind::Ident, start, self.pos, line),
        }
    }

    /// Whether `self.pos` sits on `#…#"` (a raw-string guard, not an
    /// attribute).
    fn raw_hashes_then_quote(&self) -> bool {
        let mut i = self.pos;
        while self.b.get(i) == Some(&b'#') {
            i += 1;
        }
        self.b.get(i) == Some(&b'"')
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else if c == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !self.b[start..self.pos].contains(&b'.')
            {
                // `1.5` but not `0..n` and not a second dot.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, start, self.pos, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = lex("let x = a.b();");
        assert_eq!(idents("let x = a.b();"), vec!["let", "x", "a", "b"]);
        assert!(toks.iter().any(|t| t.is_punct(';')));
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "HashMap unwrap";"#), vec!["let", "s"]);
        assert_eq!(idents("let s = \"multi\nline\"; x"), vec!["let", "s", "x"]);
        // Escaped quote does not end the string.
        assert_eq!(idents(r#"let s = "a\"HashMap"; y"#), vec!["let", "s", "y"]);
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        assert_eq!(idents(r##"let s = r"HashMap"; x"##), vec!["let", "s", "x"]);
        let src = "let s = r#\"unwrap \" still in\"#; tail";
        assert_eq!(idents(src), vec!["let", "s", "tail"]);
        let src = "let s = br##\"clone \"# nested\"##; tail";
        assert_eq!(idents(src), vec!["let", "s", "tail"]);
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let toks = lex("code(); // sf-allow(rule): why\nnext();");
        let c: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Comment).collect();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].text, " sf-allow(rule): why");
        assert_eq!(c[0].line, 1);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(idents("a /* outer /* inner */ still comment */ b"), vec!["a", "b"]);
        let c = toks.iter().find(|t| t.kind == TokenKind::Comment);
        assert!(c.is_some_and(|t| t.text.contains("inner")));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // `'a'` is a char literal, `'a` in a generic list is a lifetime.
        let toks = lex("fn f<'a>(c: char) { let x = 'a'; let nl = '\\n'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, vec!["a"]);
        let lits = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lits, 2, "{toks:?}");
        assert_eq!(idents("let x: &'static str = s;"), vec!["let", "x", "str", "s"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..n { let f = 1.5; }");
        let lits: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Literal).map(|t| &t.text).collect();
        assert_eq!(lits, vec!["0", "1.5"]);
        assert!(idents("for i in 0..n {}").contains(&"n".to_string()));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let toks = lex("a\n\nb // c\nd");
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(3));
        assert_eq!(find("d"), Some(4));
    }

    #[test]
    fn raw_identifiers_are_single_idents_not_raw_string_starts() {
        // `r#fn` must not look like the `fn` keyword (or a raw string).
        let toks = lex("let r#fn = r#type + r#unwrap();");
        let names: Vec<_> =
            toks.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str()).collect();
        assert_eq!(names, vec!["let", "r#fn", "r#type", "r#unwrap"]);
        assert!(!toks.iter().any(|t| t.is_ident("fn")), "{toks:?}");
        // The tail after a raw identifier is still lexed (no raw-string
        // swallow): the `(` and `;` survive as punctuation.
        assert!(toks.iter().any(|t| t.is_punct('(')));
        assert!(toks.iter().any(|t| t.is_punct(';')));
    }

    #[test]
    fn br_hash_without_quote_is_not_a_raw_string() {
        // `br#` at EOF (or before a non-quote) stays ident + punct.
        let toks = lex("br#");
        assert!(toks.iter().any(|t| t.is_ident("br")), "{toks:?}");
        assert!(toks.iter().any(|t| t.is_punct('#')), "{toks:?}");
        // …while a real raw byte string still lexes as one literal.
        assert_eq!(idents("let s = br#\"HashMap\"#; x"), vec!["let", "s", "x"]);
    }

    #[test]
    fn raw_strings_with_multiple_hashes() {
        let src = "let s = r###\"inner \"## still \" inside\"###; tail";
        assert_eq!(idents(src), vec!["let", "s", "tail"]);
        let toks = lex(src);
        let lit = toks.iter().find(|t| t.kind == TokenKind::Literal).expect("literal");
        assert!(lit.text.contains("still"), "{lit:?}");
    }

    #[test]
    fn unterminated_tokens_do_not_panic() {
        let _ = lex("let s = \"never closed");
        let _ = lex("/* never closed");
        let _ = lex("let s = r#\"never closed");
        let _ = lex("let c = '");
    }
}
