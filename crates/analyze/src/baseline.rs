//! The ratchet baseline: committed per-`(rule, file)` finding counts that
//! freeze pre-existing debt. A run fails only when some `(rule, file)`
//! group exceeds its baselined count — so new violations fail CI while the
//! frozen debt is paid down incrementally. Counts are keyed per file, not
//! per line, so unrelated edits that shift line numbers never churn the
//! baseline.
//!
//! The file format is a flat, hand-written JSON object (crates.io is
//! unreachable, so parsing is hand-rolled like the bench gate's):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "entries": {
//!     "panic-in-lib|crates/core/src/spec.rs": 3
//!   }
//! }
//! ```

use crate::rules::{Finding, BAD_SUPPRESSION};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Committed finding counts per `rule|file` key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `"rule|path"` → allowed count.
    pub entries: BTreeMap<String, u64>,
}

/// Outcome of diffing current findings against the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetVerdict {
    /// Findings exceeding their baseline budget (whole group listed when a
    /// group grows — lexical findings cannot tell old members from new).
    pub new_findings: Vec<Finding>,
    /// Findings covered by the baseline (frozen debt).
    pub frozen: usize,
    /// Groups now *below* their baseline: `(key, baselined, current)`.
    /// The ratchet is **self-tightening**: a stale (too-loose) baseline
    /// fails the pass until re-frozen with `--write-baseline`, so paid-down
    /// debt can never silently creep back.
    pub improved: Vec<(String, u64, u64)>,
}

impl RatchetVerdict {
    /// Whether the run passes the ratchet: no findings beyond the frozen
    /// budgets, *and* no budget looser than the live count (improvements
    /// must be locked in by re-freezing the baseline).
    #[must_use]
    pub fn pass(&self) -> bool {
        self.new_findings.is_empty() && self.improved.is_empty()
    }
}

impl Baseline {
    /// Builds the baseline that would freeze exactly `findings`.
    /// [`BAD_SUPPRESSION`] findings are never frozen: a suppression must
    /// be fixed, not ratcheted.
    #[must_use]
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: BTreeMap<String, u64> = BTreeMap::new();
        for f in findings {
            if f.rule != BAD_SUPPRESSION {
                *entries.entry(key(f)).or_insert(0) += 1;
            }
        }
        Self { entries }
    }

    /// Serializes to the committed JSON format (sorted keys, stable
    /// output).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"entries\": {\n");
        let n = self.entries.len();
        for (i, (k, v)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(out, "    \"{k}\": {v}{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the committed JSON format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformation: the ratchet must
    /// never silently pass because its baseline failed to parse.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser { b: text.as_bytes(), pos: 0 };
        let mut entries = BTreeMap::new();
        p.skip_ws();
        p.expect_byte(b'{')?;
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let k = p.string()?;
            p.skip_ws();
            p.expect_byte(b':')?;
            p.skip_ws();
            if k == "entries" {
                p.expect_byte(b'{')?;
                loop {
                    p.skip_ws();
                    if p.eat(b'}') {
                        break;
                    }
                    let ek = p.string()?;
                    p.skip_ws();
                    p.expect_byte(b':')?;
                    p.skip_ws();
                    let v = p.number()?;
                    if entries.insert(ek.clone(), v).is_some() {
                        return Err(format!("duplicate baseline key `{ek}`"));
                    }
                    p.skip_ws();
                    let _ = p.eat(b',');
                }
            } else {
                // Scalar metadata fields (`schema`, …): value must be a
                // bare number.
                let _ = p.number()?;
            }
            p.skip_ws();
            let _ = p.eat(b',');
        }
        Ok(Self { entries })
    }

    /// Diffs `findings` against this baseline.
    #[must_use]
    pub fn ratchet(&self, findings: &[Finding]) -> RatchetVerdict {
        // Group current findings by key, preserving order within a group.
        let mut groups: BTreeMap<String, Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            groups.entry(key(f)).or_default().push(f);
        }
        let mut new_findings = Vec::new();
        let mut frozen = 0usize;
        let mut improved = Vec::new();
        for (k, group) in &groups {
            let allowed = if group[0].rule == BAD_SUPPRESSION {
                0 // never baselinable, even by a hand-edited entry
            } else {
                self.entries.get(k).copied().unwrap_or(0)
            };
            let current = group.len() as u64;
            if current > allowed {
                new_findings.extend(group.iter().map(|&f| f.clone()));
            } else {
                frozen += group.len();
                if current < allowed {
                    improved.push((k.clone(), allowed, current));
                }
            }
        }
        // Groups that vanished entirely are also improvements.
        for (k, &allowed) in &self.entries {
            if !groups.contains_key(k) {
                improved.push((k.clone(), allowed, 0));
            }
        }
        improved.sort();
        RatchetVerdict { new_findings, frozen, improved }
    }
}

fn key(f: &Finding) -> String {
    format!("{}|{}", f.rule, f.path)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.b.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_byte(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(c), self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let start = self.pos;
        while self.pos < self.b.len() && self.b[self.pos] != b'"' {
            self.pos += 1; // keys never contain escapes
        }
        if self.pos >= self.b.len() {
            return Err("unterminated string".to_string());
        }
        let s = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.pos += 1;
        Ok(s)
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding { rule, path: path.to_string(), line, message: String::new() }
    }

    #[test]
    fn roundtrip_json() {
        let f = vec![
            finding("panic-in-lib", "crates/core/src/a.rs", 10),
            finding("panic-in-lib", "crates/core/src/a.rs", 20),
            finding("det-hash-iter", "crates/lp/src/b.rs", 5),
        ];
        let b = Baseline::from_findings(&f);
        let parsed = Baseline::parse(&b.to_json()).expect("roundtrip");
        assert_eq!(parsed, b);
        assert_eq!(parsed.entries["panic-in-lib|crates/core/src/a.rs"], 2);
        assert_eq!(parsed.entries["det-hash-iter|crates/lp/src/b.rs"], 1);
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse("{ \"schema\": 1, \"entries\": {} }").expect("empty");
        assert!(b.entries.is_empty());
        assert_eq!(Baseline::parse(&Baseline::default().to_json()), Ok(Baseline::default()));
    }

    #[test]
    fn malformed_baseline_is_an_error_not_a_silent_pass() {
        for bad in ["", "{", "{ \"entries\": { \"k\": }}", "{ \"entries\": [1] }"] {
            assert!(Baseline::parse(bad).is_err(), "{bad:?}");
        }
        let dup = "{ \"entries\": { \"a|b\": 1, \"a|b\": 2 } }";
        assert!(Baseline::parse(dup).expect_err("dup").contains("duplicate"));
    }

    #[test]
    fn ratchet_passes_at_or_below_budget_and_fails_above() {
        let frozen = vec![
            finding("panic-in-lib", "crates/core/src/a.rs", 10),
            finding("panic-in-lib", "crates/core/src/a.rs", 20),
        ];
        let b = Baseline::from_findings(&frozen);
        // Same count (lines moved): pass.
        let moved = vec![
            finding("panic-in-lib", "crates/core/src/a.rs", 11),
            finding("panic-in-lib", "crates/core/src/a.rs", 25),
        ];
        let v = b.ratchet(&moved);
        assert!(v.pass());
        assert_eq!(v.frozen, 2);
        // One more: the whole group is reported.
        let grew = vec![
            finding("panic-in-lib", "crates/core/src/a.rs", 10),
            finding("panic-in-lib", "crates/core/src/a.rs", 20),
            finding("panic-in-lib", "crates/core/src/a.rs", 30),
        ];
        let v = b.ratchet(&grew);
        assert!(!v.pass());
        assert_eq!(v.new_findings.len(), 3);
        // Fewer: the ratchet is stale — the pass fails until re-frozen.
        let shrunk = vec![finding("panic-in-lib", "crates/core/src/a.rs", 10)];
        let v = b.ratchet(&shrunk);
        assert!(!v.pass(), "a too-loose baseline must fail (self-tightening)");
        assert!(v.new_findings.is_empty());
        assert_eq!(v.improved, vec![("panic-in-lib|crates/core/src/a.rs".to_string(), 2, 1)]);
        // Re-freezing at the improved count passes again.
        let refrozen = Baseline::from_findings(&shrunk);
        assert!(refrozen.ratchet(&shrunk).pass());
    }

    #[test]
    fn unbaselined_file_fails_immediately() {
        let b = Baseline::default();
        let v = b.ratchet(&[finding("det-hash-iter", "crates/core/src/new.rs", 3)]);
        assert!(!v.pass());
        assert_eq!(v.new_findings.len(), 1);
    }

    #[test]
    fn bad_suppressions_cannot_be_baselined() {
        let f = vec![finding(BAD_SUPPRESSION, "crates/core/src/a.rs", 1)];
        assert!(Baseline::from_findings(&f).entries.is_empty(), "never written");
        // Even a hand-edited entry is ignored.
        let mut b = Baseline::default();
        b.entries.insert("bad-suppression|crates/core/src/a.rs".to_string(), 5);
        assert!(!b.ratchet(&f).pass(), "never honored");
    }

    #[test]
    fn vanished_groups_are_stale_ratchet_failures() {
        let b = Baseline::from_findings(&[finding("panic-in-lib", "crates/core/src/a.rs", 1)]);
        let v = b.ratchet(&[]);
        assert!(!v.pass(), "entry with no live findings means the ratchet is stale");
        assert_eq!(v.improved, vec![("panic-in-lib|crates/core/src/a.rs".to_string(), 1, 0)]);
        assert!(Baseline::default().ratchet(&[]).pass(), "re-frozen empty baseline passes");
    }

    #[test]
    fn to_json_is_byte_stable_and_idempotent() {
        let f = vec![
            finding("panic-in-lib", "crates/core/src/b.rs", 2),
            finding("panic-in-lib", "crates/core/src/a.rs", 1),
            finding("det-hash-iter", "crates/lp/src/z.rs", 9),
        ];
        let b = Baseline::from_findings(&f);
        let json = b.to_json();
        assert!(json.ends_with("}\n"), "trailing newline: {json:?}");
        let keys: Vec<&str> =
            json.lines().filter(|l| l.contains('|')).map(str::trim).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "entries serialize sorted");
        // Parse → serialize → parse is a fixed point byte-for-byte.
        let reparsed = Baseline::parse(&json).expect("own output parses");
        assert_eq!(reparsed.to_json(), json, "serialization is idempotent");
        assert_eq!(reparsed.to_json(), reparsed.to_json(), "and byte-stable across calls");
    }
}
