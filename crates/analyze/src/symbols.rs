//! Workspace symbol extraction: every `fn`/method definition, per crate
//! and module, recovered from the token streams the lexer already
//! produces.
//!
//! A [`SymbolTable`] is the substrate the call graph ([`crate::callgraph`])
//! resolves names against. Extraction is lexical but structure-aware: it
//! tracks `impl` blocks (so methods know their owning type), skips
//! bodiless trait-method declarations, and records whether a definition
//! sits in test code so test-only helpers never become call-graph targets
//! for the hot-path rules.

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One `fn` definition somewhere in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` type the definition sits in, if any (`None` = free fn).
    pub owner: Option<String>,
    /// Index of the defining file in the analyzed file slice.
    pub file: usize,
    /// Crate the definition belongs to (directory name under `crates/`).
    pub crate_name: String,
    /// Display module path, e.g. `core::synthesis::engine`.
    pub module: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the definition in its file: from the `fn`
    /// keyword through the body's closing brace.
    pub body: (usize, usize),
    /// Whether the definition is test code (test file or `#[cfg(test)]`).
    pub is_test: bool,
    /// Whether the first parameter is `self` (a method).
    pub is_method: bool,
}

/// All [`FnDef`]s of an analyzed file set, indexed by simple name.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every extracted definition, in (file, token) order.
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Extracts every fn/method definition from `files`.
    #[must_use]
    pub fn build(files: &[SourceFile]) -> Self {
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            extract_file(fi, file, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Self { fns, by_name }
    }

    /// Symbol ids whose simple name is `name` (definition order).
    #[must_use]
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// `module::name` (methods display as `module::Owner::name`).
    #[must_use]
    pub fn display(&self, id: usize) -> String {
        let f = &self.fns[id];
        match &f.owner {
            Some(o) => format!("{}::{}::{}", f.module, o, f.name),
            None => format!("{}::{}", f.module, f.name),
        }
    }
}

/// Display module path from a repo-relative file path:
/// `crates/core/src/synthesis/engine.rs` → `core::synthesis::engine`.
fn module_of(path: &str) -> String {
    let trimmed = path.strip_suffix(".rs").unwrap_or(path);
    let mut segs: Vec<&str> = trimmed
        .split('/')
        .filter(|s| !matches!(*s, "crates" | "src"))
        .collect();
    if segs.last().is_some_and(|s| matches!(*s, "lib" | "main" | "mod")) {
        segs.pop();
    }
    segs.join("::")
}

/// Walks one file's tokens, tracking `impl`-block ownership by brace
/// depth, and records each `fn name … { … }` definition.
fn extract_file(fi: usize, file: &SourceFile, out: &mut Vec<FnDef>) {
    let toks = &file.tokens;
    // `impl` owners by the brace depth their block body opened at.
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Comment {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while impl_stack.last().is_some_and(|&(d, _)| d > depth) {
                impl_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((owner, body_open)) = impl_owner(file, i) {
                // The owner becomes active once the impl body's `{` opens
                // (depth+1 inside it).
                impl_stack.push((depth + 1, owner));
                i = body_open; // the `{` itself is handled above
                continue;
            }
        }
        if t.is_ident("fn") {
            if let Some(def) = fn_def_at(fi, file, i, &impl_stack) {
                // Skip the body: nested fns are intentionally not symbols
                // of their own (only callable from inside, so the call
                // graph attributes their contents to the enclosing fn).
                let after = def.body.1;
                out.push(def);
                i = after + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Parses the header of the `impl` at token `i`: returns the self-type
/// name and the index of the body's opening `{`.
fn impl_owner(file: &SourceFile, i: usize) -> Option<(String, usize)> {
    let toks = &file.tokens;
    let mut j = i + 1;
    // Skip the generic parameter list, if any.
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut angle = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                angle += 1;
            } else if toks[j].is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Collect idents until the body `{`; `impl Trait for Type` names the
    // type after `for`, a bare `impl Type` names the first ident.
    let mut first = None;
    let mut after_for = None;
    let mut saw_for = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            let name = after_for.or(first)?;
            return Some((name, j));
        }
        if t.is_punct(';') {
            return None; // e.g. `impl Trait for Type;` — no body
        }
        if t.kind == TokenKind::Ident {
            if t.text == "for" {
                saw_for = true;
            } else if t.text == "where" {
                // Type name is settled before the where-clause.
            } else if saw_for && after_for.is_none() {
                after_for = Some(t.text.clone());
            } else if first.is_none() {
                first = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Parses the `fn` definition at token `i`, if it has a body.
fn fn_def_at(
    fi: usize,
    file: &SourceFile,
    i: usize,
    impl_stack: &[(usize, String)],
) -> Option<FnDef> {
    let toks = &file.tokens;
    let next_code =
        |from: usize| (from..toks.len()).find(|&j| toks[j].kind != TokenKind::Comment);
    let name_idx = next_code(i + 1)?;
    let name_tok = &toks[name_idx];
    if name_tok.kind != TokenKind::Ident {
        return None; // e.g. `fn(` in a fn-pointer type
    }
    // Find the parameter list to classify methods, then the body.
    let open_paren = next_code(name_idx + 1).filter(|&j| {
        // Skip a generic list between name and params.
        toks[j].is_punct('(') || toks[j].is_punct('<')
    })?;
    let params_open = if toks[open_paren].is_punct('<') {
        let mut angle = 0i32;
        let mut j = open_paren;
        loop {
            if j >= toks.len() {
                return None;
            }
            if toks[j].is_punct('<') {
                angle += 1;
            } else if toks[j].is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    break;
                }
            }
            j += 1;
        }
        next_code(j + 1).filter(|&j| toks[j].is_punct('('))?
    } else {
        open_paren
    };
    let is_method = (params_open + 1..toks.len())
        .find(|&j| toks[j].kind != TokenKind::Comment)
        .is_some_and(|j| {
            toks[j].is_ident("self")
                || (toks[j].is_punct('&')
                    && (j + 1..toks.len())
                        .filter(|&k| toks[k].kind != TokenKind::Comment)
                        .take(3)
                        .any(|k| toks[k].is_ident("self")))
                || (toks[j].is_ident("mut")
                    && next_code(j + 1).is_some_and(|k| toks[k].is_ident("self")))
        });
    // Body: the first `{` before a `;` at this level ends the item.
    let mut j = params_open;
    let open_brace = loop {
        if j >= toks.len() {
            return None;
        }
        if toks[j].is_punct('{') {
            break j;
        }
        if toks[j].is_punct(';') {
            return None; // bodiless trait declaration
        }
        j += 1;
    };
    let close = matching_brace_tokens(file, open_brace)?;
    Some(FnDef {
        name: name_tok.text.clone(),
        owner: impl_stack.last().map(|(_, o)| o.clone()),
        file: fi,
        crate_name: file.crate_name.clone(),
        module: module_of(&file.path),
        line: toks[i].line,
        body: (i, close),
        is_test: file.token_is_test(i),
        is_method,
    })
}

fn matching_brace_tokens(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in file.tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(path: &str, src: &str) -> SymbolTable {
        SymbolTable::build(std::slice::from_ref(&SourceFile::parse(path, src)))
    }

    #[test]
    fn free_fns_and_methods_extracted() {
        let t = table(
            "crates/core/src/x.rs",
            "fn free(a: u32) -> u32 { a }\n\
             struct S;\n\
             impl S {\n    fn method(&self) -> u32 { free(1) }\n    fn assoc() {}\n}\n",
        );
        assert_eq!(t.fns.len(), 3, "{:?}", t.fns);
        let free = &t.fns[t.candidates("free")[0]];
        assert!(free.owner.is_none() && !free.is_method);
        let method = &t.fns[t.candidates("method")[0]];
        assert_eq!(method.owner.as_deref(), Some("S"));
        assert!(method.is_method);
        let assoc = &t.fns[t.candidates("assoc")[0]];
        assert_eq!(assoc.owner.as_deref(), Some("S"));
        assert!(!assoc.is_method);
    }

    #[test]
    fn trait_impls_attribute_to_the_self_type() {
        let t = table(
            "crates/lp/src/x.rs",
            "impl<T: Ord> Iterator for Wrapper<T> {\n    fn next(&mut self) -> Option<T> { None }\n}",
        );
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].owner.as_deref(), Some("Wrapper"));
        assert_eq!(t.display(0), "lp::x::Wrapper::next");
    }

    #[test]
    fn bodiless_trait_decls_and_fn_pointer_types_skipped() {
        let t = table(
            "crates/core/src/x.rs",
            "trait T { fn decl(&self) -> u32; }\nfn takes(f: fn(u32) -> u32) -> u32 { f(1) }",
        );
        assert_eq!(t.fns.len(), 1, "{:?}", t.fns);
        assert_eq!(t.fns[0].name, "takes");
    }

    #[test]
    fn test_code_is_marked() {
        let t = table(
            "crates/core/src/x.rs",
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}",
        );
        let lib = &t.fns[t.candidates("lib")[0]];
        let helper = &t.fns[t.candidates("helper")[0]];
        assert!(!lib.is_test);
        assert!(helper.is_test);
    }

    #[test]
    fn module_paths_come_from_file_paths() {
        assert_eq!(module_of("crates/core/src/synthesis/engine.rs"), "core::synthesis::engine");
        assert_eq!(module_of("crates/partition/src/lib.rs"), "partition");
        assert_eq!(module_of("crates/core/src/synthesis/mod.rs"), "core::synthesis");
        assert_eq!(module_of("tests/determinism.rs"), "tests::determinism");
    }

    #[test]
    fn generic_fns_with_where_clauses() {
        let t = table(
            "crates/core/src/x.rs",
            "fn generic<T: Clone>(x: T) -> T where T: Send { x.clone() }",
        );
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "generic");
        assert!(!t.fns[0].is_method);
    }
}
