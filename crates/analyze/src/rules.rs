//! The lint rules, plus the always-on `bad-suppression` meta rule.
//!
//! Most rules are lexical: they walk the token stream of a [`SourceFile`]
//! and report per-line findings. They never look inside strings or
//! comments (the lexer guarantees that), and they use the file's region
//! annotations to scope themselves to deterministic crates, non-test
//! code, or hot-path fenced functions.
//!
//! The two hot-path rules are *transitive*: [`check_files`] builds a
//! workspace [`SymbolTable`] and [`CallGraph`], computes which fns are
//! reachable from a `// sf: hot-path` fence within the deterministic hot
//! crates, and checks every reachable fn — findings land at the
//! offending line and carry the call chain that reaches it.

use crate::callgraph::{CallGraph, Reachability};
use crate::source::{SourceFile, Suppression};
use crate::symbols::SymbolTable;
use std::fmt;

/// `HashMap`/`HashSet` in a deterministic crate.
pub const DET_HASH_ITER: &str = "det-hash-iter";
/// `partial_cmp(…).unwrap()` where `total_cmp` belongs.
pub const FLOAT_PARTIAL_CMP: &str = "float-partial-cmp";
/// Wall-clock, OS RNG or environment reads in a deterministic crate.
pub const NONDET_SOURCE: &str = "nondet-source";
/// `unwrap`/`expect`/`panic!` in library (non-test) code — ratcheted.
pub const PANIC_IN_LIB: &str = "panic-in-lib";
/// Allocation inside a `// sf: hot-path` fenced function, or any fn
/// reachable from one (transitive).
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// `unwrap`/`expect`/`panic!` reachable from a hot-path fence
/// (transitive).
pub const HOT_PATH_PANIC: &str = "hot-path-panic";
/// Malformed, unknown-rule or unused `sf-allow` comments. Never
/// baselined, never suppressible.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// Every real (suppressible, baselinable) rule.
pub const RULES: &[&str] = &[
    DET_HASH_ITER,
    FLOAT_PARTIAL_CMP,
    NONDET_SOURCE,
    PANIC_IN_LIB,
    HOT_PATH_ALLOC,
    HOT_PATH_PANIC,
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name.
    pub rule: &'static str,
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{} [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Runs every rule over the whole analyzed file set — per-file lexical
/// rules plus the transitive hot-path rules over the workspace call
/// graph — and resolves suppressions per file. Returns all kept findings
/// and the total number of suppressions consumed.
#[must_use]
pub fn check_files(files: &[SourceFile]) -> (Vec<Finding>, usize) {
    let syms = SymbolTable::build(files);
    let graph = CallGraph::build(files, &syms);
    let reach = Reachability::from_hot_fences(files, &syms, &graph);
    let mut transitive: Vec<Vec<Finding>> = vec![Vec::new(); files.len()];
    transitive_hot_rules(files, &syms, &reach, &mut transitive);

    let mut all = Vec::new();
    let mut used_total = 0usize;
    for (fi, file) in files.iter().enumerate() {
        let (f, used) = check_one_file(file, std::mem::take(&mut transitive[fi]));
        all.extend(f);
        used_total += used;
    }
    (all, used_total)
}

/// Single-file convenience: runs [`check_files`] over just `file`. The
/// call graph then only sees that file, so same-file transitive findings
/// are still caught.
#[must_use]
pub fn check_file(file: &SourceFile) -> (Vec<Finding>, usize) {
    check_files(std::slice::from_ref(file))
}

/// Per-file lexical rules + the file's share of transitive findings,
/// followed by suppression resolution: suppressed findings are dropped,
/// and each malformed / unknown-rule / unused suppression becomes a
/// [`BAD_SUPPRESSION`] finding.
fn check_one_file(file: &SourceFile, transitive: Vec<Finding>) -> (Vec<Finding>, usize) {
    let mut raw = Vec::new();
    det_hash_iter(file, &mut raw);
    float_partial_cmp(file, &mut raw);
    nondet_source(file, &mut raw);
    panic_in_lib(file, &mut raw);
    hot_path_alloc(file, &mut raw);
    raw.extend(transitive);
    dedup_per_line(&mut raw);

    let mut used = vec![false; file.suppressions.len()];
    raw.retain(|f| {
        let hit = file.suppressions.iter().enumerate().find(|(_, s)| {
            s.rule == f.rule && s.target_line == f.line && s.rule != BAD_SUPPRESSION
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                false
            }
            None => true,
        }
    });
    let consumed = used.iter().filter(|&&u| u).count();

    for m in &file.malformed {
        raw.push(Finding {
            rule: BAD_SUPPRESSION,
            path: file.path.clone(),
            line: m.line,
            message: m.problem.clone(),
        });
    }
    for (s, &was_used) in file.suppressions.iter().zip(&used) {
        if let Some(problem) = audit_suppression(s, was_used) {
            raw.push(Finding {
                rule: BAD_SUPPRESSION,
                path: file.path.clone(),
                line: s.comment_line,
                message: problem,
            });
        }
    }
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (raw, consumed)
}

/// Problems with a well-formed suppression: unknown rule, or it never
/// matched a finding (stale suppressions must be deleted, not hoarded).
fn audit_suppression(s: &Suppression, used: bool) -> Option<String> {
    if !RULES.contains(&s.rule.as_str()) {
        return Some(format!(
            "suppression names unknown rule `{}` (known: {})",
            s.rule,
            RULES.join(", ")
        ));
    }
    if !used {
        return Some(format!(
            "suppression of `{}` targeting line {} matched no finding — delete it",
            s.rule, s.target_line
        ));
    }
    None
}

/// One finding per (rule, line) even when several tokens on the line
/// violate it — keeps suppressions line-grained and counts stable.
fn dedup_per_line(findings: &mut Vec<Finding>) {
    let mut seen: Vec<(&'static str, u32)> = Vec::new();
    findings.retain(|f| {
        if seen.contains(&(f.rule, f.line)) {
            false
        } else {
            seen.push((f.rule, f.line));
            true
        }
    });
}

/// Index of the next non-comment token at or after `i`.
fn next_code(file: &SourceFile, i: usize) -> Option<usize> {
    (i..file.tokens.len()).find(|&j| !is_comment(file, j))
}

fn is_comment(file: &SourceFile, i: usize) -> bool {
    file.tokens[i].kind == crate::lexer::TokenKind::Comment
}

/// Whether tokens starting at `i` spell `:: ident` where the ident is one
/// of `names`; returns the index just past the matched ident.
fn match_path_seg(file: &SourceFile, i: usize, names: &[&str]) -> Option<usize> {
    let c1 = next_code(file, i)?;
    if !file.tokens[c1].is_punct(':') {
        return None;
    }
    let c2 = next_code(file, c1 + 1)?;
    if !file.tokens[c2].is_punct(':') {
        return None;
    }
    let id = next_code(file, c2 + 1)?;
    names
        .iter()
        .any(|n| file.tokens[id].is_ident(n))
        .then_some(id + 1)
}

fn push(file: &SourceFile, out: &mut Vec<Finding>, rule: &'static str, i: usize, msg: String) {
    out.push(Finding { rule, path: file.path.clone(), line: file.tokens[i].line, message: msg });
}

/// `det-hash-iter`: any `HashMap`/`HashSet` mention in a deterministic
/// crate. Lexical analysis cannot prove a given map is never iterated, so
/// the deterministic crates ban the types outright; a keyed-lookup-only
/// map that provably never leaks order can stay behind an `sf-allow` with
/// its proof as the reason.
fn det_hash_iter(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.is_deterministic_crate() {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push(
                file,
                out,
                DET_HASH_ITER,
                i,
                format!(
                    "`{}` in deterministic crate `{}` — iteration order is nondeterministic; \
                     use BTreeMap/BTreeSet, sorted vectors or dense indices",
                    t.text, file.crate_name
                ),
            );
        }
    }
}

/// `float-partial-cmp`: `.partial_cmp(…).unwrap()` (or `.expect`) panics
/// on NaN and hides it until the worst moment; `total_cmp` is the ordering
/// the deterministic sweeps rely on. Trait impls (`fn partial_cmp`) are
/// exempt.
fn float_partial_cmp(file: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in file.tokens.iter().enumerate() {
        if !t.is_ident("partial_cmp") {
            continue;
        }
        // Skip trait implementations: `fn partial_cmp(…)`.
        let prev_code = (0..i).rev().find(|&j| !is_comment(file, j));
        if prev_code.is_some_and(|j| file.tokens[j].is_ident("fn")) {
            continue;
        }
        // Balanced argument list, then `.unwrap()` / `.expect(…)`.
        let Some(open) = next_code(file, i + 1) else { continue };
        if !file.tokens[open].is_punct('(') {
            continue;
        }
        let Some(close) = matching_paren(file, open) else { continue };
        let Some(dot) = next_code(file, close + 1) else { continue };
        if !file.tokens[dot].is_punct('.') {
            continue;
        }
        let Some(m) = next_code(file, dot + 1) else { continue };
        if file.tokens[m].is_ident("unwrap") || file.tokens[m].is_ident("expect") {
            push(
                file,
                out,
                FLOAT_PARTIAL_CMP,
                i,
                format!(
                    "`partial_cmp(…).{}()` panics on NaN — use `total_cmp` for float ordering",
                    file.tokens[m].text
                ),
            );
        }
    }
}

fn matching_paren(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in file.tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// `nondet-source`: reads of wall-clock time, the OS RNG or the process
/// environment inside a deterministic crate make outcomes depend on when
/// and where the process runs.
fn nondet_source(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.is_deterministic_crate() {
        return;
    }
    for (i, t) in file.tokens.iter().enumerate() {
        let hit = if t.is_ident("Instant") || t.is_ident("SystemTime") {
            match_path_seg(file, i + 1, &["now"]).map(|_| format!("`{}::now()`", t.text))
        } else if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            Some(format!("`{}()` (OS entropy)", t.text))
        } else if t.is_ident("UNIX_EPOCH") {
            Some("`UNIX_EPOCH` arithmetic".to_string())
        } else if t.is_ident("env") {
            match_path_seg(file, i + 1, &["var", "vars", "var_os", "vars_os"])
                .map(|_| "environment read".to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            push(
                file,
                out,
                NONDET_SOURCE,
                i,
                format!(
                    "{what} in deterministic crate `{}` — outcomes must not depend on \
                     wall-clock, OS entropy or the environment",
                    file.crate_name
                ),
            );
        }
    }
}

/// `panic-in-lib`: `unwrap()`/`expect(…)`/`panic!` in non-test code of any
/// crate. Existing debt is frozen in `lint-baseline.json`; only *new*
/// sites fail the pass.
fn panic_in_lib(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        if file.token_is_test(i) {
            continue;
        }
        if let Some(what) = panic_pattern_at(file, i) {
            push(
                file,
                out,
                PANIC_IN_LIB,
                i,
                format!(
                    "`{what}` in library code — return a typed error (ratcheted: pre-existing \
                     sites are frozen in lint-baseline.json)"
                ),
            );
        }
    }
}

/// Whether token `i` is a panic site: `unwrap(`/`expect(`/`panic!`
/// (definitions like `fn expect(…)` excluded). Returns the offending name.
fn panic_pattern_at(file: &SourceFile, i: usize) -> Option<&'static str> {
    let t = &file.tokens[i];
    if t.kind != crate::lexer::TokenKind::Ident {
        return None;
    }
    let what = match t.text.as_str() {
        "unwrap" if next_code(file, i + 1).is_some_and(|j| file.tokens[j].is_punct('(')) => {
            "unwrap"
        }
        "expect" if next_code(file, i + 1).is_some_and(|j| file.tokens[j].is_punct('(')) => {
            "expect"
        }
        "panic" if next_code(file, i + 1).is_some_and(|j| file.tokens[j].is_punct('!')) => {
            "panic!"
        }
        _ => return None,
    };
    // `fn expect(…)` definitions are not call sites.
    let prev_code = (0..i).rev().find(|&j| !is_comment(file, j));
    if prev_code.is_some_and(|j| file.tokens[j].is_ident("fn")) {
        return None;
    }
    Some(what)
}

/// `hot-path-alloc`: allocation primitives inside a function fenced
/// `// sf: hot-path`. The fenced loops were made allocation-free in PRs
/// 3–5; this keeps them that way.
fn hot_path_alloc(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.tokens.len() {
        let Some(region) = file.hot_region_of(i) else { continue };
        if let Some(what) = alloc_pattern_at(file, i) {
            push(
                file,
                out,
                HOT_PATH_ALLOC,
                i,
                format!(
                    "{what} inside hot-path fenced fn `{}` — reuse scratch buffers instead \
                     of allocating per call",
                    region.fn_name
                ),
            );
        }
    }
}

/// Whether token `i` is an allocation primitive (`Vec::new`, `vec!`,
/// `.collect()`, `.clone()`, `format!`, `Box::new`, …). Returns a short
/// description of what allocates.
fn alloc_pattern_at(file: &SourceFile, i: usize) -> Option<String> {
    let t = &file.tokens[i];
    if t.is_ident("Vec") || t.is_ident("Box") || t.is_ident("String") {
        match_path_seg(file, i + 1, &["new", "with_capacity", "from"])
            .map(|_| format!("`{}::…` constructor", t.text))
    } else if t.is_ident("vec") || t.is_ident("format") {
        next_code(file, i + 1)
            .filter(|&j| file.tokens[j].is_punct('!'))
            .map(|_| format!("`{}!`", t.text))
    } else if t.is_ident("collect")
        || t.is_ident("clone")
        || t.is_ident("to_vec")
        || t.is_ident("to_owned")
        || t.is_ident("to_string")
    {
        next_code(file, i + 1)
            .filter(|&j| file.tokens[j].is_punct('(') || file.tokens[j].is_punct(':'))
            .map(|_| format!("`.{}()`", t.text))
    } else {
        None
    }
}

/// The transitive hot-path rules: every fn reachable from a fenced fn
/// (within the hot crates) is checked for allocations and panic sites.
/// Findings land at the offending line in the fn's own file, with the
/// call chain that reaches it in the message. Fenced fns themselves are
/// covered by the direct [`hot_path_alloc`] pass, so only *helpers*
/// (chain length > 1) get transitive allocation findings; panic sites
/// are checked everywhere the hot path reaches, fences included.
fn transitive_hot_rules(
    files: &[SourceFile],
    syms: &SymbolTable,
    reach: &Reachability,
    out: &mut [Vec<Finding>],
) {
    for (&id, chain) in &reach.chains {
        let def = &syms.fns[id];
        let file = &files[def.file];
        let is_root = chain.len() == 1;
        let chain_text = reach.render_chain(syms, id);
        let end = def.body.1.min(file.tokens.len().saturating_sub(1));
        for i in def.body.0..=end {
            if !is_root && file.hot_region_of(i).is_none() {
                if let Some(what) = alloc_pattern_at(file, i) {
                    out[def.file].push(Finding {
                        rule: HOT_PATH_ALLOC,
                        path: file.path.clone(),
                        line: file.tokens[i].line,
                        message: format!(
                            "{what} in `{}`, reachable from the hot path: {chain_text} — \
                             hot helpers must not allocate per call",
                            def.name
                        ),
                    });
                }
            }
            if file.token_is_test(i) {
                continue;
            }
            if let Some(what) = panic_pattern_at(file, i) {
                out[def.file].push(Finding {
                    rule: HOT_PATH_PANIC,
                    path: file.path.clone(),
                    line: file.tokens[i].line,
                    message: format!(
                        "`{what}` in `{}`, reachable from the hot path: {chain_text} — \
                         hot loops must not panic; handle the case or prove it impossible",
                        def.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        check_file(&SourceFile::parse(path, src)).0
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // --- det-hash-iter ---------------------------------------------------

    #[test]
    fn hashmap_flagged_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let det = check("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&det), vec![DET_HASH_ITER, DET_HASH_ITER], "one per line: {det:?}");
        assert!(check("crates/cli/src/x.rs", src).is_empty(), "cli is not a deterministic crate");
        assert!(check("crates/core/src/x.rs", "let s = \"HashMap\";").is_empty());
    }

    #[test]
    fn hashset_flagged_in_test_code_of_deterministic_crates_too() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}";
        let f = check("crates/floorplan/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![DET_HASH_ITER], "determinism tests must be order-stable");
    }

    // --- float-partial-cmp -----------------------------------------------

    #[test]
    fn partial_cmp_unwrap_flagged_everywhere() {
        // (`unwrap`/`expect` additionally trip panic-in-lib — both real.)
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert!(rules_of(&check("crates/cli/src/x.rs", src)).contains(&FLOAT_PARTIAL_CMP));
        let src2 = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).expect(\"nan\")); }";
        assert!(rules_of(&check("crates/sim/src/x.rs", src2)).contains(&FLOAT_PARTIAL_CMP));
    }

    #[test]
    fn partial_cmp_trait_impl_and_propagating_uses_exempt() {
        let src = "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> { self.0.partial_cmp(&o.0) } }";
        assert!(check("crates/core/src/x.rs", src).is_empty(), "definition + `?`-free use");
        let src2 = "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap_or(Ordering::Equal); }";
        assert!(check("crates/core/src/x.rs", src2).is_empty(), "unwrap_or is total");
    }

    // --- nondet-source ----------------------------------------------------

    #[test]
    fn wallclock_and_entropy_flagged_in_det_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_of(&check("crates/core/src/x.rs", src)), vec![NONDET_SOURCE]);
        assert!(check("crates/bench/src/x.rs", src).is_empty(), "bench crate may time things");
        let src2 = "fn f() { let mut r = thread_rng(); }";
        assert_eq!(rules_of(&check("crates/partition/src/x.rs", src2)), vec![NONDET_SOURCE]);
        let src3 = "fn f() { let home = std::env::var(\"HOME\"); }";
        assert_eq!(rules_of(&check("crates/models/src/x.rs", src3)), vec![NONDET_SOURCE]);
    }

    #[test]
    fn instant_type_annotations_are_not_flagged() {
        let src = "use std::time::Instant;\nfn f(started: Instant) -> Instant { started }";
        assert!(
            check("crates/core/src/x.rs", src).is_empty(),
            "only `Instant::now()` reads the clock"
        );
    }

    // --- panic-in-lib -----------------------------------------------------

    #[test]
    fn panics_flagged_outside_tests_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); panic!(\"boom\"); }\n}";
        let f = check("crates/cli/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![PANIC_IN_LIB]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn panic_macro_and_expect_flagged_but_lookalikes_exempt() {
        let f = check("crates/sim/src/x.rs", "fn f() { panic!(\"no\"); }");
        assert_eq!(rules_of(&f), vec![PANIC_IN_LIB]);
        let ok = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n#[should_panic]\nfn g() {}";
        assert!(check("crates/sim/src/x.rs", ok).is_empty());
        assert!(check("tests/whole_file.rs", "fn t() { x.unwrap(); }").is_empty());
    }

    // --- hot-path-alloc ---------------------------------------------------

    #[test]
    fn allocations_flagged_only_inside_fences() {
        let src = "// sf: hot-path\nfn hot(n: usize) -> usize {\n    let v: Vec<u32> = Vec::new();\n    let w = vec![0; n];\n    let s = format!(\"{n}\");\n    let c = w.clone();\n    let d: Vec<u32> = w.iter().copied().collect();\n    let b = Box::new(n);\n    n\n}\nfn cold(n: usize) -> Vec<u32> { vec![0; n] }";
        let f = check("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![HOT_PATH_ALLOC; 6], "{f:?}");
        assert!(f.iter().all(|x| x.message.contains("`hot`")), "{f:?}");
        assert!(f.iter().all(|x| x.line >= 3 && x.line <= 8), "cold() is unfenced: {f:?}");
    }

    #[test]
    fn clone_from_and_pushes_are_allowed_in_fences() {
        let src = "// sf: hot-path\nfn hot(a: &mut Vec<u32>, b: &Vec<u32>) {\n    a.clone_from(b);\n    a.push(1);\n    a.extend_from_slice(b);\n}";
        assert!(check("crates/core/src/x.rs", src).is_empty(), "reuse primitives are fine");
    }

    // --- suppressions -----------------------------------------------------

    #[test]
    fn suppression_with_reason_consumes_the_finding() {
        let src = "// sf-allow(det-hash-iter): keyed lookups only, never iterated\nuse std::collections::HashMap;";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let (findings, used) = check_file(&file);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(used, 1);
    }

    #[test]
    fn deleting_a_suppression_resurfaces_the_finding() {
        let with = "// sf-allow(det-hash-iter): keyed lookups only\nuse std::collections::HashMap;";
        let without = "use std::collections::HashMap;";
        assert!(check("crates/core/src/x.rs", with).is_empty());
        assert_eq!(rules_of(&check("crates/core/src/x.rs", without)), vec![DET_HASH_ITER]);
    }

    #[test]
    fn reasonless_unknown_and_unused_suppressions_fail() {
        let f = check("crates/core/src/x.rs", "// sf-allow(det-hash-iter):\nuse std::collections::HashMap;");
        assert!(rules_of(&f).contains(&BAD_SUPPRESSION), "reasonless: {f:?}");
        assert!(rules_of(&f).contains(&DET_HASH_ITER), "and the finding survives");

        let f = check("crates/core/src/x.rs", "// sf-allow(no-such-rule): because\nfn f() {}");
        assert_eq!(rules_of(&f), vec![BAD_SUPPRESSION], "unknown rule: {f:?}");

        let f = check("crates/core/src/x.rs", "// sf-allow(det-hash-iter): stale\nfn clean() {}");
        assert_eq!(rules_of(&f), vec![BAD_SUPPRESSION], "unused: {f:?}");
    }

    #[test]
    fn suppression_for_one_rule_does_not_mask_another() {
        let src = "// sf-allow(det-hash-iter): wrong rule for this line\nfn f() { let t = Instant::now(); }";
        let f = check("crates/core/src/x.rs", src);
        assert!(rules_of(&f).contains(&NONDET_SOURCE), "{f:?}");
    }

    #[test]
    fn second_suppression_of_same_rule_on_same_line_audits_unused() {
        // A standalone and a trailing suppression both target the unwrap
        // line; the single finding consumes exactly one (the first in
        // source order) and the redundant one must be flagged, not
        // silently hoarded as a spare.
        let src = "// sf-allow(panic-in-lib): first — documented invariant\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() } // sf-allow(panic-in-lib): second, redundant\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let (findings, used) = check_file(&file);
        assert_eq!(used, 1, "exactly one suppression consumed: {findings:?}");
        assert_eq!(rules_of(&findings), vec![BAD_SUPPRESSION], "{findings:?}");
        assert!(
            findings[0].message.contains("matched no finding"),
            "the spare audits as unused: {findings:?}"
        );
    }

    #[test]
    fn suppression_inside_cfg_test_is_unused_and_flagged() {
        // Rules skip test code, so a suppression living inside a
        // `#[cfg(test)]` module can never match a finding — it must fail
        // the audit rather than rot in place.
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   // sf-allow(panic-in-lib): tests may panic anyway\n\
                   \x20   fn t(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   }\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let (findings, used) = check_file(&file);
        assert_eq!(used, 0, "{findings:?}");
        assert_eq!(rules_of(&findings), vec![BAD_SUPPRESSION], "{findings:?}");
    }
}
