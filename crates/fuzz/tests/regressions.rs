//! Shrunk repros of real fuzzer finds, pinned as regression tests.
//!
//! Each test reproduces a minimized case that `sunfloor3d fuzz` once
//! flagged, and asserts the hardened pipeline now handles it: a typed
//! rejection (or a well-formed feasible point), identical outcomes across
//! schedules, and no panic.

use sunfloor_core::spec::{CommSpec, SocSpec};
use sunfloor_core::synthesis::{RejectReason, SynthesisConfig, SynthesisEngine};

/// Find #1 (seed 9, case 809): a parseable `1e308` MB/s flow overflowed
/// the power model to `inf`/`NaN` on a two-switch candidate whose flow
/// never traverses a link, so no capacity check fired. The NaN-poisoned
/// metrics broke `PartialEq` self-equality of the outcome, which the
/// differential harness reported as a cross-schedule divergence. The fix
/// screens non-finite metrics into `RejectReason::NonFiniteMetrics`.
#[test]
fn huge_bandwidth_overflow_is_screened_not_accepted() {
    let soc = SocSpec::parse(concat!(
        "layers 3\n",
        "core c1 1 1 1 1 1\n",
        "core c3 1 1 1 1 1\n",
        "core c7 1 1 1 1 1\n",
    ))
    .expect("repro soc spec parses");
    let comm = CommSpec::parse("flow c1 c3 1e308 1 request\n", &soc).expect("repro comm parses");
    let cfg = |jobs: usize| {
        SynthesisConfig::builder()
            .jobs(jobs)
            .run_layout(false)
            .switch_count_range(2, 4)
            .build()
            .expect("repro config is valid")
    };

    let serial = SynthesisEngine::new(&soc, &comm, cfg(1)).expect("engine accepts repro").run();

    // No point with overflowed metrics may be reported feasible, and the
    // overflow must surface as the dedicated typed reason.
    for p in &serial.points {
        assert!(p.metrics.is_finite(), "accepted point carries non-finite metrics");
    }
    assert!(
        serial.rejected.iter().any(|r| matches!(r.reason, RejectReason::NonFiniteMetrics)),
        "expected at least one non-finite-metrics rejection, got {:?}",
        serial.rejected.iter().map(|r| r.reason.kind()).collect::<Vec<_>>()
    );

    // Outcome must equal itself (no NaN anywhere) and match the parallel
    // schedule bit-for-bit.
    let replay = serial.clone();
    assert_eq!(replay, serial, "outcome is not self-equal: NaN leaked into it");
    let parallel = SynthesisEngine::new(&soc, &comm, cfg(3)).expect("engine accepts repro").run();
    assert_eq!(serial, parallel, "serial and parallel schedules diverge");
}
