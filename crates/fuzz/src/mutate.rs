//! Mutation passes that corrupt a valid spec pair into hostile input.
//!
//! Mutations operate on the *text* of the spec files — exactly the attack
//! surface a hostile input file has — so they compose freely and can
//! produce anything from a single poisoned number to structurally broken
//! files. Every pass is deterministic under the case RNG and records its
//! name so repro files explain what was done.

use crate::generator::FuzzCase;
use rand::rngs::StdRng;
use rand::Rng;

type Mutation = (&'static str, fn(&mut FuzzCase, &mut StdRng));

/// The mutation catalogue. Names are stable identifiers used in repro
/// files; keep them unique.
pub const MUTATIONS: &[Mutation] = &[
    ("nan-number", nan_number),
    ("zero-area-core", zero_area_core),
    ("negative-number", negative_number),
    ("huge-number", huge_number),
    ("duplicate-core-line", duplicate_core_line),
    ("duplicate-name", duplicate_name),
    ("out-of-range-layer", out_of_range_layer),
    ("zero-layers", zero_layers),
    ("huge-layers", huge_layers),
    ("self-loop-flow", self_loop_flow),
    ("zero-bandwidth", zero_bandwidth),
    ("drop-token", drop_token),
    ("trailing-token", trailing_token),
    ("garbage-line", garbage_line),
    ("garbage-bytes", garbage_bytes),
    ("truncate", truncate),
    ("swap-files", swap_files),
    ("empty-soc", empty_soc),
];

/// Applies 1–3 randomly chosen mutations to `case`, recording their names.
pub fn apply_random_mutations(case: &mut FuzzCase, rng: &mut StdRng) {
    let count = rng.gen_range(1..=3usize);
    for _ in 0..count {
        let (name, f) = MUTATIONS[rng.gen_range(0..MUTATIONS.len())];
        f(case, rng);
        case.mutations.push(name);
    }
}

// --- helpers ---------------------------------------------------------------

/// Picks a random non-comment line index starting with `prefix`, if any.
fn pick_line(text: &str, prefix: &str, rng: &mut StdRng) -> Option<usize> {
    let hits: Vec<usize> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with(prefix))
        .map(|(i, _)| i)
        .collect();
    if hits.is_empty() {
        None
    } else {
        hits.get(rng.gen_range(0..hits.len())).copied()
    }
}

/// Rewrites line `idx` of `text` through `f`.
fn edit_line(text: &mut String, idx: usize, f: impl FnOnce(&str) -> String) {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    if let Some(line) = lines.get_mut(idx) {
        *line = f(line);
    }
    *text = lines.join("\n");
    text.push('\n');
}

/// Replaces whitespace token `tok` of a line (0-based) with `value`.
fn set_token(line: &str, tok: usize, value: &str) -> String {
    let mut parts: Vec<&str> = line.split_whitespace().collect();
    if let Some(slot) = parts.get_mut(tok) {
        *slot = value;
    }
    parts.join(" ")
}

/// A random numeric token slot on a `core` (1..=6) or `flow` (3..=4) line.
fn numeric_slot(prefix: &str, rng: &mut StdRng) -> usize {
    if prefix == "core" {
        rng.gen_range(2..=6usize)
    } else {
        rng.gen_range(3..=4usize)
    }
}

/// Applies `value` to one random numeric field of one random core or flow
/// line (whichever file has such a line).
fn poison_number(case: &mut FuzzCase, rng: &mut StdRng, value: &str) {
    let on_soc = rng.gen_bool(0.5);
    let (text, prefix) =
        if on_soc { (&mut case.soc_text, "core") } else { (&mut case.comm_text, "flow") };
    if let Some(idx) = pick_line(text, prefix, rng) {
        let slot = numeric_slot(prefix, rng);
        edit_line(text, idx, |l| set_token(l, slot, value));
    }
}

// --- mutations -------------------------------------------------------------

fn nan_number(case: &mut FuzzCase, rng: &mut StdRng) {
    let value = ["nan", "inf", "-inf", "NaN"][rng.gen_range(0..4usize)];
    poison_number(case, rng, value);
}

fn zero_area_core(case: &mut FuzzCase, rng: &mut StdRng) {
    if let Some(idx) = pick_line(&case.soc_text, "core", rng) {
        edit_line(&mut case.soc_text, idx, |l| set_token(&set_token(l, 2, "0"), 3, "0"));
    }
}

fn negative_number(case: &mut FuzzCase, rng: &mut StdRng) {
    poison_number(case, rng, "-2.5");
}

fn huge_number(case: &mut FuzzCase, rng: &mut StdRng) {
    let value = ["1e308", "1e999", "4000000000", "179769313486231570000000000000"]
        [rng.gen_range(0..4usize)];
    poison_number(case, rng, value);
}

fn duplicate_core_line(case: &mut FuzzCase, rng: &mut StdRng) {
    if let Some(idx) = pick_line(&case.soc_text, "core", rng) {
        let line = case.soc_text.lines().nth(idx).map(str::to_string);
        if let Some(line) = line {
            case.soc_text.push_str(&line);
            case.soc_text.push('\n');
        }
    }
}

fn duplicate_name(case: &mut FuzzCase, rng: &mut StdRng) {
    let names: Vec<String> = case
        .soc_text
        .lines()
        .filter(|l| l.trim_start().starts_with("core"))
        .filter_map(|l| l.split_whitespace().nth(1).map(str::to_string))
        .collect();
    if names.len() < 2 {
        return;
    }
    let donor = names[rng.gen_range(0..names.len())].clone();
    if let Some(idx) = pick_line(&case.soc_text, "core", rng) {
        edit_line(&mut case.soc_text, idx, |l| set_token(l, 1, &donor));
    }
}

fn out_of_range_layer(case: &mut FuzzCase, rng: &mut StdRng) {
    if let Some(idx) = pick_line(&case.soc_text, "core", rng) {
        edit_line(&mut case.soc_text, idx, |l| set_token(l, 6, "99"));
    }
}

fn zero_layers(case: &mut FuzzCase, rng: &mut StdRng) {
    match pick_line(&case.soc_text, "layers", rng) {
        Some(idx) => edit_line(&mut case.soc_text, idx, |l| set_token(l, 1, "0")),
        None => case.soc_text.insert_str(0, "layers 0\n"),
    }
}

fn huge_layers(case: &mut FuzzCase, rng: &mut StdRng) {
    if let Some(idx) = pick_line(&case.soc_text, "layers", rng) {
        edit_line(&mut case.soc_text, idx, |l| set_token(l, 1, "4000000000"));
    }
}

fn self_loop_flow(case: &mut FuzzCase, rng: &mut StdRng) {
    if let Some(idx) = pick_line(&case.comm_text, "flow", rng) {
        edit_line(&mut case.comm_text, idx, |l| {
            let src = l.split_whitespace().nth(1).unwrap_or("c0").to_string();
            set_token(l, 2, &src)
        });
    }
}

fn zero_bandwidth(case: &mut FuzzCase, rng: &mut StdRng) {
    if let Some(idx) = pick_line(&case.comm_text, "flow", rng) {
        edit_line(&mut case.comm_text, idx, |l| set_token(l, 3, "0"));
    }
}

fn drop_token(case: &mut FuzzCase, rng: &mut StdRng) {
    let on_soc = rng.gen_bool(0.5);
    let (text, prefix) =
        if on_soc { (&mut case.soc_text, "core") } else { (&mut case.comm_text, "flow") };
    if let Some(idx) = pick_line(text, prefix, rng) {
        edit_line(text, idx, |l| {
            let parts: Vec<&str> = l.split_whitespace().collect();
            let keep = parts.len().saturating_sub(1);
            parts.get(..keep).unwrap_or(&[]).join(" ")
        });
    }
}

fn trailing_token(case: &mut FuzzCase, rng: &mut StdRng) {
    let on_soc = rng.gen_bool(0.5);
    let (text, prefix) =
        if on_soc { (&mut case.soc_text, "core") } else { (&mut case.comm_text, "flow") };
    if let Some(idx) = pick_line(text, prefix, rng) {
        edit_line(text, idx, |l| format!("{l} surplus"));
    }
}

fn garbage_line(case: &mut FuzzCase, rng: &mut StdRng) {
    let junk = ["widget 1 2 3", "core", "flow c0", "layers", "\u{2603} snowman"]
        [rng.gen_range(0..5usize)];
    if rng.gen_bool(0.5) {
        case.soc_text.push_str(junk);
        case.soc_text.push('\n');
    } else {
        case.comm_text.push_str(junk);
        case.comm_text.push('\n');
    }
}

fn garbage_bytes(case: &mut FuzzCase, rng: &mut StdRng) {
    let noise = ['#', '\t', '\u{0}', '\u{FFFD}', '\u{1F980}', '-', '.'][rng.gen_range(0..7usize)];
    let text = if rng.gen_bool(0.5) { &mut case.soc_text } else { &mut case.comm_text };
    if text.is_empty() {
        text.push(noise);
        return;
    }
    // Insertion points must be char boundaries; collect them first.
    let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
    let at = boundaries[rng.gen_range(0..boundaries.len())];
    text.insert(at, noise);
}

fn truncate(case: &mut FuzzCase, rng: &mut StdRng) {
    let text = if rng.gen_bool(0.5) { &mut case.soc_text } else { &mut case.comm_text };
    if text.is_empty() {
        return;
    }
    let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
    let at = boundaries[rng.gen_range(0..boundaries.len())];
    text.truncate(at);
}

fn swap_files(case: &mut FuzzCase, _rng: &mut StdRng) {
    std::mem::swap(&mut case.soc_text, &mut case.comm_text);
}

fn empty_soc(case: &mut FuzzCase, _rng: &mut StdRng) {
    case.soc_text.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_case;
    use rand::SeedableRng;

    #[test]
    fn every_mutation_is_total_on_every_case_shape() {
        // Apply each mutation to a spread of generated cases (including
        // already-mutated ones); none may panic or produce non-UTF8 glue.
        for index in 0..40u64 {
            for (name, f) in MUTATIONS {
                let mut case = generate_case(11, index);
                let mut rng = StdRng::seed_from_u64(index ^ 0xABCD);
                f(&mut case, &mut rng);
                assert!(case.soc_text.len() < 1 << 20, "{name} exploded the text");
            }
        }
    }

    #[test]
    fn mutation_names_are_unique() {
        let mut names: Vec<&str> = MUTATIONS.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MUTATIONS.len());
    }
}
