//! `sunfloor-fuzz` — seeded adversarial-spec fuzzing for the SunFloor 3D
//! pipeline.
//!
//! The crate packages three pieces:
//!
//! * [`generator`] — a deterministic generator of valid specs over the
//!   degenerate traffic shapes of the scheduling/mapping literature
//!   (hotspot, transpose, bit-complement, disconnected), with
//!   [`mutate`]'s corruption passes layered on top;
//! * [`harness`] — the differential contract checker: no panics anywhere,
//!   bit-identical outcomes across serial/parallel/tempered schedules,
//!   typed classification of every non-feasible outcome, and prompt,
//!   well-formed partial outcomes under injected faults;
//! * [`mod@shrink`] — a greedy minimizer plus the repro-file writer.
//!
//! [`run_fuzz`] drives the whole thing; the `sunfloor3d fuzz` CLI
//! subcommand and the CI `fuzz-smoke` job are thin wrappers around it.

pub mod generator;
pub mod harness;
pub mod mutate;
pub mod shrink;

pub use generator::{generate_case, ConfigRecipe, FuzzCase, TrafficPattern};
pub use harness::{run_case, CaseClass, Failure, FailureKind};
pub use shrink::{shrink, write_repro};

use std::fmt;
use std::path::PathBuf;

/// Parameters of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of cases to generate and run.
    pub cases: u64,
    /// Master seed; every case is a pure function of `(seed, index)`.
    pub seed: u64,
    /// Where to write the minimized repro file on failure.
    pub repro_path: PathBuf,
    /// Stop after this many failures (each is shrunk and the first is
    /// written to `repro_path`).
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            cases: 500,
            seed: 0,
            repro_path: PathBuf::from("fuzz-repro.txt"),
            max_failures: 1,
        }
    }
}

/// Tallies of one fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases actually run.
    pub cases_run: u64,
    /// Typed `SpecError` rejections.
    pub spec_rejected: u64,
    /// Typed `ConfigError` rejections.
    pub config_rejected: u64,
    /// Typed `SynthesisError` rejections at engine construction.
    pub engine_rejected: u64,
    /// Sweeps that ran and rejected every candidate with a typed reason.
    pub no_feasible_point: u64,
    /// Sweeps that produced feasible points.
    pub feasible: u64,
    /// Broken-contract cases, already shrunk.
    pub failures: Vec<Failure>,
    /// Repro file location, when a failure was written.
    pub repro_written: Option<PathBuf>,
}

impl FuzzReport {
    /// `true` when every case satisfied the robustness contract.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    fn tally(&mut self, class: CaseClass) {
        match class {
            CaseClass::SpecRejected => self.spec_rejected += 1,
            CaseClass::ConfigRejected => self.config_rejected += 1,
            CaseClass::EngineRejected => self.engine_rejected += 1,
            CaseClass::NoFeasiblePoint => self.no_feasible_point += 1,
            CaseClass::Feasible => self.feasible += 1,
        }
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fuzz: {} cases", self.cases_run)?;
        writeln!(f, "  spec rejected    {:>8}", self.spec_rejected)?;
        writeln!(f, "  config rejected  {:>8}", self.config_rejected)?;
        writeln!(f, "  engine rejected  {:>8}", self.engine_rejected)?;
        writeln!(f, "  no feasible pt   {:>8}", self.no_feasible_point)?;
        writeln!(f, "  feasible         {:>8}", self.feasible)?;
        if self.passed() {
            writeln!(f, "  contract: OK (no panics, no divergences, all outcomes typed)")?;
        } else {
            for fail in &self.failures {
                writeln!(
                    f,
                    "  FAILURE case {} [{}]: {}",
                    fail.index,
                    fail.kind.label(),
                    fail.detail
                )?;
            }
            if let Some(path) = &self.repro_written {
                writeln!(f, "  minimized repro written to {}", path.display())?;
            }
        }
        Ok(())
    }
}

/// Runs the full fuzz campaign described by `cfg`.
///
/// Panics inside the pipeline are caught (that is the point), shrunk and
/// reported; the default panic hook is silenced for the duration so a
/// 10k-case run does not spray backtraces.
#[must_use]
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for index in 0..cfg.cases {
        let case = generate_case(cfg.seed, index);
        match run_case(&case) {
            Ok(class) => report.tally(class),
            Err(failure) => {
                let shrunk = shrink(&failure);
                if report.failures.is_empty()
                    && shrink::write_repro(&cfg.repro_path, cfg.seed, &shrunk).is_ok()
                {
                    report.repro_written = Some(cfg.repro_path.clone());
                }
                report.failures.push(shrunk);
                if report.failures.len() >= cfg.max_failures {
                    report.cases_run = index + 1;
                    std::panic::set_hook(prev_hook);
                    return report;
                }
            }
        }
    }
    report.cases_run = cfg.cases;
    std::panic::set_hook(prev_hook);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_campaign_passes_and_covers_every_class() {
        let cfg = FuzzConfig {
            cases: 250,
            seed: 9,
            repro_path: std::env::temp_dir().join("sunfloor-fuzz-lib-test-repro.txt"),
            max_failures: 1,
        };
        let report = run_fuzz(&cfg);
        assert!(report.passed(), "contract failures: {report}");
        assert_eq!(report.cases_run, 250);
        assert!(report.spec_rejected > 0, "no hostile spec was generated:\n{report}");
        assert!(report.config_rejected > 0, "no degenerate config was generated:\n{report}");
        assert!(report.feasible > 0, "no case survived to a feasible point:\n{report}");
    }

    #[test]
    fn report_display_mentions_the_contract() {
        let report = FuzzReport { cases_run: 1, feasible: 1, ..FuzzReport::default() };
        let text = report.to_string();
        assert!(text.contains("contract: OK"));
    }
}
