//! Greedy minimization of failing cases, and the repro-file writer.
//!
//! The shrinker repeatedly tries structure-preserving reductions (drop a
//! comm line, drop a core line, simplify a numeric token to `1`) and keeps
//! any reduction under which [`crate::harness::run_case`] still fails with
//! the *same* [`crate::harness::FailureKind`]. Re-running the harness per attempt is the
//! price of a shrinker that needs no knowledge of which mutation broke
//! what; the attempt budget bounds it.

use crate::generator::FuzzCase;
use crate::harness::{run_case, Failure};
use std::io::Write;
use std::path::Path;

/// Upper bound on harness re-runs during one shrink.
const ATTEMPT_BUDGET: usize = 300;

/// Minimizes `failure.case`, returning a (possibly smaller) failure of the
/// same kind. The original failure is returned unchanged when no reduction
/// reproduces it within the budget.
#[must_use]
pub fn shrink(failure: &Failure) -> Failure {
    let mut best = failure.clone();
    let mut budget = ATTEMPT_BUDGET;
    loop {
        let mut improved = false;
        for candidate in reductions(&best.case) {
            if budget == 0 {
                return best;
            }
            budget -= 1;
            if let Err(f) = run_case(&candidate) {
                if f.kind == best.kind {
                    best = f;
                    improved = true;
                    break; // restart reductions from the smaller case
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

/// One-step reductions of a case, smallest-step first.
fn reductions(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    // Drop one comm line, then one soc line (parse errors on later lines
    // shift, but the harness re-runs from scratch each time).
    for (i, _) in case.comm_text.lines().enumerate() {
        out.push(with_texts(case, case.soc_text.clone(), drop_line(&case.comm_text, i)));
    }
    for (i, _) in case.soc_text.lines().enumerate() {
        out.push(with_texts(case, drop_line(&case.soc_text, i), case.comm_text.clone()));
    }
    // Simplify numeric tokens to `1` (keeps structure, shrinks entropy).
    for (text_idx, text) in [&case.soc_text, &case.comm_text].into_iter().enumerate() {
        for (li, line) in text.lines().enumerate() {
            for (ti, tok) in line.split_whitespace().enumerate() {
                if ti == 0 || tok == "1" || tok.parse::<f64>().is_err() {
                    continue;
                }
                let new_line: Vec<String> = line
                    .split_whitespace()
                    .enumerate()
                    .map(|(j, t)| if j == ti { "1".to_string() } else { t.to_string() })
                    .collect();
                let new_text = replace_line(text, li, &new_line.join(" "));
                let (soc, comm) = if text_idx == 0 {
                    (new_text, case.comm_text.clone())
                } else {
                    (case.soc_text.clone(), new_text)
                };
                out.push(with_texts(case, soc, comm));
            }
        }
    }
    out
}

fn with_texts(case: &FuzzCase, soc_text: String, comm_text: String) -> FuzzCase {
    FuzzCase { soc_text, comm_text, ..case.clone() }
}

fn drop_line(text: &str, idx: usize) -> String {
    let mut out: String = text
        .lines()
        .enumerate()
        .filter(|(i, _)| *i != idx)
        .map(|(_, l)| format!("{l}\n"))
        .collect();
    if out.is_empty() {
        out = String::new();
    }
    out
}

fn replace_line(text: &str, idx: usize, new_line: &str) -> String {
    text.lines()
        .enumerate()
        .map(|(i, l)| if i == idx { format!("{new_line}\n") } else { format!("{l}\n") })
        .collect()
}

/// Writes a self-contained repro file for `failure` (after shrinking).
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_repro(path: &Path, seed: u64, failure: &Failure) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "# sunfloor-fuzz minimized repro")?;
    writeln!(f, "# rerun: sunfloor3d fuzz --cases 1 --seed {seed} (case {})", failure.index)?;
    writeln!(f, "seed {seed}")?;
    writeln!(f, "case-index {}", failure.index)?;
    writeln!(f, "failure-kind {}", failure.kind.label())?;
    writeln!(f, "detail {}", failure.detail.replace('\n', " / "))?;
    writeln!(f, "config-recipe {:?}", failure.case.recipe)?;
    writeln!(f, "mutations {}", failure.case.mutations.join(","))?;
    writeln!(f, "--- soc spec ---")?;
    f.write_all(failure.case.soc_text.as_bytes())?;
    writeln!(f, "--- comm spec ---")?;
    f.write_all(failure.case.comm_text.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ConfigRecipe;
    use crate::harness::FailureKind;

    /// A synthetic failure the shrinker can chew on: the harness never
    /// fails on real cases (that's the whole point of this PR), so fake a
    /// failing kind by picking a case and checking shrink is a no-op when
    /// nothing reproduces.
    #[test]
    fn shrink_returns_the_original_when_nothing_reproduces() {
        let case = FuzzCase {
            index: 7,
            soc_text: "core a 1 1 0 0 0\n".to_string(),
            comm_text: String::new(),
            recipe: ConfigRecipe::Standard,
            mutations: vec!["synthetic"],
        };
        let failure = Failure {
            index: 7,
            kind: FailureKind::Panic,
            detail: "synthetic".to_string(),
            case,
        };
        let shrunk = shrink(&failure);
        assert_eq!(shrunk.case.soc_text, failure.case.soc_text);
        assert_eq!(shrunk.kind, FailureKind::Panic);
    }

    #[test]
    fn repro_file_roundtrips_the_case_text() {
        let dir = std::env::temp_dir().join("sunfloor-fuzz-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("repro.txt");
        let case = FuzzCase {
            index: 3,
            soc_text: "layers 0\n".to_string(),
            comm_text: "flow a b 1 1\n".to_string(),
            recipe: ConfigRecipe::TinyWindow,
            mutations: vec!["zero-layers"],
        };
        let failure = Failure {
            index: 3,
            kind: FailureKind::Unclassified,
            detail: "synthetic detail".to_string(),
            case,
        };
        write_repro(&path, 9, &failure).expect("write repro");
        let text = std::fs::read_to_string(&path).expect("read repro");
        assert!(text.contains("failure-kind unclassified"));
        assert!(text.contains("layers 0"));
        assert!(text.contains("flow a b 1 1"));
        assert!(text.contains("zero-layers"));
        std::fs::remove_file(&path).ok();
    }
}
