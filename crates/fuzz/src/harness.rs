//! The differential harness: runs one case through the full pipeline and
//! checks the robustness contract.
//!
//! Contract, per case:
//!
//! 1. **No panic** — parsing, configuration, engine construction and the
//!    sweep itself must map every hostile input to a typed
//!    [`sunfloor_core::spec::SpecError`] /
//!    [`sunfloor_core::synthesis::ConfigError`] /
//!    [`sunfloor_core::synthesis::RejectReason`].
//! 2. **Schedule independence** — the serial sweep and a
//!    `Parallelism::Jobs(3)` sweep (and, on tempered recipes, 1- vs
//!    2-worker tempered runs) must produce bit-identical outcomes.
//! 3. **Classified outcomes** — a run that yields no feasible point must
//!    leave a typed rejection trail (or have no candidates at all).
//! 4. **Fault tolerance** — `StopPolicy::Deadline(ZERO)` and
//!    `StopPolicy::PointBudget(1)` stop promptly with well-formed partial
//!    outcomes, and the observer event stream stays well-formed even when
//!    a policy cancels the sweep mid-stream.

use crate::generator::FuzzCase;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
use sunfloor_core::spec::{CommSpec, SocSpec};
use sunfloor_core::synthesis::{
    StopPolicy, SweepEvent, SynthesisEngine, SynthesisOutcome,
};

/// How far through the pipeline a case travelled — every terminal state is
/// a *typed* rejection or a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseClass {
    /// `SocSpec::parse` / `CommSpec::parse` returned a typed `SpecError`.
    SpecRejected,
    /// The configuration recipe returned a typed `ConfigError`.
    ConfigRejected,
    /// `SynthesisEngine::new` returned a typed `SynthesisError`.
    EngineRejected,
    /// The sweep ran; every candidate was rejected with a typed reason.
    NoFeasiblePoint,
    /// The sweep ran and produced feasible points.
    Feasible,
}

/// Which part of the contract a failing case broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Something panicked.
    Panic,
    /// Serial and parallel (or tempered 1- vs 2-worker) outcomes differ.
    Divergence,
    /// A no-point outcome carries no typed rejection trail.
    Unclassified,
    /// The observer event stream violated its grouping contract.
    ObserverContract,
    /// A fault-injected run returned a malformed partial outcome.
    FaultInjection,
}

impl FailureKind {
    /// Stable label for reports and repro files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Panic => "panic",
            Self::Divergence => "divergence",
            Self::Unclassified => "unclassified",
            Self::ObserverContract => "observer-contract",
            Self::FaultInjection => "fault-injection",
        }
    }
}

/// A broken contract, with everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq)]
pub struct Failure {
    /// Case index within the run.
    pub index: u64,
    /// Which contract clause broke.
    pub kind: FailureKind,
    /// Human-readable description (panic payload, divergence site, …).
    pub detail: String,
    /// The case that broke it (possibly shrunk).
    pub case: FuzzCase,
}

/// Runs `case` through the whole contract.
///
/// # Errors
///
/// Returns the [`Failure`] describing the first broken contract clause.
#[allow(clippy::result_large_err)] // Err is the rare path and carries the whole repro case by design
pub fn run_case(case: &FuzzCase) -> Result<CaseClass, Failure> {
    let fail = |kind: FailureKind, detail: String| Failure {
        index: case.index,
        kind,
        detail,
        case: case.clone(),
    };

    // 1. Parse. A typed SpecError is a *pass* (the input was classified).
    let soc = match guard(|| SocSpec::parse(&case.soc_text)) {
        Err(payload) => return Err(fail(FailureKind::Panic, format!("SocSpec::parse: {payload}"))),
        Ok(Err(_)) => return Ok(CaseClass::SpecRejected),
        Ok(Ok(soc)) => soc,
    };
    let comm = match guard(|| CommSpec::parse(&case.comm_text, &soc)) {
        Err(payload) => {
            return Err(fail(FailureKind::Panic, format!("CommSpec::parse: {payload}")))
        }
        Ok(Err(_)) => return Ok(CaseClass::SpecRejected),
        Ok(Ok(comm)) => comm,
    };

    // 2. Configuration. Degenerate recipes must yield a typed ConfigError.
    let cfg = match guard(|| case.recipe.build(1)) {
        Err(payload) => return Err(fail(FailureKind::Panic, format!("config build: {payload}"))),
        Ok(Err(_)) => return Ok(CaseClass::ConfigRejected),
        Ok(Ok(cfg)) => cfg,
    };

    // 3. Engine construction (re-validates spec/config coupling).
    let serial = match guard(|| SynthesisEngine::new(&soc, &comm, cfg)) {
        Err(payload) => {
            return Err(fail(FailureKind::Panic, format!("SynthesisEngine::new: {payload}")))
        }
        Ok(Err(_)) => return Ok(CaseClass::EngineRejected),
        Ok(Ok(engine)) => engine,
    };
    let n_candidates = serial.candidates().len();

    // 4. Serial sweep with an observing event recorder.
    let mut events: Vec<SweepEvent> = Vec::new();
    let outcome = match guard(AssertUnwindSafe(|| {
        let mut obs = |e: &SweepEvent| events.push(e.clone());
        serial.run_with_observer(&mut obs)
    })) {
        Err(payload) => return Err(fail(FailureKind::Panic, format!("serial run: {payload}"))),
        Ok(outcome) => outcome,
    };
    if let Err(detail) = check_event_stream(&events, &outcome) {
        return Err(fail(FailureKind::ObserverContract, detail));
    }
    if outcome.points.is_empty() && outcome.rejected.is_empty() && n_candidates > 0 {
        return Err(fail(
            FailureKind::Unclassified,
            format!("{n_candidates} candidates produced neither points nor typed rejections"),
        ));
    }

    // 5. Parallel differential: Jobs(3) must be bit-identical.
    let jobs = if case.recipe.is_valid() { 3 } else { 1 };
    if let Ok(cfg_par) = case.recipe.build(jobs) {
        let parallel = match guard(AssertUnwindSafe(|| {
            SynthesisEngine::new(&soc, &comm, cfg_par).map(|e| e.run())
        })) {
            Err(payload) => {
                return Err(fail(FailureKind::Panic, format!("parallel run: {payload}")))
            }
            Ok(Err(_)) => return Ok(CaseClass::EngineRejected),
            Ok(Ok(out)) => out,
        };
        if parallel != outcome {
            return Err(fail(FailureKind::Divergence, divergence_detail(&outcome, &parallel)));
        }
    }

    // 6. Fault injection, subsampled (cases where it is cheap enough to
    //    run everywhere would bias coverage toward trivial inputs).
    if case.index.is_multiple_of(4) {
        check_fault_injection(case, &serial, &outcome)?;
    }

    if outcome.points.is_empty() {
        Ok(CaseClass::NoFeasiblePoint)
    } else {
        Ok(CaseClass::Feasible)
    }
}

/// Catches panics, rendering the payload.
fn guard<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string())),
    }
}

/// The observer contract: events arrive in per-candidate groups —
/// `CandidateStarted`, any `ThetaEscalated`, then exactly one terminal
/// event — and accepted point indices walk `0..points.len()`.
fn check_event_stream(events: &[SweepEvent], outcome: &SynthesisOutcome) -> Result<(), String> {
    let mut open: Option<String> = None;
    let mut accepted = 0usize;
    for e in events {
        match e {
            SweepEvent::CandidateStarted { candidate } => {
                if let Some(prev) = &open {
                    return Err(format!("candidate `{prev}` never got a terminal event"));
                }
                open = Some(candidate.to_string());
            }
            SweepEvent::ThetaEscalated { candidate, .. } => {
                if open.as_deref() != Some(candidate.to_string().as_str()) {
                    return Err(format!("theta escalation outside `{candidate}`'s group"));
                }
            }
            SweepEvent::CandidateAccepted { candidate, point_index } => {
                if open.as_deref() != Some(candidate.to_string().as_str()) {
                    return Err(format!("acceptance outside `{candidate}`'s group"));
                }
                if *point_index != accepted {
                    return Err(format!(
                        "point index {point_index} out of order (expected {accepted})"
                    ));
                }
                accepted += 1;
                open = None;
            }
            SweepEvent::CandidateRejected { candidate, .. } => {
                if open.as_deref() != Some(candidate.to_string().as_str()) {
                    return Err(format!("rejection outside `{candidate}`'s group"));
                }
                open = None;
            }
        }
    }
    if let Some(prev) = open {
        return Err(format!("candidate `{prev}` never got a terminal event"));
    }
    if accepted != outcome.points.len() {
        return Err(format!(
            "{accepted} accepted events vs {} committed points",
            outcome.points.len()
        ));
    }
    Ok(())
}

/// Injected faults: the zero deadline stops before any candidate, the
/// 1-point budget truncates deterministically (so serial == parallel), and
/// an observer attached to the cancelled sweep still sees a well-formed
/// stream.
#[allow(clippy::result_large_err)] // Err is the rare path and carries the whole repro case by design
fn check_fault_injection(
    case: &FuzzCase,
    engine: &SynthesisEngine<'_>,
    full: &SynthesisOutcome,
) -> Result<(), Failure> {
    let fail = |kind: FailureKind, detail: String| Failure {
        index: case.index,
        kind,
        detail,
        case: case.clone(),
    };

    // Zero deadline: met before the first candidate, so nothing runs.
    let zero = match guard(AssertUnwindSafe(|| {
        engine.run_with_policy(StopPolicy::Deadline(Duration::ZERO))
    })) {
        Err(payload) => {
            return Err(fail(FailureKind::Panic, format!("zero-deadline run: {payload}")))
        }
        Ok(out) => out,
    };
    if !zero.points.is_empty() || !zero.rejected.is_empty() {
        return Err(fail(
            FailureKind::FaultInjection,
            format!(
                "zero deadline still evaluated candidates ({} points, {} rejections)",
                zero.points.len(),
                zero.rejected.len()
            ),
        ));
    }

    // 1-point budget under a cancelled observer stream: prompt, truncated,
    // well-formed, and a prefix of the exhaustive outcome.
    let mut events: Vec<SweepEvent> = Vec::new();
    let budget = match guard(AssertUnwindSafe(|| {
        let mut obs = |e: &SweepEvent| events.push(e.clone());
        engine.run_with(StopPolicy::PointBudget(1), &mut obs)
    })) {
        Err(payload) => {
            return Err(fail(FailureKind::Panic, format!("point-budget run: {payload}")))
        }
        Ok(out) => out,
    };
    if budget.points.len() > 1 {
        return Err(fail(
            FailureKind::FaultInjection,
            format!("PointBudget(1) collected {} points", budget.points.len()),
        ));
    }
    if let Err(detail) = check_event_stream(&events, &budget) {
        return Err(fail(FailureKind::ObserverContract, format!("cancelled sweep: {detail}")));
    }
    if !budget.points.is_empty() && full.points.first() != budget.points.first() {
        return Err(fail(
            FailureKind::FaultInjection,
            "PointBudget(1) found a different first point than the exhaustive run".to_string(),
        ));
    }
    Ok(())
}

fn divergence_detail(serial: &SynthesisOutcome, parallel: &SynthesisOutcome) -> String {
    if serial.points.len() != parallel.points.len() {
        return format!(
            "serial found {} points, parallel {}",
            serial.points.len(),
            parallel.points.len()
        );
    }
    if serial.rejected.len() != parallel.rejected.len() {
        return format!(
            "serial rejected {} attempts, parallel {}",
            serial.rejected.len(),
            parallel.rejected.len()
        );
    }
    "outcomes differ bit-for-bit (same counts, different contents)".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_case, ConfigRecipe};

    #[test]
    fn a_valid_case_classifies_and_matches_across_schedules() {
        // Find an unmutated Standard-recipe case and push it through.
        let case = (0..400u64)
            .map(|i| generate_case(1, i))
            .find(|c| c.mutations.is_empty() && c.recipe == ConfigRecipe::Standard)
            .expect("an unmutated standard case exists in 400 draws");
        let class = run_case(&case).expect("valid case must satisfy the contract");
        assert!(matches!(class, CaseClass::Feasible | CaseClass::NoFeasiblePoint));
    }

    #[test]
    fn hostile_texts_map_to_spec_rejection() {
        let mut case = generate_case(2, 0);
        case.soc_text = "core a nan 1 0 0 0\n".to_string();
        assert_eq!(run_case(&case), Ok(CaseClass::SpecRejected));
    }

    #[test]
    fn degenerate_config_maps_to_config_rejection() {
        let case = (0..400u64)
            .map(|i| generate_case(3, i))
            .find(|c| c.mutations.is_empty() && !c.recipe.is_valid())
            .expect("a degenerate-config case exists in 400 draws");
        assert_eq!(run_case(&case), Ok(CaseClass::ConfigRejected));
    }
}
