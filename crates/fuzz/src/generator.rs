//! Seeded generation of valid adversarial specifications.
//!
//! Every case is a pure function of `(fuzz seed, case index)`: the
//! generator first builds a *valid* spec pair over one of the degenerate
//! traffic shapes catalogued by the NoC scheduling/mapping literature
//! (hotspot, transpose, bit-complement, disconnected), then the mutation
//! pass (see [`crate::mutate`]) may corrupt it into hostile input.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sunfloor_core::synthesis::{ConfigError, SynthesisConfig, SynthesisMode};

/// One generated fuzz case: both spec files as text (mutations operate on
/// the text, exactly like a hostile input file would) plus the engine
/// configuration recipe it runs under.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Case index within the fuzz run.
    pub index: u64,
    /// Core-specification text (`SocSpec::parse` input).
    pub soc_text: String,
    /// Communication-specification text (`CommSpec::parse` input).
    pub comm_text: String,
    /// Engine configuration recipe for this case.
    pub recipe: ConfigRecipe,
    /// Names of the mutations applied, in order (empty = valid case).
    pub mutations: Vec<&'static str>,
}

/// The traffic shape of a generated comm spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniformly random endpoint pairs.
    Random,
    /// Every core sends to core 0.
    Hotspot,
    /// Grid transpose: `(r, c)` talks to `(c, r)`.
    Transpose,
    /// Index mirror (the bit-complement analogue for arbitrary sizes).
    BitComplement,
    /// Only the first half of the cores communicate; the rest are isolated.
    Disconnected,
    /// A linear pipeline with request/response pairs.
    Pipeline,
}

const PATTERNS: [TrafficPattern; 6] = [
    TrafficPattern::Random,
    TrafficPattern::Hotspot,
    TrafficPattern::Transpose,
    TrafficPattern::BitComplement,
    TrafficPattern::Disconnected,
    TrafficPattern::Pipeline,
];

/// The engine configuration a case runs under. Most recipes are valid
/// (they exercise the pipeline); the degenerate ones must be rejected with
/// a typed [`ConfigError`] before any exploration starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigRecipe {
    /// Small valid sweep, layout off — the fast differential workhorse.
    Standard,
    /// One-candidate window with a tight ILL budget.
    TinyWindow,
    /// Valid sweep routed through the tempered layout annealer.
    Tempered,
    /// Inverted θ window — must be a typed [`ConfigError`].
    DegenerateTheta,
    /// Unbounded θ window (`theta_max = ∞`) — must be rejected, an
    /// accepted infinite window would make θ escalation loop forever.
    UnboundedTheta,
    /// NaN α — must be a typed [`ConfigError`].
    NanAlpha,
    /// Empty frequency sweep — must be a typed [`ConfigError`].
    EmptyFrequencies,
    /// Inverted switch-count range — must be a typed [`ConfigError`].
    ReversedSwitches,
}

impl ConfigRecipe {
    /// Builds the configuration at a given worker count.
    ///
    /// # Errors
    ///
    /// Returns the typed [`ConfigError`] for the degenerate recipes.
    pub fn build(self, jobs: usize) -> Result<SynthesisConfig, ConfigError> {
        let base = SynthesisConfig::builder().jobs(jobs).run_layout(false);
        match self {
            Self::Standard => base.switch_count_range(2, 4).build(),
            Self::TinyWindow => base.switch_count_range(1, 1).max_ill(1).build(),
            Self::Tempered => base
                .switch_count_range(2, 3)
                .mode(SynthesisMode::Phase1Only)
                .run_layout(true)
                .anneal_replicas(2)
                .build(),
            Self::DegenerateTheta => {
                base.switch_count_range(2, 4).theta_schedule(9.0, 1.0, 3.0).build()
            }
            Self::UnboundedTheta => {
                base.switch_count_range(2, 4).theta_schedule(1.0, f64::INFINITY, 3.0).build()
            }
            Self::NanAlpha => base.switch_count_range(2, 4).alpha(f64::NAN).build(),
            Self::EmptyFrequencies => base.switch_count_range(2, 4).frequencies_mhz([]).build(),
            Self::ReversedSwitches => base.switch_count_range(5, 2).build(),
        }
    }

    /// Whether this recipe is expected to build (`Ok`) at all.
    #[must_use]
    pub fn is_valid(self) -> bool {
        matches!(self, Self::Standard | Self::TinyWindow | Self::Tempered)
    }
}

/// Derives the per-case RNG. Mixing the index through splitmix-style
/// constants keeps neighbouring cases decorrelated.
#[must_use]
pub fn case_rng(seed: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
}

/// Generates case `index` of a fuzz run: a valid spec pair over a sampled
/// traffic pattern, possibly corrupted by the mutation pass.
#[must_use]
pub fn generate_case(seed: u64, index: u64) -> FuzzCase {
    let mut rng = case_rng(seed, index);
    let n = rng.gen_range(2..=10usize);
    let layers = rng.gen_range(1..=n.min(3)) as u32;
    let soc_text = soc_text(&mut rng, n, layers);
    let pattern = PATTERNS[rng.gen_range(0..PATTERNS.len())];
    let comm_text = comm_text(&mut rng, n, pattern);
    let recipe = sample_recipe(&mut rng);
    let mut case = FuzzCase { index, soc_text, comm_text, recipe, mutations: Vec::new() };
    if rng.gen_bool(0.55) {
        crate::mutate::apply_random_mutations(&mut case, &mut rng);
    }
    case
}

fn sample_recipe(rng: &mut StdRng) -> ConfigRecipe {
    // Weighted so most cases drive the full pipeline, a steady trickle
    // exercises the tempered path and each degenerate window still shows
    // up thousands of times over a 10k-case run.
    let roll = rng.gen_range(0..100u32);
    match roll {
        0..=64 => ConfigRecipe::Standard,
        65..=79 => ConfigRecipe::TinyWindow,
        80..=84 => ConfigRecipe::Tempered,
        85..=87 => ConfigRecipe::DegenerateTheta,
        88..=90 => ConfigRecipe::UnboundedTheta,
        91..=93 => ConfigRecipe::NanAlpha,
        94..=96 => ConfigRecipe::EmptyFrequencies,
        _ => ConfigRecipe::ReversedSwitches,
    }
}

fn soc_text(rng: &mut StdRng, n: usize, layers: u32) -> String {
    let mut out = String::from("# fuzz-generated core specification\n");
    out.push_str(&format!("layers {layers}\n"));
    for i in 0..n {
        let w = rng.gen_range(0.5..4.0);
        let h = rng.gen_range(0.5..4.0);
        let x = (i % 4) as f64 * 5.0 + rng.gen_range(0.0..1.0);
        let y = (i / 4) as f64 * 5.0 + rng.gen_range(0.0..1.0);
        // Layer 0 always has core 0 so even 1-layer stacks are populated;
        // other layers land wherever the dice say (possibly empty layers —
        // valid, and exactly the kind of shape §VIII never exercises).
        let layer = if i == 0 { 0 } else { rng.gen_range(0..layers) };
        out.push_str(&format!("core c{i} {w} {h} {x} {y} {layer}\n"));
    }
    out
}

fn comm_text(rng: &mut StdRng, n: usize, pattern: TrafficPattern) -> String {
    let mut out = String::from("# fuzz-generated communication specification\n");
    let mut push = |rng: &mut StdRng, src: usize, dst: usize, response: bool| {
        if src == dst || src >= n || dst >= n {
            return;
        }
        let bw = rng.gen_range(10.0..800.0);
        let lat = rng.gen_range(4.0..30.0);
        let kind = if response { "response" } else { "request" };
        out.push_str(&format!("flow c{src} c{dst} {bw} {lat} {kind}\n"));
    };
    match pattern {
        TrafficPattern::Random => {
            for _ in 0..rng.gen_range(1..=2 * n) {
                let src = rng.gen_range(0..n);
                let dst = rng.gen_range(0..n);
                let response = rng.gen_bool(0.3);
                push(rng, src, dst, response);
            }
        }
        TrafficPattern::Hotspot => {
            for src in 1..n {
                push(rng, src, 0, false);
                if rng.gen_bool(0.5) {
                    push(rng, 0, src, true);
                }
            }
        }
        TrafficPattern::Transpose => {
            let side = (1..).find(|s| s * s >= n).unwrap_or(1);
            for i in 0..n {
                let (r, c) = (i / side, i % side);
                push(rng, i, c * side + r, false);
            }
        }
        TrafficPattern::BitComplement => {
            for i in 0..n {
                push(rng, i, n - 1 - i, false);
            }
        }
        TrafficPattern::Disconnected => {
            let half = (n / 2).max(1);
            for src in 0..half {
                let dst = rng.gen_range(0..half);
                push(rng, src, dst, false);
            }
        }
        TrafficPattern::Pipeline => {
            for i in 0..n - 1 {
                push(rng, i, i + 1, false);
                if rng.gen_bool(0.4) {
                    push(rng, i + 1, i, true);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunfloor_core::spec::{CommSpec, SocSpec};

    #[test]
    fn generation_is_a_pure_function_of_seed_and_index() {
        for index in [0u64, 1, 57, 4096] {
            let a = generate_case(9, index);
            let b = generate_case(9, index);
            assert_eq!(a.soc_text, b.soc_text);
            assert_eq!(a.comm_text, b.comm_text);
            assert_eq!(a.recipe, b.recipe);
            assert_eq!(a.mutations, b.mutations);
        }
    }

    #[test]
    fn unmutated_cases_parse_and_validate() {
        let mut valid = 0;
        for index in 0..200u64 {
            let case = generate_case(3, index);
            if !case.mutations.is_empty() {
                continue;
            }
            let soc = SocSpec::parse(&case.soc_text).expect("generated soc is valid");
            CommSpec::parse(&case.comm_text, &soc).expect("generated comm is valid");
            valid += 1;
        }
        assert!(valid > 30, "only {valid} unmutated cases in 200");
    }

    #[test]
    fn recipes_build_or_fail_as_declared() {
        let all = [
            ConfigRecipe::Standard,
            ConfigRecipe::TinyWindow,
            ConfigRecipe::Tempered,
            ConfigRecipe::DegenerateTheta,
            ConfigRecipe::UnboundedTheta,
            ConfigRecipe::NanAlpha,
            ConfigRecipe::EmptyFrequencies,
            ConfigRecipe::ReversedSwitches,
        ];
        for recipe in all {
            assert_eq!(recipe.build(1).is_ok(), recipe.is_valid(), "{recipe:?}");
        }
    }
}
