//! Balanced k-way min-cut graph partitioning.
//!
//! Both phases of SunFloor 3D's core-to-switch connectivity step repeatedly
//! ask for "`i` min-cut partitions of PG … such that each block has about
//! equal number of cores" (paper §V-A, Algorithm 1 step 5, and Algorithm 2
//! step 13). The original tool used an external hypergraph partitioner; this
//! crate rebuilds the capability from scratch:
//!
//! * **Recursive bisection**: a k-way partition is obtained by recursively
//!   splitting the vertex set with per-side target counts, so the final block
//!   sizes differ by at most one vertex.
//! * **Fiduccia–Mattheyses (FM) refinement**: each bisection starts from a
//!   randomized balanced seed and is improved with locked-move FM passes,
//!   keeping the best prefix of every pass.
//! * **Pairwise-swap k-way polish**: after recursion, a greedy swap pass
//!   removes cut weight that straddles sibling blocks without disturbing the
//!   block sizes.
//! * **Multi-start determinism**: several seeded restarts are taken and the
//!   best is returned; the RNG seed is part of the configuration, so results
//!   are reproducible run to run.
//!
//! Vertex counts in this domain are small (tens to a couple of hundred
//! cores), so the implementation favours clarity over asymptotics: all passes
//! are `O(n²)` per round.
//!
//! # Example
//!
//! ```
//! use sunfloor_partition::{PartitionConfig, WeightedGraph};
//!
//! // Two 3-cliques joined by one light edge: the min balanced bisection
//! // cuts only the light edge.
//! let mut g = WeightedGraph::new(6);
//! for &(a, b) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)] {
//!     g.add_edge(a, b, 10.0);
//! }
//! g.add_edge(2, 3, 1.0);
//! let part = g.partition(&PartitionConfig::k_way(2))?;
//! assert_eq!(part.cut_weight, 1.0);
//! assert_eq!(part.part_of(0), part.part_of(1));
//! assert_ne!(part.part_of(0), part.part_of(5));
//! # Ok::<(), sunfloor_partition::PartitionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fm;
mod graph;

pub use graph::WeightedGraph;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;

/// Configuration of a k-way partitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Number of blocks to produce.
    pub parts: usize,
    /// Independent randomized restarts; the best result wins. When
    /// [`Self::initial`] is set this counts the *additional* cold restarts
    /// run alongside the warm-started candidate, and may be zero.
    pub restarts: u32,
    /// Maximum FM refinement passes per bisection.
    pub max_passes: u32,
    /// RNG seed — the same seed always yields the same partition.
    pub rng_seed: u64,
    /// Optional warm-start assignment (one block label per vertex).
    ///
    /// When present, a deterministic refinement of this assignment —
    /// normalized to `parts` blocks, rebalanced to near-equal sizes, then
    /// improved with move/swap local search — competes with the cold
    /// restarts and the best cut wins (ties prefer the warm result). This
    /// is how SunFloor's θ-escalation steps and adjacent-switch-count
    /// candidates reuse the previous partition instead of
    /// recursive-bisecting from scratch. An assignment of the wrong length
    /// is ignored.
    pub initial: Option<Vec<u32>>,
    /// Spacing of the cold restart seed sequence: restart `r` seeds its RNG
    /// with `rng_seed + r * seed_stride`. The default of 1 walks
    /// consecutive seeds; a warm-started caller that trims `restarts` can
    /// raise the stride so the reduced budget still samples the same seed
    /// span the full budget draws from (restart diversity comes from the
    /// seed spread, not the restart count).
    pub seed_stride: u32,
}

impl PartitionConfig {
    /// A configuration producing `parts` blocks with default effort.
    #[must_use]
    pub fn k_way(parts: usize) -> Self {
        Self {
            parts,
            restarts: 8,
            max_passes: 10,
            rng_seed: 0xC0FF_EE00,
            initial: None,
            seed_stride: 1,
        }
    }

    /// Overrides the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Overrides the restart count (builder style).
    #[must_use]
    pub fn with_restarts(mut self, restarts: u32) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Seeds the run with a warm-start assignment (builder style); see
    /// [`Self::initial`]. Usually combined with a low [`Self::restarts`]
    /// (even zero, set directly on the field) so the warm refinement does
    /// the heavy lifting.
    #[must_use]
    pub fn with_initial(mut self, assignment: Vec<u32>) -> Self {
        self.initial = Some(assignment);
        self
    }
}

/// Result of a partitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    assignment: Vec<u32>,
    parts: usize,
    /// Total weight of edges whose endpoints land in different blocks.
    pub cut_weight: f64,
}

impl Partitioning {
    /// Block index of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn part_of(&self, v: usize) -> u32 {
        self.assignment[v]
    }

    /// The block index of every vertex, in vertex order.
    #[must_use]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of blocks.
    #[must_use]
    pub fn part_count(&self) -> usize {
        self.parts
    }

    /// Vertices belonging to block `p`.
    ///
    /// Allocates a fresh `Vec` per call; hot loops should use
    /// [`Self::members_iter`] or [`Self::members_into`] instead.
    #[must_use]
    pub fn members(&self, p: u32) -> Vec<usize> {
        self.members_iter(p).collect()
    }

    /// Iterates over the vertices of block `p` in ascending vertex order
    /// without allocating.
    pub fn members_iter(&self, p: u32) -> impl Iterator<Item = usize> + '_ {
        self.assignment.iter().enumerate().filter(move |&(_, &a)| a == p).map(|(v, _)| v)
    }

    /// Collects the vertices of block `p` into `out` (cleared first), so a
    /// caller-owned buffer can be reused across blocks — the allocation-free
    /// form of [`Self::members`] for the Phase-1 hot loop.
    pub fn members_into(&self, p: u32, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.members_iter(p));
    }

    /// Sizes of all blocks, indexed by block.
    #[must_use]
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }
}

/// Error produced when a partition request cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// `parts` was zero.
    ZeroParts,
    /// More blocks requested than vertices available.
    TooManyParts {
        /// Requested block count.
        parts: usize,
        /// Vertices in the graph.
        vertices: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroParts => write!(f, "cannot split a graph into zero blocks"),
            Self::TooManyParts { parts, vertices } => {
                write!(f, "requested {parts} blocks but the graph has only {vertices} vertices")
            }
        }
    }
}

impl Error for PartitionError {}

impl WeightedGraph {
    /// Splits the graph into `cfg.parts` blocks of near-equal size (sizes
    /// differ by at most one) while minimizing the total cut weight.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::ZeroParts`] or
    /// [`PartitionError::TooManyParts`] on malformed requests.
    pub fn partition(&self, cfg: &PartitionConfig) -> Result<Partitioning, PartitionError> {
        let n = self.node_count();
        if cfg.parts == 0 {
            return Err(PartitionError::ZeroParts);
        }
        if cfg.parts > n {
            return Err(PartitionError::TooManyParts { parts: cfg.parts, vertices: n });
        }

        if cfg.parts == 1 {
            return Ok(Partitioning { assignment: vec![0; n], parts: 1, cut_weight: 0.0 });
        }
        if cfg.parts == n {
            let assignment: Vec<u32> = (0..n as u32).collect();
            let cut = self.cut_weight(&assignment);
            return Ok(Partitioning { assignment, parts: n, cut_weight: cut });
        }

        let mut best: Option<Partitioning> = None;
        let mut ws = fm::Workspace::new(n);

        // Warm start: refine the caller's assignment deterministically and
        // let it compete with the cold restarts. It is evaluated first, so
        // on a tie the warm result wins — warm-started sweeps stay stable
        // when the cold search merely matches them.
        if let Some(initial) = cfg.initial.as_deref() {
            if initial.len() == n {
                let mut assignment = vec![0u32; n];
                fm::warm_refine(self, initial, cfg.parts, cfg.max_passes, &mut assignment, &mut ws);
                let cut = self.cut_weight(&assignment);
                best = Some(Partitioning { assignment, parts: cfg.parts, cut_weight: cut });
            }
        }

        // With a warm candidate in hand `restarts` may be zero (warm-only);
        // a pure cold run always takes at least one restart.
        let cold_restarts = if best.is_some() { cfg.restarts } else { cfg.restarts.max(1) };
        let mut vertices: Vec<usize> = Vec::with_capacity(n);
        for restart in 0..cold_restarts {
            let mut rng = StdRng::seed_from_u64(
                cfg.rng_seed.wrapping_add(u64::from(restart) * u64::from(cfg.seed_stride)),
            );
            let mut assignment = vec![0u32; n];
            vertices.clear();
            vertices.extend(0..n);
            fm::recursive_bisect(
                self,
                &mut vertices,
                cfg.parts,
                0,
                cfg.max_passes,
                &mut rng,
                &mut assignment,
                &mut ws,
            );
            fm::kway_swap_refine(self, &mut assignment, &mut ws);
            let cut = self.cut_weight(&assignment);
            if best.as_ref().is_none_or(|b| cut < b.cut_weight) {
                best = Some(Partitioning { assignment, parts: cfg.parts, cut_weight: cut });
            }
        }

        // Warm-started runs trade restart count for refinement depth
        // (hMetis-style V-cycling): the winning assignment gets one final
        // FM polish, which can only lower its cut.
        if cfg.initial.is_some() {
            if let Some(b) = best.as_mut() {
                let mut polished = Vec::new();
                fm::warm_refine(self, &b.assignment, cfg.parts, cfg.max_passes, &mut polished, &mut ws);
                let cut = self.cut_weight(&polished);
                if cut < b.cut_weight {
                    b.assignment = polished;
                    b.cut_weight = cut;
                }
            }
        }
        // sf-allow(panic-in-lib): invariant — `cold_restarts` is forced to at
        // least 1 whenever no warm candidate seeded `best`, so one of the two
        // branches above always stores a partitioning before we get here
        Ok(best.expect("a warm candidate or at least one cold restart ran"))
    }
}

#[cfg(test)]
mod tests;
