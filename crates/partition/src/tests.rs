use super::*;
use proptest::prelude::*;
use rand::Rng;

/// Enumerates every balanced 2-way split of an `n`-vertex graph and returns
/// the optimal cut (used as ground truth on tiny instances).
fn brute_force_bisection(g: &WeightedGraph) -> f64 {
    let n = g.node_count();
    let n1 = n.div_ceil(2);
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != n1 {
            continue;
        }
        let assignment: Vec<u32> =
            (0..n).map(|v| u32::from(mask & (1 << v) != 0)).collect();
        best = best.min(g.cut_weight(&assignment));
    }
    best
}

fn random_graph(n: usize, density: f64, seed: u64) -> WeightedGraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(density) {
                g.add_edge(a, b, rng.gen_range(0.5..20.0));
            }
        }
    }
    g
}

#[test]
fn one_part_is_trivial() {
    let g = random_graph(10, 0.5, 1);
    let p = g.partition(&PartitionConfig::k_way(1)).unwrap();
    assert_eq!(p.cut_weight, 0.0);
    assert!(p.assignment().iter().all(|&x| x == 0));
}

#[test]
fn n_parts_puts_each_vertex_alone() {
    let g = random_graph(6, 0.8, 2);
    let p = g.partition(&PartitionConfig::k_way(6)).unwrap();
    assert_eq!(p.part_sizes(), vec![1; 6]);
    assert!((p.cut_weight - g.total_weight()).abs() < 1e-9);
}

#[test]
fn zero_parts_rejected() {
    let g = WeightedGraph::new(3);
    assert_eq!(g.partition(&PartitionConfig::k_way(0)), Err(PartitionError::ZeroParts));
}

#[test]
fn too_many_parts_rejected() {
    let g = WeightedGraph::new(3);
    let err = g.partition(&PartitionConfig::k_way(4)).unwrap_err();
    assert_eq!(err, PartitionError::TooManyParts { parts: 4, vertices: 3 });
    assert!(err.to_string().contains("4 blocks"));
}

#[test]
fn finds_optimal_bisection_on_small_graphs() {
    for seed in 0..12u64 {
        for n in [6usize, 8, 10] {
            let g = random_graph(n, 0.55, seed * 31 + n as u64);
            let cfg = PartitionConfig::k_way(2).with_restarts(24);
            let p = g.partition(&cfg).unwrap();
            let opt = brute_force_bisection(&g);
            assert!(
                p.cut_weight <= opt + 1e-9,
                "seed {seed} n {n}: got {} vs optimal {opt}",
                p.cut_weight
            );
        }
    }
}

#[test]
fn clustered_graph_separates_clusters() {
    // Three heavy 4-cliques, lightly interconnected.
    let mut g = WeightedGraph::new(12);
    for c in 0..3usize {
        for a in 0..4usize {
            for b in (a + 1)..4 {
                g.add_edge(4 * c + a, 4 * c + b, 50.0);
            }
        }
    }
    g.add_edge(0, 4, 1.0);
    g.add_edge(4, 8, 1.0);
    g.add_edge(8, 0, 1.0);
    let p = g.partition(&PartitionConfig::k_way(3)).unwrap();
    assert_eq!(p.cut_weight, 3.0, "only the three light edges should be cut");
    for c in 0..3 {
        let label = p.part_of(4 * c);
        for v in 1..4 {
            assert_eq!(p.part_of(4 * c + v), label, "clique {c} split");
        }
    }
}

#[test]
fn deterministic_for_same_seed() {
    let g = random_graph(20, 0.3, 7);
    let cfg = PartitionConfig::k_way(4).with_seed(99);
    let a = g.partition(&cfg).unwrap();
    let b = g.partition(&cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn disconnected_graph_is_handled() {
    let g = WeightedGraph::new(9); // no edges at all
    let p = g.partition(&PartitionConfig::k_way(3)).unwrap();
    assert_eq!(p.cut_weight, 0.0);
    let mut sizes = p.part_sizes();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![3, 3, 3]);
}

#[test]
fn members_into_and_iter_match_members() {
    let g = random_graph(14, 0.4, 11);
    let p = g.partition(&PartitionConfig::k_way(4).with_seed(3)).unwrap();
    let mut buf = Vec::new();
    for block in 0..4u32 {
        let owned = p.members(block);
        p.members_into(block, &mut buf);
        assert_eq!(buf, owned, "members_into disagrees for block {block}");
        let collected: Vec<usize> = p.members_iter(block).collect();
        assert_eq!(collected, owned, "members_iter disagrees for block {block}");
    }
    // The buffer is cleared between calls, so reuse never accumulates.
    p.members_into(0, &mut buf);
    let first = buf.clone();
    p.members_into(0, &mut buf);
    assert_eq!(buf, first);
}

#[test]
fn warm_start_is_deterministic_and_never_worse_than_its_cold_run() {
    for seed in [0u64, 7, 99] {
        let g = random_graph(18, 0.35, seed.wrapping_mul(13).wrapping_add(5));
        for parts in [2usize, 3, 5] {
            let cold = g.partition(&PartitionConfig::k_way(parts).with_seed(seed)).unwrap();
            let warm_cfg = PartitionConfig::k_way(parts)
                .with_seed(seed)
                .with_initial(cold.assignment().to_vec());
            let warm = g.partition(&warm_cfg).unwrap();
            assert_eq!(warm, g.partition(&warm_cfg).unwrap(), "warm run not deterministic");
            assert!(
                warm.cut_weight <= cold.cut_weight + 1e-9,
                "warm start degraded the cut: {} vs {}",
                warm.cut_weight,
                cold.cut_weight
            );
            let sizes = warm.part_sizes();
            let (min, max) =
                (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(min >= 1 && max - min <= 1, "imbalanced warm result: {sizes:?}");
        }
    }
}

#[test]
fn warm_start_adapts_initials_with_wrong_block_counts() {
    // Growing: a k=3 assignment seeds a k=5 request; shrinking: a k=5
    // assignment seeds a k=3 request. Both must normalize, stay balanced
    // and stay deterministic.
    let g = random_graph(20, 0.4, 77);
    let three = g.partition(&PartitionConfig::k_way(3).with_seed(1)).unwrap();
    let five_cfg = PartitionConfig::k_way(5)
        .with_seed(1)
        .with_initial(three.assignment().to_vec());
    let five = g.partition(&five_cfg).unwrap();
    assert_eq!(five.part_count(), 5);
    let sizes = five.part_sizes();
    assert!(sizes.iter().all(|&s| s == 4), "5-way split of 20: {sizes:?}");

    let back_cfg = PartitionConfig::k_way(3)
        .with_seed(1)
        .with_initial(five.assignment().to_vec());
    let back = g.partition(&back_cfg).unwrap();
    assert_eq!(back.part_count(), 3);
    let sizes = back.part_sizes();
    assert!(
        sizes.iter().all(|&s| (6..=7).contains(&s)),
        "3-way split of 20: {sizes:?}"
    );
    assert_eq!(back, g.partition(&back_cfg).unwrap());
}

#[test]
fn warm_only_run_is_allowed_with_zero_restarts() {
    let g = random_graph(16, 0.4, 5);
    let cold = g.partition(&PartitionConfig::k_way(4).with_seed(9)).unwrap();
    let mut cfg =
        PartitionConfig::k_way(4).with_seed(9).with_initial(cold.assignment().to_vec());
    cfg.restarts = 0;
    let warm = g.partition(&cfg).unwrap();
    assert_eq!(warm.part_count(), 4);
    assert!(warm.cut_weight <= cold.cut_weight + 1e-9);
    let sizes = warm.part_sizes();
    assert!(sizes.iter().all(|&s| s == 4), "balanced warm-only result: {sizes:?}");
}

#[test]
fn wrong_length_initial_is_ignored_not_fatal() {
    let g = random_graph(12, 0.4, 3);
    let cfg = PartitionConfig::k_way(3).with_seed(2).with_initial(vec![0, 1, 2]);
    let with_bad_initial = g.partition(&cfg).unwrap();
    let cold = g.partition(&PartitionConfig::k_way(3).with_seed(2)).unwrap();
    assert_eq!(with_bad_initial, cold, "a wrong-length initial must fall back to cold");
}

#[test]
fn reweigh_rescales_weights_in_place() {
    let mut g = WeightedGraph::new(4);
    g.add_edge(0, 1, 2.0);
    g.add_edge(1, 2, 3.0);
    g.add_edge(2, 3, 4.0);
    let before = g.clone();
    g.reweigh(|_, _, w| w * 2.0);
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 3)] {
        assert_eq!(g.edge_weight(a, b), before.edge_weight(a, b) * 2.0);
        assert_eq!(g.edge_weight(b, a), g.edge_weight(a, b), "symmetry preserved");
    }
    assert_eq!(g.total_weight(), before.total_weight() * 2.0);
    // Visiting order is deterministic: vertices ascending, insertion order.
    let mut visits = Vec::new();
    g.reweigh(|v, u, w| {
        visits.push((v, u));
        w
    });
    assert_eq!(visits, vec![(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
}

proptest! {
    #[test]
    fn warm_start_from_arbitrary_labels_stays_balanced(
        n in 6usize..24,
        parts in 2usize..5,
        seed in 0u64..60,
    ) {
        prop_assume!(parts <= n);
        let g = random_graph(n, 0.35, seed.wrapping_mul(41));
        // An arbitrary (often unbalanced, wrongly-sized) initial labeling.
        let initial: Vec<u32> = (0..n).map(|v| (v as u32).wrapping_mul(7) % 9).collect();
        let cfg = PartitionConfig::k_way(parts).with_seed(seed).with_initial(initial);
        let p = g.partition(&cfg).unwrap();
        let sizes = p.part_sizes();
        prop_assert_eq!(sizes.len(), parts);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(min >= 1 && max - min <= 1, "imbalanced: {:?}", sizes);
        prop_assert!((p.cut_weight - g.cut_weight(p.assignment())).abs() < 1e-9);
    }

    #[test]
    fn sizes_are_balanced(n in 4usize..40, parts in 2usize..6, seed in 0u64..500) {
        prop_assume!(parts <= n);
        let g = random_graph(n, 0.35, seed);
        let p = g.partition(&PartitionConfig::k_way(parts).with_seed(seed)).unwrap();
        let sizes = p.part_sizes();
        prop_assert_eq!(sizes.len(), parts);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(min >= 1, "empty block");
        prop_assert!(max - min <= 1, "imbalanced blocks: {:?}", sizes);
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
    }

    #[test]
    fn reported_cut_matches_recomputation(n in 4usize..30, parts in 2usize..5, seed in 0u64..200) {
        prop_assume!(parts <= n);
        let g = random_graph(n, 0.4, seed.wrapping_mul(17));
        let p = g.partition(&PartitionConfig::k_way(parts).with_seed(seed)).unwrap();
        let recomputed = g.cut_weight(p.assignment());
        prop_assert!((p.cut_weight - recomputed).abs() < 1e-9);
    }

    #[test]
    fn cut_never_exceeds_total_weight(n in 4usize..30, parts in 2usize..6, seed in 0u64..200) {
        prop_assume!(parts <= n);
        let g = random_graph(n, 0.5, seed.wrapping_mul(29));
        let p = g.partition(&PartitionConfig::k_way(parts).with_seed(seed)).unwrap();
        prop_assert!(p.cut_weight <= g.total_weight() + 1e-9);
    }

    #[test]
    fn members_and_assignment_agree(n in 4usize..25, parts in 2usize..5, seed in 0u64..100) {
        prop_assume!(parts <= n);
        let g = random_graph(n, 0.4, seed);
        let p = g.partition(&PartitionConfig::k_way(parts).with_seed(seed)).unwrap();
        for block in 0..parts as u32 {
            for v in p.members(block) {
                prop_assert_eq!(p.part_of(v), block);
            }
        }
    }
}
