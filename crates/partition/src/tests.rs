use super::*;
use proptest::prelude::*;
use rand::Rng;

/// Enumerates every balanced 2-way split of an `n`-vertex graph and returns
/// the optimal cut (used as ground truth on tiny instances).
fn brute_force_bisection(g: &WeightedGraph) -> f64 {
    let n = g.node_count();
    let n1 = n.div_ceil(2);
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != n1 {
            continue;
        }
        let assignment: Vec<u32> =
            (0..n).map(|v| u32::from(mask & (1 << v) != 0)).collect();
        best = best.min(g.cut_weight(&assignment));
    }
    best
}

fn random_graph(n: usize, density: f64, seed: u64) -> WeightedGraph {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(density) {
                g.add_edge(a, b, rng.gen_range(0.5..20.0));
            }
        }
    }
    g
}

#[test]
fn one_part_is_trivial() {
    let g = random_graph(10, 0.5, 1);
    let p = g.partition(&PartitionConfig::k_way(1)).unwrap();
    assert_eq!(p.cut_weight, 0.0);
    assert!(p.assignment().iter().all(|&x| x == 0));
}

#[test]
fn n_parts_puts_each_vertex_alone() {
    let g = random_graph(6, 0.8, 2);
    let p = g.partition(&PartitionConfig::k_way(6)).unwrap();
    assert_eq!(p.part_sizes(), vec![1; 6]);
    assert!((p.cut_weight - g.total_weight()).abs() < 1e-9);
}

#[test]
fn zero_parts_rejected() {
    let g = WeightedGraph::new(3);
    assert_eq!(g.partition(&PartitionConfig::k_way(0)), Err(PartitionError::ZeroParts));
}

#[test]
fn too_many_parts_rejected() {
    let g = WeightedGraph::new(3);
    let err = g.partition(&PartitionConfig::k_way(4)).unwrap_err();
    assert_eq!(err, PartitionError::TooManyParts { parts: 4, vertices: 3 });
    assert!(err.to_string().contains("4 blocks"));
}

#[test]
fn finds_optimal_bisection_on_small_graphs() {
    for seed in 0..12u64 {
        for n in [6usize, 8, 10] {
            let g = random_graph(n, 0.55, seed * 31 + n as u64);
            let cfg = PartitionConfig::k_way(2).with_restarts(24);
            let p = g.partition(&cfg).unwrap();
            let opt = brute_force_bisection(&g);
            assert!(
                p.cut_weight <= opt + 1e-9,
                "seed {seed} n {n}: got {} vs optimal {opt}",
                p.cut_weight
            );
        }
    }
}

#[test]
fn clustered_graph_separates_clusters() {
    // Three heavy 4-cliques, lightly interconnected.
    let mut g = WeightedGraph::new(12);
    for c in 0..3usize {
        for a in 0..4usize {
            for b in (a + 1)..4 {
                g.add_edge(4 * c + a, 4 * c + b, 50.0);
            }
        }
    }
    g.add_edge(0, 4, 1.0);
    g.add_edge(4, 8, 1.0);
    g.add_edge(8, 0, 1.0);
    let p = g.partition(&PartitionConfig::k_way(3)).unwrap();
    assert_eq!(p.cut_weight, 3.0, "only the three light edges should be cut");
    for c in 0..3 {
        let label = p.part_of(4 * c);
        for v in 1..4 {
            assert_eq!(p.part_of(4 * c + v), label, "clique {c} split");
        }
    }
}

#[test]
fn deterministic_for_same_seed() {
    let g = random_graph(20, 0.3, 7);
    let cfg = PartitionConfig::k_way(4).with_seed(99);
    let a = g.partition(&cfg).unwrap();
    let b = g.partition(&cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn disconnected_graph_is_handled() {
    let g = WeightedGraph::new(9); // no edges at all
    let p = g.partition(&PartitionConfig::k_way(3)).unwrap();
    assert_eq!(p.cut_weight, 0.0);
    let mut sizes = p.part_sizes();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![3, 3, 3]);
}

proptest! {
    #[test]
    fn sizes_are_balanced(n in 4usize..40, parts in 2usize..6, seed in 0u64..500) {
        prop_assume!(parts <= n);
        let g = random_graph(n, 0.35, seed);
        let p = g.partition(&PartitionConfig::k_way(parts).with_seed(seed)).unwrap();
        let sizes = p.part_sizes();
        prop_assert_eq!(sizes.len(), parts);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(min >= 1, "empty block");
        prop_assert!(max - min <= 1, "imbalanced blocks: {:?}", sizes);
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
    }

    #[test]
    fn reported_cut_matches_recomputation(n in 4usize..30, parts in 2usize..5, seed in 0u64..200) {
        prop_assume!(parts <= n);
        let g = random_graph(n, 0.4, seed.wrapping_mul(17));
        let p = g.partition(&PartitionConfig::k_way(parts).with_seed(seed)).unwrap();
        let recomputed = g.cut_weight(p.assignment());
        prop_assert!((p.cut_weight - recomputed).abs() < 1e-9);
    }

    #[test]
    fn cut_never_exceeds_total_weight(n in 4usize..30, parts in 2usize..6, seed in 0u64..200) {
        prop_assume!(parts <= n);
        let g = random_graph(n, 0.5, seed.wrapping_mul(29));
        let p = g.partition(&PartitionConfig::k_way(parts).with_seed(seed)).unwrap();
        prop_assert!(p.cut_weight <= g.total_weight() + 1e-9);
    }

    #[test]
    fn members_and_assignment_agree(n in 4usize..25, parts in 2usize..5, seed in 0u64..100) {
        prop_assume!(parts <= n);
        let g = random_graph(n, 0.4, seed);
        let p = g.partition(&PartitionConfig::k_way(parts).with_seed(seed)).unwrap();
        for block in 0..parts as u32 {
            for v in p.members(block) {
                prop_assert_eq!(p.part_of(v), block);
            }
        }
    }
}
