//! Recursive bisection with Fiduccia–Mattheyses refinement and a k-way
//! swap polish.

use crate::graph::WeightedGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Recursively splits `vertices` into `parts` blocks, writing block labels
/// `first_label..first_label + parts` into `assignment`.
pub(crate) fn recursive_bisect(
    g: &WeightedGraph,
    vertices: &[usize],
    parts: usize,
    first_label: u32,
    max_passes: u32,
    rng: &mut StdRng,
    assignment: &mut [u32],
) {
    debug_assert!(parts >= 1 && vertices.len() >= parts);
    if parts == 1 {
        for &v in vertices {
            assignment[v] = first_label;
        }
        return;
    }
    let k1 = parts.div_ceil(2);
    let k2 = parts - k1;
    // Target size proportional to the number of blocks on each side, clamped
    // so both sides keep at least one vertex per block.
    let ideal = (vertices.len() * k1 + parts / 2) / parts;
    let n1 = ideal.clamp(k1, vertices.len() - k2);

    let side0 = bisect(g, vertices, n1, max_passes, rng);
    let mut left = Vec::with_capacity(n1);
    let mut right = Vec::with_capacity(vertices.len() - n1);
    for (i, &v) in vertices.iter().enumerate() {
        if side0[i] {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    recursive_bisect(g, &left, k1, first_label, max_passes, rng, assignment);
    recursive_bisect(g, &right, k2, first_label + k1 as u32, max_passes, rng, assignment);
}

/// Bisects `vertices` into sides of exactly (`n1`, `len - n1`) vertices.
/// Returns `true` for vertices on side 0, indexed like `vertices`.
fn bisect(
    g: &WeightedGraph,
    vertices: &[usize],
    n1: usize,
    max_passes: u32,
    rng: &mut StdRng,
) -> Vec<bool> {
    let m = vertices.len();
    debug_assert!(n1 >= 1 && n1 < m);

    // Local index of each global vertex (usize::MAX = not in subset).
    let mut local = vec![usize::MAX; g.node_count()];
    for (i, &v) in vertices.iter().enumerate() {
        local[v] = i;
    }

    // --- initial solution: greedy growth from a random seed -------------
    let mut side0 = greedy_grow(g, vertices, &local, n1, rng);

    // conn[i][s] = weight from local vertex i to side s (within the subset)
    let mut conn = vec![[0.0f64; 2]; m];
    let mut cut = 0.0;
    for (i, &v) in vertices.iter().enumerate() {
        for &(u, w) in g.neighbors(v) {
            let lu = local[u as usize];
            if lu == usize::MAX {
                continue;
            }
            let s = usize::from(!side0[lu]);
            conn[i][s] += w;
            if side0[i] != side0[lu] && i < lu {
                cut += w;
            }
        }
    }
    // --- FM passes -------------------------------------------------------
    for _ in 0..max_passes {
        let improved = fm_pass(vertices, &mut side0, &mut conn, &mut cut, n1, &local, g);
        if !improved {
            break;
        }
    }
    side0
}

/// Grows side 0 greedily: start from a random seed, repeatedly absorb the
/// unassigned vertex with the strongest connection to side 0.
fn greedy_grow(
    g: &WeightedGraph,
    vertices: &[usize],
    local: &[usize],
    n1: usize,
    rng: &mut StdRng,
) -> Vec<bool> {
    let m = vertices.len();
    let mut side0 = vec![false; m];
    let mut attraction = vec![0.0f64; m];
    let mut order: Vec<usize> = (0..m).collect();
    order.shuffle(rng);

    let seed = rng.gen_range(0..m);
    side0[seed] = true;
    let mut grown = 1;
    update_attraction(g, vertices, local, seed, &mut attraction);

    while grown < n1 {
        let mut best = usize::MAX;
        let mut best_w = f64::NEG_INFINITY;
        for &i in &order {
            if !side0[i] && attraction[i] > best_w {
                best_w = attraction[i];
                best = i;
            }
        }
        side0[best] = true;
        grown += 1;
        update_attraction(g, vertices, local, best, &mut attraction);
    }
    side0
}

fn update_attraction(
    g: &WeightedGraph,
    vertices: &[usize],
    local: &[usize],
    newly_added: usize,
    attraction: &mut [f64],
) {
    for &(u, w) in g.neighbors(vertices[newly_added]) {
        let lu = local[u as usize];
        if lu != usize::MAX {
            attraction[lu] += w;
        }
    }
}

/// One FM pass with exact balance targets: moves may leave the split one
/// vertex out of balance mid-pass, and the best *balanced* prefix of the
/// move sequence is kept. Returns whether the cut improved.
#[allow(clippy::too_many_arguments)]
fn fm_pass(
    vertices: &[usize],
    side0: &mut [bool],
    conn: &mut [[f64; 2]],
    cut: &mut f64,
    n1: usize,
    local: &[usize],
    g: &WeightedGraph,
) -> bool {
    let m = vertices.len();
    let start_cut = *cut;
    let mut locked = vec![false; m];
    let mut size0 = side0.iter().filter(|&&s| s).count();

    let mut moves: Vec<usize> = Vec::with_capacity(m);
    let mut running = *cut;
    let mut best_cut = *cut;
    let mut best_prefix = 0usize;

    for _step in 0..m {
        // Pick the best-gain unlocked vertex whose move keeps |size0-n1|<=1.
        let mut best = usize::MAX;
        let mut best_gain = f64::NEG_INFINITY;
        for i in 0..m {
            if locked[i] {
                continue;
            }
            let from0 = side0[i];
            let new_size0 = if from0 { size0 - 1 } else { size0 + 1 };
            if new_size0.abs_diff(n1) > 1 {
                continue;
            }
            let own = usize::from(!from0); // index of own side in conn
            let other = usize::from(from0);
            let gain = conn[i][other] - conn[i][own];
            if gain > best_gain {
                best_gain = gain;
                best = i;
            }
        }
        if best == usize::MAX {
            break;
        }

        // Apply the move.
        let from0 = side0[best];
        side0[best] = !from0;
        size0 = if from0 { size0 - 1 } else { size0 + 1 };
        running -= best_gain;
        locked[best] = true;
        moves.push(best);

        // Update neighbor connectivity.
        for &(u, w) in g.neighbors(vertices[best]) {
            let lu = local[u as usize];
            if lu == usize::MAX {
                continue;
            }
            // `best` moved from side `from0` to the opposite side.
            let old_s = usize::from(!from0);
            let new_s = usize::from(from0);
            conn[lu][old_s] -= w;
            conn[lu][new_s] += w;
        }

        if size0 == n1 && running < best_cut - 1e-12 {
            best_cut = running;
            best_prefix = moves.len();
        }
    }

    // Roll back everything after the best balanced prefix.
    for &i in moves.iter().skip(best_prefix).rev() {
        let from0 = side0[i];
        side0[i] = !from0;
        for &(u, w) in g.neighbors(vertices[i]) {
            let lu = local[u as usize];
            if lu == usize::MAX {
                continue;
            }
            let old_s = usize::from(!from0);
            let new_s = usize::from(from0);
            conn[lu][old_s] -= w;
            conn[lu][new_s] += w;
        }
    }
    *cut = best_cut.min(start_cut);
    best_cut < start_cut - 1e-12
}

/// Greedy pairwise-swap refinement across all block pairs. Swapping keeps
/// every block size unchanged, so balance is preserved exactly.
pub(crate) fn kway_swap_refine(g: &WeightedGraph, assignment: &mut [u32]) {
    let n = assignment.len();
    let parts = assignment.iter().copied().max().map_or(0, |p| p as usize + 1);
    if parts < 2 {
        return;
    }
    // conn[v][p] = weight from v into block p
    let mut conn = vec![vec![0.0f64; parts]; n];
    for (v, conn_v) in conn.iter_mut().enumerate() {
        for &(u, w) in g.neighbors(v) {
            conn_v[assignment[u as usize] as usize] += w;
        }
    }

    const MAX_ROUNDS: usize = 64;
    for _ in 0..MAX_ROUNDS {
        let mut best_delta = 1e-12;
        let mut best_pair = None;
        for u in 0..n {
            for v in (u + 1)..n {
                let pu = assignment[u] as usize;
                let pv = assignment[v] as usize;
                if pu == pv {
                    continue;
                }
                let du = conn[u][pv] - conn[u][pu];
                let dv = conn[v][pu] - conn[v][pv];
                let delta = du + dv - 2.0 * g.edge_weight(u, v);
                if delta > best_delta {
                    best_delta = delta;
                    best_pair = Some((u, v));
                }
            }
        }
        let Some((u, v)) = best_pair else { break };
        let pu = assignment[u] as usize;
        let pv = assignment[v] as usize;
        assignment[u] = pv as u32;
        assignment[v] = pu as u32;
        for &(t, w) in g.neighbors(u) {
            let t = t as usize;
            conn[t][pu] -= w;
            conn[t][pv] += w;
        }
        for &(t, w) in g.neighbors(v) {
            let t = t as usize;
            conn[t][pv] -= w;
            conn[t][pu] += w;
        }
    }
}
