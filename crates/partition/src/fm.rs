//! Recursive bisection with Fiduccia–Mattheyses refinement and a k-way
//! swap polish.
//!
//! The cold path is written allocation-light: one [`Workspace`] per
//! [`crate::WeightedGraph::partition`] call carries every scratch buffer
//! through all restarts and recursion levels, vertex subsets are split in
//! place, and the FM inner loop scans a cached gain array gated by a
//! per-step balance rule instead of recomputing gains per vertex. All of
//! it is arithmetic-order-preserving: the moves taken, the RNG consumption
//! and every float operation match the original allocating implementation
//! bit for bit.
//!
//! Graphs may carry a [`GroupAttraction`] — an implicit complete graph per
//! vertex group with one uniform weight. Every pass accounts for it
//! analytically from per-(group, side/block) member counts: a move's
//! attraction gain is `weight · (cnt_to − (cnt_from − 1))`, an `O(1)`
//! lookup, so the term never costs the `O(n²)` edge scans a materialized
//! dense graph would. On graphs without an attraction every code path below
//! is bit-identical to the attraction-free implementation.

use crate::graph::{GroupAttraction, WeightedGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// One FM candidate in the gain heaps: max-gain first, lowest subset
/// index on ties — exactly the vertex the original ascending linear scan
/// (with its strict `>` comparison) selected. Gains here are conn-value
/// differences of finite weights (negative values are possible on
/// attraction-compensated graphs, but −0.0 is never produced by
/// adding/subtracting finite sums), so `total_cmp` agrees with the numeric
/// comparison the scan performed.
#[derive(Clone, Copy, PartialEq)]
struct GainEntry {
    gain: f64,
    idx: usize,
}

impl Eq for GainEntry {}

impl Ord for GainEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain.total_cmp(&other.gain).then(other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for GainEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable scratch for one `partition` call: shared by every restart and
/// every recursion level (a bisection finishes with its buffers — and
/// resets `local` — before its children run).
pub(crate) struct Workspace {
    /// Local index of each global vertex (`usize::MAX` = not in the
    /// current subset); reset after every bisection.
    local: Vec<usize>,
    /// Side-0 mask of the current bisection, indexed like its subset.
    side0: Vec<bool>,
    /// Greedy-growth attraction per subset vertex.
    attraction: Vec<f64>,
    /// Shuffled tie-break order of the greedy growth.
    order: Vec<usize>,
    /// `conn[i][s]` = weight from subset vertex `i` to side `s`.
    conn: Vec<[f64; 2]>,
    /// Cached FM gains (`conn[i][other] - conn[i][own]`), edge part only.
    gain: Vec<f64>,
    /// FM lock flags.
    locked: Vec<bool>,
    /// Lazy-invalidation gain heaps, one per (side, group) — `2 × 1` when
    /// the graph has no attraction: stale entries (locked vertex,
    /// superseded gain) are discarded at pop time. Entries hold *edge*
    /// gains; the attraction part of a gain is uniform within one heap, so
    /// it is added at selection time and never invalidates entries.
    heaps: Vec<std::collections::BinaryHeap<GainEntry>>,
    /// Subset member counts per (group, side): `gcnt[g * 2 + s]`, with the
    /// `conn` side indexing (`side0 == true` → index 0).
    gcnt: Vec<u32>,
    /// FM move log (subset indices, in order).
    moves: Vec<usize>,
    /// Spill buffer for the in-place subset split.
    spill: Vec<usize>,
    /// Dense pair weights for the k-way swap polish (attraction included).
    wmat: Vec<f64>,
    /// Whether `wmat` has been filled for this graph yet.
    wmat_filled: bool,
    /// Flat `conn[v * parts + p]` for the k-way swap polish.
    connk: Vec<f64>,
}

impl Workspace {
    pub(crate) fn new(node_count: usize) -> Self {
        Self {
            local: vec![usize::MAX; node_count],
            side0: Vec::new(),
            attraction: Vec::new(),
            order: Vec::new(),
            conn: Vec::new(),
            gain: Vec::new(),
            locked: Vec::new(),
            heaps: Vec::new(),
            gcnt: Vec::new(),
            moves: Vec::new(),
            spill: Vec::new(),
            wmat: vec![0.0; node_count * node_count],
            wmat_filled: false,
            connk: Vec::new(),
        }
    }

    /// Sizes the per-subset buffers for `m` vertices (contents are
    /// (re)initialized by the passes themselves).
    fn size_subset(&mut self, m: usize) {
        self.side0.clear();
        self.side0.resize(m, false);
        self.attraction.clear();
        self.attraction.resize(m, 0.0);
        self.conn.clear();
        self.conn.resize(m, [0.0; 2]);
        self.gain.clear();
        self.gain.resize(m, 0.0);
        self.locked.clear();
        self.locked.resize(m, false);
    }
}

/// Fills the dense pair-weight matrix once per `partition` call: stored
/// edge weights plus, when the graph carries a [`GroupAttraction`], the
/// implicit same-group weight — the swap-gain correction term needs the
/// *total* pair weight.
fn fill_wmat(g: &WeightedGraph, ws: &mut Workspace) {
    if ws.wmat_filled {
        return;
    }
    let n = g.node_count();
    for v in 0..n {
        for &(u, w) in g.neighbors(v) {
            ws.wmat[v * n + u as usize] = w;
        }
    }
    if let Some(at) = g.attraction() {
        for v in 0..n {
            let gv = at.group_of()[v];
            for u in 0..n {
                if u != v && at.group_of()[u] == gv {
                    ws.wmat[v * n + u] += at.weight();
                }
            }
        }
    }
    ws.wmat_filled = true;
}

/// Attraction weight currently split by a subset's side assignment
/// (0.0 without an attraction).
fn subset_split_attraction(g: &WeightedGraph, vertices: &[usize], side0: &[bool]) -> f64 {
    let Some(at) = g.attraction() else { return 0.0 };
    let ng = at.group_count().max(1);
    let mut cnt = vec![0u64; ng * 2];
    for (i, &v) in vertices.iter().enumerate() {
        cnt[at.group_of()[v] as usize * 2 + usize::from(!side0[i])] += 1;
    }
    let split: u64 = cnt.chunks(2).map(|c| c[0] * c[1]).sum();
    at.weight() * split as f64
}

/// Recursively splits `vertices` into `parts` blocks, writing block labels
/// `first_label..first_label + parts` into `assignment`. The slice is
/// reordered in place (stable within each side) as subsets split.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recursive_bisect(
    g: &WeightedGraph,
    vertices: &mut [usize],
    parts: usize,
    first_label: u32,
    max_passes: u32,
    rng: &mut StdRng,
    assignment: &mut [u32],
    ws: &mut Workspace,
) {
    debug_assert!(parts >= 1 && vertices.len() >= parts);
    if parts == 1 {
        for &v in vertices.iter() {
            assignment[v] = first_label;
        }
        return;
    }
    let k1 = parts.div_ceil(2);
    let k2 = parts - k1;
    // Target size proportional to the number of blocks on each side, clamped
    // so both sides keep at least one vertex per block.
    let ideal = (vertices.len() * k1 + parts / 2) / parts;
    let n1 = ideal.clamp(k1, vertices.len() - k2);

    bisect(g, vertices, n1, max_passes, rng, ws);

    // Stable in-place split: side-0 vertices compact forward (the write
    // cursor never passes the read cursor), side-1 vertices spill and come
    // back as the suffix — the same left/right orders the allocating
    // implementation produced.
    ws.spill.clear();
    let mut write = 0usize;
    for read in 0..vertices.len() {
        let v = vertices[read];
        if ws.side0[read] {
            vertices[write] = v;
            write += 1;
        } else {
            ws.spill.push(v);
        }
    }
    debug_assert_eq!(write, n1);
    vertices[n1..].copy_from_slice(&ws.spill);

    let (left, right) = vertices.split_at_mut(n1);
    recursive_bisect(g, left, k1, first_label, max_passes, rng, assignment, ws);
    recursive_bisect(g, right, k2, first_label + k1 as u32, max_passes, rng, assignment, ws);
}

/// Bisects `vertices` into sides of exactly (`n1`, `len - n1`) vertices,
/// leaving the side-0 mask in `ws.side0` (indexed like `vertices`).
fn bisect(
    g: &WeightedGraph,
    vertices: &[usize],
    n1: usize,
    max_passes: u32,
    rng: &mut StdRng,
    ws: &mut Workspace,
) {
    let m = vertices.len();
    debug_assert!(n1 >= 1 && n1 < m);
    ws.size_subset(m);
    for (i, &v) in vertices.iter().enumerate() {
        ws.local[v] = i;
    }

    // --- initial solution: greedy growth from a random seed -------------
    greedy_grow(g, vertices, n1, rng, ws);

    // conn[i][s] = weight from local vertex i to side s (within the subset)
    let mut cut = 0.0;
    for (i, &v) in vertices.iter().enumerate() {
        for &(u, w) in g.neighbors(v) {
            let lu = ws.local[u as usize];
            if lu == usize::MAX {
                continue;
            }
            let s = usize::from(!ws.side0[lu]);
            ws.conn[i][s] += w;
            if ws.side0[i] != ws.side0[lu] && i < lu {
                cut += w;
            }
        }
    }
    cut += subset_split_attraction(g, vertices, &ws.side0[..m]);
    // --- FM passes -------------------------------------------------------
    for _ in 0..max_passes {
        let improved = fm_pass(vertices, &mut cut, n1, g, ws);
        if !improved {
            break;
        }
    }

    // Release the global index slots this subset occupied so sibling and
    // child bisections start from a clean table.
    for &v in vertices {
        ws.local[v] = usize::MAX;
    }
}

/// Grows side 0 greedily: start from a random seed, repeatedly absorb the
/// unassigned vertex with the strongest connection to side 0 (edge pull
/// plus, with a [`GroupAttraction`], the implicit pull of its group's
/// side-0 members).
fn greedy_grow(
    g: &WeightedGraph,
    vertices: &[usize],
    n1: usize,
    rng: &mut StdRng,
    ws: &mut Workspace,
) {
    let m = vertices.len();
    ws.order.clear();
    ws.order.extend(0..m);
    ws.order.shuffle(rng);

    let at = g.attraction();
    let mut cnt0: Vec<u32> = match at {
        Some(a) => vec![0; a.group_count().max(1)],
        None => Vec::new(),
    };

    let seed = rng.gen_range(0..m);
    ws.side0[seed] = true;
    if let Some(a) = at {
        cnt0[a.group_of()[vertices[seed]] as usize] += 1;
    }
    let mut grown = 1;
    update_attraction(g, vertices, &ws.local, seed, &mut ws.attraction);

    while grown < n1 {
        let mut best = usize::MAX;
        let mut best_w = f64::NEG_INFINITY;
        for &i in &ws.order {
            if ws.side0[i] {
                continue;
            }
            let w = match at {
                Some(a) => {
                    ws.attraction[i]
                        + a.weight() * f64::from(cnt0[a.group_of()[vertices[i]] as usize])
                }
                None => ws.attraction[i],
            };
            if w > best_w {
                best_w = w;
                best = i;
            }
        }
        ws.side0[best] = true;
        if let Some(a) = at {
            cnt0[a.group_of()[vertices[best]] as usize] += 1;
        }
        grown += 1;
        update_attraction(g, vertices, &ws.local, best, &mut ws.attraction);
    }
}

// sf: hot-path
fn update_attraction(
    g: &WeightedGraph,
    vertices: &[usize],
    local: &[usize],
    newly_added: usize,
    attraction: &mut [f64],
) {
    for &(u, w) in g.neighbors(vertices[newly_added]) {
        let lu = local[u as usize];
        if lu != usize::MAX {
            attraction[lu] += w;
        }
    }
}

/// One FM pass with exact balance targets: moves may leave the split one
/// vertex out of balance mid-pass, and the best *balanced* prefix of the
/// move sequence is kept. Returns whether the cut improved.
///
/// The inner scan reads a cached gain array (`gain[i] = conn[i][other] −
/// conn[i][own]`, recomputed only for vertices whose connectivity the last
/// move touched) and a per-step balance gate: with `size0 ∈ [n1−1, n1+1]`,
/// a side-0 vertex may move iff `size0 ≥ n1` and a side-1 vertex iff
/// `size0 ≤ n1` — exactly the `|new_size0 − n1| ≤ 1` test the original
/// per-vertex check performed.
///
/// With a [`GroupAttraction`], a move's full gain is its edge gain plus
/// `weight · (cnt[g][other] − (cnt[g][own] − 1))`. The attraction part is
/// uniform across one (side, group), so the heaps are split per
/// (side, group), hold edge gains only, and the attraction offset joins at
/// selection time — a move shifts the offsets of its own group through the
/// count table instead of invalidating heap entries.
// sf: hot-path
fn fm_pass(
    vertices: &[usize],
    cut: &mut f64,
    n1: usize,
    g: &WeightedGraph,
    ws: &mut Workspace,
) -> bool {
    let m = vertices.len();
    let at = g.attraction();
    let ng = at.map_or(1, |a| a.group_count().max(1));
    let grp = |i: usize| at.map_or(0, |a| a.group_of()[vertices[i]] as usize);
    let start_cut = *cut;
    ws.locked[..m].fill(false);
    let mut size0 = ws.side0[..m].iter().filter(|&&s| s).count();
    for i in 0..m {
        let own = usize::from(!ws.side0[i]);
        let other = usize::from(ws.side0[i]);
        ws.gain[i] = ws.conn[i][other] - ws.conn[i][own];
    }
    ws.gcnt.clear();
    ws.gcnt.resize(ng * 2, 0);
    for i in 0..m {
        ws.gcnt[grp(i) * 2 + usize::from(!ws.side0[i])] += 1;
    }

    ws.moves.clear();
    let mut running = *cut;
    let mut best_cut = *cut;
    let mut best_prefix = 0usize;

    // Seed the per-(side, group) gain heaps; every edge-gain update pushes
    // a fresh entry, and pops discard entries whose vertex is locked or
    // whose recorded gain is no longer current.
    if ws.heaps.len() < 2 * ng {
        ws.heaps.resize_with(2 * ng, std::collections::BinaryHeap::new);
    }
    for h in &mut ws.heaps {
        h.clear();
    }
    for i in 0..m {
        ws.heaps[usize::from(ws.side0[i]) * ng + grp(i)]
            .push(GainEntry { gain: ws.gain[i], idx: i });
    }

    for _step in 0..m {
        // Pick the best-gain unlocked vertex whose move keeps |size0-n1|<=1:
        // the balance gate reduces to which *side* may donate, so the
        // selection is the best of the allowed sides' heap tops (plus the
        // per-group attraction offset).
        let allow_from0 = size0 >= n1;
        let allow_from1 = size0 <= n1;
        let mut best = usize::MAX;
        let mut best_gain = f64::NEG_INFINITY;
        for (side, allowed) in [(1usize, allow_from0), (0, allow_from1)] {
            if !allowed {
                continue;
            }
            // side index: heaps `1*ng..2*ng` hold side-0 vertices
            // (side0 == true).
            for gi in 0..ng {
                let h = side * ng + gi;
                while let Some(&top) = ws.heaps[h].peek() {
                    if ws.locked[top.idx] || ws.gain[top.idx] != top.gain {
                        ws.heaps[h].pop();
                        continue;
                    }
                    break;
                }
                if let Some(&top) = ws.heaps[h].peek() {
                    let gain = match at {
                        // A side-0 vertex (heap side 1) has conn side index
                        // `own = 0`, i.e. `own = 1 - side`.
                        Some(a) => {
                            let own = ws.gcnt[gi * 2 + (1 - side)];
                            let other = ws.gcnt[gi * 2 + side];
                            top.gain + a.weight() * (f64::from(other) - f64::from(own - 1))
                        }
                        None => top.gain,
                    };
                    if gain > best_gain || (gain == best_gain && top.idx < best) {
                        best_gain = gain;
                        best = top.idx;
                    }
                }
            }
        }
        if best == usize::MAX {
            break;
        }

        // Apply the move.
        let from0 = ws.side0[best];
        ws.side0[best] = !from0;
        size0 = if from0 { size0 - 1 } else { size0 + 1 };
        running -= best_gain;
        ws.locked[best] = true;
        ws.moves.push(best);
        if at.is_some() {
            let gb = grp(best);
            ws.gcnt[gb * 2 + usize::from(!from0)] -= 1;
            ws.gcnt[gb * 2 + usize::from(from0)] += 1;
        }

        // Update neighbor connectivity and cached edge gains.
        for &(u, w) in g.neighbors(vertices[best]) {
            let lu = ws.local[u as usize];
            if lu == usize::MAX {
                continue;
            }
            // `best` moved from side `from0` to the opposite side.
            let old_s = usize::from(!from0);
            let new_s = usize::from(from0);
            ws.conn[lu][old_s] -= w;
            ws.conn[lu][new_s] += w;
            let own = usize::from(!ws.side0[lu]);
            let other = usize::from(ws.side0[lu]);
            ws.gain[lu] = ws.conn[lu][other] - ws.conn[lu][own];
            if !ws.locked[lu] {
                ws.heaps[usize::from(ws.side0[lu]) * ng + grp(lu)]
                    .push(GainEntry { gain: ws.gain[lu], idx: lu });
            }
        }

        if size0 == n1 && running < best_cut - 1e-12 {
            best_cut = running;
            best_prefix = ws.moves.len();
        }
    }

    // Roll back everything after the best balanced prefix. (`gcnt` is
    // rebuilt at the top of every pass, so only `side0`/`conn` need
    // restoring.)
    for step in (best_prefix..ws.moves.len()).rev() {
        let i = ws.moves[step];
        let from0 = ws.side0[i];
        ws.side0[i] = !from0;
        for &(u, w) in g.neighbors(vertices[i]) {
            let lu = ws.local[u as usize];
            if lu == usize::MAX {
                continue;
            }
            let old_s = usize::from(!from0);
            let new_s = usize::from(from0);
            ws.conn[lu][old_s] -= w;
            ws.conn[lu][new_s] += w;
        }
    }
    *cut = best_cut.min(start_cut);
    best_cut < start_cut - 1e-12
}

/// Deterministic warm-start refinement: normalizes `initial` to exactly
/// `parts` non-empty blocks (merging the weakest-attached smallest blocks
/// or splitting the largest ones as needed), rebalances block sizes to the
/// near-equal `{⌊n/k⌋, ⌈n/k⌉}` envelope, then runs move/swap local search.
/// No randomness is consumed: a warm-started partition is a pure function
/// of the graph and the initial assignment.
pub(crate) fn warm_refine(
    g: &WeightedGraph,
    initial: &[u32],
    parts: usize,
    max_passes: u32,
    out: &mut Vec<u32>,
    ws: &mut Workspace,
) {
    out.clear();
    out.extend_from_slice(initial);
    let mut used = compact_labels(out);
    while used > parts {
        merge_smallest_block(g, out, used);
        used -= 1;
    }
    while used < parts {
        split_best_block(g, out, used, max_passes, ws);
        used += 1;
    }
    rebalance(g, out, parts);
    kway_fm_refine(g, out, parts, max_passes, ws);
}


/// Relabels blocks densely as `0..used` (ascending original label order)
/// and returns `used`.
fn compact_labels(assignment: &mut [u32]) -> usize {
    let max = assignment.iter().copied().max().unwrap_or(0) as usize;
    let mut present = vec![false; max + 1];
    for &a in assignment.iter() {
        present[a as usize] = true;
    }
    let mut remap = vec![u32::MAX; max + 1];
    let mut used = 0u32;
    for (old, &p) in present.iter().enumerate() {
        if p {
            remap[old] = used;
            used += 1;
        }
    }
    for a in assignment.iter_mut() {
        *a = remap[*a as usize];
    }
    used as usize
}

fn block_sizes(assignment: &[u32], used: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; used];
    for &a in assignment {
        sizes[a as usize] += 1;
    }
    sizes
}

/// Dissolves the smallest block into the block it is most strongly
/// connected to (stored edges plus implicit attraction), then relabels
/// `used - 1` into the freed label so the labels stay dense. Ties break
/// towards the lowest label.
fn merge_smallest_block(g: &WeightedGraph, assignment: &mut [u32], used: usize) {
    let sizes = block_sizes(assignment, used);
    let Some(victim) = sizes
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(p, _)| p as u32)
    else {
        return; // no blocks: nothing to merge
    };
    let mut conn_to = vec![0.0f64; used];
    for (v, &a) in assignment.iter().enumerate() {
        if a != victim {
            continue;
        }
        for &(u, w) in g.neighbors(v) {
            let t = assignment[u as usize];
            if t != victim {
                conn_to[t as usize] += w;
            }
        }
    }
    if let Some(at) = g.attraction() {
        let ng = at.group_count().max(1);
        let mut cnt = vec![0u64; ng * used];
        for (v, &a) in assignment.iter().enumerate() {
            cnt[at.group_of()[v] as usize * used + a as usize] += 1;
        }
        for (v, &a) in assignment.iter().enumerate() {
            if a != victim {
                continue;
            }
            let row = at.group_of()[v] as usize * used;
            for (t, c) in conn_to.iter_mut().enumerate() {
                if t as u32 != victim {
                    *c += at.weight() * cnt[row + t] as f64;
                }
            }
        }
    }
    let Some(target) = (0..used as u32)
        .filter(|&p| p != victim)
        .max_by(|&a, &b| {
            conn_to[a as usize].total_cmp(&conn_to[b as usize]).then(b.cmp(&a))
        })
    else {
        return; // a single block cannot be merged into anything
    };
    let last = used as u32 - 1;
    for a in assignment.iter_mut() {
        if *a == victim {
            *a = target;
        }
        if *a == last {
            *a = victim;
        }
    }
}

/// Deterministically bisects the subgraph induced by `members` into halves
/// of `⌊m/2⌋` and `⌈m/2⌉` vertices — the cold path's bisection machinery
/// (greedy growth + FM passes) minus the randomized restarts: growth is
/// seeded from the block's most weakly attached member, ties break towards
/// the lowest index. Returns the side-0 mask and the weight crossing the
/// split.
fn bisect_members(
    g: &WeightedGraph,
    members: &[usize],
    max_passes: u32,
    ws: &mut Workspace,
) -> (Vec<bool>, f64) {
    let m = members.len();
    debug_assert!(m >= 2);
    let n1 = m / 2;
    ws.size_subset(m);
    for (i, &v) in members.iter().enumerate() {
        ws.local[v] = i;
    }

    let at = g.attraction();
    // Same-group member count within the block, for the attraction part of
    // internal connectivity.
    let cntg: Vec<u32> = match at {
        Some(a) => {
            let mut cntg = vec![0u32; a.group_count().max(1)];
            for &v in members {
                cntg[a.group_of()[v] as usize] += 1;
            }
            cntg
        }
        None => Vec::new(),
    };

    // Periphery seed: weakest internal connectivity, lowest index on ties.
    let internal = |i: usize, local: &[usize]| -> f64 {
        let edge: f64 = g
            .neighbors(members[i])
            .iter()
            .filter(|&&(u, _)| local[u as usize] != usize::MAX)
            .map(|&(_, w)| w)
            .sum();
        match at {
            Some(a) => {
                edge + a.weight() * f64::from(cntg[a.group_of()[members[i]] as usize] - 1)
            }
            None => edge,
        }
    };
    let Some(seed) = (0..m).min_by(|&a, &b| {
        internal(a, &ws.local).total_cmp(&internal(b, &ws.local)).then(a.cmp(&b))
    }) else {
        return (Vec::new(), 0.0); // empty block: nothing to bisect
    };

    let absorb = |i: usize, local: &[usize], side0: &mut [bool], attraction: &mut [f64]| {
        side0[i] = true;
        for &(u, w) in g.neighbors(members[i]) {
            let lu = local[u as usize];
            if lu != usize::MAX {
                attraction[lu] += w;
            }
        }
    };
    let mut cnt0: Vec<u32> = match at {
        Some(a) => vec![0; a.group_count().max(1)],
        None => Vec::new(),
    };
    absorb(seed, &ws.local, &mut ws.side0, &mut ws.attraction);
    if let Some(a) = at {
        cnt0[a.group_of()[members[seed]] as usize] += 1;
    }
    for _ in 1..n1 {
        let eff = |i: usize| match at {
            Some(a) => {
                ws.attraction[i] + a.weight() * f64::from(cnt0[a.group_of()[members[i]] as usize])
            }
            None => ws.attraction[i],
        };
        let Some(next) = (0..m).filter(|&i| !ws.side0[i]).max_by(|&a, &b| {
            eff(a).total_cmp(&eff(b)).then(b.cmp(&a))
        }) else {
            break; // every member already absorbed: growth is complete
        };
        absorb(next, &ws.local, &mut ws.side0, &mut ws.attraction);
        if let Some(a) = at {
            cnt0[a.group_of()[members[next]] as usize] += 1;
        }
    }

    // Polish with the exact-balance FM passes of the cold path.
    let mut cut = 0.0;
    for (i, &v) in members.iter().enumerate() {
        for &(u, w) in g.neighbors(v) {
            let lu = ws.local[u as usize];
            if lu == usize::MAX {
                continue;
            }
            let s = usize::from(!ws.side0[lu]);
            ws.conn[i][s] += w;
            if ws.side0[i] != ws.side0[lu] && i < lu {
                cut += w;
            }
        }
    }
    cut += subset_split_attraction(g, members, &ws.side0[..m]);
    if n1 >= 1 && n1 < m {
        for _ in 0..max_passes {
            if !fm_pass(members, &mut cut, n1, g, ws) {
                break;
            }
        }
    }
    let mask = ws.side0[..m].to_vec();
    for &v in members {
        ws.local[v] = usize::MAX;
    }
    (mask, cut)
}

/// Splits one block in two under the next free label. Every block is a
/// candidate: each is FM-bisected and the block whose halves are most
/// weakly coupled wins (ties prefer the larger block — better balance —
/// then the lower label).
/// The winning split candidate: `(cross weight, size, label, members,
/// side-0 mask)`.
type SplitChoice = (f64, usize, u32, Vec<usize>, Vec<bool>);

fn split_best_block(
    g: &WeightedGraph,
    assignment: &mut [u32],
    used: usize,
    max_passes: u32,
    ws: &mut Workspace,
) {
    let sizes = block_sizes(assignment, used);
    let mut best: Option<SplitChoice> = None;
    for block in 0..used as u32 {
        let size = sizes[block as usize];
        if size < 2 {
            continue;
        }
        let members: Vec<usize> =
            (0..assignment.len()).filter(|&v| assignment[v] == block).collect();
        let (mask, cross) = bisect_members(g, &members, max_passes, ws);
        let better = match &best {
            None => true,
            Some((bc, bs, bl, _, _)) => {
                cross < *bc - 1e-12
                    || (cross <= *bc + 1e-12 && (size > *bs || (size == *bs && block < *bl)))
            }
        };
        if better {
            best = Some((cross, size, block, members, mask));
        }
    }
    let Some((_, _, _, members, mask)) = best else {
        return; // every block is a singleton: nothing can be split
    };
    for (i, &v) in members.iter().enumerate() {
        if mask[i] {
            assignment[v] = used as u32;
        }
    }
}

/// Moves vertices from oversized to undersized blocks (best connectivity
/// gain first) until every block size lies in `{⌊n/k⌋, ⌈n/k⌉}`.
fn rebalance(g: &WeightedGraph, assignment: &mut [u32], parts: usize) {
    let n = assignment.len();
    let base = n / parts;
    let mut sizes = block_sizes(assignment, parts);
    let mut conn = Connectivity::new(g, assignment, parts);
    while sizes.iter().any(|&s| s > base + 1 || s < base) {
        let (Some(donor), Some(recv)) = (
            (0..parts).max_by(|&a, &b| sizes[a].cmp(&sizes[b]).then(b.cmp(&a))),
            (0..parts).min_by(|&a, &b| sizes[a].cmp(&sizes[b]).then(a.cmp(&b))),
        ) else {
            break; // zero blocks: nothing to rebalance
        };
        let (donor, recv) = (donor as u32, recv as u32);
        debug_assert!(sizes[donor as usize] > sizes[recv as usize]);
        let Some(v) = (0..n).filter(|&v| assignment[v] == donor).max_by(|&a, &b| {
            conn.gain(a, donor, recv).total_cmp(&conn.gain(b, donor, recv)).then(b.cmp(&a))
        }) else {
            break; // donor emptied out: sizes are as balanced as they get
        };
        conn.apply_move(g, assignment, &mut sizes, v, recv);
    }
}

/// Per-vertex block connectivity, maintained incrementally across moves
/// and swaps. `conn[v * parts + p]` is the weight from `v` into block `p`
/// — stored edges plus, with a [`GroupAttraction`], the implicit
/// `weight · (members of v's group in p)` term, folded in so the hot gain
/// evaluation stays a plain subtraction (a move's attraction gain is then
/// the conn difference plus the constant `weight`, correcting for `v`
/// counting itself in its source block).
struct Connectivity<'a> {
    conn: Vec<f64>,
    parts: usize,
    at: Option<&'a GroupAttraction>,
    /// Vertices of each group (only with an attraction): a move shifts the
    /// whole group's folded conn at the two touched columns.
    members: Vec<Vec<u32>>,
}

impl<'a> Connectivity<'a> {
    fn new(g: &'a WeightedGraph, assignment: &[u32], parts: usize) -> Self {
        let mut conn = vec![0.0f64; assignment.len() * parts];
        for (v, row) in conn.chunks_mut(parts).enumerate() {
            for &(u, w) in g.neighbors(v) {
                row[assignment[u as usize] as usize] += w;
            }
        }
        let at = g.attraction();
        let mut members: Vec<Vec<u32>> = Vec::new();
        if let Some(a) = at {
            let ng = a.group_count().max(1);
            members = vec![Vec::new(); ng];
            for (v, &gv) in a.group_of().iter().enumerate() {
                members[gv as usize].push(v as u32);
            }
            let mut cnt = vec![0u32; ng * parts];
            for (v, &b) in assignment.iter().enumerate() {
                cnt[a.group_of()[v] as usize * parts + b as usize] += 1;
            }
            for (v, row) in conn.chunks_mut(parts).enumerate() {
                let base = a.group_of()[v] as usize * parts;
                for (p, c) in row.iter_mut().enumerate() {
                    *c += a.weight() * f64::from(cnt[base + p]);
                }
            }
        }
        Self { conn, parts, at, members }
    }

    fn gain(&self, v: usize, from: u32, to: u32) -> f64 {
        let d =
            self.conn[v * self.parts + to as usize] - self.conn[v * self.parts + from as usize];
        match self.at {
            Some(a) => d + a.weight(),
            None => d,
        }
    }

    fn apply_move(
        &mut self,
        g: &WeightedGraph,
        assignment: &mut [u32],
        sizes: &mut [usize],
        v: usize,
        to: u32,
    ) {
        let from = assignment[v];
        assignment[v] = to;
        sizes[from as usize] -= 1;
        sizes[to as usize] += 1;
        for &(u, w) in g.neighbors(v) {
            let row = u as usize * self.parts;
            self.conn[row + from as usize] -= w;
            self.conn[row + to as usize] += w;
        }
        if let Some(a) = self.at {
            let w = a.weight();
            for &x in &self.members[a.group_of()[v] as usize] {
                let row = x as usize * self.parts;
                self.conn[row + from as usize] -= w;
                self.conn[row + to as usize] += w;
            }
        }
    }
}

/// One warm-refinement action, logged so the tail of an FM pass can be
/// rolled back to the best prefix.
#[derive(Clone, Copy)]
enum Action {
    /// `(vertex, from-block, to-block)`.
    Move(usize, u32, u32),
    /// `(u, u's old block, v, v's old block)` — the two swapped blocks.
    Swap(usize, u32, usize, u32),
}

/// Fiduccia–Mattheyses-style k-way refinement under the exact near-equal
/// size envelope. Each pass applies a sequence of locked best-gain actions
/// — single moves from a `⌈n/k⌉`-sized block to a `⌊n/k⌋`-sized one (the
/// only moves preserving the envelope) and pairwise swaps — *accepting
/// negative gains* to climb out of local optima, then keeps the best
/// prefix of the sequence. Passes repeat until one fails to improve.
fn kway_fm_refine(
    g: &WeightedGraph,
    assignment: &mut [u32],
    parts: usize,
    max_passes: u32,
    ws: &mut Workspace,
) {
    let n = assignment.len();
    if parts < 2 || n < 2 {
        return;
    }
    let base = n / parts;
    let mut sizes = block_sizes(assignment, parts);
    let mut conn = Connectivity::new(g, assignment, parts);

    // Dense pair weights: the swap-gain correction term is looked up O(1)
    // instead of scanning adjacency lists in the inner loop.
    fill_wmat(g, ws);
    let wmat = &ws.wmat;

    const EPS: f64 = 1e-12;
    for _ in 0..max_passes {
        // Shrinking ascending roster of unlocked vertices: each action's
        // O(|roster|²) rescan visits (v, u) pairs in the same ascending
        // order the previous locked-flag scan did, so the selected action
        // sequence is bit-identical while the scan cost drops from
        // actions·n² to Σ m² as the pass locks vertices.
        let mut unlocked: Vec<u32> = (0..n as u32).collect();
        let mut log: Vec<Action> = Vec::with_capacity(n);
        let mut running = 0.0f64;
        let mut best_total = 0.0f64;
        let mut best_prefix = 0usize;

        loop {
            // Best action over unlocked vertices: gains may be negative —
            // the pass commits to exploration and the prefix cut decides.
            let mut best_gain = f64::NEG_INFINITY;
            let mut best_action: Option<Action> = None;
            for (i, &v32) in unlocked.iter().enumerate() {
                let v = v32 as usize;
                let pv = assignment[v];
                if sizes[pv as usize] == base + 1 {
                    for p in 0..parts as u32 {
                        if p != pv && sizes[p as usize] == base {
                            let gain = conn.gain(v, pv, p);
                            if gain > best_gain {
                                best_gain = gain;
                                best_action = Some(Action::Move(v, pv, p));
                            }
                        }
                    }
                }
                for &u32v in &unlocked[i + 1..] {
                    let u = u32v as usize;
                    let pu = assignment[u];
                    if pu == pv {
                        continue;
                    }
                    let gain =
                        conn.gain(v, pv, pu) + conn.gain(u, pu, pv) - 2.0 * wmat[v * n + u];
                    if gain > best_gain {
                        best_gain = gain;
                        best_action = Some(Action::Swap(v, pv, u, pu));
                    }
                }
            }
            let Some(action) = best_action else { break };
            let lock = |unlocked: &mut Vec<u32>, v: usize| {
                if let Ok(pos) = unlocked.binary_search(&(v as u32)) {
                    unlocked.remove(pos);
                }
            };
            match action {
                Action::Move(v, _, to) => {
                    conn.apply_move(g, assignment, &mut sizes, v, to);
                    lock(&mut unlocked, v);
                    log.push(action);
                }
                Action::Swap(v, pv, u, pu) => {
                    conn.apply_move(g, assignment, &mut sizes, v, pu);
                    conn.apply_move(g, assignment, &mut sizes, u, pv);
                    lock(&mut unlocked, v);
                    lock(&mut unlocked, u);
                    log.push(action);
                }
            }
            running += best_gain;
            if running > best_total + EPS {
                best_total = running;
                best_prefix = log.len();
            }
        }

        // Roll the exploration tail back to the best prefix.
        for &action in log[best_prefix..].iter().rev() {
            match action {
                Action::Move(v, from, _) => {
                    conn.apply_move(g, assignment, &mut sizes, v, from);
                }
                Action::Swap(v, pv, u, pu) => {
                    conn.apply_move(g, assignment, &mut sizes, u, pu);
                    conn.apply_move(g, assignment, &mut sizes, v, pv);
                }
            }
        }
        if best_total <= EPS {
            break;
        }
    }
}

/// Greedy pairwise-swap refinement across all block pairs. Swapping keeps
/// every block size unchanged, so balance is preserved exactly. The
/// dense pair-weight matrix (filled once per `partition` call, attraction
/// included) replaces the adjacency-list `edge_weight` scan in the O(n²)
/// inner loop; the attraction part of each one-sided gain comes from the
/// per-(group, block) member counts.
pub(crate) fn kway_swap_refine(g: &WeightedGraph, assignment: &mut [u32], ws: &mut Workspace) {
    let n = assignment.len();
    let parts = assignment.iter().copied().max().map_or(0, |p| p as usize + 1);
    if parts < 2 {
        return;
    }
    fill_wmat(g, ws);
    // conn[v * parts + p] = weight from v into block p — stored edges
    // plus, with an attraction, the folded `weight · (group members in p)`
    // term, exactly like `Connectivity`: the O(n²) pair scan then pays
    // nothing per evaluation for the attraction.
    ws.connk.clear();
    ws.connk.resize(n * parts, 0.0);
    let conn = &mut ws.connk;
    for v in 0..n {
        for &(u, w) in g.neighbors(v) {
            conn[v * parts + assignment[u as usize] as usize] += w;
        }
    }
    let at = g.attraction();
    let mut members: Vec<Vec<u32>> = Vec::new();
    if let Some(a) = at {
        let ng = a.group_count().max(1);
        members = vec![Vec::new(); ng];
        for (v, &gv) in a.group_of().iter().enumerate() {
            members[gv as usize].push(v as u32);
        }
        let mut cnt = vec![0u32; ng * parts];
        for (v, &b) in assignment.iter().enumerate() {
            cnt[a.group_of()[v] as usize * parts + b as usize] += 1;
        }
        for (v, row) in conn.chunks_mut(parts).enumerate() {
            let base = a.group_of()[v] as usize * parts;
            for (p, c) in row.iter_mut().enumerate() {
                *c += a.weight() * f64::from(cnt[base + p]);
            }
        }
    }
    // Both one-sided folded gains undercount by `weight` (each endpoint
    // counts itself in its source block), and `wmat` carries the pair's
    // attraction, so the swap delta gains a flat `2·weight` bonus. Adding
    // 0.0 on attraction-free graphs changes no comparison.
    let swap_bonus = at.map_or(0.0, |a| 2.0 * a.weight());

    const MAX_ROUNDS: usize = 64;
    for _ in 0..MAX_ROUNDS {
        let mut best_delta = 1e-12;
        let mut best_pair = None;
        for u in 0..n {
            let pu = assignment[u] as usize;
            for v in (u + 1)..n {
                let pv = assignment[v] as usize;
                if pu == pv {
                    continue;
                }
                let du = conn[u * parts + pv] - conn[u * parts + pu];
                let dv = conn[v * parts + pu] - conn[v * parts + pv];
                let delta = du + dv - 2.0 * ws.wmat[u * n + v] + swap_bonus;
                if delta > best_delta {
                    best_delta = delta;
                    best_pair = Some((u, v));
                }
            }
        }
        let Some((u, v)) = best_pair else { break };
        let pu = assignment[u] as usize;
        let pv = assignment[v] as usize;
        assignment[u] = pv as u32;
        assignment[v] = pu as u32;
        for &(t, w) in g.neighbors(u) {
            let t = t as usize;
            conn[t * parts + pu] -= w;
            conn[t * parts + pv] += w;
        }
        for &(t, w) in g.neighbors(v) {
            let t = t as usize;
            conn[t * parts + pv] -= w;
            conn[t * parts + pu] += w;
        }
        if let Some(a) = at {
            let gu = a.group_of()[u] as usize;
            let gv = a.group_of()[v] as usize;
            if gu != gv {
                let w = a.weight();
                for &x in &members[gu] {
                    let row = x as usize * parts;
                    conn[row + pu] -= w;
                    conn[row + pv] += w;
                }
                for &x in &members[gv] {
                    let row = x as usize * parts;
                    conn[row + pv] -= w;
                    conn[row + pu] += w;
                }
            }
        }
    }
}
