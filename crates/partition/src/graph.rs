//! Undirected weighted graph used as partitioner input.

/// An undirected graph with non-negative edge weights, stored as adjacency
/// lists. Parallel edges accumulate their weights; self-loops are ignored
/// (they can never contribute to a cut).
///
/// SunFloor folds its *directed* communication / partitioning graphs into
/// this undirected form before partitioning, summing the weights of the two
/// directions — only the total weight crossing a block boundary matters to
/// the min-cut objective.
///
/// # Example
///
/// ```
/// use sunfloor_partition::WeightedGraph;
///
/// let mut g = WeightedGraph::new(3);
/// g.add_edge(0, 1, 2.0);
/// g.add_edge(1, 0, 3.0); // accumulates onto the same undirected edge
/// assert_eq!(g.edge_weight(0, 1), 5.0);
/// assert_eq!(g.node_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WeightedGraph {
    /// adjacency[v] = list of (neighbor, accumulated weight)
    adj: Vec<Vec<(u32, f64)>>,
}

impl WeightedGraph {
    /// Creates a graph with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n] }
    }

    /// Number of vertices.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds (or accumulates onto) the undirected edge `a — b`.
    /// Self-loops and non-positive weights are silently dropped.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize, weight: f64) {
        assert!(a < self.adj.len() && b < self.adj.len(), "vertex out of range");
        if a == b || weight <= 0.0 {
            return;
        }
        Self::accumulate(&mut self.adj[a], b as u32, weight);
        Self::accumulate(&mut self.adj[b], a as u32, weight);
    }

    fn accumulate(list: &mut Vec<(u32, f64)>, to: u32, weight: f64) {
        if let Some(entry) = list.iter_mut().find(|(t, _)| *t == to) {
            entry.1 += weight;
        } else {
            list.push((to, weight));
        }
    }

    /// Accumulated weight of the undirected edge `a — b` (0.0 if absent).
    #[must_use]
    pub fn edge_weight(&self, a: usize, b: usize) -> f64 {
        self.adj
            .get(a)
            .and_then(|l| l.iter().find(|(t, _)| *t as usize == b))
            .map_or(0.0, |(_, w)| *w)
    }

    /// Neighbors of `v` with accumulated weights.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[(u32, f64)] {
        &self.adj[v]
    }

    /// Rewrites every directed adjacency entry's weight in place:
    /// `f(v, u, w)` is called once per stored `(v, u)` entry — vertices in
    /// ascending order, entries in insertion order — and its return value
    /// becomes the new weight.
    ///
    /// This is the hot-path hook for caches that reuse one graph's
    /// *topology* under many weight functions (SunFloor's θ-scaled
    /// partitioning graphs only rescale weights; the edge set never
    /// changes). Both directions of an undirected edge are visited; `f`
    /// must return the same weight for `(v, u)` and `(u, v)`, and must not
    /// return non-positive weights (entries are kept, not dropped),
    /// otherwise the graph's invariants break.
    pub fn reweigh(&mut self, mut f: impl FnMut(usize, usize, f64) -> f64) {
        for (v, list) in self.adj.iter_mut().enumerate() {
            for entry in list.iter_mut() {
                entry.1 = f(v, entry.0 as usize, entry.1);
            }
        }
    }

    /// Sum of all edge weights (each undirected edge counted once).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        let double: f64 = self.adj.iter().flatten().map(|(_, w)| w).sum();
        double / 2.0
    }

    /// Total weight of edges whose endpoints have different labels in
    /// `assignment` (each undirected edge counted once).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != self.node_count()`.
    #[must_use]
    pub fn cut_weight(&self, assignment: &[u32]) -> f64 {
        assert_eq!(assignment.len(), self.node_count(), "assignment length mismatch");
        let mut cut = 0.0;
        for (v, list) in self.adj.iter().enumerate() {
            for &(u, w) in list {
                let u = u as usize;
                if v < u && assignment[v] != assignment[u] {
                    cut += w;
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 1.5);
        g.add_edge(0, 1, 2.5);
        assert_eq!(g.edge_weight(0, 1), 4.0);
        assert_eq!(g.edge_weight(1, 0), 4.0);
    }

    #[test]
    fn self_loops_and_nonpositive_weights_dropped() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 0, 5.0);
        g.add_edge(0, 1, 0.0);
        g.add_edge(0, 1, -1.0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn cut_weight_counts_each_edge_once() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 4.0);
        let cut = g.cut_weight(&[0, 0, 1, 1]);
        assert_eq!(cut, 2.0);
        let all_cut = g.cut_weight(&[0, 1, 2, 3]);
        assert_eq!(all_cut, 7.0);
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn add_edge_checks_bounds() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 2, 1.0);
    }
}
