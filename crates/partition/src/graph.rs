//! Undirected weighted graph used as partitioner input.

/// A uniform same-group attraction folded into the partitioning objective:
/// every pair of distinct vertices sharing a group behaves as if joined by
/// an implicit edge of weight [`Self::weight`], without those `O(n²)` edges
/// ever being materialized. The refinement passes account for the term
/// analytically from per-(group, block) member counts.
///
/// SunFloor's θ-scaled partitioning graph (Definition 4, eq. 1) is the
/// motivating use: the paper adds a weak edge between every
/// non-communicating same-layer core pair, which swamps the sparse flow
/// edge set with `O(n²)` near-identical entries. Folding the weak term into
/// the objective keeps the graph at its flow-edge size. Pairs that *do*
/// communicate get their stored edge weight compensated by `-weight` at
/// [`WeightedGraph::set_group_attraction`] time, so every pair's total
/// weight — stored edge plus implicit attraction — is exactly what the
/// dense construction would have produced.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAttraction {
    group_of: Vec<u32>,
    weight: f64,
    groups: usize,
}

impl GroupAttraction {
    /// Group label of every vertex, in vertex order.
    #[must_use]
    pub fn group_of(&self) -> &[u32] {
        &self.group_of
    }

    /// Weight of the implicit edge between every distinct same-group pair.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Number of groups (`max label + 1`).
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups
    }

    /// The attraction weight crossing the split: `weight ×` the number of
    /// same-group pairs whose endpoints carry different labels in
    /// `assignment`.
    #[must_use]
    pub fn split_weight(&self, assignment: &[u32]) -> f64 {
        let blocks = assignment.iter().map(|&b| b as usize + 1).max().unwrap_or(0);
        if blocks == 0 || self.groups == 0 {
            return 0.0;
        }
        let mut cnt = vec![0u64; self.groups * blocks];
        for (v, &b) in assignment.iter().enumerate() {
            cnt[self.group_of[v] as usize * blocks + b as usize] += 1;
        }
        let pairs = |c: u64| c.saturating_sub(1) * c / 2;
        let mut split = 0u64;
        for row in cnt.chunks(blocks) {
            let total: u64 = row.iter().sum();
            split += pairs(total) - row.iter().map(|&c| pairs(c)).sum::<u64>();
        }
        // Counts are vertex counts (< 2^32), so the u64 pair arithmetic is
        // exact and the conversion below is too for any realistic graph.
        self.weight * split as f64
    }
}

/// An undirected graph with weighted edges, stored as adjacency lists.
/// Parallel edges accumulate their weights; self-loops are ignored (they
/// can never contribute to a cut).
///
/// SunFloor folds its *directed* communication / partitioning graphs into
/// this undirected form before partitioning, summing the weights of the two
/// directions — only the total weight crossing a block boundary matters to
/// the min-cut objective.
///
/// A graph may additionally carry a [`GroupAttraction`]: an implicit
/// complete graph per vertex group whose uniform edge weight joins the cut
/// objective analytically (see [`Self::set_group_attraction`]). Stored edge
/// weights are non-negative as added, but same-group edges are compensated
/// by the attraction weight and may go negative — the *pair total* (stored
/// edge + implicit attraction) is the meaningful quantity.
///
/// # Example
///
/// ```
/// use sunfloor_partition::WeightedGraph;
///
/// let mut g = WeightedGraph::new(3);
/// g.add_edge(0, 1, 2.0);
/// g.add_edge(1, 0, 3.0); // accumulates onto the same undirected edge
/// assert_eq!(g.edge_weight(0, 1), 5.0);
/// assert_eq!(g.node_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WeightedGraph {
    /// adjacency[v] = list of (neighbor, accumulated weight)
    adj: Vec<Vec<(u32, f64)>>,
    attraction: Option<GroupAttraction>,
}

impl WeightedGraph {
    /// Creates a graph with `n` vertices and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n], attraction: None }
    }

    /// Number of vertices.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds (or accumulates onto) the undirected edge `a — b`.
    /// Self-loops and non-positive weights are silently dropped.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize, weight: f64) {
        assert!(a < self.adj.len() && b < self.adj.len(), "vertex out of range");
        if a == b || weight <= 0.0 {
            return;
        }
        Self::accumulate(&mut self.adj[a], b as u32, weight);
        Self::accumulate(&mut self.adj[b], a as u32, weight);
    }

    fn accumulate(list: &mut Vec<(u32, f64)>, to: u32, weight: f64) {
        if let Some(entry) = list.iter_mut().find(|(t, _)| *t == to) {
            entry.1 += weight;
        } else {
            list.push((to, weight));
        }
    }

    /// Installs a uniform same-group attraction: every pair of distinct
    /// vertices with the same label in `group_of` gains an *implicit* edge
    /// of weight `weight`, accounted for analytically by
    /// [`Self::cut_weight`] and every refinement pass — no `O(n²)` edges
    /// are materialized.
    ///
    /// Pairs that already have a stored edge get that edge's weight reduced
    /// by `weight` (it may go negative), so each pair's total — stored plus
    /// implicit — equals the stored weight from before the call. This makes
    /// the folded graph's objective match a dense construction that adds
    /// explicit weak edges only between *non-adjacent* same-group pairs.
    ///
    /// Call once, after all edges are added.
    ///
    /// # Panics
    ///
    /// Panics if `group_of` has the wrong length, `weight` is not a finite
    /// positive number, or an attraction was already set.
    pub fn set_group_attraction(&mut self, group_of: Vec<u32>, weight: f64) {
        assert_eq!(group_of.len(), self.adj.len(), "group_of length mismatch");
        assert!(weight > 0.0 && weight.is_finite(), "attraction weight must be finite positive");
        assert!(self.attraction.is_none(), "group attraction can only be set once");
        let groups = group_of.iter().map(|&g| g as usize + 1).max().unwrap_or(0);
        for (v, list) in self.adj.iter_mut().enumerate() {
            for entry in list.iter_mut() {
                if group_of[entry.0 as usize] == group_of[v] {
                    entry.1 -= weight;
                }
            }
        }
        self.attraction = Some(GroupAttraction { group_of, weight, groups });
    }

    /// The graph's group attraction, if one was installed.
    #[must_use]
    pub fn attraction(&self) -> Option<&GroupAttraction> {
        self.attraction.as_ref()
    }

    /// Replaces the attraction weight **without** touching stored edge
    /// weights. This is the companion of [`Self::reweigh`] for caches that
    /// rescale one topology under many weight functions: the caller must
    /// rewrite the compensated same-group edge weights consistently (pair
    /// totals are its responsibility). Does nothing on a graph without an
    /// attraction — there is no implicit weight to replace.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite positive.
    pub fn reweigh_attraction(&mut self, weight: f64) {
        assert!(weight > 0.0 && weight.is_finite(), "attraction weight must be finite positive");
        if let Some(at) = self.attraction.as_mut() {
            at.weight = weight;
        }
    }

    /// Accumulated weight of the undirected edge `a — b` (0.0 if absent).
    ///
    /// On a graph with a [`GroupAttraction`] this is the *stored* (possibly
    /// compensated) weight; the implicit same-group attraction is not
    /// included.
    #[must_use]
    pub fn edge_weight(&self, a: usize, b: usize) -> f64 {
        self.adj
            .get(a)
            .and_then(|l| l.iter().find(|(t, _)| *t as usize == b))
            .map_or(0.0, |(_, w)| *w)
    }

    /// Neighbors of `v` with accumulated weights.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[(u32, f64)] {
        &self.adj[v]
    }

    /// Rewrites every directed adjacency entry's weight in place:
    /// `f(v, u, w)` is called once per stored `(v, u)` entry — vertices in
    /// ascending order, entries in insertion order — and its return value
    /// becomes the new weight.
    ///
    /// This is the hot-path hook for caches that reuse one graph's
    /// *topology* under many weight functions (SunFloor's θ-scaled
    /// partitioning graphs only rescale weights; the edge set never
    /// changes). Both directions of an undirected edge are visited and `f`
    /// must return the same weight for `(v, u)` and `(u, v)`. Entries are
    /// kept, never dropped: returning a non-positive weight is only
    /// meaningful on attraction-compensated same-group entries, where the
    /// pair total stays positive.
    pub fn reweigh(&mut self, mut f: impl FnMut(usize, usize, f64) -> f64) {
        for (v, list) in self.adj.iter_mut().enumerate() {
            for entry in list.iter_mut() {
                entry.1 = f(v, entry.0 as usize, entry.1);
            }
        }
    }

    /// Sum of all stored edge weights (each undirected edge counted once;
    /// implicit attraction weight not included).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        let double: f64 = self.adj.iter().flatten().map(|(_, w)| w).sum();
        double / 2.0
    }

    /// Total weight crossing the block boundaries of `assignment`: every
    /// stored edge whose endpoints have different labels (counted once),
    /// plus the implicit [`GroupAttraction`] weight of every split
    /// same-group pair when an attraction is installed.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != self.node_count()`.
    #[must_use]
    pub fn cut_weight(&self, assignment: &[u32]) -> f64 {
        assert_eq!(assignment.len(), self.node_count(), "assignment length mismatch");
        let mut cut = 0.0;
        for (v, list) in self.adj.iter().enumerate() {
            for &(u, w) in list {
                let u = u as usize;
                if v < u && assignment[v] != assignment[u] {
                    cut += w;
                }
            }
        }
        if let Some(at) = &self.attraction {
            cut += at.split_weight(assignment);
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 1.5);
        g.add_edge(0, 1, 2.5);
        assert_eq!(g.edge_weight(0, 1), 4.0);
        assert_eq!(g.edge_weight(1, 0), 4.0);
    }

    #[test]
    fn self_loops_and_nonpositive_weights_dropped() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 0, 5.0);
        g.add_edge(0, 1, 0.0);
        g.add_edge(0, 1, -1.0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn cut_weight_counts_each_edge_once() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 4.0);
        let cut = g.cut_weight(&[0, 0, 1, 1]);
        assert_eq!(cut, 2.0);
        let all_cut = g.cut_weight(&[0, 1, 2, 3]);
        assert_eq!(all_cut, 7.0);
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn add_edge_checks_bounds() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 2, 1.0);
    }

    #[test]
    fn attraction_counts_split_same_group_pairs() {
        // Groups 0 = {0,1,2}, 1 = {3}; no stored edges.
        let mut g = WeightedGraph::new(4);
        g.set_group_attraction(vec![0, 0, 0, 1], 0.5);
        // All together: nothing split.
        assert_eq!(g.cut_weight(&[0, 0, 0, 0]), 0.0);
        // 0|1,2: two same-group pairs split (0-1, 0-2).
        assert_eq!(g.cut_weight(&[0, 1, 1, 1]), 1.0);
        // Everything apart: all three group-0 pairs split.
        assert_eq!(g.cut_weight(&[0, 1, 2, 3]), 1.5);
    }

    #[test]
    fn attraction_compensates_same_group_edges() {
        // 0-1 share a group and an edge: the pair total must stay 5.0.
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 5.0);
        g.add_edge(0, 2, 2.0);
        g.set_group_attraction(vec![0, 0, 1], 1.0);
        assert_eq!(g.edge_weight(0, 1), 4.0, "same-group edge is compensated");
        assert_eq!(g.edge_weight(0, 2), 2.0, "cross-group edge untouched");
        // Splitting 0|1 cuts the stored 4.0 plus the implicit 1.0.
        assert_eq!(g.cut_weight(&[0, 1, 0]), 5.0 + 2.0 * 0.0);
        assert_eq!(g.cut_weight(&[0, 0, 1]), 2.0);
        assert_eq!(g.cut_weight(&[0, 1, 2]), 5.0 + 2.0);
    }

    #[test]
    #[should_panic(expected = "only be set once")]
    fn attraction_is_set_once() {
        let mut g = WeightedGraph::new(2);
        g.set_group_attraction(vec![0, 0], 1.0);
        g.set_group_attraction(vec![0, 0], 2.0);
    }
}
