//! Property tests on the synthesis core: randomized SoCs and flow sets must
//! always produce structurally consistent graphs, routes and metrics.

use proptest::prelude::*;
use sunfloor_core::eval::evaluate;
use sunfloor_core::graph::CommGraph;
use sunfloor_core::paths::{compute_paths, PathAllocator, PathConfig};
use sunfloor_core::spec::{CommSpec, Core, Flow, MessageType, SocSpec};
use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine};
use sunfloor_models::NocLibrary;

/// A random small SoC: `n` cores spread over `layers` layers on a loose
/// grid, plus a random set of flows.
fn arb_design() -> impl Strategy<Value = (SocSpec, CommSpec)> {
    (4usize..10, 1u32..4).prop_flat_map(|(n, layers)| {
        let flows = proptest::collection::vec(
            (0..n, 0..n, 20.0f64..400.0, prop::bool::ANY),
            1..(2 * n),
        );
        flows.prop_filter_map("self flows removed", move |raw| {
            let cores: Vec<Core> = (0..n)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.0 + (i % 3) as f64 * 0.5,
                    height: 1.0 + (i % 2) as f64 * 0.5,
                    x: (i % 4) as f64 * 2.0,
                    y: (i / 4) as f64 * 2.0,
                    layer: (i as u32) % layers,
                })
                .collect();
            let soc = SocSpec::new(cores, layers).ok()?;
            let flows: Vec<Flow> = raw
                .into_iter()
                .filter(|&(s, d, _, _)| s != d)
                .map(|(src, dst, bw, resp)| Flow {
                    src,
                    dst,
                    bandwidth_mbs: bw,
                    max_latency_cycles: 20.0,
                    message_type: if resp { MessageType::Response } else { MessageType::Request },
                })
                .collect();
            if flows.is_empty() {
                return None;
            }
            let comm = CommSpec::new(flows, &soc).ok()?;
            Some((soc, comm))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Definition-3 weights are within [0, 1] for any α in [0, 1], and the
    /// heaviest edge gets weight 1 at α = 1.
    #[test]
    fn pg_weights_are_normalized((soc, comm) in arb_design(), alpha in 0.0f64..1.0) {
        let g = CommGraph::new(&soc, &comm);
        for e in g.edge_list() {
            let w = g.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&w));
        }
        prop_assert!((g.max_weight(1.0) - 1.0).abs() < 1e-9);
    }

    /// SPG extra edges never exceed one tenth of the maximum PG weight
    /// (eq. 1's stated bound).
    #[test]
    fn spg_extra_edges_bounded((soc, comm) in arb_design(), theta in 1.0f64..15.0) {
        let g = CommGraph::new(&soc, &comm);
        let max_wt = g.max_weight(1.0);
        let spg = g.scaled_partitioning_graph(&soc, 1.0, theta, 15.0);
        let pg = g.partitioning_graph(1.0);
        let n = soc.core_count();
        for a in 0..n {
            for b in (a + 1)..n {
                if pg.edge_weight(a, b) == 0.0 && spg.edge_weight(a, b) > 0.0 {
                    prop_assert!(soc.cores[a].layer == soc.cores[b].layer);
                    prop_assert!(spg.edge_weight(a, b) <= max_wt / 10.0 + 1e-12);
                }
            }
        }
    }

    /// Routing a trivially-valid connectivity (one switch per layer) always
    /// yields structurally consistent topologies.
    #[test]
    fn routing_invariants_hold((soc, comm) in arb_design()) {
        let g = CommGraph::new(&soc, &comm);
        let layers = soc.layers;
        // One switch per populated layer, each core to its layer's switch.
        let mut switch_of_layer = vec![usize::MAX; layers as usize];
        let mut switch_layer = Vec::new();
        for l in 0..layers {
            if !soc.cores_in_layer(l).is_empty() {
                switch_of_layer[l as usize] = switch_layer.len();
                switch_layer.push(l);
            }
        }
        let core_attach: Vec<usize> =
            soc.cores.iter().map(|c| switch_of_layer[c.layer as usize]).collect();
        let est: Vec<(f64, f64)> = switch_layer.iter().map(|_| (2.0, 2.0)).collect();
        let core_layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
        let cfg = PathConfig::new(200, 64, 400.0);
        let topo = compute_paths(
            &g, &core_attach, &switch_layer, &est, &core_layers, layers,
            &NocLibrary::lp65(), &cfg, 1.0,
        ).unwrap();

        for (fi, e) in g.edge_list().iter().enumerate() {
            let path = &topo.flow_paths[fi].switches;
            prop_assert!(!path.is_empty());
            prop_assert_eq!(path[0], core_attach[e.src]);
            prop_assert_eq!(*path.last().unwrap(), core_attach[e.dst]);
            // Paths are simple (no switch repeated).
            let mut seen = std::collections::BTreeSet::new();
            for &s in path {
                prop_assert!(seen.insert(s), "cycle in path {path:?}");
            }
        }
        for l in &topo.links {
            let sum: f64 = l.flows.iter().map(|&fi| g.edge_list()[fi].bandwidth_mbs * 8.0 / 1000.0).sum();
            prop_assert!((l.bandwidth_gbps - sum).abs() < 1e-9);
            for &fi in &l.flows {
                prop_assert_eq!(g.edge_list()[fi].class, l.class);
            }
        }
    }

    /// The class-decomposed routing pass is bit-identical to the legacy
    /// interleaved pass on arbitrary fuzz-generated specs — with the
    /// request/response passes run sequentially and on two threads — in
    /// links, CDG (link creation) order, flow paths and the power the
    /// routed topology evaluates to, and thread scheduling never leaks
    /// into the routing diagnostics.
    #[test]
    fn classed_routing_matches_interleaved_bit_for_bit((soc, comm) in arb_design()) {
        let g = CommGraph::new(&soc, &comm);
        let layers = soc.layers;
        let mut switch_of_layer = vec![usize::MAX; layers as usize];
        let mut switch_layer = Vec::new();
        for l in 0..layers {
            if !soc.cores_in_layer(l).is_empty() {
                switch_of_layer[l as usize] = switch_layer.len();
                switch_layer.push(l);
            }
        }
        let core_attach: Vec<usize> =
            soc.cores.iter().map(|c| switch_of_layer[c.layer as usize]).collect();
        let est: Vec<(f64, f64)> = switch_layer.iter().map(|_| (2.0, 2.0)).collect();
        let core_layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
        let lib = NocLibrary::lp65();
        let cfg = PathConfig::new(200, 64, 400.0);

        let mut legacy = PathAllocator::new();
        let base = legacy.compute_paths(
            &g, &core_attach, &switch_layer, &est, &core_layers, layers, &lib, &cfg, 1.0,
        ).unwrap();
        let route_classed = |threaded: bool| {
            let mut alloc = PathAllocator::new();
            let topo = alloc.compute_paths_classed(
                &g, &core_attach, &switch_layer, &est, &core_layers, layers, &lib, &cfg,
                1.0, threaded,
            ).unwrap();
            (topo, alloc.stats())
        };
        let (serial, serial_stats) = route_classed(false);
        let (threaded, threaded_stats) = route_classed(true);

        prop_assert_eq!(&serial, &base, "serial class passes diverged from interleaved");
        prop_assert_eq!(&threaded, &base, "two-thread class passes diverged from interleaved");
        prop_assert_eq!(
            threaded_stats, serial_stats,
            "worker scheduling leaked into the routing diagnostics"
        );
        // Link order is the interleaved creation order — the CDG the
        // deadlock checks and the goldens depend on.
        for (a, b) in base.links.iter().zip(threaded.links.iter()) {
            prop_assert_eq!(a.class, b.class);
            prop_assert_eq!(&a.flows, &b.flows);
        }
        let (pb, pt) = (
            evaluate(&base, &soc, &g, &lib, 400.0),
            evaluate(&threaded, &soc, &g, &lib, 400.0),
        );
        prop_assert_eq!(
            pb.power.total_mw().to_bits(),
            pt.power.total_mw().to_bits(),
            "routed power must agree bit for bit"
        );
    }

    /// Full synthesis (thin sweep) on random designs: every reported point
    /// satisfies its own metrics invariants.
    #[test]
    fn synthesis_points_are_self_consistent((soc, comm) in arb_design()) {
        let cfg = SynthesisConfig::builder()
            .run_layout(false)
            .switch_count_range(1, soc.core_count().min(4))
            .build()
            .unwrap();
        let max_ill = cfg.max_ill;
        let outcome = SynthesisEngine::new(&soc, &comm, cfg).unwrap().run();
        for p in &outcome.points {
            prop_assert!(p.metrics.power.total_mw() > 0.0);
            prop_assert!(p.metrics.avg_latency_cycles >= 1.0);
            prop_assert!(p.metrics.meets_latency());
            prop_assert!(p.metrics.max_inter_layer_links() <= max_ill);
            let layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
            prop_assert_eq!(
                &p.metrics.inter_layer_links,
                &p.topology.inter_layer_link_census(&layers, soc.layers)
            );
        }
    }
}
