//! Design-point evaluation: power breakdown, zero-load latency, vertical
//! link census and wire-length statistics.
//!
//! The power split follows the paper's Figs. 10–11 (switch power,
//! switch-to-switch link power, core-to-switch link power) and Table I
//! (link / switch / total power plus average latency). Zero-load latency is
//! counted the way §VIII-A discusses it: one cycle per switch traversed plus
//! one cycle per extra pipeline stage on long wires, so a flow through a
//! single switch over short links has "a zero load latency of just one
//! cycle".

use crate::graph::CommGraph;
use crate::spec::SocSpec;
use crate::topology::Topology;
use sunfloor_models::NocLibrary;

/// NoC power split in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// All switches.
    pub switch_mw: f64,
    /// Switch-to-switch links (wires, TSVs, pipeline registers).
    pub switch_link_mw: f64,
    /// Core-to-switch links (both directions, incl. vertical hops).
    pub core_link_mw: f64,
    /// Network interfaces.
    pub ni_mw: f64,
}

impl PowerBreakdown {
    /// Total NoC power in milliwatts.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.switch_mw + self.switch_link_mw + self.core_link_mw + self.ni_mw
    }

    /// Link power only (the "Link Power" column of Table I).
    #[must_use]
    pub fn link_mw(&self) -> f64 {
        self.switch_link_mw + self.core_link_mw
    }
}

/// Everything the trade-off exploration needs to know about one design
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMetrics {
    /// Power split.
    pub power: PowerBreakdown,
    /// Mean zero-load latency over all flows, cycles.
    pub avg_latency_cycles: f64,
    /// Worst slack violation over all flows, cycles (0 when all latency
    /// constraints hold).
    pub worst_latency_violation: f64,
    /// Directed vertical links crossing each adjacent-layer boundary.
    pub inter_layer_links: Vec<u32>,
    /// Per-link planar wire lengths (switch-to-switch then core-to-switch),
    /// mm — the Fig. 12 histogram data.
    pub wire_lengths_mm: Vec<f64>,
    /// Number of switches.
    pub switch_count: usize,
    /// Operating frequency, MHz.
    pub frequency_mhz: f64,
}

impl DesignMetrics {
    /// Whether every flow meets its latency constraint.
    #[must_use]
    pub fn meets_latency(&self) -> bool {
        self.worst_latency_violation <= 0.0
    }

    /// Largest vertical-link count over the boundaries.
    #[must_use]
    pub fn max_inter_layer_links(&self) -> u32 {
        self.inter_layer_links.iter().copied().max().unwrap_or(0)
    }

    /// Whether every floating-point figure is finite. Extreme spec numbers
    /// (e.g. a bandwidth near `f64::MAX`) can overflow the power model to
    /// `inf`/`NaN`; such a design must not be reported as feasible, not
    /// least because a NaN anywhere breaks `PartialEq` self-equality of
    /// the outcome.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.power.switch_mw.is_finite()
            && self.power.switch_link_mw.is_finite()
            && self.power.core_link_mw.is_finite()
            && self.power.ni_mw.is_finite()
            && self.avg_latency_cycles.is_finite()
            && self.worst_latency_violation.is_finite()
            && self.wire_lengths_mm.iter().all(|w| w.is_finite())
    }
}

/// Planar Manhattan length (mm) of the link between two planar positions.
fn manhattan(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Evaluates a routed and placed topology.
///
/// `topo.switch_pos` must already hold meaningful positions (from the LP or
/// from final floorplan insertion); lengths and power follow those
/// positions.
#[must_use]
pub fn evaluate(
    topo: &Topology,
    soc: &SocSpec,
    graph: &CommGraph,
    lib: &NocLibrary,
    frequency_mhz: f64,
) -> DesignMetrics {
    let nsw = topo.switch_count();
    let core_layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();

    // --- per-core traffic (for NI + core link power) ----------------------
    let mut core_out_gbps = vec![0.0f64; soc.core_count()];
    let mut core_in_gbps = vec![0.0f64; soc.core_count()];
    for e in graph.edge_list() {
        let g = e.bandwidth_mbs * 8.0 / 1000.0;
        core_out_gbps[e.src] += g;
        core_in_gbps[e.dst] += g;
    }

    // --- traffic through each switch --------------------------------------
    let mut through_gbps = vec![0.0f64; nsw];
    for (fi, path) in topo.flow_paths.iter().enumerate() {
        let g = graph.edge_list()[fi].bandwidth_mbs * 8.0 / 1000.0;
        for &s in &path.switches {
            through_gbps[s] += g;
        }
    }

    // --- switch power ------------------------------------------------------
    let mut switch_mw = 0.0;
    for (s, &gbps) in through_gbps.iter().enumerate().take(nsw) {
        switch_mw += lib.switch.power_mw(
            topo.input_ports(s),
            topo.output_ports(s),
            gbps,
            frequency_mhz,
        );
    }

    // --- switch-to-switch link power and lengths ---------------------------
    let mut switch_link_mw = 0.0;
    let mut wire_lengths = Vec::new();
    for l in &topo.links {
        let len = manhattan(topo.switch_pos[l.from], topo.switch_pos[l.to]);
        let hops = topo.switch_layer[l.from].abs_diff(topo.switch_layer[l.to]);
        switch_link_mw += lib.link.power_mw(len, l.bandwidth_gbps, frequency_mhz)
            + lib.tsv.power_mw(hops, l.bandwidth_gbps);
        wire_lengths.push(len);
    }

    // --- core-to-switch link power and lengths ------------------------------
    let mut core_link_mw = 0.0;
    let mut ni_mw = 0.0;
    for (c, &sw) in topo.core_attach.iter().enumerate() {
        let len = manhattan(soc.cores[c].center(), topo.switch_pos[sw]);
        let hops = core_layers[c].abs_diff(topo.switch_layer[sw]);
        // Two directed links: core->switch carries the core's egress, and
        // switch->core its ingress.
        core_link_mw += lib.link.power_mw(len, core_out_gbps[c], frequency_mhz)
            + lib.link.power_mw(len, core_in_gbps[c], frequency_mhz)
            + lib.tsv.power_mw(hops, core_out_gbps[c] + core_in_gbps[c]);
        ni_mw += lib.ni.power_mw(core_out_gbps[c] + core_in_gbps[c], frequency_mhz);
        wire_lengths.push(len);
    }

    // --- zero-load latency ---------------------------------------------------
    let mut lat_sum = 0.0;
    let mut worst_violation = 0.0f64;
    for (fi, path) in topo.flow_paths.iter().enumerate() {
        let e = &graph.edge_list()[fi];
        let mut cycles =
            path.switches.len() as f64 * f64::from(lib.switch.traversal_cycles);
        // Extra pipeline stages: core->first switch, inter-switch hops,
        // last switch->core.
        let first = path.switches[0];
        let last = path.switches[path.switches.len() - 1];
        cycles += f64::from(lib.link.pipeline_stages(
            manhattan(soc.cores[e.src].center(), topo.switch_pos[first]),
            frequency_mhz,
        ));
        cycles += f64::from(lib.link.pipeline_stages(
            manhattan(topo.switch_pos[last], soc.cores[e.dst].center()),
            frequency_mhz,
        ));
        for w in path.switches.windows(2) {
            cycles += f64::from(lib.link.pipeline_stages(
                manhattan(topo.switch_pos[w[0]], topo.switch_pos[w[1]]),
                frequency_mhz,
            ));
        }
        lat_sum += cycles;
        worst_violation = worst_violation.max(cycles - e.latency_cycles);
    }
    let flows = topo.flow_paths.len().max(1) as f64;

    DesignMetrics {
        power: PowerBreakdown { switch_mw, switch_link_mw, core_link_mw, ni_mw },
        avg_latency_cycles: lat_sum / flows,
        worst_latency_violation: worst_violation,
        inter_layer_links: topo.inter_layer_link_census(&core_layers, soc.layers),
        wire_lengths_mm: wire_lengths,
        switch_count: nsw,
        frequency_mhz,
    }
}

/// Buckets wire lengths into a histogram with `bucket_mm`-wide bins — the
/// data series of Fig. 12.
#[must_use]
pub fn wire_length_histogram(lengths_mm: &[f64], bucket_mm: f64) -> Vec<(f64, usize)> {
    assert!(bucket_mm > 0.0, "bucket width must be positive");
    let max = lengths_mm.iter().copied().fold(0.0f64, f64::max);
    let buckets = (max / bucket_mm).floor() as usize + 1;
    let mut hist = vec![0usize; buckets];
    for &l in lengths_mm {
        hist[(l / bucket_mm).floor() as usize] += 1;
    }
    hist.into_iter().enumerate().map(|(i, n)| (i as f64 * bucket_mm, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{compute_paths, PathConfig};
    use crate::spec::{CommSpec, Core, Flow, MessageType};

    fn setup(flow_lat: f64) -> (SocSpec, CommGraph, Topology) {
        let soc = SocSpec::new(
            vec![
                Core { name: "a".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 0 },
                Core { name: "b".into(), width: 2.0, height: 2.0, x: 3.0, y: 0.0, layer: 0 },
                Core { name: "c".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 1 },
            ],
            2,
        )
        .unwrap();
        let f = |src, dst, bw: f64| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: flow_lat,
            message_type: MessageType::Request,
        };
        let comm = CommSpec::new(vec![f(0, 1, 200.0), f(0, 2, 400.0)], &soc).unwrap();
        let graph = CommGraph::new(&soc, &comm);
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &graph,
            &[0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (3.0, 1.0)],
            &[0, 0, 1],
            2,
            &NocLibrary::lp65(),
            &cfg,
            1.0,
        )
        .unwrap();
        (soc, graph, topo)
    }

    #[test]
    fn power_components_all_positive_and_sum() {
        let (soc, graph, topo) = setup(10.0);
        let m = evaluate(&topo, &soc, &graph, &NocLibrary::lp65(), 400.0);
        assert!(m.power.switch_mw > 0.0);
        assert!(m.power.switch_link_mw > 0.0);
        assert!(m.power.core_link_mw > 0.0);
        assert!(m.power.ni_mw > 0.0);
        let sum = m.power.switch_mw + m.power.switch_link_mw + m.power.core_link_mw
            + m.power.ni_mw;
        assert!((m.power.total_mw() - sum).abs() < 1e-12);
    }

    #[test]
    fn latency_counts_switches_and_stages() {
        let (soc, graph, topo) = setup(10.0);
        let m = evaluate(&topo, &soc, &graph, &NocLibrary::lp65(), 400.0);
        // Flow 0 goes a(sw0) -> b(sw1): 2 switches; flow 1 a(sw0) -> c(sw1):
        // 2 switches. Links are short at these positions (< budget), so
        // latency = 2 cycles each.
        assert!((m.avg_latency_cycles - 2.0).abs() < 1e-9, "{}", m.avg_latency_cycles);
        assert!(m.meets_latency());
    }

    #[test]
    fn violated_latency_is_reported() {
        let (soc, graph, topo) = setup(1.0); // impossible: 2 switches needed
        let m = evaluate(&topo, &soc, &graph, &NocLibrary::lp65(), 400.0);
        assert!(!m.meets_latency());
        assert!((m.worst_latency_violation - 1.0).abs() < 1e-9);
    }

    #[test]
    fn longer_wires_cost_more_power() {
        let (soc, graph, mut topo) = setup(10.0);
        let near = evaluate(&topo, &soc, &graph, &NocLibrary::lp65(), 400.0);
        // Pull switch 1 far away: switch-link and core-link power must grow.
        topo.switch_pos[1] = (40.0, 1.0);
        let far = evaluate(&topo, &soc, &graph, &NocLibrary::lp65(), 400.0);
        assert!(far.power.switch_link_mw > near.power.switch_link_mw);
        assert!(far.power.core_link_mw > near.power.core_link_mw);
        // And the long wire now needs pipeline stages: latency grows.
        assert!(far.avg_latency_cycles > near.avg_latency_cycles);
    }

    #[test]
    fn ill_census_matches_topology_helper() {
        let (soc, graph, topo) = setup(10.0);
        let m = evaluate(&topo, &soc, &graph, &NocLibrary::lp65(), 400.0);
        let layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
        assert_eq!(m.inter_layer_links, topo.inter_layer_link_census(&layers, 2));
    }

    #[test]
    fn histogram_buckets_correctly() {
        let hist = wire_length_histogram(&[0.2, 0.4, 1.2, 2.6, 2.9], 1.0);
        assert_eq!(hist, vec![(0.0, 2), (1.0, 1), (2.0, 2)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn histogram_rejects_zero_bucket() {
        let _ = wire_length_histogram(&[1.0], 0.0);
    }
}
