//! Phase 1 core-to-switch connectivity (paper §V-A, Algorithm 1).
//!
//! Cores may connect to a switch in *any* layer: the partitioning graph is
//! min-cut split into as many blocks as there are switches, each block's
//! cores share a switch, and the switch's layer is the rounded average of
//! its cores' layers (Algorithm 1, step 7). When the resulting design misses
//! the `max_ill` constraint, the caller re-runs with the scaled partitioning
//! graph (SPG) at increasing θ, which pulls same-layer cores together and
//! trades inter-layer links for intra-layer power.

use crate::graph::{CommGraph, PartitionCache};
use crate::spec::SocSpec;
use sunfloor_partition::{PartitionConfig, PartitionError, Partitioning};

/// A core-to-switch connectivity candidate produced by Phase 1 or Phase 2,
/// ready for path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct Connectivity {
    /// Switch index each core attaches to.
    pub core_attach: Vec<usize>,
    /// Layer of each switch.
    pub switch_layer: Vec<u32>,
    /// Estimated planar switch positions (bandwidth-weighted centroid of the
    /// attached cores) used for routing cost estimates before the LP runs.
    pub est_positions: Vec<(f64, f64)>,
    /// θ used to build the SPG, when one was used.
    pub theta: Option<f64>,
}

impl Connectivity {
    /// Number of switches.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.switch_layer.len()
    }
}

/// Builds the Phase-1 candidate with `switches` switches from the PG
/// (`theta = None`) or the SPG at the given θ.
///
/// # Errors
///
/// Propagates [`PartitionError`] when `switches` exceeds the core count.
pub fn connectivity(
    graph: &CommGraph,
    soc: &SocSpec,
    switches: usize,
    alpha: f64,
    theta: Option<f64>,
    theta_max: f64,
    seed: u64,
) -> Result<Connectivity, PartitionError> {
    let pg = match theta {
        None => graph.partitioning_graph(alpha),
        Some(t) => graph.scaled_partitioning_graph(soc, alpha, t, theta_max),
    };
    let parts = pg.partition(&PartitionConfig::k_way(switches).with_seed(seed))?;
    Ok(build_connectivity(&parts, soc, theta))
}

/// Cold restarts run alongside a warm-started partition, keeping the
/// multi-start search honest without paying the full
/// [`PartitionConfig::k_way`] restart budget at every warm-started step
/// (the warm refinement + final FM polish make up the quality; the
/// engine-level tests pin power/hop-count against the cold-start
/// implementation).
const WARM_RESTARTS: u32 = 4;

/// Cold restart budget of a warm-started **θ-escalation** step. A θ-step
/// re-partitions an assignment that was already good at the previous θ on
/// a mildly rescaled objective, so the warm refinement wins essentially
/// always and the cold restarts are mostly insurance in the hottest
/// Phase-1 loop. Two restarts at seed stride [`THETA_SEED_STRIDE`]
/// (seeds +0 and +2) sample the same seed span four consecutive restarts
/// would, and on every in-tree benchmark trajectory they select the exact
/// partition the four-restart budget selects — consecutive seeds cluster
/// in the same greedy-growth basin, so spreading the draw is worth more
/// than adding draws. The θ-replay and sparse-θ anchor tests
/// (`tests/partition_warm.rs`) gate this budget against the full
/// cold-start partitioner.
const THETA_WARM_RESTARTS: u32 = 2;

/// Seed spacing of a θ-step's cold restarts (see [`THETA_WARM_RESTARTS`]).
const THETA_SEED_STRIDE: u32 = 2;

/// [`connectivity`] through a [`PartitionCache`]: the PG is built once per
/// cache, SPGs are derived by rescaling the cached template in place, and
/// an optional `initial` assignment warm-starts the partitioner (FM-style
/// refinement of the previous assignment) instead of recursive-bisecting
/// from scratch.
///
/// Warm-started calls (the engine's once-per-switch-count seed chain and
/// every θ-escalation step) run the warm refinement against a reduced
/// cold restart budget and give the winner a final FM polish
/// — roughly half the cold effort per call, with the warm seed making up
/// the quality (hMetis-style refinement converges far faster than cold
/// k-way partitioning).
///
/// The graphs the partitioner sees are bit-identical to the ones
/// [`connectivity`] builds from scratch; with `initial = None` the result
/// is exactly the cold-start result.
///
/// # Errors
///
/// Propagates [`PartitionError`] when `switches` exceeds the core count.
#[allow(clippy::too_many_arguments)]
pub fn connectivity_cached(
    graph: &CommGraph,
    soc: &SocSpec,
    switches: usize,
    alpha: f64,
    theta: Option<f64>,
    theta_max: f64,
    seed: u64,
    initial: Option<&[u32]>,
    cache: &mut PartitionCache,
) -> Result<Connectivity, PartitionError> {
    let mut cfg = PartitionConfig::k_way(switches).with_seed(seed);
    if let Some(init) = initial {
        cfg = cfg.with_initial(init.to_vec());
        if theta.is_some() {
            cfg.restarts = THETA_WARM_RESTARTS;
            cfg.seed_stride = THETA_SEED_STRIDE;
        } else {
            cfg.restarts = WARM_RESTARTS;
        }
        cache.stats.warm_partitions += 1;
    } else {
        cache.stats.cold_partitions += 1;
    }
    let parts = match theta {
        None => cache.pg(graph, alpha).partition(&cfg)?,
        Some(t) => {
            cache.stats.spg_derivations += 1;
            cache.spg(graph, soc, alpha, t, theta_max).partition(&cfg)?
        }
    };
    Ok(build_connectivity(&parts, soc, theta))
}

/// Derives the [`Connectivity`] a partitioning induces (Algorithm 1 steps
/// 6–9): attachments, rounded-average switch layers and centroid position
/// estimates. Iterates blocks through [`Partitioning::members_iter`], so no
/// per-block member vectors are allocated in the sweep's hot loop.
fn build_connectivity(parts: &Partitioning, soc: &SocSpec, theta: Option<f64>) -> Connectivity {
    let switches = parts.part_count();
    let mut core_attach = vec![0usize; soc.core_count()];
    for (c, attach) in core_attach.iter_mut().enumerate() {
        *attach = parts.part_of(c) as usize;
    }

    let mut switch_layer = Vec::with_capacity(switches);
    let mut est_positions = Vec::with_capacity(switches);
    for block in 0..switches as u32 {
        let members = parts.members_iter(block).count();
        debug_assert!(members > 0, "partitioner returned an empty block");
        // Step 7: layer = rounded average of the member cores' layers.
        let avg_layer: f64 = parts
            .members_iter(block)
            .map(|c| f64::from(soc.cores[c].layer))
            .sum::<f64>()
            / members as f64;
        let layer = (avg_layer.round() as u32).min(soc.layers - 1);
        switch_layer.push(layer);

        let (mut cx, mut cy) = (0.0, 0.0);
        for c in parts.members_iter(block) {
            let (x, y) = soc.cores[c].center();
            cx += x;
            cy += y;
        }
        est_positions.push((cx / members as f64, cy / members as f64));
    }

    Connectivity { core_attach, switch_layer, est_positions, theta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommSpec, Core, Flow, MessageType};

    /// Mirrors the paper's Fig. 4/5 example: two layers, heavy vertical
    /// flows between stacked pairs, light horizontal flows.
    fn fig4_like() -> (SocSpec, CommGraph) {
        let mut cores = Vec::new();
        for i in 0..6 {
            cores.push(Core {
                name: format!("c{i}"),
                width: 1.0,
                height: 1.0,
                x: f64::from(i % 3) * 2.0,
                y: 0.0,
                layer: u32::from(i >= 3),
            });
        }
        let soc = SocSpec::new(cores, 2).unwrap();
        let f = |src, dst, bw: f64| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: 10.0,
            message_type: MessageType::Request,
        };
        // Vertical pairs (i, i+3) heavy; ring around each layer light.
        let comm = CommSpec::new(
            vec![
                f(0, 3, 400.0),
                f(1, 4, 400.0),
                f(2, 5, 400.0),
                f(0, 1, 50.0),
                f(1, 2, 50.0),
                f(3, 4, 50.0),
                f(4, 5, 50.0),
            ],
            &soc,
        )
        .unwrap();
        let graph = CommGraph::new(&soc, &comm);
        (soc, graph)
    }

    #[test]
    fn pg_partition_clusters_across_layers() {
        let (soc, graph) = fig4_like();
        // Three switches: min-cut keeps the heavy vertical pairs together,
        // exactly like the paper's Fig. 5.
        let c = connectivity(&graph, &soc, 3, 1.0, None, 15.0, 1).unwrap();
        assert_eq!(c.switch_count(), 3);
        for pair in [(0usize, 3usize), (1, 4), (2, 5)] {
            assert_eq!(
                c.core_attach[pair.0], c.core_attach[pair.1],
                "vertical pair {pair:?} should share a switch"
            );
        }
    }

    #[test]
    fn spg_partition_clusters_within_layers() {
        let (soc, graph) = fig4_like();
        // With a strong theta the same 3-way split clusters by layer
        // instead (Fig. 6): at least one switch is purely intra-layer.
        let c = connectivity(&graph, &soc, 2, 1.0, Some(12.0), 15.0, 1).unwrap();
        // Expect the two blocks to be the two layers.
        assert_eq!(c.core_attach[0], c.core_attach[1]);
        assert_eq!(c.core_attach[1], c.core_attach[2]);
        assert_eq!(c.core_attach[3], c.core_attach[4]);
        assert_eq!(c.core_attach[4], c.core_attach[5]);
        assert_ne!(c.core_attach[0], c.core_attach[3]);
    }

    #[test]
    fn switch_layer_is_rounded_average() {
        let (soc, graph) = fig4_like();
        let c = connectivity(&graph, &soc, 3, 1.0, None, 15.0, 1).unwrap();
        // Each block has one layer-0 and one layer-1 core: average 0.5
        // rounds to 1 (f64::round rounds half away from zero).
        for &l in &c.switch_layer {
            assert_eq!(l, 1);
        }
    }

    #[test]
    fn estimated_positions_are_centroids() {
        let (soc, graph) = fig4_like();
        let c = connectivity(&graph, &soc, 3, 1.0, None, 15.0, 1).unwrap();
        for (s, &(x, y)) in c.est_positions.iter().enumerate() {
            let members: Vec<usize> =
                (0..6).filter(|&cidx| c.core_attach[cidx] == s).collect();
            let ex: f64 =
                members.iter().map(|&m| soc.cores[m].center().0).sum::<f64>() / 2.0;
            let ey: f64 =
                members.iter().map(|&m| soc.cores[m].center().1).sum::<f64>() / 2.0;
            assert!((x - ex).abs() < 1e-9 && (y - ey).abs() < 1e-9);
        }
    }

    #[test]
    fn too_many_switches_is_an_error() {
        let (soc, graph) = fig4_like();
        assert!(connectivity(&graph, &soc, 7, 1.0, None, 15.0, 1).is_err());
    }

    #[test]
    fn single_switch_hosts_everyone() {
        let (soc, graph) = fig4_like();
        let c = connectivity(&graph, &soc, 1, 1.0, None, 15.0, 1).unwrap();
        assert!(c.core_attach.iter().all(|&s| s == 0));
        assert_eq!(c.switch_layer.len(), 1);
    }
}
