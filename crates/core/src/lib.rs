//! SunFloor 3D: application-specific NoC topology synthesis for 3-D stacked
//! SoCs.
//!
//! A from-scratch reproduction of Seiculescu, Murali, Benini & De Micheli,
//! *"SunFloor 3D: A Tool for Networks on Chip Topology Synthesis for 3-D
//! Systems on Chips"* (IEEE TCAD 29(12), 2010; DATE 2009). Given the cores
//! of a 3-D SoC (sizes, per-layer positions, layer assignment) and the
//! application's traffic flows (bandwidth, latency budget, message class),
//! the tool:
//!
//! 1. explores switch counts and operating frequencies (Fig. 3),
//! 2. assigns cores to switches by balanced min-cut partitioning — Phase 1
//!    across layers (Algorithm 1, with the θ-scaled SPG escalation) or
//!    Phase 2 layer-by-layer (Algorithm 2),
//! 3. routes every flow deadlock-free under the through-silicon-via budget
//!    (`max_ill`) and frequency-dependent switch-size constraints
//!    (Algorithm 3's hard/soft thresholds),
//! 4. places the switches at the LP optimum of bandwidth-weighted Manhattan
//!    wirelength (§VII) — through a warm-started, per-worker
//!    [`place::PlacementSolver`] that re-enters the simplex from the
//!    previous attempt's basis — and inserts them, plus the TSV macros,
//!    into the floorplan with a minimal-disturbance shove routine,
//! 5. reports power / latency / area / vertical-link metrics for every
//!    feasible design point, forming the trade-off set the designer picks
//!    from.
//!
//! # Quickstart
//!
//! Build a validated [`SynthesisConfig`] with the builder, hand it to a
//! [`SynthesisEngine`] and run the sweep:
//!
//! ```
//! use sunfloor_core::spec::{CommSpec, Core, Flow, MessageType, SocSpec};
//! use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two cores stacked on two layers, one flow between them.
//! let soc = SocSpec::new(
//!     vec![
//!         Core { name: "cpu".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 0 },
//!         Core { name: "mem".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 1 },
//!     ],
//!     2,
//! )?;
//! let comm = CommSpec::new(
//!     vec![Flow {
//!         src: 0,
//!         dst: 1,
//!         bandwidth_mbs: 400.0,
//!         max_latency_cycles: 6.0,
//!         message_type: MessageType::Request,
//!     }],
//!     &soc,
//! )?;
//! // The builder validates eagerly: a bad sweep is a typed `ConfigError`
//! // here, not a surprise mid-run.
//! let cfg = SynthesisConfig::builder()
//!     .frequency_mhz(400.0)
//!     .max_ill(25)
//!     .build()?;
//! let outcome = SynthesisEngine::new(&soc, &comm, cfg)?.run();
//! let best = outcome.best_power().expect("a feasible topology");
//! assert!(best.metrics.meets_latency());
//! # Ok(())
//! # }
//! ```
//!
//! Design-space sweeps parallelize with
//! [`.jobs(n)`](synthesis::SynthesisConfigBuilder::jobs) (candidates are
//! independent; results are committed in deterministic order, so serial and
//! parallel runs agree bit-for-bit), stream progress through
//! [`run_with_observer`](synthesis::SynthesisEngine::run_with_observer),
//! and stop early with a [`StopPolicy`] (first-feasible, point budget, or
//! wall-clock deadline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod export;
pub mod graph;
pub mod layout;
pub mod paths;
pub mod phase1;
pub mod phase2;
pub mod place;
pub mod spec;
pub mod synthesis;
pub mod topology;

pub use eval::{evaluate, DesignMetrics, PowerBreakdown};
pub use graph::{CommEdge, CommGraph};
pub use layout::{layout_design, Layout};
pub use paths::{compute_paths, PathAllocator, PathConfig, PathError, RoutingStats};
pub use spec::{CommSpec, Core, Flow, MessageType, SocSpec, SpecError};
pub use synthesis::{
    Candidate, ConfigError, DesignPoint, Parallelism, PhaseKind, RejectReason, RejectedPoint,
    StopPolicy, SweepEvent, SweepObserver, SweepParam, SynthesisConfig, SynthesisConfigBuilder,
    SynthesisEngine, SynthesisError, SynthesisMode, SynthesisOutcome,
};
pub use topology::{FlowPath, Link, Topology};
