//! Switch position computation (paper §VII).
//!
//! Builds the linear program of equations (2)–(5): switch coordinates are
//! free variables, every core↔switch and switch↔switch connection pulls with
//! its total bandwidth, and the bandwidth-weighted Manhattan wirelength is
//! minimized. Coordinates are planar only — "The TSV macros do not need to
//! be included in the LP as TSVs split the wires in two segments, both
//! carrying the same bandwidth" (§VII), so vertical hops do not move the
//! optimum.
//!
//! # Warm-started placement
//!
//! Placement is served by a [`PlacementSolver`] — one per synthesis-engine
//! worker, the same ownership pattern as the routing `PathAllocator`. The
//! solver keeps one warm-startable LP state per switch count, so the
//! repeated placements a candidate evaluation performs (the base attempt,
//! every θ-escalation retry at the same switch count, and the
//! indirect-switch rounds at a grown switch count) re-enter the simplex
//! from the previous optimal basis instead of running two-phase from
//! scratch; the y-axis LP additionally seeds from the x-axis basis on
//! every solve. [`PlacementSolver::begin_candidate`] cuts the warm chain
//! at candidate boundaries: which worker evaluates which candidate is a
//! scheduling accident, so letting a basis leak across candidates would
//! break the engine's serial == parallel bit-for-bit guarantee. Within a
//! candidate the chain is deterministic, and the [`LpStats`] counters are
//! accumulated per candidate so serial and parallel sweeps report
//! identical totals.
//!
//! # Cross-candidate seeds
//!
//! Cutting every chain at candidate boundaries leaves the *first*
//! placement of every candidate cold, even though candidates at the same
//! switch count solve near-identical LPs. A shared, read-only
//! [`PlacementSeeds`] bank closes that gap without giving up the
//! determinism contract: the synthesis engine runs a serial warm-up once
//! per run (one placement per swept switch count, mirroring its Phase-1
//! seed chain), exports each optimal basis pair, and installs the bank
//! into every worker's solver with [`PlacementSolver::install_seeds`].
//! [`PlacementSolver::begin_candidate`] then *re-seeds* each state from
//! the bank instead of merely clearing it — every candidate still starts
//! from the same fixed basis regardless of which worker evaluates it, so
//! serial and parallel sweeps stay bit-for-bit identical, but the base
//! attempt re-enters the simplex warm. Seed-served re-entries are counted
//! in [`LpStats::cross_candidate_warm_solves`].

use crate::graph::CommGraph;
use crate::spec::SocSpec;
use crate::topology::Topology;
use std::sync::Arc;
use sunfloor_lp::{PlacementProblem, PlacementSeed, PlacementState, SolveError, SolveReport};

/// Accumulated traffic between every core and its switch, and between switch
/// pairs — the `bw_sw2core` / `bw_sw2sw` weights of equation (4).
#[derive(Debug, Clone, Default)]
pub struct PlacementWeights {
    /// `(core, switch, Gbps)` attractions.
    pub core_switch: Vec<(usize, usize, f64)>,
    /// `(switch a, switch b, Gbps)` attractions (undirected accumulation).
    pub switch_switch: Vec<(usize, usize, f64)>,
    /// Scratch: per-core accumulated bandwidth, reused across rebuilds.
    core_bw: Vec<f64>,
}

impl PartialEq for PlacementWeights {
    fn eq(&self, other: &Self) -> bool {
        self.core_switch == other.core_switch && self.switch_switch == other.switch_switch
    }
}

impl PlacementWeights {
    /// Extracts the placement weights from a routed topology.
    #[must_use]
    pub fn from_topology(topo: &Topology, graph: &CommGraph) -> Self {
        let mut weights = Self::default();
        weights.rebuild(topo, graph);
        weights
    }

    /// Refills the weights from a routed topology, reusing the buffers —
    /// no allocation once the vectors have grown to the design's size.
    pub fn rebuild(&mut self, topo: &Topology, graph: &CommGraph) {
        self.core_bw.clear();
        self.core_bw.resize(topo.core_attach.len(), 0.0);
        for e in graph.edge_list() {
            self.core_bw[e.src] += e.bandwidth_mbs * 8.0 / 1000.0;
            self.core_bw[e.dst] += e.bandwidth_mbs * 8.0 / 1000.0;
        }
        self.core_switch.clear();
        self.core_switch.extend(
            self.core_bw
                .iter()
                .enumerate()
                .filter(|(_, &bw)| bw > 0.0)
                .map(|(c, &bw)| (c, topo.core_attach[c], bw)),
        );

        // Per-pair accumulation by stable sort + in-place merge: within a
        // key, links keep their topology order, so the bandwidth sum runs
        // left to right exactly like the hash-map accumulation it replaces
        // (bit-identical totals).
        self.switch_switch.clear();
        self.switch_switch.extend(topo.links.iter().map(|l| {
            let (a, b) = if l.from <= l.to { (l.from, l.to) } else { (l.to, l.from) };
            (a, b, l.bandwidth_gbps)
        }));
        self.switch_switch.sort_by_key(|x| (x.0, x.1));
        self.switch_switch.dedup_by(|cur, kept| {
            if kept.0 == cur.0 && kept.1 == cur.1 {
                kept.2 += cur.2;
                true
            } else {
                false
            }
        });
    }
}

/// Deterministic counters of how the switch-placement LP work was served.
///
/// Mirrors `PartitionStats`: every field counts per-candidate events (the
/// engine accumulates a delta per candidate evaluation and sums the deltas
/// in commit order), so serial and parallel sweeps report identical
/// totals. Each placement solves two axis LPs, so one `place` call
/// contributes two solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LpStats {
    /// Axis LPs solved cold (two-phase simplex from scratch).
    pub cold_solves: u64,
    /// Axis LPs re-entered from a warm basis (phase 2 resumed directly, or
    /// the dual simplex after a right-hand-side change).
    pub warm_solves: u64,
    /// Total simplex pivots performed across all solves.
    pub simplex_iterations: u64,
    /// Estimated pivots avoided by the warm re-entries, measured against
    /// each solver state's most recent cold solve.
    pub iterations_saved: u64,
    /// Warm re-entries served by a cross-candidate [`PlacementSeeds`]
    /// basis (the engine's serial warm-up bank) rather than by a
    /// within-candidate chain. A subset of [`LpStats::warm_solves`].
    pub cross_candidate_warm_solves: u64,
}

impl LpStats {
    /// Total axis-LP solves answered (cold + warm).
    #[must_use]
    pub fn total_solves(&self) -> u64 {
        self.cold_solves + self.warm_solves
    }

    fn record(&mut self, report: SolveReport) {
        if report.warm {
            self.warm_solves += 1;
            self.iterations_saved += u64::from(report.iterations_saved);
        } else {
            self.cold_solves += 1;
        }
        self.simplex_iterations += u64::from(report.iterations);
    }
}

impl std::ops::AddAssign for LpStats {
    fn add_assign(&mut self, rhs: Self) {
        self.cold_solves += rhs.cold_solves;
        self.warm_solves += rhs.warm_solves;
        self.simplex_iterations += rhs.simplex_iterations;
        self.iterations_saved += rhs.iterations_saved;
        self.cross_candidate_warm_solves += rhs.cross_candidate_warm_solves;
    }
}

impl std::ops::Sub for LpStats {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self {
            cold_solves: self.cold_solves - rhs.cold_solves,
            warm_solves: self.warm_solves - rhs.warm_solves,
            simplex_iterations: self.simplex_iterations - rhs.simplex_iterations,
            iterations_saved: self.iterations_saved - rhs.iterations_saved,
            cross_candidate_warm_solves: self.cross_candidate_warm_solves
                - rhs.cross_candidate_warm_solves,
        }
    }
}

/// A read-only bank of cross-candidate placement seeds, keyed by switch
/// count: one exported [`PlacementSeed`] per swept count, captured by the
/// synthesis engine's serial warm-up and shared (behind an [`Arc`]) by
/// every sweep worker's [`PlacementSolver`]. Because the bank is fixed
/// before the sweep starts and identical for all workers, seeding from it
/// is scheduling-invariant — the determinism contract of
/// [`PlacementSolver::begin_candidate`] is preserved.
#[derive(Debug, Default)]
pub struct PlacementSeeds {
    seeds: Vec<(usize, PlacementSeed)>,
}

impl PlacementSeeds {
    /// An empty bank.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) the seed for `switches` switches.
    pub fn insert(&mut self, switches: usize, seed: PlacementSeed) {
        match self.seeds.iter_mut().find(|(k, _)| *k == switches) {
            Some((_, existing)) => *existing = seed,
            None => self.seeds.push((switches, seed)),
        }
    }

    /// The seed for `switches` switches, if one was captured.
    #[must_use]
    pub fn get(&self, switches: usize) -> Option<&PlacementSeed> {
        self.seeds.iter().find(|(k, _)| *k == switches).map(|(_, s)| s)
    }

    /// Number of switch counts with a captured seed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the bank holds no seeds at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }
}

/// The warm-startable switch-placement solver: builds the §VII LP from a
/// routed topology and solves it through per-switch-count
/// [`PlacementState`]s, chaining warm starts across the placements of one
/// candidate evaluation (see the [module docs](self) for the determinism
/// contract). The synthesis engine owns one per sweep worker.
#[derive(Debug, Default)]
pub struct PlacementSolver {
    problem: PlacementProblem,
    weights: PlacementWeights,
    /// Warm-start states keyed by switch count (indirect-switch rounds
    /// grow the count mid-candidate, so one candidate can touch several).
    states: Vec<StateSlot>,
    /// The shared cross-candidate seed bank, when the engine installed
    /// one (see the [module docs](self)).
    seeds: Option<Arc<PlacementSeeds>>,
    stats: LpStats,
}

/// One warm-start state plus its seeding bookkeeping.
#[derive(Debug)]
struct StateSlot {
    switches: usize,
    state: PlacementState,
    /// Whether the next placement through this slot starts from a freshly
    /// installed cross-candidate seed (set when the seed is installed,
    /// cleared by the first placement — which is the only one whose warm
    /// re-entries count as seed-served).
    seeded: bool,
}

impl PlacementSolver {
    /// A fresh solver; every state starts cold.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the shared cross-candidate seed bank: from the next
    /// [`PlacementSolver::begin_candidate`] on (and for states created
    /// mid-candidate), states whose switch count has a banked seed start
    /// from that basis instead of cold.
    pub fn install_seeds(&mut self, seeds: Arc<PlacementSeeds>) {
        self.seeds = Some(seeds);
    }

    /// Cuts the warm chain at a candidate boundary: every state forgets
    /// its basis — and re-seeds from the shared cross-candidate bank when
    /// one is installed and covers its switch count — so the next
    /// placement at any switch count starts from a fixed, candidate-
    /// independent basis (the banked seed, or cold).
    ///
    /// The engine calls this at the start of each candidate evaluation.
    /// Warm chains *within* a candidate are deterministic; chains *across*
    /// candidates would depend on which worker happened to evaluate which
    /// candidate previously, breaking the serial == parallel bit-for-bit
    /// guarantee. The banked seeds are fixed before the sweep starts, so
    /// re-seeding keeps that guarantee while skipping the cold re-entry.
    pub fn begin_candidate(&mut self) {
        let seeds = self.seeds.as_deref();
        for slot in &mut self.states {
            match seeds.and_then(|s| s.get(slot.switches)) {
                Some(seed) => {
                    slot.state.seed_from(seed);
                    slot.seeded = true;
                }
                None => {
                    slot.state.clear_warm();
                    slot.seeded = false;
                }
            }
        }
    }

    /// Exports the optimal basis pair of the state at `switches`, if that
    /// state has completed a placement. The engine's warm-up uses this to
    /// build the shared [`PlacementSeeds`] bank.
    #[must_use]
    pub fn export_seed(&self, switches: usize) -> Option<PlacementSeed> {
        self.states.iter().find(|s| s.switches == switches)?.state.export_seed()
    }

    /// Cumulative counters of every solve this solver served.
    #[must_use]
    pub fn stats(&self) -> LpStats {
        self.stats
    }

    /// Solves the switch-placement LP and writes the optimal coordinates
    /// into `topo.switch_pos`. Returns the optimal objective (Gbps·mm).
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] on numerical breakdown of the simplex
    /// (the model itself is always feasible and bounded).
    pub fn place(
        &mut self,
        topo: &mut Topology,
        soc: &SocSpec,
        graph: &CommGraph,
    ) -> Result<f64, SolveError> {
        self.weights.rebuild(topo, graph);
        self.problem.reset(topo.switch_count());
        for &(core, sw, bw) in &self.weights.core_switch {
            self.problem.attract_to_fixed(sw, soc.cores[core].center(), bw);
        }
        for &(a, b, bw) in &self.weights.switch_switch {
            self.problem.attract_pair(a, b, bw);
        }

        let key = topo.switch_count();
        let slot = match self.states.iter().position(|s| s.switches == key) {
            Some(i) => i,
            None => {
                // A switch count this solver has never placed: start its
                // state from the banked seed when one exists, exactly as
                // `begin_candidate` would have.
                let mut state = PlacementState::new();
                let seeded = match self.seeds.as_deref().and_then(|s| s.get(key)) {
                    Some(seed) => {
                        state.seed_from(seed);
                        true
                    }
                    None => false,
                };
                self.states.push(StateSlot { switches: key, state, seeded });
                self.states.len() - 1
            }
        };
        let slot = &mut self.states[slot];
        let positions = self.problem.solve_with(&mut slot.state)?;
        let (rx, ry) = slot.state.reports();
        self.stats.record(rx);
        self.stats.record(ry);
        if slot.seeded {
            slot.seeded = false;
            // The x axis never adopts a basis mid-solve, so a warm x on a
            // freshly seeded slot means the banked seed replayed; the y
            // axis then warmed from the seed too (not from an x adoption).
            if rx.warm {
                self.stats.cross_candidate_warm_solves += 1 + u64::from(ry.warm);
            }
        }

        let objective = self.problem.objective(&positions);
        topo.switch_pos = positions;
        Ok(objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{compute_paths, PathConfig};
    use crate::spec::{CommSpec, Core, Flow, MessageType};
    use sunfloor_models::NocLibrary;

    fn setup() -> (SocSpec, CommGraph, Topology) {
        let soc = SocSpec::new(
            vec![
                Core { name: "a".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 0 },
                Core { name: "b".into(), width: 2.0, height: 2.0, x: 6.0, y: 0.0, layer: 0 },
                Core { name: "c".into(), width: 2.0, height: 2.0, x: 0.0, y: 6.0, layer: 0 },
                Core { name: "d".into(), width: 2.0, height: 2.0, x: 6.0, y: 6.0, layer: 0 },
            ],
            1,
        )
        .unwrap();
        let f = |src, dst, bw: f64| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: 10.0,
            message_type: MessageType::Request,
        };
        let comm =
            CommSpec::new(vec![f(0, 1, 100.0), f(2, 3, 100.0), f(0, 3, 50.0)], &soc).unwrap();
        let graph = CommGraph::new(&soc, &comm);
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &graph,
            &[0, 0, 1, 1],
            &[0, 0],
            &[(3.0, 1.0), (3.0, 7.0)],
            &[0, 0, 0, 0],
            1,
            &NocLibrary::lp65(),
            &cfg,
            1.0,
        )
        .unwrap();
        (soc, graph, topo)
    }

    #[test]
    fn weights_capture_all_traffic() {
        let (_, graph, topo) = setup();
        let w = PlacementWeights::from_topology(&topo, &graph);
        // Every core sends or receives, so all 4 appear.
        assert_eq!(w.core_switch.len(), 4);
        // One switch pair with the 50 MB/s inter-cluster flow (0.4 Gbps).
        assert_eq!(w.switch_switch.len(), 1);
        assert!((w.switch_switch[0].2 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn placement_lands_switches_between_their_cores() {
        let (soc, graph, mut topo) = setup();
        let obj = PlacementSolver::new().place(&mut topo, &soc, &graph).unwrap();
        assert!(obj >= 0.0);
        // Switch 0 serves cores a(1,1) and b(7,1): optimal y = 1.
        let (x0, y0) = topo.switch_pos[0];
        assert!((y0 - 1.0).abs() < 1e-6, "switch 0 y = {y0}");
        assert!((1.0..=7.0).contains(&x0), "switch 0 x = {x0}");
        // Switch 1 serves cores c(1,7) and d(7,7): optimal y = 7.
        let (_, y1) = topo.switch_pos[1];
        assert!((y1 - 7.0).abs() < 1e-6, "switch 1 y = {y1}");
    }

    #[test]
    fn lp_objective_beats_centroid_heuristic() {
        let (soc, graph, mut topo) = setup();
        let weights = PlacementWeights::from_topology(&topo, &graph);
        let mut problem = PlacementProblem::new(topo.switch_count());
        for &(core, sw, bw) in &weights.core_switch {
            problem.attract_to_fixed(sw, soc.cores[core].center(), bw);
        }
        for &(a, b, bw) in &weights.switch_switch {
            problem.attract_pair(a, b, bw);
        }
        let obj = PlacementSolver::new().place(&mut topo, &soc, &graph).unwrap();
        let centroid = vec![(3.0, 1.0), (3.0, 7.0)];
        assert!(obj <= problem.objective(&centroid) + 1e-6);
    }

    #[test]
    fn repeated_placement_warm_starts_and_reproduces_the_vertex() {
        let (soc, graph, topo) = setup();
        let mut solver = PlacementSolver::new();
        let mut first = topo.clone();
        let obj1 = solver.place(&mut first, &soc, &graph).unwrap();
        let after_first = solver.stats();
        assert_eq!(after_first.total_solves(), 2, "one placement = two axis LPs");
        // The y axis seeds from the x basis, so even the first placement
        // may warm; the second placement of the same topology must be
        // fully warm and bit-identical.
        let mut second = topo.clone();
        let obj2 = solver.place(&mut second, &soc, &graph).unwrap();
        let delta = solver.stats() - after_first;
        assert_eq!(delta.warm_solves, 2, "identical re-placement must warm both axes");
        assert_eq!(obj1.to_bits(), obj2.to_bits());
        assert_eq!(first.switch_pos, second.switch_pos);
    }

    #[test]
    fn begin_candidate_cuts_the_warm_chain() {
        let (soc, graph, topo) = setup();
        let mut solver = PlacementSolver::new();
        let mut a = topo.clone();
        solver.place(&mut a, &soc, &graph).unwrap();
        solver.begin_candidate();
        let before = solver.stats();
        let mut b = topo.clone();
        solver.place(&mut b, &soc, &graph).unwrap();
        let delta = solver.stats() - before;
        assert_eq!(
            delta.cold_solves, 1,
            "after begin_candidate the x axis must solve cold again"
        );
        // A fresh solver produces the same positions: the chain cut makes
        // the per-candidate results history-independent.
        let mut fresh = topo.clone();
        PlacementSolver::new().place(&mut fresh, &soc, &graph).unwrap();
        assert_eq!(b.switch_pos, fresh.switch_pos);
    }

    /// Builds a seed bank from one warm-up placement of `topo`.
    fn bank_from(topo: &Topology, soc: &SocSpec, graph: &CommGraph) -> Arc<PlacementSeeds> {
        let mut warmup = PlacementSolver::new();
        let mut t = topo.clone();
        warmup.place(&mut t, soc, graph).unwrap();
        let mut bank = PlacementSeeds::new();
        bank.insert(topo.switch_count(), warmup.export_seed(topo.switch_count()).unwrap());
        Arc::new(bank)
    }

    #[test]
    fn banked_seed_warms_the_first_placement_of_a_candidate() {
        let (soc, graph, topo) = setup();
        let bank = bank_from(&topo, &soc, &graph);
        assert_eq!(bank.len(), 1);

        let mut solver = PlacementSolver::new();
        solver.install_seeds(Arc::clone(&bank));
        let mut seeded = topo.clone();
        solver.place(&mut seeded, &soc, &graph).unwrap();
        let first = solver.stats();
        assert_eq!(first.cold_solves, 0, "the banked basis must replace the cold solve");
        assert_eq!(first.warm_solves, 2);
        assert_eq!(first.cross_candidate_warm_solves, 2);

        // And crucially: the seeded placement reproduces the unseeded
        // vertex bit-for-bit (the seed is the same problem's optimal
        // basis, so the warm re-entry replays it with zero pivots).
        let mut cold = topo.clone();
        PlacementSolver::new().place(&mut cold, &soc, &graph).unwrap();
        assert_eq!(seeded.switch_pos, cold.switch_pos);

        // The next candidate re-seeds from the bank: warm again, and the
        // same vertex again.
        solver.begin_candidate();
        let before = solver.stats();
        let mut again = topo.clone();
        solver.place(&mut again, &soc, &graph).unwrap();
        let delta = solver.stats() - before;
        assert_eq!(delta.cold_solves, 0);
        assert_eq!(delta.cross_candidate_warm_solves, 2);
        assert_eq!(again.switch_pos, cold.switch_pos);
    }

    #[test]
    fn seed_bank_misses_fall_back_to_cold() {
        let (soc, graph, topo) = setup();
        // A bank that covers some other switch count only.
        let mut bank = PlacementSeeds::new();
        let mut warmup = PlacementSolver::new();
        let mut t = topo.clone();
        warmup.place(&mut t, &soc, &graph).unwrap();
        bank.insert(topo.switch_count() + 7, warmup.export_seed(topo.switch_count()).unwrap());

        let mut solver = PlacementSolver::new();
        solver.install_seeds(Arc::new(bank));
        let mut b = topo.clone();
        solver.place(&mut b, &soc, &graph).unwrap();
        assert_eq!(solver.stats().cold_solves, 1, "bank miss must behave exactly unseeded");
        assert_eq!(solver.stats().cross_candidate_warm_solves, 0);
        let mut fresh = topo.clone();
        PlacementSolver::new().place(&mut fresh, &soc, &graph).unwrap();
        assert_eq!(b.switch_pos, fresh.switch_pos);
    }
}
