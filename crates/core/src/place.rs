//! Switch position computation (paper §VII).
//!
//! Builds the linear program of equations (2)–(5): switch coordinates are
//! free variables, every core↔switch and switch↔switch connection pulls with
//! its total bandwidth, and the bandwidth-weighted Manhattan wirelength is
//! minimized. Coordinates are planar only — "The TSV macros do not need to
//! be included in the LP as TSVs split the wires in two segments, both
//! carrying the same bandwidth" (§VII), so vertical hops do not move the
//! optimum.

use crate::graph::CommGraph;
use crate::spec::SocSpec;
use crate::topology::Topology;
use sunfloor_lp::{PlacementProblem, SolveError};

/// Accumulated traffic between every core and its switch, and between switch
/// pairs — the `bw_sw2core` / `bw_sw2sw` weights of equation (4).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlacementWeights {
    /// `(core, switch, Gbps)` attractions.
    pub core_switch: Vec<(usize, usize, f64)>,
    /// `(switch a, switch b, Gbps)` attractions (undirected accumulation).
    pub switch_switch: Vec<(usize, usize, f64)>,
}

impl PlacementWeights {
    /// Extracts the placement weights from a routed topology.
    #[must_use]
    pub fn from_topology(topo: &Topology, graph: &CommGraph) -> Self {
        let mut core_switch = vec![0.0f64; topo.core_attach.len()];
        for e in graph.edge_list() {
            core_switch[e.src] += e.bandwidth_mbs * 8.0 / 1000.0;
            core_switch[e.dst] += e.bandwidth_mbs * 8.0 / 1000.0;
        }
        let cs = core_switch
            .iter()
            .enumerate()
            .filter(|(_, &bw)| bw > 0.0)
            .map(|(c, &bw)| (c, topo.core_attach[c], bw))
            .collect();

        let mut acc: std::collections::HashMap<(usize, usize), f64> =
            std::collections::HashMap::new();
        for l in &topo.links {
            let key = if l.from <= l.to { (l.from, l.to) } else { (l.to, l.from) };
            *acc.entry(key).or_insert(0.0) += l.bandwidth_gbps;
        }
        let mut ss: Vec<(usize, usize, f64)> =
            acc.into_iter().map(|((a, b), w)| (a, b, w)).collect();
        ss.sort_by_key(|x| (x.0, x.1));
        Self { core_switch: cs, switch_switch: ss }
    }
}

/// Solves the switch-placement LP and writes the optimal coordinates into
/// `topo.switch_pos`. Returns the optimal objective (Gbps·mm).
///
/// # Errors
///
/// Propagates [`SolveError`] on numerical breakdown of the simplex (the
/// model itself is always feasible and bounded).
pub fn place_switches(
    topo: &mut Topology,
    soc: &SocSpec,
    graph: &CommGraph,
) -> Result<f64, SolveError> {
    let weights = PlacementWeights::from_topology(topo, graph);
    let mut problem = PlacementProblem::new(topo.switch_count());
    for &(core, sw, bw) in &weights.core_switch {
        problem.attract_to_fixed(sw, soc.cores[core].center(), bw);
    }
    for &(a, b, bw) in &weights.switch_switch {
        problem.attract_pair(a, b, bw);
    }
    let positions = problem.solve()?;
    let objective = problem.objective(&positions);
    topo.switch_pos = positions;
    Ok(objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{compute_paths, PathConfig};
    use crate::spec::{CommSpec, Core, Flow, MessageType};
    use sunfloor_models::NocLibrary;

    fn setup() -> (SocSpec, CommGraph, Topology) {
        let soc = SocSpec::new(
            vec![
                Core { name: "a".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 0 },
                Core { name: "b".into(), width: 2.0, height: 2.0, x: 6.0, y: 0.0, layer: 0 },
                Core { name: "c".into(), width: 2.0, height: 2.0, x: 0.0, y: 6.0, layer: 0 },
                Core { name: "d".into(), width: 2.0, height: 2.0, x: 6.0, y: 6.0, layer: 0 },
            ],
            1,
        )
        .unwrap();
        let f = |src, dst, bw: f64| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: 10.0,
            message_type: MessageType::Request,
        };
        let comm =
            CommSpec::new(vec![f(0, 1, 100.0), f(2, 3, 100.0), f(0, 3, 50.0)], &soc).unwrap();
        let graph = CommGraph::new(&soc, &comm);
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &graph,
            &[0, 0, 1, 1],
            &[0, 0],
            &[(3.0, 1.0), (3.0, 7.0)],
            &[0, 0, 0, 0],
            1,
            &NocLibrary::lp65(),
            &cfg,
            1.0,
        )
        .unwrap();
        (soc, graph, topo)
    }

    #[test]
    fn weights_capture_all_traffic() {
        let (_, graph, topo) = setup();
        let w = PlacementWeights::from_topology(&topo, &graph);
        // Every core sends or receives, so all 4 appear.
        assert_eq!(w.core_switch.len(), 4);
        // One switch pair with the 50 MB/s inter-cluster flow (0.4 Gbps).
        assert_eq!(w.switch_switch.len(), 1);
        assert!((w.switch_switch[0].2 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn placement_lands_switches_between_their_cores() {
        let (soc, graph, mut topo) = setup();
        let obj = place_switches(&mut topo, &soc, &graph).unwrap();
        assert!(obj >= 0.0);
        // Switch 0 serves cores a(1,1) and b(7,1): optimal y = 1.
        let (x0, y0) = topo.switch_pos[0];
        assert!((y0 - 1.0).abs() < 1e-6, "switch 0 y = {y0}");
        assert!((1.0..=7.0).contains(&x0), "switch 0 x = {x0}");
        // Switch 1 serves cores c(1,7) and d(7,7): optimal y = 7.
        let (_, y1) = topo.switch_pos[1];
        assert!((y1 - 7.0).abs() < 1e-6, "switch 1 y = {y1}");
    }

    #[test]
    fn lp_objective_beats_centroid_heuristic() {
        let (soc, graph, mut topo) = setup();
        let weights = PlacementWeights::from_topology(&topo, &graph);
        let mut problem = PlacementProblem::new(topo.switch_count());
        for &(core, sw, bw) in &weights.core_switch {
            problem.attract_to_fixed(sw, soc.cores[core].center(), bw);
        }
        for &(a, b, bw) in &weights.switch_switch {
            problem.attract_pair(a, b, bw);
        }
        let obj = place_switches(&mut topo, &soc, &graph).unwrap();
        let centroid = vec![(3.0, 1.0), (3.0, 7.0)];
        assert!(obj <= problem.objective(&centroid) + 1e-6);
    }
}
