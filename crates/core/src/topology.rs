//! The synthesized NoC topology: switches, links, attachments and paths.

use crate::spec::MessageType;

/// A directed switch-to-switch physical link.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Source switch index.
    pub from: usize,
    /// Destination switch index.
    pub to: usize,
    /// Accumulated payload bandwidth routed over the link, Gbps.
    pub bandwidth_gbps: f64,
    /// Flow indices routed over this link, in routing order.
    pub flows: Vec<usize>,
    /// Message class the link carries. Request and response traffic use
    /// disjoint links, which removes message-dependent deadlock (§VI).
    pub class: MessageType,
}

/// Per-flow route: the ordered list of switches the flow traverses.
/// (Core → first switch and last switch → core hops are implicit.)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowPath {
    /// Switch sequence, at least one switch long.
    pub switches: Vec<usize>,
}

impl FlowPath {
    /// Number of switch traversals.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.switches.len()
    }
}

/// A complete synthesized topology for one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Layer of each switch.
    pub switch_layer: Vec<u32>,
    /// Center position of each switch in its layer floorplan, mm.
    /// Filled by the placement step; `(0,0)` before that.
    pub switch_pos: Vec<(f64, f64)>,
    /// Switch each core attaches to (`core_attach[core] = switch`).
    pub core_attach: Vec<usize>,
    /// All directed switch-to-switch links.
    pub links: Vec<Link>,
    /// Route of every flow (`flow_paths[flow_index]`).
    pub flow_paths: Vec<FlowPath>,
    /// Switches inserted by the indirect-switch fallback (not connected to
    /// any core), if any.
    pub indirect_switches: Vec<usize>,
}

impl Topology {
    /// Number of switches.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.switch_layer.len()
    }

    /// Cores attached to switch `s`.
    #[must_use]
    pub fn cores_of_switch(&self, s: usize) -> Vec<usize> {
        (0..self.core_attach.len()).filter(|&c| self.core_attach[c] == s).collect()
    }

    /// Input port count of switch `s`: one per attached core plus one per
    /// incoming switch link.
    #[must_use]
    pub fn input_ports(&self, s: usize) -> u32 {
        let core_ports = self.cores_of_switch(s).len() as u32;
        let link_ports = self.links.iter().filter(|l| l.to == s).count() as u32;
        core_ports + link_ports
    }

    /// Output port count of switch `s`.
    #[must_use]
    pub fn output_ports(&self, s: usize) -> u32 {
        let core_ports = self.cores_of_switch(s).len() as u32;
        let link_ports = self.links.iter().filter(|l| l.from == s).count() as u32;
        core_ports + link_ports
    }

    /// The larger of input and output port counts (the size that limits the
    /// switch's maximum frequency).
    #[must_use]
    pub fn switch_size(&self, s: usize) -> u32 {
        self.input_ports(s).max(self.output_ports(s))
    }

    /// Number of directed links crossing each adjacent-layer boundary,
    /// **including** vertical core-to-switch attachments. Index `b` counts
    /// crossings of the boundary between layers `b` and `b+1`. A link
    /// spanning several layers consumes one crossing on every boundary it
    /// passes (the TSV macros of Fig. 2).
    #[must_use]
    pub fn inter_layer_link_census(&self, core_layers: &[u32], layers: u32) -> Vec<u32> {
        let boundaries = layers.saturating_sub(1) as usize;
        let mut census = vec![0u32; boundaries];
        let span = |a: u32, b: u32, census: &mut Vec<u32>| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            for bd in lo..hi {
                census[bd as usize] += 1;
            }
        };
        for l in &self.links {
            span(self.switch_layer[l.from], self.switch_layer[l.to], &mut census);
        }
        for (core, &sw) in self.core_attach.iter().enumerate() {
            // A cross-layer core attachment drills one TSV macro per
            // boundary: the NI bundles both directions through it (§III).
            let (cl, sl) = (core_layers[core], self.switch_layer[sw]);
            if cl != sl {
                span(cl, sl, &mut census);
            }
        }
        census
    }

    /// Maximum crossing count over all adjacent-layer boundaries.
    #[must_use]
    pub fn max_inter_layer_links(&self, core_layers: &[u32], layers: u32) -> u32 {
        self.inter_layer_link_census(core_layers, layers).into_iter().max().unwrap_or(0)
    }

    /// Renders the topology as a compact human-readable description (used by
    /// the Fig. 13/14 experiment outputs).
    #[must_use]
    pub fn describe(&self, core_names: &[String]) -> String {
        let mut out = String::new();
        for s in 0..self.switch_count() {
            let cores: Vec<&str> =
                self.cores_of_switch(s).into_iter().map(|c| core_names[c].as_str()).collect();
            out.push_str(&format!(
                "switch {s} (layer {}, {}x{}): cores [{}]\n",
                self.switch_layer[s],
                self.input_ports(s),
                self.output_ports(s),
                cores.join(", ")
            ));
        }
        for l in &self.links {
            out.push_str(&format!(
                "link sw{} -> sw{}  {:.2} Gbps ({:?})\n",
                l.from, l.to, l.bandwidth_gbps, l.class
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch_topology() -> Topology {
        Topology {
            switch_layer: vec![0, 1],
            switch_pos: vec![(0.0, 0.0); 2],
            core_attach: vec![0, 0, 1, 1],
            links: vec![
                Link {
                    from: 0,
                    to: 1,
                    bandwidth_gbps: 3.2,
                    flows: vec![0],
                    class: MessageType::Request,
                },
                Link {
                    from: 1,
                    to: 0,
                    bandwidth_gbps: 1.6,
                    flows: vec![1],
                    class: MessageType::Response,
                },
            ],
            flow_paths: vec![
                FlowPath { switches: vec![0, 1] },
                FlowPath { switches: vec![1, 0] },
            ],
            indirect_switches: vec![],
        }
    }

    #[test]
    fn port_counting() {
        let t = two_switch_topology();
        // Switch 0: 2 cores + 1 incoming link = 3 inputs; 2 cores + 1
        // outgoing = 3 outputs.
        assert_eq!(t.input_ports(0), 3);
        assert_eq!(t.output_ports(0), 3);
        assert_eq!(t.switch_size(0), 3);
    }

    #[test]
    fn ill_census_counts_links_and_vertical_attachments() {
        let t = two_switch_topology();
        let core_layers = vec![0, 0, 1, 1];
        // Two switch links cross boundary 0; all cores attach in-layer.
        assert_eq!(t.inter_layer_link_census(&core_layers, 2), vec![2]);

        // Move core 2 to layer 0 while keeping its switch on layer 1: its
        // attachment adds one TSV-macro crossing.
        let core_layers2 = vec![0, 0, 0, 1];
        assert_eq!(t.inter_layer_link_census(&core_layers2, 2), vec![3]);
    }

    #[test]
    fn multi_layer_span_consumes_every_boundary() {
        let mut t = two_switch_topology();
        t.switch_layer = vec![0, 2];
        let census = t.inter_layer_link_census(&[0, 0, 2, 2], 3);
        assert_eq!(census, vec![2, 2], "each link crosses both boundaries");
    }

    #[test]
    fn describe_mentions_all_switches() {
        let t = two_switch_topology();
        let names: Vec<String> = (0..4).map(|i| format!("c{i}")).collect();
        let d = t.describe(&names);
        assert!(d.contains("switch 0"));
        assert!(d.contains("switch 1"));
        assert!(d.contains("c3"));
    }
}
