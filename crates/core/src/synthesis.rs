//! The SunFloor 3D synthesis driver (paper Fig. 3).
//!
//! For every operating frequency and every switch count, the driver builds a
//! core-to-switch connectivity (Phase 1 with the θ escalation loop of
//! Algorithm 1; Phase 2's layer-by-layer Algorithm 2 as fallback or on
//! request), routes the flows under the TSV and switch-size constraints,
//! solves the switch-placement LP, inserts the components into the
//! floorplan, and keeps every design point that meets all constraints. The
//! output is the power/latency/area trade-off set from which a designer (or
//! [`SynthesisOutcome::best_power`]) picks the final topology.

use crate::eval::{evaluate, DesignMetrics};
use crate::graph::CommGraph;
use crate::layout::{layout_design, Layout};
use crate::paths::{compute_paths, PathConfig, PathError};
use crate::phase1::{self, Connectivity};
use crate::phase2;
use crate::place::place_switches;
use crate::spec::{CommSpec, SocSpec, SpecError};
use crate::topology::Topology;
use std::error::Error;
use std::fmt;
use sunfloor_models::NocLibrary;

/// Which connectivity phases the driver may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SynthesisMode {
    /// Phase 1 first; fall back to Phase 2 when Phase 1 yields no feasible
    /// point (the two-phase method of §IV).
    #[default]
    Auto,
    /// Phase 1 only (cores may attach to switches in any layer).
    Phase1Only,
    /// Phase 2 only (layer-by-layer; also for technologies restricted to
    /// adjacent-layer TSVs).
    Phase2Only,
}

/// Which phase produced a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Algorithm 1.
    Phase1,
    /// Algorithm 2.
    Phase2,
}

/// Synthesis configuration. Start from [`SynthesisConfig::default`] and
/// adjust fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    /// Candidate operating frequencies, MHz (the sweep of Fig. 3's outer
    /// loop).
    pub frequencies_mhz: Vec<f64>,
    /// Maximum directed vertical links per adjacent-layer boundary.
    pub max_ill: u32,
    /// Definition-3 α weighting bandwidth vs latency tightness.
    pub alpha: f64,
    /// θ escalation schedule for the SPG (the paper found 1..15 step 3
    /// works well).
    pub theta_min: f64,
    /// Largest θ tried.
    pub theta_max: f64,
    /// θ increment.
    pub theta_step: f64,
    /// Phase selection.
    pub mode: SynthesisMode,
    /// Component library (power/area/timing models).
    pub library: NocLibrary,
    /// RNG seed for the partitioner — identical seeds reproduce runs.
    pub rng_seed: u64,
    /// Insert components into the floorplan and re-evaluate with final
    /// positions (disable for fast topology-only exploration).
    pub run_layout: bool,
    /// Free-space search radius of the insertion routine, mm.
    pub layout_search_radius_mm: f64,
    /// Optional restriction of the switch-count sweep (inclusive); `None`
    /// sweeps 1..=cores for Phase 1 and the full increment range for
    /// Phase 2.
    pub switch_count_range: Option<(usize, usize)>,
    /// Stride of the switch-count sweep (1 = every count; larger values
    /// thin the exploration for big designs).
    pub switch_count_step: usize,
    /// Soft margin below `max_ill` (Algorithm 3).
    pub soft_ill_margin: u32,
    /// Soft margin below the switch-size limit (Algorithm 3).
    pub soft_switch_margin: u32,
    /// Extra indirect-switch rounds attempted when routing fails (§VI).
    pub indirect_switch_rounds: u32,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            frequencies_mhz: vec![400.0],
            max_ill: 25,
            alpha: 1.0,
            theta_min: 1.0,
            theta_max: 15.0,
            theta_step: 3.0,
            mode: SynthesisMode::Auto,
            library: NocLibrary::lp65(),
            rng_seed: 0x51B0_A7E5,
            run_layout: true,
            layout_search_radius_mm: 3.0,
            switch_count_range: None,
            switch_count_step: 1,
            soft_ill_margin: 2,
            soft_switch_margin: 1,
            indirect_switch_rounds: 2,
        }
    }
}

/// One feasible design point of the trade-off set.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The synthesized topology (routes, links, positions).
    pub topology: Topology,
    /// Evaluated metrics (with final post-layout positions when layout ran).
    pub metrics: DesignMetrics,
    /// Per-layer floorplans, when layout ran.
    pub layout: Option<Layout>,
    /// Which phase produced the point.
    pub phase: PhaseKind,
    /// θ used (Phase 1 SPG retries only).
    pub theta: Option<f64>,
    /// The sweep parameter: requested switch count (Phase 1) or the
    /// resulting switch count (Phase 2).
    pub requested_switches: usize,
}

/// A candidate that was explored and discarded, with the reason.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedPoint {
    /// Sweep parameter (requested switch count / increment result).
    pub requested_switches: usize,
    /// Frequency at which it was tried.
    pub frequency_mhz: f64,
    /// Phase that produced the candidate.
    pub phase: PhaseKind,
    /// Human-readable rejection reason.
    pub reason: String,
}

/// The full outcome of a synthesis run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SynthesisOutcome {
    /// All feasible design points.
    pub points: Vec<DesignPoint>,
    /// All rejected candidates with reasons (diagnostics).
    pub rejected: Vec<RejectedPoint>,
}

impl SynthesisOutcome {
    /// The most power-efficient feasible point.
    #[must_use]
    pub fn best_power(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.metrics.power.total_mw().total_cmp(&b.metrics.power.total_mw()))
    }

    /// The lowest-latency feasible point.
    #[must_use]
    pub fn best_latency(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.metrics.avg_latency_cycles.total_cmp(&b.metrics.avg_latency_cycles))
    }

    /// Power/latency Pareto front (ascending power).
    #[must_use]
    pub fn pareto_front(&self) -> Vec<&DesignPoint> {
        let mut sorted: Vec<&DesignPoint> = self.points.iter().collect();
        sorted.sort_by(|a, b| a.metrics.power.total_mw().total_cmp(&b.metrics.power.total_mw()));
        let mut front: Vec<&DesignPoint> = Vec::new();
        let mut best_lat = f64::INFINITY;
        for p in sorted {
            if p.metrics.avg_latency_cycles < best_lat - 1e-12 {
                best_lat = p.metrics.avg_latency_cycles;
                front.push(p);
            }
        }
        front
    }
}

/// Errors aborting a synthesis run before exploration starts.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// Input specifications are inconsistent.
    Spec(SpecError),
    /// No frequency in the sweep admits any switch (size limit below 2).
    NoUsableFrequency,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Spec(e) => write!(f, "invalid specification: {e}"),
            Self::NoUsableFrequency => {
                write!(f, "no frequency in the sweep supports any switch size")
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Spec(e) => Some(e),
            Self::NoUsableFrequency => None,
        }
    }
}

impl From<SpecError> for SynthesisError {
    fn from(e: SpecError) -> Self {
        Self::Spec(e)
    }
}

/// Runs the full SunFloor 3D synthesis flow.
///
/// # Errors
///
/// Returns [`SynthesisError`] for invalid inputs; an empty
/// [`SynthesisOutcome::points`] (with populated `rejected`) means the
/// constraints admit no topology.
pub fn synthesize(
    soc: &SocSpec,
    comm: &CommSpec,
    cfg: &SynthesisConfig,
) -> Result<SynthesisOutcome, SynthesisError> {
    soc.validate()?;
    comm.validate(soc)?;
    let graph = CommGraph::new(soc, comm);

    let usable: Vec<f64> = cfg
        .frequencies_mhz
        .iter()
        .copied()
        .filter(|&f| cfg.library.switch.max_size_for_frequency(f) >= 2)
        .collect();
    if usable.is_empty() {
        return Err(SynthesisError::NoUsableFrequency);
    }

    let mut outcome = SynthesisOutcome::default();
    for &freq in &usable {
        match cfg.mode {
            SynthesisMode::Phase1Only => {
                run_phase1(soc, &graph, cfg, freq, &mut outcome);
            }
            SynthesisMode::Phase2Only => {
                run_phase2(soc, &graph, cfg, freq, &mut outcome);
            }
            SynthesisMode::Auto => {
                let before = outcome.points.len();
                run_phase1(soc, &graph, cfg, freq, &mut outcome);
                if outcome.points.len() == before {
                    run_phase2(soc, &graph, cfg, freq, &mut outcome);
                }
            }
        }
    }
    Ok(outcome)
}

fn sweep_range(cfg: &SynthesisConfig, n: usize) -> (usize, usize) {
    match cfg.switch_count_range {
        Some((lo, hi)) => (lo.max(1), hi.min(n)),
        None => (1, n),
    }
}

/// Algorithm 1: PG sweep over switch counts, then the θ escalation loop for
/// the counts whose designs missed the constraints.
fn run_phase1(
    soc: &SocSpec,
    graph: &CommGraph,
    cfg: &SynthesisConfig,
    freq: f64,
    outcome: &mut SynthesisOutcome,
) {
    let (lo, hi) = sweep_range(cfg, soc.core_count());
    let mut unmet: Vec<usize> = Vec::new();

    for i in (lo..=hi).step_by(cfg.switch_count_step.max(1)) {
        match phase1::connectivity(graph, soc, i, cfg.alpha, None, cfg.theta_max, cfg.rng_seed) {
            Ok(conn) => match try_candidate(soc, graph, cfg, freq, &conn, PhaseKind::Phase1, false)
            {
                Ok(point) => outcome.points.push(point),
                Err(reason) => {
                    outcome.rejected.push(RejectedPoint {
                        requested_switches: i,
                        frequency_mhz: freq,
                        phase: PhaseKind::Phase1,
                        reason,
                    });
                    unmet.push(i);
                }
            },
            Err(e) => outcome.rejected.push(RejectedPoint {
                requested_switches: i,
                frequency_mhz: freq,
                phase: PhaseKind::Phase1,
                reason: e.to_string(),
            }),
        }
    }

    // θ loop (Algorithm 1, steps 11–20).
    let mut theta = cfg.theta_min;
    while !unmet.is_empty() && theta <= cfg.theta_max + 1e-9 {
        unmet.retain(|&i| {
            let Ok(conn) = phase1::connectivity(
                graph,
                soc,
                i,
                cfg.alpha,
                Some(theta),
                cfg.theta_max,
                cfg.rng_seed,
            ) else {
                return true;
            };
            match try_candidate(soc, graph, cfg, freq, &conn, PhaseKind::Phase1, false) {
                Ok(point) => {
                    outcome.points.push(point);
                    false
                }
                Err(reason) => {
                    outcome.rejected.push(RejectedPoint {
                        requested_switches: i,
                        frequency_mhz: freq,
                        phase: PhaseKind::Phase1,
                        reason: format!("theta {theta}: {reason}"),
                    });
                    true
                }
            }
        });
        theta += cfg.theta_step;
    }
}

/// Algorithm 2: layer-by-layer sweep over the per-layer increment.
fn run_phase2(
    soc: &SocSpec,
    graph: &CommGraph,
    cfg: &SynthesisConfig,
    freq: f64,
    outcome: &mut SynthesisOutcome,
) {
    let max_sw = cfg.library.switch.max_size_for_frequency(freq);
    let max_inc = phase2::max_increment(soc, max_sw);
    let (lo, hi) = match cfg.switch_count_range {
        // In Phase 2 the sweep parameter is the increment; map the switch
        // range conservatively onto increments.
        Some((_, hi)) => (0usize, max_inc.min(hi)),
        None => (0, max_inc),
    };
    let _ = lo;

    for inc in (0..=hi).step_by(cfg.switch_count_step.max(1)) {
        match phase2::connectivity(graph, soc, inc, max_sw, cfg.alpha, cfg.rng_seed) {
            Ok(conn) => match try_candidate(soc, graph, cfg, freq, &conn, PhaseKind::Phase2, true)
            {
                Ok(point) => outcome.points.push(point),
                Err(reason) => outcome.rejected.push(RejectedPoint {
                    requested_switches: conn.switch_count(),
                    frequency_mhz: freq,
                    phase: PhaseKind::Phase2,
                    reason,
                }),
            },
            Err(e) => outcome.rejected.push(RejectedPoint {
                requested_switches: inc,
                frequency_mhz: freq,
                phase: PhaseKind::Phase2,
                reason: e.to_string(),
            }),
        }
    }
}

/// Routes, places, lays out and evaluates one connectivity candidate,
/// applying the indirect-switch fallback on routing failure.
fn try_candidate(
    soc: &SocSpec,
    graph: &CommGraph,
    cfg: &SynthesisConfig,
    freq: f64,
    conn: &Connectivity,
    phase: PhaseKind,
    adjacent_only: bool,
) -> Result<DesignPoint, String> {
    let core_layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
    let max_sw = cfg.library.switch.max_size_for_frequency(freq);
    let path_cfg = PathConfig {
        max_ill: cfg.max_ill,
        soft_ill_margin: cfg.soft_ill_margin,
        max_switch_size: max_sw,
        soft_switch_margin: cfg.soft_switch_margin,
        adjacent_layers_only: adjacent_only,
        frequency_mhz: freq,
        deadlock_retries: 24,
    };

    // Routing with the indirect-switch fallback (§VI): when no route exists,
    // add one unattached switch per layer (a pure transit switch) and retry.
    let mut switch_layer = conn.switch_layer.clone();
    let mut est_pos = conn.est_positions.clone();
    let mut indirect: Vec<usize> = Vec::new();
    let mut topo: Option<Topology> = None;
    let mut last_err: Option<PathError> = None;

    for round in 0..=cfg.indirect_switch_rounds {
        match compute_paths(
            graph,
            &conn.core_attach,
            &switch_layer,
            &est_pos,
            &core_layers,
            soc.layers,
            &cfg.library,
            &path_cfg,
            cfg.alpha,
        ) {
            Ok(mut t) => {
                t.indirect_switches = indirect.clone();
                topo = Some(t);
                break;
            }
            Err(e @ (PathError::NoRoute { .. } | PathError::DeadlockUnavoidable { .. }))
                if round < cfg.indirect_switch_rounds =>
            {
                last_err = Some(e);
                // Add one transit switch per populated layer at the layer
                // centroid.
                for layer in 0..soc.layers {
                    let members = soc.cores_in_layer(layer);
                    if members.is_empty() {
                        continue;
                    }
                    let (mut cx, mut cy) = (0.0, 0.0);
                    for &c in &members {
                        let (x, y) = soc.cores[c].center();
                        cx += x;
                        cy += y;
                    }
                    indirect.push(switch_layer.len());
                    switch_layer.push(layer);
                    est_pos
                        .push((cx / members.len() as f64, cy / members.len() as f64));
                }
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    let mut topo = topo.ok_or_else(|| {
        last_err.map_or_else(|| "routing failed".to_string(), |e| e.to_string())
    })?;

    // Switch placement LP (§VII).
    place_switches(&mut topo, soc, graph).map_err(|e| format!("placement LP: {e}"))?;

    // Physical insertion + final evaluation.
    let layout = if cfg.run_layout {
        Some(layout_design(&mut topo, soc, &cfg.library, cfg.layout_search_radius_mm))
    } else {
        None
    };
    let metrics = evaluate(&topo, soc, graph, &cfg.library, freq);

    // Final constraint screening (Fig. 3's last step).
    if metrics.max_inter_layer_links() > cfg.max_ill {
        return Err(format!(
            "inter-layer links {} exceed max_ill {}",
            metrics.max_inter_layer_links(),
            cfg.max_ill
        ));
    }
    for s in 0..topo.switch_count() {
        if topo.switch_size(s) > max_sw {
            return Err(format!(
                "switch {s} has {} ports (limit {max_sw} at {freq} MHz)",
                topo.switch_size(s)
            ));
        }
    }
    if !metrics.meets_latency() {
        return Err(format!(
            "latency constraint violated by {:.2} cycles",
            metrics.worst_latency_violation
        ));
    }

    Ok(DesignPoint {
        requested_switches: conn.switch_count(),
        topology: topo,
        metrics,
        layout,
        phase,
        theta: conn.theta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Core, Flow, MessageType};

    /// A small 8-core, 2-layer SoC with mixed traffic.
    fn small_soc() -> (SocSpec, CommSpec) {
        let mut cores = Vec::new();
        for i in 0..8 {
            cores.push(Core {
                name: format!("c{i}"),
                width: 1.5,
                height: 1.5,
                x: f64::from(i % 2) * 2.0,
                y: f64::from((i / 2) % 2) * 2.0,
                layer: u32::from(i >= 4),
            });
        }
        let soc = SocSpec::new(cores, 2).unwrap();
        let f = |src, dst, bw: f64, class| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: 12.0,
            message_type: class,
        };
        let comm = CommSpec::new(
            vec![
                f(0, 4, 400.0, MessageType::Request),
                f(4, 0, 200.0, MessageType::Response),
                f(1, 5, 300.0, MessageType::Request),
                f(2, 6, 250.0, MessageType::Request),
                f(3, 7, 150.0, MessageType::Request),
                f(0, 1, 80.0, MessageType::Request),
                f(2, 3, 60.0, MessageType::Request),
                f(5, 6, 50.0, MessageType::Request),
            ],
            &soc,
        )
        .unwrap();
        (soc, comm)
    }

    fn quick_cfg() -> SynthesisConfig {
        SynthesisConfig {
            switch_count_range: Some((1, 6)),
            run_layout: false,
            ..SynthesisConfig::default()
        }
    }

    #[test]
    fn produces_feasible_points() {
        let (soc, comm) = small_soc();
        let outcome = synthesize(&soc, &comm, &quick_cfg()).unwrap();
        assert!(!outcome.points.is_empty(), "rejected: {:?}", outcome.rejected);
        for p in &outcome.points {
            assert!(p.metrics.meets_latency());
            assert!(p.metrics.max_inter_layer_links() <= 25);
            // Every flow is routed.
            for path in &p.topology.flow_paths {
                assert!(!path.switches.is_empty());
            }
        }
    }

    #[test]
    fn best_power_is_minimal() {
        let (soc, comm) = small_soc();
        let outcome = synthesize(&soc, &comm, &quick_cfg()).unwrap();
        let best = outcome.best_power().unwrap();
        for p in &outcome.points {
            assert!(p.metrics.power.total_mw() >= best.metrics.power.total_mw() - 1e-12);
        }
    }

    #[test]
    fn pareto_front_is_monotone() {
        let (soc, comm) = small_soc();
        let outcome = synthesize(&soc, &comm, &quick_cfg()).unwrap();
        let front = outcome.pareto_front();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].metrics.power.total_mw() <= w[1].metrics.power.total_mw());
            assert!(w[0].metrics.avg_latency_cycles > w[1].metrics.avg_latency_cycles);
        }
    }

    #[test]
    fn phase2_only_keeps_cores_in_layer() {
        let (soc, comm) = small_soc();
        let cfg = SynthesisConfig {
            mode: SynthesisMode::Phase2Only,
            run_layout: false,
            ..SynthesisConfig::default()
        };
        let outcome = synthesize(&soc, &comm, &cfg).unwrap();
        assert!(!outcome.points.is_empty(), "rejected: {:?}", outcome.rejected);
        for p in &outcome.points {
            assert_eq!(p.phase, PhaseKind::Phase2);
            for (c, &sw) in p.topology.core_attach.iter().enumerate() {
                assert_eq!(soc.cores[c].layer, p.topology.switch_layer[sw]);
            }
            // Adjacent layers only.
            for l in &p.topology.links {
                assert!(
                    p.topology.switch_layer[l.from].abs_diff(p.topology.switch_layer[l.to]) <= 1
                );
            }
        }
    }

    #[test]
    fn phase2_survives_budgets_and_stays_adjacent() {
        // The role of Phase 2 (§V-B): deliver topologies under inter-layer
        // restrictions, never using non-adjacent links, with cores attached
        // strictly in-layer. (Whether it beats Phase 1's vertical-link
        // count depends on the benchmark; the cross-benchmark comparison
        // lives in the integration suite.)
        let (soc, comm) = small_soc();
        let p2 = synthesize(
            &soc,
            &comm,
            &SynthesisConfig {
                mode: SynthesisMode::Phase2Only,
                max_ill: 6,
                run_layout: false,
                ..SynthesisConfig::default()
            },
        )
        .unwrap();
        let b2 = p2.best_power().expect("phase 2 feasible under a tight budget");
        assert!(b2.metrics.max_inter_layer_links() <= 6);
        for l in &b2.topology.links {
            assert!(b2.topology.switch_layer[l.from].abs_diff(b2.topology.switch_layer[l.to]) <= 1);
        }
    }

    #[test]
    fn tight_ill_constraint_rejects_or_escalates() {
        let (soc, comm) = small_soc();
        let cfg = SynthesisConfig { max_ill: 2, run_layout: false, ..quick_cfg() };
        let outcome = synthesize(&soc, &comm, &cfg).unwrap();
        // Either no point at all, or every surviving point obeys the bound.
        for p in &outcome.points {
            assert!(p.metrics.max_inter_layer_links() <= 2);
        }
    }

    #[test]
    fn layout_fills_positions_and_area() {
        let (soc, comm) = small_soc();
        let cfg = SynthesisConfig {
            switch_count_range: Some((2, 3)),
            run_layout: true,
            ..SynthesisConfig::default()
        };
        let outcome = synthesize(&soc, &comm, &cfg).unwrap();
        let p = outcome.best_power().expect("a feasible point");
        let layout = p.layout.as_ref().expect("layout ran");
        assert_eq!(layout.layers.len(), 2);
        assert!(layout.die_area_mm2() > 0.0);
        for plan in &layout.layers {
            assert!(plan.overlapping_pair().is_none());
        }
    }

    #[test]
    fn unusable_frequency_errors() {
        let (soc, comm) = small_soc();
        let cfg = SynthesisConfig {
            frequencies_mhz: vec![50_000.0],
            ..SynthesisConfig::default()
        };
        assert_eq!(synthesize(&soc, &comm, &cfg), Err(SynthesisError::NoUsableFrequency));
    }

    #[test]
    fn deterministic_across_runs() {
        let (soc, comm) = small_soc();
        let a = synthesize(&soc, &comm, &quick_cfg()).unwrap();
        let b = synthesize(&soc, &comm, &quick_cfg()).unwrap();
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.topology, y.topology);
        }
    }
}
