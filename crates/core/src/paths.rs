//! Path computation for inter-switch traffic flows (paper §VI).
//!
//! Flows are routed one at a time, in decreasing order of their Definition-3
//! criticality, with Dijkstra over the switch graph. The cost of traversing a
//! candidate link is the *marginal power* of carrying the flow over it
//! (reusing an existing link is cheaper than opening a new one), plus the
//! hard/soft constraint penalties of Algorithm 3 (`CHECK_CONSTRAINTS`):
//!
//! * `INF` (the edge is simply forbidden) for links across non-adjacent
//!   layers when the technology only allows adjacent-layer TSVs, for layer
//!   boundaries already at the `max_ill` vertical-link budget, and for
//!   switches already at `max_switch_size` ports;
//! * `SOFT_INF` (ten times the maximum flow cost, §VI) when a boundary is
//!   within `soft_max_ill` of its budget or a switch within the soft size
//!   margin — steering the router away *before* the hard limits bite.
//!
//! Deadlock freedom follows the approach of Hansson et al. that the paper
//! adopts: a channel-dependency graph (CDG) is maintained *per message
//! class* (request and response flows never share links, which removes
//! message-dependent deadlock), and a computed path is accepted only if its
//! link-to-link dependencies keep the class CDG acyclic. When a path would
//! close a cycle, the offending turn is banned for the flow and routing is
//! retried.

use crate::graph::CommGraph;
use crate::spec::MessageType;
use crate::topology::{FlowPath, Link, Topology};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::error::Error;
use std::fmt;
use sunfloor_models::NocLibrary;

/// Constraint set handed to the router.
#[derive(Debug, Clone, PartialEq)]
pub struct PathConfig {
    /// Maximum directed links crossing any adjacent-layer boundary.
    pub max_ill: u32,
    /// Soft threshold margin: `soft_max_ill = max_ill − margin` (§VI
    /// recommends 2–3 links).
    pub soft_ill_margin: u32,
    /// Maximum switch size (ports on the larger side) at the target
    /// frequency.
    pub max_switch_size: u32,
    /// Soft margin below `max_switch_size`.
    pub soft_switch_margin: u32,
    /// Restrict switch-to-switch links to adjacent layers (Phase 2, or
    /// technologies that cannot drill multi-layer TSVs).
    pub adjacent_layers_only: bool,
    /// NoC clock frequency, MHz (sets link capacity and power).
    pub frequency_mhz: f64,
    /// Retries when a path closes a CDG cycle before giving up.
    pub deadlock_retries: u32,
}

impl PathConfig {
    /// Defaults matching the paper's experimental setup (soft margins of 2
    /// links / 1 port, multi-layer links allowed).
    #[must_use]
    pub fn new(max_ill: u32, max_switch_size: u32, frequency_mhz: f64) -> Self {
        Self {
            max_ill,
            soft_ill_margin: 2,
            max_switch_size,
            soft_switch_margin: 1,
            adjacent_layers_only: false,
            frequency_mhz,
            deadlock_retries: 24,
        }
    }

    fn soft_max_ill(&self) -> u32 {
        self.max_ill.saturating_sub(self.soft_ill_margin)
    }

    fn soft_max_switch_size(&self) -> u32 {
        self.max_switch_size.saturating_sub(self.soft_switch_margin)
    }
}

/// Why routing failed for a design point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// A flow could not be routed within the hard constraints.
    NoRoute {
        /// Flow index that failed.
        flow: usize,
    },
    /// The inter-layer link budget is exhausted before routing started:
    /// the core attachments alone exceed it (pruning rule 3 of §V-C).
    IllBudgetExhausted {
        /// Boundary index (between layers `b` and `b+1`).
        boundary: usize,
        /// Crossings already required by core attachments.
        used: u32,
        /// The budget.
        max_ill: u32,
    },
    /// No deadlock-free path could be found for a flow.
    DeadlockUnavoidable {
        /// Flow index that failed.
        flow: usize,
    },
    /// A switch cannot host its attached cores within `max_switch_size`.
    SwitchTooSmall {
        /// Switch index.
        switch: usize,
        /// Ports needed just for core attachments.
        needed: u32,
        /// The limit.
        max_switch_size: u32,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoRoute { flow } => write!(f, "no feasible route for flow {flow}"),
            Self::IllBudgetExhausted { boundary, used, max_ill } => write!(
                f,
                "core attachments already need {used} vertical links at boundary {boundary} (budget {max_ill})"
            ),
            Self::DeadlockUnavoidable { flow } => {
                write!(f, "no deadlock-free route for flow {flow}")
            }
            Self::SwitchTooSmall { switch, needed, max_switch_size } => write!(
                f,
                "switch {switch} needs {needed} ports for its cores alone (limit {max_switch_size})"
            ),
        }
    }
}

impl Error for PathError {}

/// Routes all flows over the switches, producing a complete [`Topology`].
///
/// `switch_layer` and `core_attach` come from Phase 1 / Phase 2
/// partitioning; `est_switch_pos` are position estimates (core-centroid
/// based) used for link-power costs before the placement LP runs;
/// `core_layers` gives each core's 3-D layer and `layers` the stack height.
///
/// # Errors
///
/// Returns [`PathError`] when any flow cannot be routed within the hard
/// constraints or without deadlock.
#[allow(clippy::too_many_arguments)]
pub fn compute_paths(
    graph: &CommGraph,
    core_attach: &[usize],
    switch_layer: &[u32],
    est_switch_pos: &[(f64, f64)],
    core_layers: &[u32],
    layers: u32,
    lib: &NocLibrary,
    cfg: &PathConfig,
    alpha: f64,
) -> Result<Topology, PathError> {
    let mut router = Router::new(
        graph,
        core_attach,
        switch_layer,
        est_switch_pos,
        core_layers,
        layers,
        lib,
        cfg,
    )?;
    router.route_all(alpha)?;
    Ok(router.finish())
}

struct Router<'a> {
    graph: &'a CommGraph,
    lib: &'a NocLibrary,
    cfg: &'a PathConfig,
    topo: Topology,
    /// Crossings used per adjacent-layer boundary.
    ill: Vec<u32>,
    in_ports: Vec<u32>,
    out_ports: Vec<u32>,
    /// Live links indexed by (from, to, class).
    link_of: HashMap<(usize, usize, MessageType), usize>,
    /// CDG per message class over *stable* link indices (dead links keep
    /// their slot as tombstones until `finish`).
    cdg: HashMap<MessageType, HashSet<(usize, usize)>>,
    capacity_gbps: f64,
    soft_inf: f64,
}

impl<'a> Router<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        graph: &'a CommGraph,
        core_attach: &[usize],
        switch_layer: &[u32],
        est_switch_pos: &[(f64, f64)],
        core_layers: &[u32],
        layers: u32,
        lib: &'a NocLibrary,
        cfg: &'a PathConfig,
    ) -> Result<Self, PathError> {
        let nsw = switch_layer.len();
        let boundaries = layers.saturating_sub(1) as usize;
        let topo = Topology {
            switch_layer: switch_layer.to_vec(),
            switch_pos: est_switch_pos.to_vec(),
            core_attach: core_attach.to_vec(),
            links: Vec::new(),
            flow_paths: vec![FlowPath::default(); graph.edge_list().len()],
            indirect_switches: Vec::new(),
        };

        // Vertical budget consumed by core attachments, counted up front
        // (pruning rule 3 of §V-C).
        let mut ill = vec![0u32; boundaries];
        for (core, &sw) in core_attach.iter().enumerate() {
            let (cl, sl) = (core_layers[core], switch_layer[sw]);
            let (lo, hi) = if cl <= sl { (cl, sl) } else { (sl, cl) };
            for b in lo..hi {
                // One TSV macro per boundary: the NI bundles both
                // directions of the attachment through it (§III).
                ill[b as usize] += 1;
            }
        }
        for (b, &used) in ill.iter().enumerate() {
            if used > cfg.max_ill {
                return Err(PathError::IllBudgetExhausted {
                    boundary: b,
                    used,
                    max_ill: cfg.max_ill,
                });
            }
        }

        let mut in_ports = vec![0u32; nsw];
        let mut out_ports = vec![0u32; nsw];
        for &sw in core_attach {
            in_ports[sw] += 1;
            out_ports[sw] += 1;
        }
        for (s, (&ip, &op)) in in_ports.iter().zip(&out_ports).enumerate() {
            let needed = ip.max(op);
            if needed > cfg.max_switch_size {
                return Err(PathError::SwitchTooSmall {
                    switch: s,
                    needed,
                    max_switch_size: cfg.max_switch_size,
                });
            }
        }

        let capacity_gbps = lib.link.capacity_gbps(cfg.frequency_mhz);

        // SOFT_INF = ten times the maximum cost of any flow (§VI): bound the
        // flow cost by routing the heaviest flow over the placement diameter.
        let mut max_d = 1.0f64;
        for a in est_switch_pos {
            for b in est_switch_pos {
                max_d = max_d.max((a.0 - b.0).abs() + (a.1 - b.1).abs());
            }
        }
        let max_bw = graph.max_bandwidth_mbs() * 8.0 / 1000.0;
        let max_flow_cost = lib.link.power_mw(max_d, max_bw, cfg.frequency_mhz)
            + lib.switch.power_mw(4, 4, max_bw, cfg.frequency_mhz);
        let soft_inf = 10.0 * max_flow_cost;

        Ok(Self {
            graph,
            lib,
            cfg,
            topo,
            ill,
            in_ports,
            out_ports,
            link_of: HashMap::new(),
            cdg: HashMap::new(),
            capacity_gbps,
            soft_inf,
        })
    }

    fn route_all(&mut self, alpha: f64) -> Result<(), PathError> {
        // Decreasing criticality; ties broken by flow index for determinism.
        let mut order: Vec<usize> = (0..self.graph.edge_list().len()).collect();
        order.sort_by(|&a, &b| {
            let ea = &self.graph.edge_list()[a];
            let eb = &self.graph.edge_list()[b];
            let wa = self.graph.edge_weight(ea.bandwidth_mbs, ea.latency_cycles, alpha);
            let wb = self.graph.edge_weight(eb.bandwidth_mbs, eb.latency_cycles, alpha);
            wb.total_cmp(&wa).then(a.cmp(&b))
        });

        for idx in order {
            self.route_flow(idx)?;
        }
        Ok(())
    }

    fn route_flow(&mut self, flow_idx: usize) -> Result<(), PathError> {
        let e = self.graph.edge_list()[flow_idx];
        let bw_gbps = e.bandwidth_mbs * 8.0 / 1000.0;
        let s_sw = self.topo.core_attach[e.src];
        let d_sw = self.topo.core_attach[e.dst];

        if s_sw == d_sw {
            self.topo.flow_paths[flow_idx] = FlowPath { switches: vec![s_sw] };
            return Ok(());
        }

        let mut banned_turns: HashSet<(usize, usize)> = HashSet::new();
        for attempt in 0..=self.cfg.deadlock_retries {
            let Some(path) = self.dijkstra(s_sw, d_sw, bw_gbps, e.class, &banned_turns) else {
                return if attempt == 0 {
                    Err(PathError::NoRoute { flow: flow_idx })
                } else {
                    Err(PathError::DeadlockUnavoidable { flow: flow_idx })
                };
            };

            let link_ids = self.realize_links(&path, e.class, bw_gbps, flow_idx);
            let deps: Vec<(usize, usize)> = link_ids.windows(2).map(|w| (w[0], w[1])).collect();

            if let Some(bad) = self.first_cycle_closing_dep(e.class, &deps) {
                self.unrealize_flow(flow_idx, &link_ids, bw_gbps);
                // Ban the second leg of the offending turn.
                let (_, b) = bad;
                banned_turns.insert((self.topo.links[b].from, self.topo.links[b].to));
                continue;
            }
            let class_cdg = self.cdg.entry(e.class).or_default();
            for d in deps {
                class_cdg.insert(d);
            }
            self.topo.flow_paths[flow_idx] = FlowPath { switches: path };
            return Ok(());
        }
        Err(PathError::DeadlockUnavoidable { flow: flow_idx })
    }

    fn dijkstra(
        &self,
        src: usize,
        dst: usize,
        bw_gbps: f64,
        class: MessageType,
        banned_turns: &HashSet<(usize, usize)>,
    ) -> Option<Vec<usize>> {
        #[derive(PartialEq)]
        struct Entry(f64, usize);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.0.total_cmp(&self.0) // reverse: min-heap
            }
        }

        let nsw = self.topo.switch_count();
        let mut dist = vec![f64::INFINITY; nsw];
        let mut prev = vec![usize::MAX; nsw];
        dist[src] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(Entry(0.0, src));

        while let Some(Entry(d, u)) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == dst {
                break;
            }
            for v in 0..nsw {
                if v == u || banned_turns.contains(&(u, v)) {
                    continue;
                }
                let Some(cost) = self.edge_cost(u, v, bw_gbps, class) else { continue };
                let nd = d + cost;
                if nd + 1e-15 < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push(Entry(nd, v));
                }
            }
        }

        if !dist[dst].is_finite() {
            return None;
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Marginal cost of sending the flow over `u → v`, or `None` when the
    /// edge is forbidden (Algorithm 3's `INF`).
    fn edge_cost(&self, u: usize, v: usize, bw_gbps: f64, class: MessageType) -> Option<f64> {
        let (lu, lv) = (self.topo.switch_layer[u], self.topo.switch_layer[v]);
        let delta = lu.abs_diff(lv);

        if self.cfg.adjacent_layers_only && delta >= 2 {
            return None; // Algorithm 3 step 3
        }

        let dx = (self.topo.switch_pos[u].0 - self.topo.switch_pos[v].0).abs()
            + (self.topo.switch_pos[u].1 - self.topo.switch_pos[v].1).abs();
        let wire = self.lib.link.power_mw(dx.max(0.05), bw_gbps, self.cfg.frequency_mhz)
            + self.lib.tsv.power_mw(delta, bw_gbps)
            + self.lib.switch.energy_pj_per_bit * bw_gbps;

        // Reuse an existing same-class link with spare capacity?
        if let Some(&li) = self.link_of.get(&(u, v, class)) {
            if self.topo.links[li].bandwidth_gbps + bw_gbps <= self.capacity_gbps {
                return Some(wire);
            }
            // Saturated: fall through to the new-link cost below (a second
            // parallel link would be created).
        }

        // New link: vertical budget checks (Algorithm 3 steps 3–6)…
        let mut penalty = 0.0;
        let (lo, hi) = if lu <= lv { (lu, lv) } else { (lv, lu) };
        for b in lo..hi {
            let used = self.ill[b as usize];
            if used >= self.cfg.max_ill {
                return None;
            }
            if used >= self.cfg.soft_max_ill() {
                penalty += self.soft_inf;
            }
        }
        // …and port-growth checks (steps 7–10).
        if self.out_ports[u] + 1 > self.cfg.max_switch_size
            || self.in_ports[v] + 1 > self.cfg.max_switch_size
        {
            return None;
        }
        if self.out_ports[u] + 1 > self.cfg.soft_max_switch_size()
            || self.in_ports[v] + 1 > self.cfg.soft_max_switch_size()
        {
            penalty += self.soft_inf;
        }

        let new_ports = 2.0
            * (self.lib.switch.dyn_mw_per_port_mhz * self.cfg.frequency_mhz
                + self.lib.switch.leak_mw_per_port);
        Some(wire + new_ports + penalty)
    }

    /// Ensures all links along `path` exist (creating them as needed), adds
    /// the flow's bandwidth, and returns the link indices used, in order.
    fn realize_links(
        &mut self,
        path: &[usize],
        class: MessageType,
        bw_gbps: f64,
        flow_idx: usize,
    ) -> Vec<usize> {
        let mut ids = Vec::with_capacity(path.len().saturating_sub(1));
        for w in path.windows(2) {
            let (u, v) = (w[0], w[1]);
            let existing = self
                .link_of
                .get(&(u, v, class))
                .copied()
                .filter(|&li| self.topo.links[li].bandwidth_gbps + bw_gbps <= self.capacity_gbps);
            let li = match existing {
                Some(li) => li,
                None => {
                    let li = self.topo.links.len();
                    self.topo.links.push(Link {
                        from: u,
                        to: v,
                        bandwidth_gbps: 0.0,
                        flows: Vec::new(),
                        class,
                    });
                    self.link_of.insert((u, v, class), li);
                    self.out_ports[u] += 1;
                    self.in_ports[v] += 1;
                    let (lu, lv) = (self.topo.switch_layer[u], self.topo.switch_layer[v]);
                    let (lo, hi) = if lu <= lv { (lu, lv) } else { (lv, lu) };
                    for b in lo..hi {
                        self.ill[b as usize] += 1;
                    }
                    li
                }
            };
            self.topo.links[li].bandwidth_gbps += bw_gbps;
            self.topo.links[li].flows.push(flow_idx);
            ids.push(li);
        }
        ids
    }

    /// Rolls a flow back out of the given links. Links that become empty are
    /// released from the port/ill budgets and the live index, but keep their
    /// slot in `topo.links` as tombstones so CDG indices stay stable.
    fn unrealize_flow(&mut self, flow_idx: usize, link_ids: &[usize], bw_gbps: f64) {
        for &li in link_ids {
            let link = &mut self.topo.links[li];
            link.bandwidth_gbps = (link.bandwidth_gbps - bw_gbps).max(0.0);
            if let Some(p) = link.flows.iter().rposition(|&f| f == flow_idx) {
                link.flows.remove(p);
            }
            if link.flows.is_empty() {
                let (u, v, class) = (link.from, link.to, link.class);
                link.bandwidth_gbps = 0.0;
                if self.link_of.get(&(u, v, class)) == Some(&li) {
                    self.link_of.remove(&(u, v, class));
                    self.out_ports[u] -= 1;
                    self.in_ports[v] -= 1;
                    let (lu, lv) = (self.topo.switch_layer[u], self.topo.switch_layer[v]);
                    let (lo, hi) = if lu <= lv { (lu, lv) } else { (lv, lu) };
                    for b in lo..hi {
                        self.ill[b as usize] -= 1;
                    }
                }
            }
        }
    }

    /// Adds `deps` one at a time to a copy of the class CDG and returns the
    /// first dependency whose insertion closes a cycle, if any.
    fn first_cycle_closing_dep(
        &self,
        class: MessageType,
        deps: &[(usize, usize)],
    ) -> Option<(usize, usize)> {
        let base = self.cdg.get(&class);
        let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
        if let Some(set) = base {
            for &(a, b) in set {
                adj.entry(a).or_default().push(b);
            }
        }
        for &(a, b) in deps {
            // Does a path b ->* a already exist? Then adding a->b closes a
            // cycle.
            if reachable(&adj, b, a) {
                return Some((a, b));
            }
            adj.entry(a).or_default().push(b);
        }
        None
    }

    /// Compacts tombstoned links and returns the finished topology.
    fn finish(mut self) -> Topology {
        self.topo.links.retain(|l| !l.flows.is_empty());
        self.topo
    }
}

/// Iterative DFS reachability in a sparse adjacency map.
fn reachable(adj: &HashMap<usize, Vec<usize>>, from: usize, to: usize) -> bool {
    if from == to {
        return true;
    }
    let mut stack = vec![from];
    let mut seen = HashSet::new();
    seen.insert(from);
    while let Some(u) = stack.pop() {
        if let Some(next) = adj.get(&u) {
            for &v in next {
                if v == to {
                    return true;
                }
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommSpec, Core, Flow, SocSpec};

    /// 4 cores on 2 layers, 2 switches (one per layer), star traffic.
    fn setup() -> (SocSpec, CommSpec, CommGraph) {
        let soc = SocSpec::new(
            (0..4)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.0,
                    height: 1.0,
                    x: f64::from(i % 2) * 3.0,
                    y: 0.0,
                    layer: u32::from(i >= 2),
                })
                .collect(),
            2,
        )
        .unwrap();
        let f = |src, dst, bw: f64, class| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: 10.0,
            message_type: class,
        };
        let comm = CommSpec::new(
            vec![
                f(0, 2, 400.0, MessageType::Request),
                f(2, 0, 200.0, MessageType::Response),
                f(1, 3, 300.0, MessageType::Request),
                f(0, 1, 100.0, MessageType::Request),
            ],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        (soc, comm, g)
    }

    fn lib() -> NocLibrary {
        NocLibrary::lp65()
    }

    #[test]
    fn routes_all_flows_and_respects_structure() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &g,
            &[0, 0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (2.0, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        // All flows have a path; same-switch flow 3 is single-hop.
        assert_eq!(topo.flow_paths.len(), 4);
        assert_eq!(topo.flow_paths[3].switches, vec![0]);
        assert_eq!(topo.flow_paths[0].switches, vec![0, 1]);
        // Request and response use separate links.
        let classes: HashSet<MessageType> = topo.links.iter().map(|l| l.class).collect();
        assert!(classes.contains(&MessageType::Request));
        assert!(classes.contains(&MessageType::Response));
        for l in &topo.links {
            for &fi in &l.flows {
                assert_eq!(g.edge_list()[fi].class, l.class, "class mixing on a link");
            }
        }
    }

    #[test]
    fn link_bandwidth_accumulates() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &g,
            &[0, 0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (2.0, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        // Flows 0 (400 MB/s) and 2 (300 MB/s) both go 0 -> 1 on the request
        // link: 700 MB/s = 5.6 Gbps.
        let req01 = topo
            .links
            .iter()
            .find(|l| l.from == 0 && l.to == 1 && l.class == MessageType::Request)
            .expect("request link 0->1");
        assert!((req01.bandwidth_gbps - 5.6).abs() < 1e-9, "{}", req01.bandwidth_gbps);
        assert_eq!(req01.flows.len(), 2);
    }

    #[test]
    fn ill_budget_exhausted_by_attachments_detected() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(1, 11, 400.0);
        // Attach all cores to a single switch on layer 0: cores 2,3 (layer 1)
        // need one vertical attachment each = 2 > 1.
        let err = compute_paths(
            &g,
            &[0, 0, 0, 0],
            &[0],
            &[(1.5, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap_err();
        assert!(matches!(err, PathError::IllBudgetExhausted { used: 2, .. }), "{err:?}");
    }

    #[test]
    fn adjacent_layers_only_forces_multi_hop() {
        // 3 layers, one switch per layer, flow from layer 0 to layer 2.
        let soc = SocSpec::new(
            (0..3)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.0,
                    height: 1.0,
                    x: 0.0,
                    y: 0.0,
                    layer: i,
                })
                .collect(),
            3,
        )
        .unwrap();
        let comm = CommSpec::new(
            vec![Flow {
                src: 0,
                dst: 2,
                bandwidth_mbs: 100.0,
                max_latency_cycles: 10.0,
                message_type: MessageType::Request,
            }],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        let mut cfg = PathConfig::new(25, 11, 400.0);
        cfg.adjacent_layers_only = true;
        let topo = compute_paths(
            &g,
            &[0, 1, 2],
            &[0, 1, 2],
            &[(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
            &[0, 1, 2],
            3,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        assert_eq!(topo.flow_paths[0].switches, vec![0, 1, 2], "must hop through layer 1");

        // Without the restriction, the direct 0 -> 2 link wins (it is one
        // switch cheaper).
        cfg.adjacent_layers_only = false;
        let topo2 = compute_paths(
            &g,
            &[0, 1, 2],
            &[0, 1, 2],
            &[(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
            &[0, 1, 2],
            3,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        assert_eq!(topo2.flow_paths[0].switches, vec![0, 2]);
    }

    #[test]
    fn switch_size_limit_rejects_oversubscribed_attachment() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 3, 400.0);
        // One switch with 4 cores: needs 4 ports for cores alone > 3.
        let err = compute_paths(
            &g,
            &[0, 0, 0, 0],
            &[0],
            &[(1.5, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap_err();
        assert!(matches!(err, PathError::SwitchTooSmall { needed: 4, .. }), "{err:?}");
    }

    #[test]
    fn capacity_saturation_opens_parallel_link() {
        // Tiny capacity: force two links for two heavy flows.
        let (soc, _, _) = setup();
        let comm = CommSpec::new(
            vec![
                Flow {
                    src: 0,
                    dst: 2,
                    bandwidth_mbs: 900.0, // 7.2 Gbps
                    max_latency_cycles: 10.0,
                    message_type: MessageType::Request,
                },
                Flow {
                    src: 1,
                    dst: 3,
                    bandwidth_mbs: 900.0,
                    max_latency_cycles: 10.0,
                    message_type: MessageType::Request,
                },
            ],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        let cfg = PathConfig::new(25, 11, 400.0); // capacity 12.8 Gbps
        let topo = compute_paths(
            &g,
            &[0, 0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (2.0, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        let req_links: Vec<_> = topo
            .links
            .iter()
            .filter(|l| l.from == 0 && l.to == 1 && l.class == MessageType::Request)
            .collect();
        assert_eq!(req_links.len(), 2, "14.4 Gbps cannot fit one 12.8 Gbps link");
        for l in req_links {
            assert!(l.bandwidth_gbps <= 12.8 + 1e-9);
        }
    }

    #[test]
    fn cdg_stays_acyclic_per_class() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &g,
            &[0, 0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (2.0, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        // Rebuild the CDG from the final paths and assert acyclicity.
        for class in [MessageType::Request, MessageType::Response] {
            let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
            let link_idx = |u: usize, v: usize| {
                topo.links
                    .iter()
                    .position(|l| l.from == u && l.to == v && l.class == class)
            };
            for (fi, path) in topo.flow_paths.iter().enumerate() {
                if g.edge_list()[fi].class != class {
                    continue;
                }
                let hops: Vec<usize> = path
                    .switches
                    .windows(2)
                    .filter_map(|w| link_idx(w[0], w[1]))
                    .collect();
                for w in hops.windows(2) {
                    adj.entry(w[0]).or_default().push(w[1]);
                }
            }
            // Kahn's algorithm: if all nodes drain, the graph is acyclic.
            let nodes: HashSet<usize> =
                adj.keys().copied().chain(adj.values().flatten().copied()).collect();
            let mut indeg: HashMap<usize, usize> = nodes.iter().map(|&n| (n, 0)).collect();
            for vs in adj.values() {
                for &v in vs {
                    *indeg.get_mut(&v).unwrap() += 1;
                }
            }
            let mut queue: Vec<usize> =
                indeg.iter().filter(|(_, &d)| d == 0).map(|(&n, _)| n).collect();
            let mut drained = 0;
            while let Some(u) = queue.pop() {
                drained += 1;
                if let Some(vs) = adj.get(&u) {
                    for &v in vs {
                        let d = indeg.get_mut(&v).unwrap();
                        *d -= 1;
                        if *d == 0 {
                            queue.push(v);
                        }
                    }
                }
            }
            assert_eq!(drained, nodes.len(), "CDG for {class:?} has a cycle");
        }
    }
}
