//! Path computation for inter-switch traffic flows (paper §VI).
//!
//! Flows are routed one at a time, in decreasing order of their Definition-3
//! criticality, with Dijkstra over the switch graph. The cost of traversing a
//! candidate link is the *marginal power* of carrying the flow over it
//! (reusing an existing link is cheaper than opening a new one), plus the
//! hard/soft constraint penalties of Algorithm 3 (`CHECK_CONSTRAINTS`):
//!
//! * `INF` (the edge is simply forbidden) for links across non-adjacent
//!   layers when the technology only allows adjacent-layer TSVs, for layer
//!   boundaries already at the `max_ill` vertical-link budget, and for
//!   switches already at `max_switch_size` ports;
//! * `SOFT_INF` (ten times the maximum flow cost, §VI) when a boundary is
//!   within `soft_max_ill` of its budget or a switch within the soft size
//!   margin — steering the router away *before* the hard limits bite.
//!
//! Deadlock freedom follows the approach of Hansson et al. that the paper
//! adopts: a channel-dependency graph (CDG) is maintained *per message
//! class* (request and response flows never share links, which removes
//! message-dependent deadlock), and a computed path is accepted only if its
//! link-to-link dependencies keep the class CDG acyclic. When a path would
//! close a cycle, the offending turn is banned for the flow and routing is
//! retried.
//!
//! # Performance
//!
//! Routing sits on the per-candidate hot path of the design-space sweep, so
//! the router is written to be allocation-free across candidate
//! evaluations: a reusable [`PathAllocator`] owns every scratch structure —
//! generation-stamped Dijkstra state, the dense per-class link index, the
//! pairwise distance matrix, the banned-turn matrix and the incremental
//! cycle-detection state — and only grows them monotonically. Cycle checks
//! use Pearce–Kelly incremental topological-order maintenance, so inserting
//! one dependency edge costs near-constant amortized time instead of a
//! from-scratch DFS over the whole CDG.
//!
//! # Class-decomposed routing
//!
//! Request and response flows never share links or CDG state (§VI), so the
//! two message classes are routed as *independent passes*: each pass starts
//! from the attachment-only port/vertical budgets, routes its class's flows
//! in the global criticality order, and the results are merged
//! deterministically — links re-ordered to the exact interleaved creation
//! order, combined budgets validated afterwards. Whenever no budget
//! threshold couples the classes (the common, loosely-constrained case) the
//! merged topology is bit-identical to the legacy interleaved routing; when
//! the combined budgets *do* overflow, or a class pass fails outright, the
//! router falls back to one interleaved pass, preserving the legacy
//! behaviour exactly. Because the passes share no state, a sweep worker
//! that is not itself competing for cores (a serial sweep) can run them on
//! two scoped threads — [`PathAllocator::compute_paths_classed`] — and the
//! result is bit-for-bit the same either way.

use crate::graph::CommGraph;
use crate::spec::MessageType;
use crate::topology::{FlowPath, Link, Topology};
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;
use sunfloor_models::NocLibrary;

/// Constraint set handed to the router.
#[derive(Debug, Clone, PartialEq)]
pub struct PathConfig {
    /// Maximum directed links crossing any adjacent-layer boundary.
    pub max_ill: u32,
    /// Soft threshold margin: `soft_max_ill = max_ill − margin` (§VI
    /// recommends 2–3 links).
    pub soft_ill_margin: u32,
    /// Maximum switch size (ports on the larger side) at the target
    /// frequency.
    pub max_switch_size: u32,
    /// Soft margin below `max_switch_size`.
    pub soft_switch_margin: u32,
    /// Restrict switch-to-switch links to adjacent layers (Phase 2, or
    /// technologies that cannot drill multi-layer TSVs).
    pub adjacent_layers_only: bool,
    /// NoC clock frequency, MHz (sets link capacity and power).
    pub frequency_mhz: f64,
    /// Retries when a path closes a CDG cycle before giving up.
    pub deadlock_retries: u32,
}

impl PathConfig {
    /// Defaults matching the paper's experimental setup (soft margins of 2
    /// links / 1 port, multi-layer links allowed).
    #[must_use]
    pub fn new(max_ill: u32, max_switch_size: u32, frequency_mhz: f64) -> Self {
        Self {
            max_ill,
            soft_ill_margin: 2,
            max_switch_size,
            soft_switch_margin: 1,
            adjacent_layers_only: false,
            frequency_mhz,
            deadlock_retries: 24,
        }
    }

    fn soft_max_ill(&self) -> u32 {
        self.max_ill.saturating_sub(self.soft_ill_margin)
    }

    fn soft_max_switch_size(&self) -> u32 {
        self.max_switch_size.saturating_sub(self.soft_switch_margin)
    }
}

/// Why routing failed for a design point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// A flow could not be routed within the hard constraints.
    NoRoute {
        /// Flow index that failed.
        flow: usize,
    },
    /// The inter-layer link budget is exhausted before routing started:
    /// the core attachments alone exceed it (pruning rule 3 of §V-C).
    IllBudgetExhausted {
        /// Boundary index (between layers `b` and `b+1`).
        boundary: usize,
        /// Crossings already required by core attachments.
        used: u32,
        /// The budget.
        max_ill: u32,
    },
    /// No deadlock-free path could be found for a flow.
    DeadlockUnavoidable {
        /// Flow index that failed.
        flow: usize,
    },
    /// A switch cannot host its attached cores within `max_switch_size`.
    SwitchTooSmall {
        /// Switch index.
        switch: usize,
        /// Ports needed just for core attachments.
        needed: u32,
        /// The limit.
        max_switch_size: u32,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoRoute { flow } => write!(f, "no feasible route for flow {flow}"),
            Self::IllBudgetExhausted { boundary, used, max_ill } => write!(
                f,
                "core attachments already need {used} vertical links at boundary {boundary} (budget {max_ill})"
            ),
            Self::DeadlockUnavoidable { flow } => {
                write!(f, "no deadlock-free route for flow {flow}")
            }
            Self::SwitchTooSmall { switch, needed, max_switch_size } => write!(
                f,
                "switch {switch} needs {needed} ports for its cores alone (limit {max_switch_size})"
            ),
        }
    }
}

impl Error for PathError {}

/// Dijkstra heap entry.
///
/// The ordering is *total* — costs compare with [`f64::total_cmp`], never a
/// `partial_cmp(..).unwrap()` — so a degenerate edge cost (NaN from a
/// pathological power model input) re-orders the heap instead of panicking
/// the sweep.
#[derive(Debug, PartialEq)]
struct HeapEntry(f64, usize);

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.total_cmp(&self.0) // reverse: min-heap
    }
}

/// Per-message-class channel-dependency graph with incremental cycle
/// detection (Pearce–Kelly topological-order maintenance).
///
/// Nodes are *stable link indices* (tombstoned links keep their slot).
/// Inserting the edge `a → b` either confirms the graph stays acyclic —
/// restoring the topological-order invariant by re-ranking only the
/// affected region — or reports the cycle without modifying the graph.
#[derive(Debug, Default)]
struct ClassCdg {
    /// Out-edges per node.
    adj: Vec<Vec<usize>>,
    /// In-edges per node (needed for the backward half of the re-rank).
    radj: Vec<Vec<usize>>,
    /// Topological rank of each node: `ord[u] < ord[v]` for every edge
    /// `u → v`.
    ord: Vec<usize>,
    /// Live node count this routing run (`adj`/`radj`/`ord` beyond it are
    /// stale capacity from earlier runs).
    nodes: usize,
    /// DFS visit stamps (generation-tagged so clearing is O(1)).
    mark: Vec<u32>,
    mark_gen: u32,
    /// Scratch: forward/backward affected sets and the DFS stack.
    fwd: Vec<usize>,
    back: Vec<usize>,
    stack: Vec<usize>,
    pool: Vec<usize>,
}

impl ClassCdg {
    /// Resets to an empty graph, keeping every allocation.
    fn clear(&mut self) {
        for list in &mut self.adj[..self.nodes] {
            list.clear();
        }
        for list in &mut self.radj[..self.nodes] {
            list.clear();
        }
        self.nodes = 0;
    }

    /// Makes sure node `v` exists; new nodes are appended at the end of the
    /// topological order (they have no edges yet, so any rank is valid).
    fn ensure_node(&mut self, v: usize) {
        while self.nodes <= v {
            if self.adj.len() <= self.nodes {
                self.adj.push(Vec::new());
                self.radj.push(Vec::new());
                self.ord.push(0);
                self.mark.push(0);
            }
            self.adj[self.nodes].clear();
            self.radj[self.nodes].clear();
            self.ord[self.nodes] = self.nodes;
            self.nodes += 1;
        }
    }

    /// Inserts `a → b`. Returns `Ok(true)` when the edge was added,
    /// `Ok(false)` when it was already present, and `Err(())` (leaving the
    /// graph untouched) when the insertion would close a cycle.
    fn insert(&mut self, a: usize, b: usize) -> Result<bool, ()> {
        self.ensure_node(a.max(b));
        if a == b {
            return Err(());
        }
        if self.adj[a].contains(&b) {
            return Ok(false);
        }
        if self.ord[a] < self.ord[b] {
            self.adj[a].push(b);
            self.radj[b].push(a);
            return Ok(true);
        }

        // ord[b] < ord[a]: the affected region is every node ranked in
        // [ord[b], ord[a]]. Forward-reachable nodes from `b` inside it must
        // move after backward-reaching nodes of `a`.
        let lb = self.ord[b];
        let ub = self.ord[a];

        // Forward DFS from b, restricted to ord <= ub. Reaching `a` means
        // b →* a exists, so a → b closes a cycle.
        self.mark_gen += 1;
        let fwd_gen = self.mark_gen;
        self.fwd.clear();
        self.stack.clear();
        self.stack.push(b);
        self.mark[b] = fwd_gen;
        while let Some(u) = self.stack.pop() {
            if u == a {
                return Err(());
            }
            self.fwd.push(u);
            for i in 0..self.adj[u].len() {
                let w = self.adj[u][i];
                if self.mark[w] != fwd_gen && self.ord[w] <= ub {
                    self.mark[w] = fwd_gen;
                    self.stack.push(w);
                }
            }
        }

        // Backward DFS from a, restricted to ord >= lb.
        self.mark_gen += 1;
        let back_gen = self.mark_gen;
        self.back.clear();
        self.stack.clear();
        self.stack.push(a);
        self.mark[a] = back_gen;
        while let Some(u) = self.stack.pop() {
            self.back.push(u);
            for i in 0..self.radj[u].len() {
                let w = self.radj[u][i];
                if self.mark[w] != back_gen && self.ord[w] >= lb {
                    self.mark[w] = back_gen;
                    self.stack.push(w);
                }
            }
        }

        // Re-rank: the union of ranks held by both sets, redistributed so
        // every backward node precedes every forward node, preserving the
        // relative order inside each set.
        self.back.sort_unstable_by_key(|&v| self.ord[v]);
        self.fwd.sort_unstable_by_key(|&v| self.ord[v]);
        self.pool.clear();
        self.pool.extend(self.back.iter().map(|&v| self.ord[v]));
        self.pool.extend(self.fwd.iter().map(|&v| self.ord[v]));
        self.pool.sort_unstable();
        for (slot, &v) in self.back.iter().chain(self.fwd.iter()).enumerate() {
            self.ord[v] = self.pool[slot];
        }

        self.adj[a].push(b);
        self.radj[b].push(a);
        Ok(true)
    }

    /// Removes the edge `a → b` (used to roll back a rejected path's
    /// dependencies). The topological order stays valid: deleting edges
    /// never invalidates it.
    fn remove(&mut self, a: usize, b: usize) {
        if let Some(p) = self.adj[a].iter().rposition(|&w| w == b) {
            self.adj[a].swap_remove(p);
        }
        if let Some(p) = self.radj[b].iter().rposition(|&w| w == a) {
            self.radj[b].swap_remove(p);
        }
    }
}

/// Deterministic counters of how the routing work was served.
///
/// Mirrors `PartitionStats` / `LpStats`: every field counts per-candidate
/// events that are a pure function of the candidate (never of thread
/// scheduling — routing the two classes on scoped threads or sequentially
/// yields identical counts), so the engine can accumulate a delta per
/// candidate evaluation and sum the deltas in commit order, making serial
/// and parallel sweeps report identical totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutingStats {
    /// Flows successfully routed (single-hop same-switch flows included).
    pub flows_routed: u64,
    /// Links alive in finished topologies (tombstones excluded).
    pub links_created: u64,
    /// Paths rejected because their dependencies closed a CDG cycle (each
    /// rejection rolls the path back and retries with a banned turn).
    pub deadlock_rollbacks: u64,
    /// Routing calls answered by merging two independent per-class passes.
    pub class_merges: u64,
    /// Routing calls where the merged per-class budgets overflowed (or a
    /// class pass failed) and the legacy interleaved pass was replayed.
    pub merge_fallbacks: u64,
}

impl std::ops::AddAssign for RoutingStats {
    fn add_assign(&mut self, rhs: Self) {
        self.flows_routed += rhs.flows_routed;
        self.links_created += rhs.links_created;
        self.deadlock_rollbacks += rhs.deadlock_rollbacks;
        self.class_merges += rhs.class_merges;
        self.merge_fallbacks += rhs.merge_fallbacks;
    }
}

impl std::ops::Sub for RoutingStats {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self {
            flows_routed: self.flows_routed - rhs.flows_routed,
            links_created: self.links_created - rhs.links_created,
            deadlock_rollbacks: self.deadlock_rollbacks - rhs.deadlock_rollbacks,
            class_merges: self.class_merges - rhs.class_merges,
            merge_fallbacks: self.merge_fallbacks - rhs.merge_fallbacks,
        }
    }
}

/// Reusable routing workspace: every scratch structure the router needs,
/// kept alive across candidate evaluations so the per-candidate hot path
/// performs no allocation beyond the returned [`Topology`] itself.
///
/// One allocator per thread; the synthesis engine hands each sweep worker
/// its own. The convenience free function [`compute_paths`] creates a
/// throwaway allocator for one-off calls.
#[derive(Debug, Default)]
pub struct PathAllocator {
    // Dijkstra scratch (generation-stamped: resetting is O(1)).
    dist: Vec<f64>,
    prev: Vec<usize>,
    dij_stamp: Vec<u32>,
    dij_gen: u32,
    heap: BinaryHeap<HeapEntry>,
    // Dense per-class live-link index: `link_of[(class·n + u)·n + v]` is the
    // link slot or `usize::MAX`.
    link_of: Vec<usize>,
    // Pairwise Manhattan distances between switch position estimates.
    dist_mat: Vec<f64>,
    // Banned turns for the current flow attempt (generation-stamped).
    banned: Vec<u32>,
    banned_gen: u32,
    // Per-class CDGs with incremental cycle detection.
    cdg: [ClassCdg; 2],
    // Per-run budgets.
    ill: Vec<u32>,
    in_ports: Vec<u32>,
    out_ports: Vec<u32>,
    // Flow routing order (plus its weight scratch) and link-id scratch.
    order: Vec<usize>,
    weights: Vec<f64>,
    link_ids: Vec<usize>,
    cdg_added: Vec<(usize, usize)>,
    // Attachment-only budget baselines (the state before any link was
    // routed), kept so the class-merge validation can subtract the doubly
    // counted attachments.
    base_ill: Vec<u32>,
    base_in: Vec<u32>,
    base_out: Vec<u32>,
    // Criticality rank per flow (inverse of `order`), for the merge sort.
    rank: Vec<u32>,
    // Second scratch workspace for the response-class routing pass (lazily
    // created; lets the two class passes run on two scoped threads).
    second: Option<Box<PathAllocator>>,
    // Cumulative deterministic routing counters.
    stats: RoutingStats,
}

impl PathAllocator {
    /// A fresh allocator with empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the switch-indexed scratch to `nsw` switches and resets the
    /// per-run state.
    fn reset(&mut self, nsw: usize, boundaries: usize) {
        if self.dist.len() < nsw {
            self.dist.resize(nsw, f64::INFINITY);
            self.prev.resize(nsw, usize::MAX);
            self.dij_stamp.resize(nsw, 0);
        }
        self.link_of.clear();
        self.link_of.resize(2 * nsw * nsw, usize::MAX);
        self.dist_mat.clear();
        self.dist_mat.resize(nsw * nsw, 0.0);
        if self.banned.len() < nsw * nsw {
            self.banned.resize(nsw * nsw, 0);
        }
        for cdg in &mut self.cdg {
            cdg.clear();
        }
        self.ill.clear();
        self.ill.resize(boundaries, 0);
        self.in_ports.clear();
        self.in_ports.resize(nsw, 0);
        self.out_ports.clear();
        self.out_ports.resize(nsw, 0);
    }

    /// Cumulative counters of every routing call this allocator served.
    #[must_use]
    pub fn stats(&self) -> RoutingStats {
        self.stats
    }

    /// Routes all flows over the switches, producing a complete
    /// [`Topology`] — the reusable-workspace form of [`compute_paths`].
    /// Routes the two message classes as independent sequential passes (see
    /// the [module docs](self#class-decomposed-routing));
    /// [`Self::compute_paths_classed`] additionally offers to overlap the
    /// passes on scoped threads, with bit-identical results.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] when any flow cannot be routed within the hard
    /// constraints or without deadlock.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_paths(
        &mut self,
        graph: &CommGraph,
        core_attach: &[usize],
        switch_layer: &[u32],
        est_switch_pos: &[(f64, f64)],
        core_layers: &[u32],
        layers: u32,
        lib: &NocLibrary,
        cfg: &PathConfig,
        alpha: f64,
    ) -> Result<Topology, PathError> {
        self.compute_paths_classed(
            graph,
            core_attach,
            switch_layer,
            est_switch_pos,
            core_layers,
            layers,
            lib,
            cfg,
            alpha,
            false,
        )
    }

    /// [`Self::compute_paths`] with an explicit threading choice for the
    /// two per-class routing passes: with `threaded` set (and more than one
    /// hardware core available) the response class routes on a scoped
    /// thread using this allocator's second scratch workspace while the
    /// request class routes on the calling thread. The passes share no
    /// state and the merge commits them in class order, so the result — the
    /// topology *and* the [`RoutingStats`] deltas — is bit-for-bit
    /// identical to the sequential form. Callers that already saturate the
    /// machine (the engine's parallel sweep workers) pass `false`, the
    /// same thread-collapse pattern the tempered annealer uses.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] when any flow cannot be routed within the hard
    /// constraints or without deadlock.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_paths_classed(
        &mut self,
        graph: &CommGraph,
        core_attach: &[usize],
        switch_layer: &[u32],
        est_switch_pos: &[(f64, f64)],
        core_layers: &[u32],
        layers: u32,
        lib: &NocLibrary,
        cfg: &PathConfig,
        alpha: f64,
        threaded: bool,
    ) -> Result<Topology, PathError> {
        let mut class_flows = [0usize; 2];
        for e in graph.edge_list() {
            class_flows[class_index(e.class)] += 1;
        }

        // A single-class spec degenerates to one pass: the legacy
        // interleaved pass *is* the class pass, so route it directly.
        if class_flows[0] == 0 || class_flows[1] == 0 {
            let (topo, stats) = route_pass(
                self,
                graph,
                core_attach,
                switch_layer,
                est_switch_pos,
                core_layers,
                layers,
                lib,
                cfg,
                alpha,
                None,
            )?;
            self.stats += stats;
            return Ok(topo);
        }

        let mut second = self.second.take().unwrap_or_default();
        let result = self.classed_inner(
            &mut second,
            graph,
            core_attach,
            switch_layer,
            est_switch_pos,
            core_layers,
            layers,
            lib,
            cfg,
            alpha,
            threaded,
        );
        self.second = Some(second);
        result
    }

    /// The two-pass body of [`Self::compute_paths_classed`], with the
    /// response-class scratch split out so the passes can borrow disjoint
    /// workspaces.
    #[allow(clippy::too_many_arguments)]
    fn classed_inner(
        &mut self,
        second: &mut PathAllocator,
        graph: &CommGraph,
        core_attach: &[usize],
        switch_layer: &[u32],
        est_switch_pos: &[(f64, f64)],
        core_layers: &[u32],
        layers: u32,
        lib: &NocLibrary,
        cfg: &PathConfig,
        alpha: f64,
        threaded: bool,
    ) -> Result<Topology, PathError> {
        let spawn = threaded
            && std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) > 1;
        let (res0, res1) = if spawn {
            std::thread::scope(|s| {
                let handle = s.spawn(|| {
                    route_pass(
                        second,
                        graph,
                        core_attach,
                        switch_layer,
                        est_switch_pos,
                        core_layers,
                        layers,
                        lib,
                        cfg,
                        alpha,
                        Some(MessageType::Response),
                    )
                });
                let r0 = route_pass(
                    self,
                    graph,
                    core_attach,
                    switch_layer,
                    est_switch_pos,
                    core_layers,
                    layers,
                    lib,
                    cfg,
                    alpha,
                    Some(MessageType::Request),
                );
                let r1 = match handle.join() {
                    Ok(r) => r,
                    Err(panic) => std::panic::resume_unwind(panic),
                };
                (r0, r1)
            })
        } else {
            let r0 = route_pass(
                self,
                graph,
                core_attach,
                switch_layer,
                est_switch_pos,
                core_layers,
                layers,
                lib,
                cfg,
                alpha,
                Some(MessageType::Request),
            );
            let r1 = route_pass(
                second,
                graph,
                core_attach,
                switch_layer,
                est_switch_pos,
                core_layers,
                layers,
                lib,
                cfg,
                alpha,
                Some(MessageType::Response),
            );
            (r0, r1)
        };

        match (res0, res1) {
            (Ok((t0, s0)), Ok((t1, s1))) => {
                if let Some(topo) = self.merge_class_runs(second, graph, cfg, t0, t1) {
                    self.stats += s0;
                    self.stats += s1;
                    self.stats.class_merges += 1;
                    return Ok(topo);
                }
            }
            // Attachment-stage failures (vertical budget / core ports) are
            // computed before any flow routes, identically in every pass:
            // report them directly, exactly like the legacy router.
            (Err(e), _) | (_, Err(e))
                if matches!(
                    e,
                    PathError::IllBudgetExhausted { .. } | PathError::SwitchTooSmall { .. }
                ) =>
            {
                return Err(e);
            }
            _ => {}
        }

        // A class pass failed, or the merged budgets overflowed: the
        // classes are coupled through the shared budgets here, so replay
        // the legacy interleaved pass, whose soft steering sees both
        // classes at once — preserving the pre-decomposition behaviour
        // (including which error is reported) exactly.
        self.stats.merge_fallbacks += 1;
        let (topo, stats) = route_pass(
            self,
            graph,
            core_attach,
            switch_layer,
            est_switch_pos,
            core_layers,
            layers,
            lib,
            cfg,
            alpha,
            None,
        )?;
        self.stats += stats;
        Ok(topo)
    }

    /// Merges the two finished per-class passes: validates the *combined*
    /// budgets (each pass only enforced its own usage against the limits),
    /// moves the response-class paths and links into the request-class
    /// topology, and restores the exact link order the legacy interleaved
    /// pass would have created — links sort by (criticality rank of the
    /// flow that created them, hop position within that flow's path), which
    /// is precisely the interleaved creation order. Returns `None` when the
    /// combined budgets overflow and the caller must re-route interleaved.
    // sf: hot-path
    fn merge_class_runs(
        &mut self,
        second: &PathAllocator,
        graph: &CommGraph,
        cfg: &PathConfig,
        mut t0: Topology,
        mut t1: Topology,
    ) -> Option<Topology> {
        for (b, &base) in self.base_ill.iter().enumerate() {
            if self.ill[b] + second.ill[b] - base > cfg.max_ill {
                return None;
            }
        }
        for (s, (&bi, &bo)) in self.base_in.iter().zip(&self.base_out).enumerate() {
            let ip = self.in_ports[s] + second.in_ports[s] - bi;
            let op = self.out_ports[s] + second.out_ports[s] - bo;
            if ip.max(op) > cfg.max_switch_size {
                return None;
            }
        }

        for (f, e) in graph.edge_list().iter().enumerate() {
            if class_index(e.class) == 1 {
                t0.flow_paths[f] = std::mem::take(&mut t1.flow_paths[f]);
            }
        }
        t0.links.append(&mut t1.links);

        self.rank.clear();
        self.rank.resize(graph.edge_list().len(), 0);
        for (i, &f) in self.order.iter().enumerate() {
            self.rank[f] = i as u32;
        }
        let mut links = std::mem::take(&mut t0.links);
        let paths = &t0.flow_paths;
        let rank = &self.rank;
        links.sort_by_key(|l| {
            // A surviving link's first flow is the flow that created it
            // (rollbacks only ever strip the most recent flow), and a hop
            // appears at most once in a simple path, so the key pairs are
            // unique and reproduce the interleaved creation order.
            let creator = l.flows.first().copied().unwrap_or(0);
            let hop = paths[creator]
                .switches
                .windows(2)
                .position(|w| w[0] == l.from && w[1] == l.to)
                .map_or(u32::MAX, |p| p as u32);
            (rank[creator], hop)
        });
        t0.links = links;
        Some(t0)
    }
}

/// One routing pass over `class`'s flows (or every flow for `None` — the
/// legacy interleaved pass) through the given workspace, returning the
/// finished per-pass topology and its deterministic counters.
#[allow(clippy::too_many_arguments)]
fn route_pass(
    alloc: &mut PathAllocator,
    graph: &CommGraph,
    core_attach: &[usize],
    switch_layer: &[u32],
    est_switch_pos: &[(f64, f64)],
    core_layers: &[u32],
    layers: u32,
    lib: &NocLibrary,
    cfg: &PathConfig,
    alpha: f64,
    class: Option<MessageType>,
) -> Result<(Topology, RoutingStats), PathError> {
    let mut router = Router::new(
        alloc,
        graph,
        core_attach,
        switch_layer,
        est_switch_pos,
        core_layers,
        layers,
        lib,
        cfg,
        class,
    )?;
    router.route_all(alpha)?;
    Ok(router.finish())
}

/// Routes all flows over the switches, producing a complete [`Topology`].
///
/// `switch_layer` and `core_attach` come from Phase 1 / Phase 2
/// partitioning; `est_switch_pos` are position estimates (core-centroid
/// based) used for link-power costs before the placement LP runs;
/// `core_layers` gives each core's 3-D layer and `layers` the stack height.
///
/// Creates a throwaway [`PathAllocator`]; callers routing many candidates
/// (the synthesis engine's sweep workers) keep one allocator per thread and
/// call [`PathAllocator::compute_paths`] instead so scratch memory is
/// reused.
///
/// # Errors
///
/// Returns [`PathError`] when any flow cannot be routed within the hard
/// constraints or without deadlock.
#[allow(clippy::too_many_arguments)]
pub fn compute_paths(
    graph: &CommGraph,
    core_attach: &[usize],
    switch_layer: &[u32],
    est_switch_pos: &[(f64, f64)],
    core_layers: &[u32],
    layers: u32,
    lib: &NocLibrary,
    cfg: &PathConfig,
    alpha: f64,
) -> Result<Topology, PathError> {
    PathAllocator::new().compute_paths(
        graph,
        core_attach,
        switch_layer,
        est_switch_pos,
        core_layers,
        layers,
        lib,
        cfg,
        alpha,
    )
}

fn class_index(class: MessageType) -> usize {
    match class {
        MessageType::Request => 0,
        MessageType::Response => 1,
    }
}

struct Router<'a> {
    alloc: &'a mut PathAllocator,
    graph: &'a CommGraph,
    lib: &'a NocLibrary,
    cfg: &'a PathConfig,
    topo: Topology,
    nsw: usize,
    capacity_gbps: f64,
    soft_inf: f64,
    /// Marginal port power of opening a new link (frequency-dependent,
    /// identical for every edge).
    new_port_cost: f64,
    /// Restrict this pass to one message class (`None` routes every flow —
    /// the legacy interleaved pass).
    class: Option<MessageType>,
    /// Counters this pass accrued.
    stats: RoutingStats,
}

impl<'a> Router<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        alloc: &'a mut PathAllocator,
        graph: &'a CommGraph,
        core_attach: &[usize],
        switch_layer: &[u32],
        est_switch_pos: &[(f64, f64)],
        core_layers: &[u32],
        layers: u32,
        lib: &'a NocLibrary,
        cfg: &'a PathConfig,
        class: Option<MessageType>,
    ) -> Result<Self, PathError> {
        let nsw = switch_layer.len();
        let boundaries = layers.saturating_sub(1) as usize;
        alloc.reset(nsw, boundaries);
        let topo = Topology {
            switch_layer: switch_layer.to_vec(),
            switch_pos: est_switch_pos.to_vec(),
            core_attach: core_attach.to_vec(),
            links: Vec::new(),
            flow_paths: vec![FlowPath::default(); graph.edge_list().len()],
            indirect_switches: Vec::new(),
        };

        // Vertical budget consumed by core attachments, counted up front
        // (pruning rule 3 of §V-C).
        for (core, &sw) in core_attach.iter().enumerate() {
            let (cl, sl) = (core_layers[core], switch_layer[sw]);
            let (lo, hi) = if cl <= sl { (cl, sl) } else { (sl, cl) };
            for b in lo..hi {
                // One TSV macro per boundary: the NI bundles both
                // directions of the attachment through it (§III).
                alloc.ill[b as usize] += 1;
            }
        }
        for (b, &used) in alloc.ill.iter().enumerate() {
            if used > cfg.max_ill {
                return Err(PathError::IllBudgetExhausted {
                    boundary: b,
                    used,
                    max_ill: cfg.max_ill,
                });
            }
        }

        for &sw in core_attach {
            alloc.in_ports[sw] += 1;
            alloc.out_ports[sw] += 1;
        }
        for (s, (&ip, &op)) in alloc.in_ports.iter().zip(&alloc.out_ports).enumerate() {
            let needed = ip.max(op);
            if needed > cfg.max_switch_size {
                return Err(PathError::SwitchTooSmall {
                    switch: s,
                    needed,
                    max_switch_size: cfg.max_switch_size,
                });
            }
        }

        // Snapshot the attachment-only budgets: the class-merge validation
        // subtracts them so the attachments are not counted twice.
        alloc.base_ill.clone_from(&alloc.ill);
        alloc.base_in.clone_from(&alloc.in_ports);
        alloc.base_out.clone_from(&alloc.out_ports);

        let capacity_gbps = lib.link.capacity_gbps(cfg.frequency_mhz);

        // Pairwise Manhattan distances between position estimates, and the
        // placement diameter for the SOFT_INF bound below.
        let mut max_d = 1.0f64;
        for (u, a) in est_switch_pos.iter().enumerate() {
            for (v, b) in est_switch_pos.iter().enumerate() {
                let d = (a.0 - b.0).abs() + (a.1 - b.1).abs();
                alloc.dist_mat[u * nsw + v] = d;
                max_d = max_d.max(d);
            }
        }

        // SOFT_INF = ten times the maximum cost of any flow (§VI): bound the
        // flow cost by routing the heaviest flow over the placement diameter.
        let max_bw = graph.max_bandwidth_mbs() * 8.0 / 1000.0;
        let max_flow_cost = lib.link.power_mw(max_d, max_bw, cfg.frequency_mhz)
            + lib.switch.power_mw(4, 4, max_bw, cfg.frequency_mhz);
        let soft_inf = 10.0 * max_flow_cost;

        let new_port_cost = 2.0
            * (lib.switch.dyn_mw_per_port_mhz * cfg.frequency_mhz + lib.switch.leak_mw_per_port);

        Ok(Self {
            alloc,
            graph,
            lib,
            cfg,
            topo,
            nsw,
            capacity_gbps,
            soft_inf,
            new_port_cost,
            class,
            stats: RoutingStats::default(),
        })
    }

    // sf: hot-path
    fn live_link(&self, u: usize, v: usize, class: MessageType) -> Option<usize> {
        let li = self.alloc.link_of[(class_index(class) * self.nsw + u) * self.nsw + v];
        (li != usize::MAX).then_some(li)
    }

    // sf: hot-path
    fn route_all(&mut self, alpha: f64) -> Result<(), PathError> {
        let mut order = std::mem::take(&mut self.alloc.order);
        let mut weights = std::mem::take(&mut self.alloc.weights);
        self.graph.flows_by_criticality_into(alpha, &mut order, &mut weights);
        self.alloc.weights = weights;
        for i in 0..order.len() {
            let idx = order[i];
            // A class-restricted pass routes its class's subsequence of the
            // global criticality order, so per-link flow order matches the
            // interleaved pass exactly.
            if self.class.is_some_and(|c| self.graph.edge_list()[idx].class != c) {
                continue;
            }
            if let Err(e) = self.route_flow(idx) {
                self.alloc.order = order;
                return Err(e);
            }
        }
        self.alloc.order = order;
        Ok(())
    }

    // sf: hot-path
    fn route_flow(&mut self, flow_idx: usize) -> Result<(), PathError> {
        let e = self.graph.edge_list()[flow_idx];
        let bw_gbps = e.bandwidth_mbs * 8.0 / 1000.0;
        let s_sw = self.topo.core_attach[e.src];
        let d_sw = self.topo.core_attach[e.dst];

        if s_sw == d_sw {
            self.topo.flow_paths[flow_idx] = FlowPath { switches: vec![s_sw] }; // sf-allow(hot-path-alloc): per-flow result path, built once per routed flow
            self.stats.flows_routed += 1;
            return Ok(());
        }

        // Fresh banned-turn set for this flow: bump the generation.
        self.alloc.banned_gen += 1;
        for attempt in 0..=self.cfg.deadlock_retries {
            let Some(path) = self.dijkstra(s_sw, d_sw, bw_gbps, e.class) else {
                return if attempt == 0 {
                    Err(PathError::NoRoute { flow: flow_idx })
                } else {
                    Err(PathError::DeadlockUnavoidable { flow: flow_idx })
                };
            };

            self.realize_links(&path, e.class, bw_gbps, flow_idx);
            if let Some(bad_second) = self.try_insert_deps(e.class) {
                self.stats.deadlock_rollbacks += 1;
                let link_ids = std::mem::take(&mut self.alloc.link_ids);
                self.unrealize_flow(flow_idx, &link_ids, bw_gbps);
                self.alloc.link_ids = link_ids;
                // Ban the second leg of the offending turn.
                let link = &self.topo.links[bad_second];
                self.alloc.banned[link.from * self.nsw + link.to] = self.alloc.banned_gen;
                continue;
            }
            self.topo.flow_paths[flow_idx] = FlowPath { switches: path };
            self.stats.flows_routed += 1;
            return Ok(());
        }
        Err(PathError::DeadlockUnavoidable { flow: flow_idx })
    }

    /// Inserts the current path's link-to-link dependencies (held in
    /// `alloc.link_ids`) into the class CDG one at a time. On the first
    /// dependency that would close a cycle, rolls the batch back and returns
    /// the *second* link of the offending turn.
    // sf: hot-path
    fn try_insert_deps(&mut self, class: MessageType) -> Option<usize> {
        let ci = class_index(class);
        let mut added = std::mem::take(&mut self.alloc.cdg_added);
        added.clear();
        let mut bad = None;
        for i in 1..self.alloc.link_ids.len() {
            let (a, b) = (self.alloc.link_ids[i - 1], self.alloc.link_ids[i]);
            match self.alloc.cdg[ci].insert(a, b) {
                Ok(true) => added.push((a, b)),
                Ok(false) => {}
                Err(()) => {
                    bad = Some(b);
                    break;
                }
            }
        }
        if bad.is_some() {
            for &(a, b) in added.iter().rev() {
                self.alloc.cdg[ci].remove(a, b);
            }
        }
        self.alloc.cdg_added = added;
        bad
    }

    // sf: hot-path
    fn dijkstra(
        &mut self,
        src: usize,
        dst: usize,
        bw_gbps: f64,
        class: MessageType,
    ) -> Option<Vec<usize>> {
        let nsw = self.nsw;
        // Generation-stamped reset: untouched entries read as INFINITY.
        self.alloc.dij_gen += 1;
        let gen = self.alloc.dij_gen;
        self.alloc.dist[src] = 0.0;
        self.alloc.prev[src] = usize::MAX;
        self.alloc.dij_stamp[src] = gen;
        self.alloc.heap.clear();
        self.alloc.heap.push(HeapEntry(0.0, src));

        while let Some(HeapEntry(d, u)) = self.alloc.heap.pop() {
            if d > self.alloc.dist[u] {
                continue;
            }
            if u == dst {
                break;
            }
            for v in 0..nsw {
                if v == u || self.alloc.banned[u * nsw + v] == self.alloc.banned_gen {
                    continue;
                }
                let Some(cost) = self.edge_cost(u, v, bw_gbps, class) else { continue };
                let nd = d + cost;
                let dv = if self.alloc.dij_stamp[v] == gen {
                    self.alloc.dist[v]
                } else {
                    f64::INFINITY
                };
                if nd + 1e-15 < dv {
                    self.alloc.dist[v] = nd;
                    self.alloc.prev[v] = u;
                    self.alloc.dij_stamp[v] = gen;
                    self.alloc.heap.push(HeapEntry(nd, v));
                }
            }
        }

        if self.alloc.dij_stamp[dst] != gen || !self.alloc.dist[dst].is_finite() {
            return None;
        }
        let mut path = vec![dst]; // sf-allow(hot-path-alloc): the returned path is the per-flow result value
        let mut cur = dst;
        while cur != src {
            cur = self.alloc.prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Marginal cost of sending the flow over `u → v`, or `None` when the
    /// edge is forbidden (Algorithm 3's `INF`).
    // sf: hot-path
    fn edge_cost(&self, u: usize, v: usize, bw_gbps: f64, class: MessageType) -> Option<f64> {
        let (lu, lv) = (self.topo.switch_layer[u], self.topo.switch_layer[v]);
        let delta = lu.abs_diff(lv);

        if self.cfg.adjacent_layers_only && delta >= 2 {
            return None; // Algorithm 3 step 3
        }

        let dx = self.alloc.dist_mat[u * self.nsw + v];
        let wire = self.lib.link.power_mw(dx.max(0.05), bw_gbps, self.cfg.frequency_mhz)
            + self.lib.tsv.power_mw(delta, bw_gbps)
            + self.lib.switch.energy_pj_per_bit * bw_gbps;

        // Reuse an existing same-class link with spare capacity?
        if let Some(li) = self.live_link(u, v, class) {
            if self.topo.links[li].bandwidth_gbps + bw_gbps <= self.capacity_gbps {
                return Some(wire);
            }
            // Saturated: fall through to the new-link cost below (a second
            // parallel link would be created).
        }

        // New link: vertical budget checks (Algorithm 3 steps 3–6)…
        let mut penalty = 0.0;
        let (lo, hi) = if lu <= lv { (lu, lv) } else { (lv, lu) };
        for b in lo..hi {
            let used = self.alloc.ill[b as usize];
            if used >= self.cfg.max_ill {
                return None;
            }
            if used >= self.cfg.soft_max_ill() {
                penalty += self.soft_inf;
            }
        }
        // …and port-growth checks (steps 7–10).
        if self.alloc.out_ports[u] + 1 > self.cfg.max_switch_size
            || self.alloc.in_ports[v] + 1 > self.cfg.max_switch_size
        {
            return None;
        }
        if self.alloc.out_ports[u] + 1 > self.cfg.soft_max_switch_size()
            || self.alloc.in_ports[v] + 1 > self.cfg.soft_max_switch_size()
        {
            penalty += self.soft_inf;
        }

        Some(wire + self.new_port_cost + penalty)
    }

    /// Ensures all links along `path` exist (creating them as needed), adds
    /// the flow's bandwidth, and leaves the link indices used, in order, in
    /// `alloc.link_ids`.
    // sf: hot-path
    fn realize_links(&mut self, path: &[usize], class: MessageType, bw_gbps: f64, flow_idx: usize) {
        let mut ids = std::mem::take(&mut self.alloc.link_ids);
        ids.clear();
        for w in path.windows(2) {
            let (u, v) = (w[0], w[1]);
            let existing = self
                .live_link(u, v, class)
                .filter(|&li| self.topo.links[li].bandwidth_gbps + bw_gbps <= self.capacity_gbps);
            let li = match existing {
                Some(li) => li,
                None => {
                    let li = self.topo.links.len();
                    self.topo.links.push(Link {
                        from: u,
                        to: v,
                        bandwidth_gbps: 0.0,
                        flows: Vec::new(), // sf-allow(hot-path-alloc): one empty Vec per newly created link, not per candidate
                        class,
                    });
                    self.alloc.link_of[(class_index(class) * self.nsw + u) * self.nsw + v] = li;
                    self.alloc.out_ports[u] += 1;
                    self.alloc.in_ports[v] += 1;
                    let (lu, lv) = (self.topo.switch_layer[u], self.topo.switch_layer[v]);
                    let (lo, hi) = if lu <= lv { (lu, lv) } else { (lv, lu) };
                    for b in lo..hi {
                        self.alloc.ill[b as usize] += 1;
                    }
                    li
                }
            };
            self.topo.links[li].bandwidth_gbps += bw_gbps;
            self.topo.links[li].flows.push(flow_idx);
            ids.push(li);
        }
        self.alloc.link_ids = ids;
    }

    /// Rolls a flow back out of the given links. Links that become empty are
    /// released from the port/ill budgets and the live index, but keep their
    /// slot in `topo.links` as tombstones so CDG indices stay stable.
    // sf: hot-path
    fn unrealize_flow(&mut self, flow_idx: usize, link_ids: &[usize], bw_gbps: f64) {
        for &li in link_ids {
            let link = &mut self.topo.links[li];
            link.bandwidth_gbps = (link.bandwidth_gbps - bw_gbps).max(0.0);
            if let Some(p) = link.flows.iter().rposition(|&f| f == flow_idx) {
                link.flows.remove(p);
            }
            if link.flows.is_empty() {
                let (u, v, class) = (link.from, link.to, link.class);
                link.bandwidth_gbps = 0.0;
                let slot = (class_index(class) * self.nsw + u) * self.nsw + v;
                if self.alloc.link_of[slot] == li {
                    self.alloc.link_of[slot] = usize::MAX;
                    self.alloc.out_ports[u] -= 1;
                    self.alloc.in_ports[v] -= 1;
                    let (lu, lv) = (self.topo.switch_layer[u], self.topo.switch_layer[v]);
                    let (lo, hi) = if lu <= lv { (lu, lv) } else { (lv, lu) };
                    for b in lo..hi {
                        self.alloc.ill[b as usize] -= 1;
                    }
                }
            }
        }
    }

    /// Compacts tombstoned links and returns the finished topology with the
    /// counters this pass accrued.
    fn finish(mut self) -> (Topology, RoutingStats) {
        let mut topo = self.topo;
        topo.links.retain(|l| !l.flows.is_empty());
        self.stats.links_created += topo.links.len() as u64;
        (topo, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommSpec, Core, Flow, SocSpec};
    use std::collections::{BTreeMap, BTreeSet};

    /// 4 cores on 2 layers, 2 switches (one per layer), star traffic.
    fn setup() -> (SocSpec, CommSpec, CommGraph) {
        let soc = SocSpec::new(
            (0..4)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.0,
                    height: 1.0,
                    x: f64::from(i % 2) * 3.0,
                    y: 0.0,
                    layer: u32::from(i >= 2),
                })
                .collect(),
            2,
        )
        .unwrap();
        let f = |src, dst, bw: f64, class| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: 10.0,
            message_type: class,
        };
        let comm = CommSpec::new(
            vec![
                f(0, 2, 400.0, MessageType::Request),
                f(2, 0, 200.0, MessageType::Response),
                f(1, 3, 300.0, MessageType::Request),
                f(0, 1, 100.0, MessageType::Request),
            ],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        (soc, comm, g)
    }

    fn lib() -> NocLibrary {
        NocLibrary::lp65()
    }

    #[test]
    fn routes_all_flows_and_respects_structure() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &g,
            &[0, 0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (2.0, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        // All flows have a path; same-switch flow 3 is single-hop.
        assert_eq!(topo.flow_paths.len(), 4);
        assert_eq!(topo.flow_paths[3].switches, vec![0]);
        assert_eq!(topo.flow_paths[0].switches, vec![0, 1]);
        // Request and response use separate links.
        assert!(topo.links.iter().any(|l| l.class == MessageType::Request));
        assert!(topo.links.iter().any(|l| l.class == MessageType::Response));
        for l in &topo.links {
            for &fi in &l.flows {
                assert_eq!(g.edge_list()[fi].class, l.class, "class mixing on a link");
            }
        }
    }

    #[test]
    fn reused_allocator_matches_fresh_allocator() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 11, 400.0);
        let layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
        let fresh = compute_paths(
            &g,
            &[0, 0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (2.0, 1.0)],
            &layers,
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        let mut alloc = PathAllocator::new();
        for _ in 0..3 {
            let again = alloc
                .compute_paths(
                    &g,
                    &[0, 0, 1, 1],
                    &[0, 1],
                    &[(1.0, 1.0), (2.0, 1.0)],
                    &layers,
                    2,
                    &lib(),
                    &cfg,
                    1.0,
                )
                .unwrap();
            assert_eq!(fresh, again, "allocator reuse must not change the topology");
        }
    }

    /// The two per-class passes on scoped threads produce the same
    /// topology *and* the same counter deltas as the sequential form.
    #[test]
    fn class_threaded_routing_matches_sequential() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 11, 400.0);
        let layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
        let mut serial = PathAllocator::new();
        let topo_serial = serial
            .compute_paths(&g, &[0, 0, 1, 1], &[0, 1], &[(1.0, 1.0), (2.0, 1.0)], &layers, 2, &lib(), &cfg, 1.0)
            .unwrap();
        let mut threaded = PathAllocator::new();
        let topo_threaded = threaded
            .compute_paths_classed(
                &g,
                &[0, 0, 1, 1],
                &[0, 1],
                &[(1.0, 1.0), (2.0, 1.0)],
                &layers,
                2,
                &lib(),
                &cfg,
                1.0,
                true,
            )
            .unwrap();
        assert_eq!(topo_serial, topo_threaded, "class threading must not change the topology");
        assert_eq!(serial.stats(), threaded.stats(), "counter deltas must match too");
        // The spec has both classes, so both calls answered via the merge.
        assert_eq!(serial.stats().class_merges, 1);
        assert_eq!(serial.stats().merge_fallbacks, 0);
        assert_eq!(serial.stats().flows_routed, 4);
    }

    /// When the classes collide on a shared budget (each class fits alone,
    /// the combination does not), the router replays the legacy interleaved
    /// pass, reproducing its exact behaviour — here, the response flow hits
    /// the exhausted vertical budget and reports `NoRoute`.
    #[test]
    fn merged_budget_overflow_falls_back_to_interleaved() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(1, 11, 400.0);
        let layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
        let mut alloc = PathAllocator::new();
        let err = alloc
            .compute_paths_classed(
                &g,
                &[0, 0, 1, 1],
                &[0, 1],
                &[(1.0, 1.0), (2.0, 1.0)],
                &layers,
                2,
                &lib(),
                &cfg,
                1.0,
                true,
            )
            .unwrap_err();
        // Interleaved semantics: the request flows claim the one vertical
        // link; the response flow then finds every edge hard-walled.
        assert!(matches!(err, PathError::NoRoute { flow: 1 }), "{err:?}");
        assert_eq!(alloc.stats().merge_fallbacks, 1);
        assert_eq!(alloc.stats().class_merges, 0);
    }

    /// A single-class spec skips the merge machinery entirely and routes
    /// one legacy pass.
    #[test]
    fn single_class_spec_routes_without_merge() {
        let (soc, _, _) = setup();
        let comm = CommSpec::new(
            vec![Flow {
                src: 0,
                dst: 2,
                bandwidth_mbs: 400.0,
                max_latency_cycles: 10.0,
                message_type: MessageType::Request,
            }],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        let cfg = PathConfig::new(25, 11, 400.0);
        let layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
        let mut alloc = PathAllocator::new();
        alloc
            .compute_paths_classed(
                &g,
                &[0, 0, 1, 1],
                &[0, 1],
                &[(1.0, 1.0), (2.0, 1.0)],
                &layers,
                2,
                &lib(),
                &cfg,
                1.0,
                true,
            )
            .unwrap();
        assert_eq!(alloc.stats().class_merges, 0);
        assert_eq!(alloc.stats().merge_fallbacks, 0);
        assert_eq!(alloc.stats().flows_routed, 1);
        assert_eq!(alloc.stats().links_created, 1);
    }

    #[test]
    fn link_bandwidth_accumulates() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &g,
            &[0, 0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (2.0, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        // Flows 0 (400 MB/s) and 2 (300 MB/s) both go 0 -> 1 on the request
        // link: 700 MB/s = 5.6 Gbps.
        let req01 = topo
            .links
            .iter()
            .find(|l| l.from == 0 && l.to == 1 && l.class == MessageType::Request)
            .expect("request link 0->1");
        assert!((req01.bandwidth_gbps - 5.6).abs() < 1e-9, "{}", req01.bandwidth_gbps);
        assert_eq!(req01.flows.len(), 2);
    }

    #[test]
    fn ill_budget_exhausted_by_attachments_detected() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(1, 11, 400.0);
        // Attach all cores to a single switch on layer 0: cores 2,3 (layer 1)
        // need one vertical attachment each = 2 > 1.
        let err = compute_paths(
            &g,
            &[0, 0, 0, 0],
            &[0],
            &[(1.5, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap_err();
        assert!(matches!(err, PathError::IllBudgetExhausted { used: 2, .. }), "{err:?}");
    }

    #[test]
    fn adjacent_layers_only_forces_multi_hop() {
        // 3 layers, one switch per layer, flow from layer 0 to layer 2.
        let soc = SocSpec::new(
            (0..3)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.0,
                    height: 1.0,
                    x: 0.0,
                    y: 0.0,
                    layer: i,
                })
                .collect(),
            3,
        )
        .unwrap();
        let comm = CommSpec::new(
            vec![Flow {
                src: 0,
                dst: 2,
                bandwidth_mbs: 100.0,
                max_latency_cycles: 10.0,
                message_type: MessageType::Request,
            }],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        let mut cfg = PathConfig::new(25, 11, 400.0);
        cfg.adjacent_layers_only = true;
        let topo = compute_paths(
            &g,
            &[0, 1, 2],
            &[0, 1, 2],
            &[(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
            &[0, 1, 2],
            3,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        assert_eq!(topo.flow_paths[0].switches, vec![0, 1, 2], "must hop through layer 1");

        // Without the restriction, the direct 0 -> 2 link wins (it is one
        // switch cheaper).
        cfg.adjacent_layers_only = false;
        let topo2 = compute_paths(
            &g,
            &[0, 1, 2],
            &[0, 1, 2],
            &[(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)],
            &[0, 1, 2],
            3,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        assert_eq!(topo2.flow_paths[0].switches, vec![0, 2]);
    }

    #[test]
    fn switch_size_limit_rejects_oversubscribed_attachment() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 3, 400.0);
        // One switch with 4 cores: needs 4 ports for cores alone > 3.
        let err = compute_paths(
            &g,
            &[0, 0, 0, 0],
            &[0],
            &[(1.5, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap_err();
        assert!(matches!(err, PathError::SwitchTooSmall { needed: 4, .. }), "{err:?}");
    }

    #[test]
    fn capacity_saturation_opens_parallel_link() {
        // Tiny capacity: force two links for two heavy flows.
        let (soc, _, _) = setup();
        let comm = CommSpec::new(
            vec![
                Flow {
                    src: 0,
                    dst: 2,
                    bandwidth_mbs: 900.0, // 7.2 Gbps
                    max_latency_cycles: 10.0,
                    message_type: MessageType::Request,
                },
                Flow {
                    src: 1,
                    dst: 3,
                    bandwidth_mbs: 900.0,
                    max_latency_cycles: 10.0,
                    message_type: MessageType::Request,
                },
            ],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        let cfg = PathConfig::new(25, 11, 400.0); // capacity 12.8 Gbps
        let topo = compute_paths(
            &g,
            &[0, 0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (2.0, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        let req_links: Vec<_> = topo
            .links
            .iter()
            .filter(|l| l.from == 0 && l.to == 1 && l.class == MessageType::Request)
            .collect();
        assert_eq!(req_links.len(), 2, "14.4 Gbps cannot fit one 12.8 Gbps link");
        for l in req_links {
            assert!(l.bandwidth_gbps <= 12.8 + 1e-9);
        }
    }

    #[test]
    fn cdg_stays_acyclic_per_class() {
        let (soc, _, g) = setup();
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &g,
            &[0, 0, 1, 1],
            &[0, 1],
            &[(1.0, 1.0), (2.0, 1.0)],
            &soc.cores.iter().map(|c| c.layer).collect::<Vec<_>>(),
            2,
            &lib(),
            &cfg,
            1.0,
        )
        .unwrap();
        // Rebuild the CDG from the final paths and assert acyclicity.
        for class in [MessageType::Request, MessageType::Response] {
            let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            let link_idx = |u: usize, v: usize| {
                topo.links
                    .iter()
                    .position(|l| l.from == u && l.to == v && l.class == class)
            };
            for (fi, path) in topo.flow_paths.iter().enumerate() {
                if g.edge_list()[fi].class != class {
                    continue;
                }
                let hops: Vec<usize> = path
                    .switches
                    .windows(2)
                    .filter_map(|w| link_idx(w[0], w[1]))
                    .collect();
                for w in hops.windows(2) {
                    adj.entry(w[0]).or_default().push(w[1]);
                }
            }
            // Kahn's algorithm: if all nodes drain, the graph is acyclic.
            let nodes: BTreeSet<usize> =
                adj.keys().copied().chain(adj.values().flatten().copied()).collect();
            let mut indeg: BTreeMap<usize, usize> = nodes.iter().map(|&n| (n, 0)).collect();
            for vs in adj.values() {
                for &v in vs {
                    *indeg.get_mut(&v).unwrap() += 1;
                }
            }
            let mut queue: Vec<usize> =
                indeg.iter().filter(|(_, &d)| d == 0).map(|(&n, _)| n).collect();
            let mut drained = 0;
            while let Some(u) = queue.pop() {
                drained += 1;
                if let Some(vs) = adj.get(&u) {
                    for &v in vs {
                        let d = indeg.get_mut(&v).unwrap();
                        *d -= 1;
                        if *d == 0 {
                            queue.push(v);
                        }
                    }
                }
            }
            assert_eq!(drained, nodes.len(), "CDG for {class:?} has a cycle");
        }
    }

    /// The incremental Pearce–Kelly CDG agrees with a from-scratch
    /// reachability check on randomized edge streams.
    #[test]
    fn incremental_cdg_matches_dfs_oracle() {
        fn reaches(adj: &[Vec<usize>], from: usize, to: usize) -> bool {
            let mut seen = vec![false; adj.len()];
            let mut stack = vec![from];
            seen[from] = true;
            while let Some(u) = stack.pop() {
                if u == to {
                    return true;
                }
                for &w in &adj[u] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            false
        }

        // Deterministic pseudo-random edge stream (xorshift).
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        const N: usize = 24;
        let mut cdg = ClassCdg::default();
        cdg.ensure_node(N - 1);
        let mut oracle: Vec<Vec<usize>> = vec![Vec::new(); N];
        let mut accepted = 0;
        for _ in 0..600 {
            let a = (next() % N as u64) as usize;
            let b = (next() % N as u64) as usize;
            if a == b {
                continue;
            }
            let closes_cycle = reaches(&oracle, b, a);
            match cdg.insert(a, b) {
                Ok(_) => {
                    assert!(!closes_cycle, "accepted {a}->{b} but oracle sees a cycle");
                    if !oracle[a].contains(&b) {
                        oracle[a].push(b);
                    }
                    accepted += 1;
                    // Topological-order invariant holds for every edge.
                    for (u, outs) in oracle.iter().enumerate() {
                        for &v in outs {
                            assert!(cdg.ord[u] < cdg.ord[v], "order violated on {u}->{v}");
                        }
                    }
                }
                Err(()) => {
                    assert!(closes_cycle, "rejected {a}->{b} but oracle sees no cycle");
                }
            }
        }
        assert!(accepted > 50, "stream should accept a healthy number of edges");
    }

    /// Rolling an edge batch back restores the graph exactly.
    #[test]
    fn cdg_rollback_restores_previous_edges() {
        let mut cdg = ClassCdg::default();
        cdg.ensure_node(3);
        assert_eq!(cdg.insert(0, 1), Ok(true));
        assert_eq!(cdg.insert(1, 2), Ok(true));
        // 2 -> 0 closes the cycle through 0 -> 1 -> 2.
        assert_eq!(cdg.insert(2, 0), Err(()));
        // Batch: add 2 -> 3 then fail on 3 -> 0; roll back 2 -> 3.
        assert_eq!(cdg.insert(2, 3), Ok(true));
        assert_eq!(cdg.insert(3, 0), Err(()));
        cdg.remove(2, 3);
        assert!(!cdg.adj[2].contains(&3));
        // 3 is free again: 0 -> 3 must now be insertable.
        assert_eq!(cdg.insert(0, 3), Ok(true));
    }
}
