//! Topology and floorplan export helpers (Graphviz DOT and plain text).
//!
//! The paper presents synthesized topologies as graphs (Figs. 13–14) and
//! floorplans as placed rectangles (Fig. 15). These helpers write both in
//! formats external tools can render.

use crate::layout::Layout;
use crate::spec::{MessageType, SocSpec};
use crate::topology::Topology;
use std::fmt::Write as _;

/// Renders the topology as a Graphviz DOT digraph: cores as boxes grouped
/// per layer, switches as ellipses, links annotated with bandwidth and
/// message class.
#[must_use]
pub fn topology_to_dot(topo: &Topology, soc: &SocSpec) -> String {
    let mut out = String::from("digraph noc {\n  rankdir=LR;\n  node [fontsize=10];\n");
    for layer in 0..soc.layers {
        let _ = writeln!(out, "  subgraph cluster_layer{layer} {{");
        let _ = writeln!(out, "    label=\"layer {layer}\";");
        for &c in &soc.cores_in_layer(layer) {
            let _ = writeln!(
                out,
                "    core{c} [shape=box, label=\"{}\"];",
                soc.cores[c].name
            );
        }
        for s in 0..topo.switch_count() {
            if topo.switch_layer[s] == layer {
                let _ = writeln!(
                    out,
                    "    sw{s} [shape=ellipse, style=filled, fillcolor=lightgrey, \
                     label=\"sw{s}\\n{}x{}\"];",
                    topo.input_ports(s),
                    topo.output_ports(s)
                );
            }
        }
        let _ = writeln!(out, "  }}");
    }
    for (c, &s) in topo.core_attach.iter().enumerate() {
        let _ = writeln!(out, "  core{c} -> sw{s} [dir=both, style=dashed];");
    }
    for l in &topo.links {
        let color = match l.class {
            MessageType::Request => "black",
            MessageType::Response => "blue",
        };
        let _ = writeln!(
            out,
            "  sw{} -> sw{} [label=\"{:.1}G\", color={color}];",
            l.from, l.to, l.bandwidth_gbps
        );
    }
    out.push_str("}\n");
    out
}

/// Renders per-layer floorplans as a simple SVG (one row of layers, blocks
/// as rectangles) for quick visual inspection of insertion results.
#[must_use]
pub fn layout_to_svg(layout: &Layout) -> String {
    const SCALE: f64 = 24.0;
    const PAD: f64 = 20.0;
    let mut max_w: f64 = 1.0;
    let mut max_h: f64 = 1.0;
    for plan in &layout.layers {
        let (w, h) = plan.bounding_box();
        max_w = max_w.max(w);
        max_h = max_h.max(h);
    }
    let canvas_w = (max_w * SCALE + PAD) * layout.layers.len() as f64 + PAD;
    let canvas_h = max_h * SCALE + 2.0 * PAD;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{canvas_w:.0}\" height=\"{canvas_h:.0}\">\n"
    );
    for (i, plan) in layout.layers.iter().enumerate() {
        let ox = PAD + i as f64 * (max_w * SCALE + PAD);
        for b in &plan.blocks {
            let is_noc = b.block.name.starts_with("sw") || b.block.name.starts_with("tsv");
            let fill = if is_noc { "#ffcc66" } else { "#99ccff" };
            let _ = writeln!(
                out,
                "  <rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"{fill}\" stroke=\"black\"/>",
                ox + b.x * SCALE,
                PAD + (max_h - b.y - b.height()) * SCALE,
                b.width() * SCALE,
                b.height() * SCALE
            );
            let _ = writeln!(
                out,
                "  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"8\">{}</text>",
                ox + b.x * SCALE + 1.0,
                PAD + (max_h - b.y - b.height()) * SCALE + 9.0,
                b.block.name
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommSpec, Core, Flow};
    use crate::synthesis::{SynthesisConfig, SynthesisEngine};

    fn design() -> (SocSpec, Topology, Layout) {
        let soc = SocSpec::new(
            (0..4)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.5,
                    height: 1.5,
                    x: f64::from(i % 2) * 2.0,
                    y: 0.0,
                    layer: u32::from(i >= 2),
                })
                .collect(),
            2,
        )
        .unwrap();
        let comm = CommSpec::new(
            vec![Flow {
                src: 0,
                dst: 3,
                bandwidth_mbs: 200.0,
                max_latency_cycles: 10.0,
                message_type: MessageType::Request,
            }],
            &soc,
        )
        .unwrap();
        let outcome =
            SynthesisEngine::new(&soc, &comm, SynthesisConfig::default()).unwrap().run();
        let p = outcome.best_power().unwrap();
        (soc, p.topology.clone(), p.layout.clone().expect("layout enabled"))
    }

    #[test]
    fn dot_mentions_every_core_switch_and_link() {
        let (soc, topo, _) = design();
        let dot = topology_to_dot(&topo, &soc);
        assert!(dot.starts_with("digraph noc {"));
        for c in 0..soc.core_count() {
            assert!(dot.contains(&format!("core{c} ")), "missing core {c}");
        }
        for s in 0..topo.switch_count() {
            assert!(dot.contains(&format!("sw{s} [shape=ellipse")), "missing switch {s}");
        }
        assert_eq!(dot.matches(" -> sw").count() - soc.core_count(), topo.links.len());
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn svg_draws_all_blocks() {
        let (_, _, layout) = design();
        let svg = layout_to_svg(&layout);
        let blocks: usize = layout.layers.iter().map(|p| p.blocks.len()).sum();
        assert_eq!(svg.matches("<rect ").count(), blocks);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
    }
}
