//! Results of a synthesis run: the feasible trade-off set, the rejected
//! candidates with their typed reasons, and the selection helpers a
//! designer (or a script) picks the final topology with.

use super::diagnostics::RejectReason;
use crate::eval::DesignMetrics;
use crate::graph::PartitionStats;
use crate::layout::{AnnealStats, Layout};
use crate::paths::RoutingStats;
use crate::place::LpStats;
use crate::topology::Topology;
use std::fmt;

/// Which phase produced a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Algorithm 1.
    Phase1,
    /// Algorithm 2.
    Phase2,
}

/// One feasible design point of the trade-off set.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The synthesized topology (routes, links, positions).
    pub topology: Topology,
    /// Evaluated metrics (with final post-layout positions when layout ran).
    pub metrics: DesignMetrics,
    /// Per-layer floorplans, when layout ran.
    pub layout: Option<Layout>,
    /// Which phase produced the point.
    pub phase: PhaseKind,
    /// θ used (Phase 1 SPG retries only).
    pub theta: Option<f64>,
    /// The sweep parameter: requested switch count (Phase 1) or the
    /// resulting switch count (Phase 2).
    pub requested_switches: usize,
}

/// A candidate attempt that was explored and discarded, with the typed
/// reason. A single candidate can contribute several rejected attempts —
/// one per θ-escalation step it failed at — before it is terminally
/// accepted or rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedPoint {
    /// Sweep parameter (requested switch count / increment result).
    pub requested_switches: usize,
    /// Frequency at which it was tried.
    pub frequency_mhz: f64,
    /// Phase that produced the candidate.
    pub phase: PhaseKind,
    /// θ of the escalation step that failed (`None` for the base attempt).
    pub theta: Option<f64>,
    /// Why the attempt was discarded.
    pub reason: RejectReason,
}

impl fmt::Display for RejectedPoint {
    /// Renders the attempt exactly as the legacy string-typed driver did:
    /// `theta {θ}: {reason}` for escalation steps, the bare reason
    /// otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.theta {
            Some(theta) => write!(f, "theta {theta}: {}", self.reason),
            None => write!(f, "{}", self.reason),
        }
    }
}

/// The full outcome of a synthesis run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SynthesisOutcome {
    /// All feasible design points, in deterministic candidate order.
    pub points: Vec<DesignPoint>,
    /// All rejected attempts with reasons (diagnostics), in deterministic
    /// candidate order.
    pub rejected: Vec<RejectedPoint>,
    /// How the Phase-1 partitioning work was served (cache hits, warm vs
    /// cold partitions, in-place SPG derivations). Counted per candidate,
    /// so serial and parallel sweeps report identical totals.
    pub partition_stats: PartitionStats,
    /// How the switch-placement LP work was served (warm vs cold simplex
    /// solves, pivots run and pivots saved). Counted per candidate like
    /// [`SynthesisOutcome::partition_stats`], so the totals are
    /// scheduling-independent.
    pub lp_stats: LpStats,
    /// How the tempered-annealing layout path behaved (runs, replica
    /// exchanges), when [`super::SynthesisConfig::anneal_replicas`] routed
    /// layout through it. Counted per candidate like the other stats, so
    /// the totals are scheduling-independent.
    pub anneal_stats: AnnealStats,
    /// How the flow routing work was served (flows routed, links created,
    /// deadlock rollbacks, per-class merges vs interleaved fallbacks).
    /// Counted per candidate like the other stats, so serial sweeps,
    /// parallel sweeps and class-threaded routing all report identical
    /// totals.
    pub routing_stats: RoutingStats,
}

impl SynthesisOutcome {
    /// The most power-efficient feasible point.
    #[must_use]
    pub fn best_power(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.metrics.power.total_mw().total_cmp(&b.metrics.power.total_mw()))
    }

    /// The lowest-latency feasible point.
    #[must_use]
    pub fn best_latency(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.metrics.avg_latency_cycles.total_cmp(&b.metrics.avg_latency_cycles))
    }

    /// Power/latency Pareto front (ascending power).
    #[must_use]
    pub fn pareto_front(&self) -> Vec<&DesignPoint> {
        let mut sorted: Vec<&DesignPoint> = self.points.iter().collect();
        sorted.sort_by(|a, b| a.metrics.power.total_mw().total_cmp(&b.metrics.power.total_mw()));
        let mut front: Vec<&DesignPoint> = Vec::new();
        let mut best_lat = f64::INFINITY;
        for p in sorted {
            if p.metrics.avg_latency_cycles < best_lat - 1e-12 {
                best_lat = p.metrics.avg_latency_cycles;
                front.push(p);
            }
        }
        front
    }
}
