//! Typed diagnostics for the synthesis sweep: why a candidate was rejected,
//! the event stream an observer can subscribe to, and the errors that abort
//! a run before exploration starts.

use super::candidates::Candidate;
use super::config::ConfigError;
use crate::paths::PathError;
use crate::spec::SpecError;
use std::error::Error;
use std::fmt;
use sunfloor_lp::SolveError;
use sunfloor_partition::PartitionError;

/// Why a candidate design point was discarded.
///
/// Every variant's [`Display`](fmt::Display) output preserves the exact
/// message text the driver historically reported as a plain `String`, so
/// log-scraping callers keep working while typed callers can match on the
/// variant (and its fields) instead.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// A flow could not be routed within the hard constraints.
    NoRoute {
        /// Flow index that failed.
        flow: usize,
    },
    /// No deadlock-free path could be found for a flow.
    Deadlock {
        /// Flow index that failed.
        flow: usize,
    },
    /// The inter-layer link budget is exhausted before routing started:
    /// the core attachments alone exceed it (pruning rule 3 of §V-C).
    IllBudgetExhausted {
        /// Boundary index (between layers `b` and `b+1`).
        boundary: usize,
        /// Crossings already required by core attachments.
        used: u32,
        /// The budget.
        max_ill: u32,
    },
    /// A switch cannot host its attached cores within the size limit.
    SwitchTooSmall {
        /// Switch index.
        switch: usize,
        /// Ports needed just for core attachments.
        needed: u32,
        /// The limit.
        limit: u32,
    },
    /// The finished design crosses a layer boundary with more vertical
    /// links than `max_ill` (Fig. 3's final screening).
    IllExceeded {
        /// Vertical links the design needs on its worst boundary.
        got: u32,
        /// The configured budget.
        limit: u32,
    },
    /// A switch in the finished design exceeds the frequency-dependent
    /// port limit.
    SwitchTooLarge {
        /// Switch index.
        switch: usize,
        /// Ports the switch ended up with.
        ports: u32,
        /// The limit at `frequency_mhz`.
        limit: u32,
        /// Frequency the limit was evaluated at, MHz.
        frequency_mhz: f64,
    },
    /// The design misses at least one flow's latency budget.
    LatencyViolated {
        /// Worst violation, cycles.
        excess_cycles: f64,
    },
    /// Evaluating the finished design overflowed the analytical models:
    /// at least one metric came back `inf` or `NaN` (possible with
    /// extreme but parseable spec numbers, e.g. bandwidths near
    /// `f64::MAX`). Such a design cannot be meaningfully compared, so it
    /// is screened out instead of reported as feasible.
    NonFiniteMetrics,
    /// The min-cut partitioner could not produce the requested split.
    Partition(PartitionError),
    /// The switch-placement LP broke down.
    Placement(SolveError),
    /// Routing failed with no more specific cause recorded.
    RoutingFailed,
}

impl RejectReason {
    /// A short stable label for the variant, for grouping diagnostics
    /// (e.g. the CLI's rejection summary).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::NoRoute { .. } => "no-route",
            Self::Deadlock { .. } => "deadlock",
            Self::IllBudgetExhausted { .. } => "ill-budget-exhausted",
            Self::SwitchTooSmall { .. } => "switch-too-small",
            Self::IllExceeded { .. } => "ill-exceeded",
            Self::SwitchTooLarge { .. } => "switch-too-large",
            Self::LatencyViolated { .. } => "latency-violated",
            Self::NonFiniteMetrics => "non-finite-metrics",
            Self::Partition(_) => "partition",
            Self::Placement(_) => "placement",
            Self::RoutingFailed => "routing-failed",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoRoute { flow } => write!(f, "no feasible route for flow {flow}"),
            Self::Deadlock { flow } => write!(f, "no deadlock-free route for flow {flow}"),
            Self::IllBudgetExhausted { boundary, used, max_ill } => write!(
                f,
                "core attachments already need {used} vertical links at boundary {boundary} (budget {max_ill})"
            ),
            Self::SwitchTooSmall { switch, needed, limit } => write!(
                f,
                "switch {switch} needs {needed} ports for its cores alone (limit {limit})"
            ),
            Self::IllExceeded { got, limit } => {
                write!(f, "inter-layer links {got} exceed max_ill {limit}")
            }
            Self::SwitchTooLarge { switch, ports, limit, frequency_mhz } => write!(
                f,
                "switch {switch} has {ports} ports (limit {limit} at {frequency_mhz} MHz)"
            ),
            Self::LatencyViolated { excess_cycles } => {
                write!(f, "latency constraint violated by {excess_cycles:.2} cycles")
            }
            Self::NonFiniteMetrics => {
                write!(f, "design metrics overflowed to a non-finite value")
            }
            Self::Partition(e) => write!(f, "{e}"),
            Self::Placement(e) => write!(f, "placement LP: {e}"),
            Self::RoutingFailed => write!(f, "routing failed"),
        }
    }
}

impl From<PathError> for RejectReason {
    fn from(e: PathError) -> Self {
        match e {
            PathError::NoRoute { flow } => Self::NoRoute { flow },
            PathError::DeadlockUnavoidable { flow } => Self::Deadlock { flow },
            PathError::IllBudgetExhausted { boundary, used, max_ill } => {
                Self::IllBudgetExhausted { boundary, used, max_ill }
            }
            PathError::SwitchTooSmall { switch, needed, max_switch_size } => {
                Self::SwitchTooSmall { switch, needed, limit: max_switch_size }
            }
        }
    }
}

impl From<PartitionError> for RejectReason {
    fn from(e: PartitionError) -> Self {
        Self::Partition(e)
    }
}

impl From<SolveError> for RejectReason {
    fn from(e: SolveError) -> Self {
        Self::Placement(e)
    }
}

/// One step of the design-space sweep, streamed to a
/// [`SweepObserver`] as the engine commits results.
///
/// Events are delivered in deterministic candidate order — in parallel runs
/// each candidate's events are replayed when its slot in the ordered result
/// stream is reached, so an observer sees the same sequence regardless of
/// [`super::Parallelism`].
#[derive(Debug, Clone, PartialEq)]
pub enum SweepEvent {
    /// The engine began evaluating a candidate.
    CandidateStarted {
        /// The candidate being evaluated.
        candidate: Candidate,
    },
    /// Phase 1 escalated the SPG θ for a candidate whose earlier attempts
    /// missed the constraints (Algorithm 1, steps 11–20).
    ThetaEscalated {
        /// The candidate being escalated.
        candidate: Candidate,
        /// The θ value now being tried.
        theta: f64,
    },
    /// Terminal: the candidate produced a feasible design point.
    CandidateAccepted {
        /// The accepted candidate.
        candidate: Candidate,
        /// Index of the point in [`super::SynthesisOutcome::points`].
        point_index: usize,
    },
    /// Terminal: the candidate was discarded after exhausting its attempts.
    CandidateRejected {
        /// The rejected candidate.
        candidate: Candidate,
        /// The final attempt's rejection reason.
        reason: RejectReason,
    },
}

/// Receives [`SweepEvent`]s as the engine commits candidate results.
///
/// Every candidate produces exactly one terminal event
/// ([`SweepEvent::CandidateAccepted`] or [`SweepEvent::CandidateRejected`])
/// after its `CandidateStarted` and any `ThetaEscalated` events.
///
/// Any `FnMut(&SweepEvent)` closure is an observer.
pub trait SweepObserver {
    /// Called once per event, in deterministic sweep order.
    fn on_event(&mut self, event: &SweepEvent);
}

impl<F: FnMut(&SweepEvent)> SweepObserver for F {
    fn on_event(&mut self, event: &SweepEvent) {
        self(event);
    }
}

/// Errors aborting a synthesis run before exploration starts.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The configuration is inconsistent.
    Config(ConfigError),
    /// Input specifications are inconsistent.
    Spec(SpecError),
    /// No frequency in the sweep admits any switch (size limit below 2).
    NoUsableFrequency,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::Spec(e) => write!(f, "invalid specification: {e}"),
            Self::NoUsableFrequency => {
                write!(f, "no frequency in the sweep supports any switch size")
            }
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Spec(e) => Some(e),
            Self::NoUsableFrequency => None,
        }
    }
}

impl From<SpecError> for SynthesisError {
    fn from(e: SpecError) -> Self {
        Self::Spec(e)
    }
}

impl From<ConfigError> for SynthesisError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The typed reasons must round-trip the exact legacy message text that
    /// the pre-redesign driver produced as plain `String`s.
    #[test]
    fn display_round_trips_legacy_messages() {
        let cases: Vec<(RejectReason, &str)> = vec![
            (RejectReason::NoRoute { flow: 7 }, "no feasible route for flow 7"),
            (RejectReason::Deadlock { flow: 3 }, "no deadlock-free route for flow 3"),
            (
                RejectReason::IllBudgetExhausted { boundary: 1, used: 30, max_ill: 25 },
                "core attachments already need 30 vertical links at boundary 1 (budget 25)",
            ),
            (
                RejectReason::SwitchTooSmall { switch: 2, needed: 13, limit: 11 },
                "switch 2 needs 13 ports for its cores alone (limit 11)",
            ),
            (
                RejectReason::IllExceeded { got: 28, limit: 25 },
                "inter-layer links 28 exceed max_ill 25",
            ),
            (
                RejectReason::SwitchTooLarge {
                    switch: 4,
                    ports: 13,
                    limit: 11,
                    frequency_mhz: 400.0,
                },
                "switch 4 has 13 ports (limit 11 at 400 MHz)",
            ),
            (
                RejectReason::LatencyViolated { excess_cycles: 2.345 },
                "latency constraint violated by 2.35 cycles",
            ),
            (
                RejectReason::NonFiniteMetrics,
                "design metrics overflowed to a non-finite value",
            ),
            (
                RejectReason::Partition(PartitionError::TooManyParts {
                    parts: 9,
                    vertices: 4,
                }),
                "requested 9 blocks but the graph has only 4 vertices",
            ),
            (
                RejectReason::Placement(SolveError::Infeasible),
                "placement LP: linear program is infeasible",
            ),
            (RejectReason::RoutingFailed, "routing failed"),
        ];
        for (reason, legacy) in cases {
            assert_eq!(reason.to_string(), legacy, "{}", reason.kind());
        }
    }

    /// Path errors keep their payload when converted to reject reasons, and
    /// the two Display paths agree.
    #[test]
    fn path_errors_convert_losslessly() {
        let cases = [
            PathError::NoRoute { flow: 5 },
            PathError::DeadlockUnavoidable { flow: 2 },
            PathError::IllBudgetExhausted { boundary: 0, used: 9, max_ill: 6 },
            PathError::SwitchTooSmall { switch: 1, needed: 8, max_switch_size: 6 },
        ];
        for e in cases {
            let legacy = e.to_string();
            assert_eq!(RejectReason::from(e).to_string(), legacy);
        }
    }

    #[test]
    fn kinds_are_distinct_per_variant() {
        let reasons = [
            RejectReason::NoRoute { flow: 0 },
            RejectReason::Deadlock { flow: 0 },
            RejectReason::IllBudgetExhausted { boundary: 0, used: 0, max_ill: 0 },
            RejectReason::SwitchTooSmall { switch: 0, needed: 0, limit: 0 },
            RejectReason::IllExceeded { got: 0, limit: 0 },
            RejectReason::SwitchTooLarge { switch: 0, ports: 0, limit: 0, frequency_mhz: 0.0 },
            RejectReason::LatencyViolated { excess_cycles: 0.0 },
            RejectReason::NonFiniteMetrics,
            RejectReason::Partition(PartitionError::ZeroParts),
            RejectReason::Placement(SolveError::Unbounded),
            RejectReason::RoutingFailed,
        ];
        let kinds: std::collections::BTreeSet<&str> =
            reasons.iter().map(RejectReason::kind).collect();
        assert_eq!(kinds.len(), reasons.len());
    }
}
