//! The streaming synthesis engine: explicit candidate enumeration, optional
//! scoped-thread fan-out, early-stop policies and an observable event
//! stream — the redesigned driver behind the Fig. 3 flow.

use super::candidates::{phase1_candidates, phase2_candidates, Candidate, SweepParam};
use super::config::{SynthesisConfig, SynthesisMode};
use super::diagnostics::{RejectReason, SweepEvent, SweepObserver, SynthesisError};
use super::outcome::{DesignPoint, PhaseKind, RejectedPoint, SynthesisOutcome};
use crate::eval::evaluate;
use crate::graph::{CommGraph, PartitionCache, PartitionStats};
use crate::layout::{layout_design, layout_design_tempered, AnnealStats};
use crate::paths::{PathAllocator, PathConfig, PathError, RoutingStats};
use crate::phase1::{self, Connectivity};
use crate::phase2;
use crate::place::{LpStats, PlacementSeeds, PlacementSolver};
use crate::spec::{CommSpec, SocSpec};
use crate::topology::Topology;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};
use sunfloor_partition::PartitionError;

/// Per-replica iteration budget of the tempered layout annealer. Modest on
/// purpose: the sweep runs one anneal per layer per candidate attempt, and
/// tempering recovers quality through the aggregate replica budget rather
/// than a long single chain.
const TEMPERED_LAYOUT_ITERATIONS: u32 = 8_000;

/// When the engine stops the sweep before exhausting every candidate.
///
/// The policy is applied to the ordered result stream, so for the
/// deterministic policies ([`StopPolicy::FirstFeasible`] and
/// [`StopPolicy::PointBudget`]) serial and parallel runs stop at the same
/// candidate and produce identical outcomes. [`StopPolicy::Deadline`] is
/// wall-clock based and therefore inherently run-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopPolicy {
    /// Evaluate every candidate (the paper's full trade-off sweep).
    #[default]
    Exhaustive,
    /// Stop as soon as the first candidate (in sweep order) is feasible.
    FirstFeasible,
    /// Stop once this many feasible points have been collected.
    PointBudget(usize),
    /// Stop once this much wall-clock time has elapsed since `run` began
    /// (checked between candidates; an in-flight candidate finishes).
    Deadline(Duration),
}

impl StopPolicy {
    fn met(self, outcome: &SynthesisOutcome, started: Instant) -> bool {
        match self {
            Self::Exhaustive => false,
            Self::FirstFeasible => !outcome.points.is_empty(),
            Self::PointBudget(n) => outcome.points.len() >= n,
            Self::Deadline(limit) => started.elapsed() >= limit,
        }
    }
}

/// Everything one candidate produced: the attempts it burned through
/// (base + θ escalations), the θ values it escalated to, and the feasible
/// point, if any. Computed on a worker thread, committed in order by the
/// driver.
struct CandidateEvaluation {
    candidate: Candidate,
    /// Rejected attempts in the order tried (terminal one last, unless the
    /// candidate was accepted).
    attempts: Vec<RejectedPoint>,
    /// θ values the escalation loop tried, in order.
    thetas: Vec<f64>,
    point: Option<DesignPoint>,
    /// Partition-cache counters this candidate accrued (deterministic per
    /// candidate, so the committed totals match serial and parallel).
    stats: PartitionStats,
    /// Placement-LP counters this candidate accrued (same per-candidate
    /// determinism contract as `stats`).
    lp_stats: LpStats,
    /// Tempered-layout counters this candidate accrued (same per-candidate
    /// determinism contract as `stats`).
    anneal_stats: AnnealStats,
    /// Routing counters this candidate accrued (same per-candidate
    /// determinism contract as `stats`; class-threaded and sequential
    /// routing produce identical deltas).
    routing_stats: RoutingStats,
}

impl CandidateEvaluation {
    fn new(candidate: Candidate) -> Self {
        Self {
            candidate,
            attempts: Vec::new(),
            thetas: Vec::new(),
            point: None,
            stats: PartitionStats::default(),
            lp_stats: LpStats::default(),
            anneal_stats: AnnealStats::default(),
            routing_stats: RoutingStats::default(),
        }
    }
}

/// The precomputed Phase-1 base partitions: one per swept switch count, the
/// chain warm-starting each count from the previous one's assignment.
///
/// Base partitions are frequency-independent (the PG depends only on α), so
/// they are computed once per engine — serially, in ascending switch-count
/// order — and shared read-only by every sweep worker. This keeps
/// warm-start chains deterministic: a worker never seeds from whatever it
/// happened to evaluate last.
struct Phase1Seeds {
    /// `(requested switch count, seed)` in sweep order.
    seeds: Vec<(usize, Result<Phase1Seed, PartitionError>)>,
    /// Counters accrued while building the chain.
    stats: PartitionStats,
}

struct Phase1Seed {
    conn: Connectivity,
    /// The partition assignment behind `conn`, kept as the warm-start seed
    /// for the candidate's θ-escalation chain.
    assignment: Vec<u32>,
}

impl Phase1Seeds {
    fn get(&self, count: usize) -> Option<&Result<Phase1Seed, PartitionError>> {
        self.seeds.iter().find(|(k, _)| *k == count).map(|(_, seed)| seed)
    }
}

/// The precomputed cross-candidate placement seeds: one optimal LP basis
/// pair per swept switch count, captured by a serial warm-up that routes
/// and places each Phase-1 seed connectivity once at the first usable
/// frequency — the placement-LP analogue of [`Phase1Seeds`].
///
/// The bank is computed once per engine and shared read-only (behind an
/// [`Arc`]) by every sweep worker's [`PlacementSolver`], so seeding from
/// it is scheduling-invariant: a candidate's base placement starts from
/// the same fixed basis whether the sweep runs serially or fanned out.
/// The counters the warm-up itself accrued are added to the outcome once
/// per run, like the Phase-1 seed chain's partition counters.
struct PlacementWarmup {
    seeds: Arc<PlacementSeeds>,
    /// Placement-LP counters the warm-up accrued (its cold solves).
    lp_stats: LpStats,
    /// Routing counters the warm-up accrued (one pass per seeded count).
    routing_stats: RoutingStats,
}

/// The redesigned synthesis driver (paper Fig. 3).
///
/// Construction validates the configuration and the specifications eagerly;
/// [`SynthesisEngine::run`] then evaluates the explicit candidate list —
/// serially or fanned out over scoped worker threads per
/// [`super::Parallelism`] — committing results in deterministic candidate
/// order, so serial and parallel runs produce identical
/// [`SynthesisOutcome`]s.
///
/// ```
/// use sunfloor_core::spec::{CommSpec, Core, Flow, MessageType, SocSpec};
/// use sunfloor_core::synthesis::{SynthesisConfig, SynthesisEngine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let soc = SocSpec::new(
///     vec![
///         Core { name: "cpu".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 0 },
///         Core { name: "mem".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 1 },
///     ],
///     2,
/// )?;
/// let comm = CommSpec::new(
///     vec![Flow { src: 0, dst: 1, bandwidth_mbs: 400.0, max_latency_cycles: 6.0,
///                 message_type: MessageType::Request }],
///     &soc,
/// )?;
/// let cfg = SynthesisConfig::builder().jobs(2).build()?;
/// let outcome = SynthesisEngine::new(&soc, &comm, cfg)?.run();
/// assert!(outcome.best_power().is_some());
/// # Ok(())
/// # }
/// ```
pub struct SynthesisEngine<'a> {
    soc: &'a SocSpec,
    graph: CommGraph,
    cfg: SynthesisConfig,
    /// Frequencies of the sweep that admit at least a 2-port switch.
    frequencies: Vec<f64>,
    /// Lazily computed warm-chained Phase-1 base partitions (shared by all
    /// sweep workers; stable across repeated `run` calls).
    phase1_seeds: OnceLock<Phase1Seeds>,
    /// Lazily computed cross-candidate placement seed bank (same sharing
    /// and stability contract as `phase1_seeds`).
    placement_warmup: OnceLock<PlacementWarmup>,
}

impl<'a> SynthesisEngine<'a> {
    /// Validates the specifications and the configuration and prepares the
    /// sweep.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Spec`] for inconsistent specifications,
    /// [`SynthesisError::Config`] for an invalid configuration and
    /// [`SynthesisError::NoUsableFrequency`] when no swept frequency admits
    /// any switch.
    pub fn new(
        soc: &'a SocSpec,
        comm: &CommSpec,
        cfg: SynthesisConfig,
    ) -> Result<Self, SynthesisError> {
        soc.validate()?;
        comm.validate(soc)?;
        cfg.validate()?;
        let frequencies: Vec<f64> = cfg
            .frequencies_mhz
            .iter()
            .copied()
            .filter(|&f| cfg.library.switch.max_size_for_frequency(f) >= 2)
            .collect();
        if frequencies.is_empty() {
            return Err(SynthesisError::NoUsableFrequency);
        }
        let graph = CommGraph::new(soc, comm);
        Ok(Self {
            soc,
            graph,
            cfg,
            frequencies,
            phase1_seeds: OnceLock::new(),
            placement_warmup: OnceLock::new(),
        })
    }

    /// The warm-chained Phase-1 base partitions, computed once per engine.
    fn phase1_seeds(&self) -> &Phase1Seeds {
        self.phase1_seeds.get_or_init(|| {
            let cfg = &self.cfg;
            let mut cache = PartitionCache::new();
            let mut seeds = Vec::new();
            let mut prev: Option<Vec<u32>> = None;
            // Switch counts are frequency-independent; enumerate them from
            // the first usable frequency's candidate list.
            let counts = self
                .frequencies
                .first()
                .map(|&f| phase1_candidates(cfg, self.soc, f))
                .unwrap_or_default();
            for candidate in counts {
                let SweepParam::SwitchCount(count) = candidate.sweep else { continue };
                let result = phase1::connectivity_cached(
                    &self.graph,
                    self.soc,
                    count,
                    cfg.alpha,
                    None,
                    cfg.theta_max,
                    cfg.rng_seed,
                    prev.as_deref(),
                    &mut cache,
                );
                match result {
                    Ok(conn) => {
                        let assignment: Vec<u32> =
                            conn.core_attach.iter().map(|&a| a as u32).collect();
                        prev = Some(assignment.clone());
                        seeds.push((count, Ok(Phase1Seed { conn, assignment })));
                    }
                    Err(e) => seeds.push((count, Err(e))),
                }
            }
            Phase1Seeds { seeds, stats: cache.stats }
        })
    }

    /// The cross-candidate placement seed bank, computed once per engine:
    /// each Phase-1 seed connectivity is routed and placed once — serially,
    /// in ascending switch-count order, at the first usable frequency — and
    /// the optimal basis pair exported. Counts whose warm-up fails to route
    /// simply stay unseeded (those candidates place cold, as before).
    fn placement_warmup(&self) -> &PlacementWarmup {
        self.placement_warmup.get_or_init(|| {
            let cfg = &self.cfg;
            let mut seeds = PlacementSeeds::new();
            let mut alloc = PathAllocator::new();
            let mut placement = PlacementSolver::new();
            let Some(&freq) = self.frequencies.first() else {
                return PlacementWarmup {
                    seeds: Arc::new(seeds),
                    lp_stats: LpStats::default(),
                    routing_stats: RoutingStats::default(),
                };
            };
            let core_layers: Vec<u32> = self.soc.cores.iter().map(|c| c.layer).collect();
            let path_cfg = PathConfig {
                max_ill: cfg.max_ill,
                soft_ill_margin: cfg.soft_ill_margin,
                max_switch_size: cfg.library.switch.max_size_for_frequency(freq),
                soft_switch_margin: cfg.soft_switch_margin,
                adjacent_layers_only: false,
                frequency_mhz: freq,
                deadlock_retries: 24,
            };
            let class_threads = cfg.parallelism.effective_jobs() <= 1;
            for (count, seed) in &self.phase1_seeds().seeds {
                let Ok(seed) = seed else { continue };
                let Ok(mut topo) = alloc.compute_paths_classed(
                    &self.graph,
                    &seed.conn.core_attach,
                    &seed.conn.switch_layer,
                    &seed.conn.est_positions,
                    &core_layers,
                    self.soc.layers,
                    &cfg.library,
                    &path_cfg,
                    cfg.alpha,
                    class_threads,
                ) else {
                    continue;
                };
                if placement.place(&mut topo, self.soc, &self.graph).is_ok() {
                    if let Some(s) = placement.export_seed(topo.switch_count()) {
                        seeds.insert(*count, s);
                    }
                }
            }
            PlacementWarmup {
                seeds: Arc::new(seeds),
                lp_stats: placement.stats(),
                routing_stats: alloc.stats(),
            }
        })
    }

    /// The configuration the engine runs with.
    #[must_use]
    pub fn config(&self) -> &SynthesisConfig {
        &self.cfg
    }

    /// The explicit candidate list of the primary sweep, in evaluation
    /// order: for every usable frequency, the Phase 1 switch counts
    /// ([`SynthesisMode::Auto`] / [`SynthesisMode::Phase1Only`]) or the
    /// Phase 2 increments ([`SynthesisMode::Phase2Only`]). In `Auto` mode
    /// the engine additionally enumerates the Phase 2 increments for a
    /// frequency whose Phase 1 sweep yielded no feasible point.
    #[must_use]
    pub fn candidates(&self) -> Vec<Candidate> {
        self.frequencies.iter().flat_map(|&f| self.primary_candidates(f)).collect()
    }

    /// The primary candidate list at one frequency — the single source both
    /// [`Self::candidates`] and the run loop enumerate from.
    fn primary_candidates(&self, freq: f64) -> Vec<Candidate> {
        match self.cfg.mode {
            SynthesisMode::Auto | SynthesisMode::Phase1Only => {
                phase1_candidates(&self.cfg, self.soc, freq)
            }
            SynthesisMode::Phase2Only => phase2_candidates(&self.cfg, self.soc, freq),
        }
    }

    /// Runs the full sweep (no early stop, no observer).
    #[must_use]
    pub fn run(&self) -> SynthesisOutcome {
        self.run_inner(StopPolicy::Exhaustive, None)
    }

    /// Runs the sweep until `policy` says stop.
    #[must_use]
    pub fn run_with_policy(&self, policy: StopPolicy) -> SynthesisOutcome {
        self.run_inner(policy, None)
    }

    /// Runs the full sweep, streaming [`SweepEvent`]s to `observer`.
    #[must_use]
    pub fn run_with_observer(&self, observer: &mut dyn SweepObserver) -> SynthesisOutcome {
        self.run_inner(StopPolicy::Exhaustive, Some(observer))
    }

    /// Runs the sweep with both an early-stop policy and an observer.
    #[must_use]
    pub fn run_with(
        &self,
        policy: StopPolicy,
        observer: &mut dyn SweepObserver,
    ) -> SynthesisOutcome {
        self.run_inner(policy, Some(observer))
    }

    fn run_inner(
        &self,
        policy: StopPolicy,
        mut observer: Option<&mut dyn SweepObserver>,
    ) -> SynthesisOutcome {
        let started = Instant::now(); // sf-allow(nondet-source): the Deadline StopPolicy is wall-clock by design; results stay deterministic, only the cut-off point varies
        let mut outcome = SynthesisOutcome::default();
        if self.cfg.mode != SynthesisMode::Phase2Only {
            // The shared warm-chained base partitions and the placement
            // seed bank (computed on first run) count towards this run's
            // diagnostics.
            outcome.partition_stats += self.phase1_seeds().stats;
            let warmup = self.placement_warmup();
            outcome.lp_stats += warmup.lp_stats;
            outcome.routing_stats += warmup.routing_stats;
        }
        for &freq in &self.frequencies {
            let primary = self.primary_candidates(freq);
            let before = outcome.points.len();
            if self.sweep(&primary, policy, &mut observer, &mut outcome, started) {
                return outcome;
            }
            // The two-phase method of §IV: when Phase 1 delivers nothing at
            // this frequency, retry layer-by-layer.
            if self.cfg.mode == SynthesisMode::Auto && outcome.points.len() == before {
                let fallback = phase2_candidates(&self.cfg, self.soc, freq);
                if self.sweep(&fallback, policy, &mut observer, &mut outcome, started) {
                    return outcome;
                }
            }
        }
        outcome
    }

    /// Evaluates one candidate batch, committing results (and streaming
    /// events) in candidate order as evaluations complete. Returns `true`
    /// when `policy` stopped the run.
    ///
    /// Serially, each candidate is committed the moment it finishes. In
    /// parallel, `jobs` scoped workers pull candidates from a shared queue
    /// (a slow candidate never idles the others) and deposit results into
    /// per-candidate slots; the driver thread commits slot `i` as soon as
    /// it fills, so the observer still sees a live, in-order stream. An
    /// early stop raises a flag that keeps workers from claiming further
    /// candidates, bounding wasted work to the in-flight ones.
    fn sweep(
        &self,
        candidates: &[Candidate],
        policy: StopPolicy,
        observer: &mut Option<&mut dyn SweepObserver>,
        outcome: &mut SynthesisOutcome,
        started: Instant,
    ) -> bool {
        let jobs = self.cfg.parallelism.effective_jobs().min(candidates.len());
        // Every solver (serial or per worker) seeds candidates from the
        // same shared bank, so which worker draws which candidate cannot
        // influence any placement's starting basis.
        let seed_bank = (self.cfg.mode != SynthesisMode::Phase2Only)
            .then(|| Arc::clone(&self.placement_warmup().seeds));
        let new_solver = || {
            let mut placement = PlacementSolver::new();
            if let Some(bank) = &seed_bank {
                placement.install_seeds(Arc::clone(bank));
            }
            placement
        };
        if jobs <= 1 {
            // One reusable routing workspace, partition cache and placement
            // solver for the whole serial sweep.
            let mut alloc = PathAllocator::new();
            let mut cache = PartitionCache::new();
            let mut placement = new_solver();
            for &candidate in candidates {
                if policy.met(outcome, started) {
                    return true;
                }
                let ev =
                    self.evaluate_candidate(candidate, &mut alloc, &mut cache, &mut placement);
                self.commit(ev, observer, outcome);
            }
            return false;
        }

        let stop = AtomicBool::new(false);
        let next = AtomicUsize::new(0);
        let slots: Vec<(Mutex<Option<CandidateEvaluation>>, Condvar)> =
            candidates.iter().map(|_| (Mutex::new(None), Condvar::new())).collect();
        let mut stopped = false;
        thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| {
                    // Per-worker routing workspace, partition cache and
                    // placement solver, reused across every candidate this
                    // worker claims. The placement solver's warm chains are
                    // cut (and re-seeded from the shared bank) per
                    // candidate, so the reuse never leaks results between
                    // the candidates a worker happens to draw.
                    let mut alloc = PathAllocator::new();
                    let mut cache = PartitionCache::new();
                    let mut placement = new_solver();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&candidate) = candidates.get(i) else { break };
                        let ev = self.evaluate_candidate(
                            candidate,
                            &mut alloc,
                            &mut cache,
                            &mut placement,
                        );
                        let (lock, cvar) = &slots[i];
                        // Poison recovery: a slot holds a plain Option, so
                        // the value is valid even if another worker
                        // panicked mid-sweep (the panic still propagates at
                        // scope join).
                        *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                            Some(ev);
                        cvar.notify_all();
                    }
                });
            }
            // Commit in candidate order, each slot as soon as it fills. A
            // claimed index is always filled before its worker exits, and
            // indices are claimed in order, so waiting on slot `i` cannot
            // deadlock.
            for (i, (lock, cvar)) in slots.iter().enumerate() {
                if policy.met(outcome, started) {
                    stop.store(true, Ordering::Relaxed);
                    stopped = true;
                    break;
                }
                let mut guard =
                    lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let ev = loop {
                    if let Some(ev) = guard.take() {
                        break ev;
                    }
                    guard = cvar
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                };
                drop(guard);
                debug_assert_eq!(ev.candidate, candidates[i]);
                self.commit(ev, observer, outcome);
            }
        });
        stopped
    }

    /// Appends one candidate's results to the outcome and replays its event
    /// stream: `CandidateStarted`, any `ThetaEscalated`, then exactly one
    /// terminal `CandidateAccepted` / `CandidateRejected`.
    fn commit(
        &self,
        ev: CandidateEvaluation,
        observer: &mut Option<&mut dyn SweepObserver>,
        outcome: &mut SynthesisOutcome,
    ) {
        let emit = |observer: &mut Option<&mut dyn SweepObserver>, event: SweepEvent| {
            if let Some(obs) = observer.as_deref_mut() {
                obs.on_event(&event);
            }
        };
        emit(observer, SweepEvent::CandidateStarted { candidate: ev.candidate });
        for &theta in &ev.thetas {
            emit(observer, SweepEvent::ThetaEscalated { candidate: ev.candidate, theta });
        }
        let terminal_reason =
            if ev.point.is_none() { ev.attempts.last().map(|a| a.reason.clone()) } else { None };
        outcome.partition_stats += ev.stats;
        outcome.lp_stats += ev.lp_stats;
        outcome.anneal_stats += ev.anneal_stats;
        outcome.routing_stats += ev.routing_stats;
        outcome.rejected.extend(ev.attempts);
        match ev.point {
            Some(point) => {
                outcome.points.push(point);
                emit(
                    observer,
                    SweepEvent::CandidateAccepted {
                        candidate: ev.candidate,
                        point_index: outcome.points.len() - 1,
                    },
                );
            }
            None => {
                emit(
                    observer,
                    SweepEvent::CandidateRejected {
                        candidate: ev.candidate,
                        reason: terminal_reason.unwrap_or(RejectReason::RoutingFailed),
                    },
                );
            }
        }
    }

    fn evaluate_candidate(
        &self,
        candidate: Candidate,
        alloc: &mut PathAllocator,
        cache: &mut PartitionCache,
        placement: &mut PlacementSolver,
    ) -> CandidateEvaluation {
        // Warm chains are per candidate: a basis surviving into the next
        // candidate would make results depend on which worker evaluated
        // which candidate before (see `PlacementSolver::begin_candidate`).
        placement.begin_candidate();
        let before = cache.stats;
        let lp_before = placement.stats();
        let routing_before = alloc.stats();
        let mut ev = match candidate.sweep {
            SweepParam::SwitchCount(k) => {
                self.evaluate_phase1(candidate, k, alloc, cache, placement)
            }
            SweepParam::Increment(inc) => self.evaluate_phase2(candidate, inc, alloc, placement),
        };
        ev.stats += cache.stats - before;
        ev.lp_stats += placement.stats() - lp_before;
        ev.routing_stats += alloc.stats() - routing_before;
        ev
    }

    /// Algorithm 1 for one candidate: the base attempt from the
    /// precomputed seed partition, then the θ escalation loop — each step
    /// warm-started from the previous assignment on an in-place-rescaled
    /// SPG — until the constraints are met or θ runs out.
    fn evaluate_phase1(
        &self,
        candidate: Candidate,
        count: usize,
        alloc: &mut PathAllocator,
        cache: &mut PartitionCache,
        placement: &mut PlacementSolver,
    ) -> CandidateEvaluation {
        let cfg = &self.cfg;
        let freq = candidate.frequency_mhz;
        let mut ev = CandidateEvaluation::new(candidate);
        let reject = |theta: Option<f64>, reason: RejectReason| RejectedPoint {
            requested_switches: count,
            frequency_mhz: freq,
            phase: PhaseKind::Phase1,
            theta,
            reason,
        };

        // Resolve the base seed: from the precomputed warm-chained set, or
        // (defensively — cannot happen for counts the engine itself
        // enumerates) computed through this worker's cache.
        let mut computed: Option<Phase1Seed> = None;
        let seed: &Phase1Seed = match self.phase1_seeds().get(count) {
            Some(Ok(seed)) => {
                cache.stats.base_cache_hits += 1;
                seed
            }
            Some(Err(e)) => {
                // The partitioner cannot produce this split at any θ:
                // terminal, no escalation.
                ev.attempts.push(reject(None, e.clone().into()));
                return ev;
            }
            None => match phase1::connectivity_cached(
                &self.graph,
                self.soc,
                count,
                cfg.alpha,
                None,
                cfg.theta_max,
                cfg.rng_seed,
                None,
                cache,
            ) {
                Ok(conn) => {
                    let assignment = conn.core_attach.iter().map(|&a| a as u32).collect();
                    &*computed.insert(Phase1Seed { conn, assignment })
                }
                Err(e) => {
                    ev.attempts.push(reject(None, e.into()));
                    return ev;
                }
            },
        };
        match self.try_candidate(
            freq,
            &seed.conn,
            PhaseKind::Phase1,
            false,
            alloc,
            placement,
            &mut ev.anneal_stats,
        ) {
            Ok(point) => {
                ev.point = Some(point);
                return ev;
            }
            Err(reason) => ev.attempts.push(reject(None, reason)),
        }
        let mut warm = seed.assignment.clone();

        // θ loop (Algorithm 1, steps 11–20), each step seeding the
        // partitioner from the previous assignment.
        let mut theta = cfg.theta_min;
        while theta <= cfg.theta_max + 1e-9 {
            ev.thetas.push(theta);
            if let Ok(conn) = phase1::connectivity_cached(
                &self.graph,
                self.soc,
                count,
                cfg.alpha,
                Some(theta),
                cfg.theta_max,
                cfg.rng_seed,
                Some(&warm),
                cache,
            ) {
                warm.clear();
                warm.extend(conn.core_attach.iter().map(|&a| a as u32));
                match self.try_candidate(
                    freq,
                    &conn,
                    PhaseKind::Phase1,
                    false,
                    alloc,
                    placement,
                    &mut ev.anneal_stats,
                ) {
                    Ok(point) => {
                        ev.point = Some(point);
                        return ev;
                    }
                    Err(reason) => ev.attempts.push(reject(Some(theta), reason)),
                }
            }
            theta += cfg.theta_step;
        }
        ev
    }

    /// Algorithm 2 for one candidate: a single layer-by-layer attempt at
    /// the given per-layer increment.
    fn evaluate_phase2(
        &self,
        candidate: Candidate,
        increment: usize,
        alloc: &mut PathAllocator,
        placement: &mut PlacementSolver,
    ) -> CandidateEvaluation {
        let cfg = &self.cfg;
        let freq = candidate.frequency_mhz;
        let max_sw = cfg.library.switch.max_size_for_frequency(freq);
        let mut ev = CandidateEvaluation::new(candidate);
        match phase2::connectivity(&self.graph, self.soc, increment, max_sw, cfg.alpha, cfg.rng_seed)
        {
            Ok(conn) => match self.try_candidate(
                freq,
                &conn,
                PhaseKind::Phase2,
                true,
                alloc,
                placement,
                &mut ev.anneal_stats,
            ) {
                Ok(point) => ev.point = Some(point),
                Err(reason) => ev.attempts.push(RejectedPoint {
                    requested_switches: conn.switch_count(),
                    frequency_mhz: freq,
                    phase: PhaseKind::Phase2,
                    theta: None,
                    reason,
                }),
            },
            Err(e) => ev.attempts.push(RejectedPoint {
                requested_switches: increment,
                frequency_mhz: freq,
                phase: PhaseKind::Phase2,
                theta: None,
                reason: e.into(),
            }),
        }
        ev
    }

    /// Routes, places, lays out and evaluates one connectivity candidate,
    /// applying the indirect-switch fallback on routing failure. Counters
    /// from the tempered layout path (if configured) accrue into `anneal`.
    #[allow(clippy::too_many_arguments)]
    fn try_candidate(
        &self,
        freq: f64,
        conn: &Connectivity,
        phase: PhaseKind,
        adjacent_only: bool,
        alloc: &mut PathAllocator,
        placement: &mut PlacementSolver,
        anneal: &mut AnnealStats,
    ) -> Result<DesignPoint, RejectReason> {
        let cfg = &self.cfg;
        let soc = self.soc;
        let core_layers: Vec<u32> = soc.cores.iter().map(|c| c.layer).collect();
        let max_sw = cfg.library.switch.max_size_for_frequency(freq);
        let path_cfg = PathConfig {
            max_ill: cfg.max_ill,
            soft_ill_margin: cfg.soft_ill_margin,
            max_switch_size: max_sw,
            soft_switch_margin: cfg.soft_switch_margin,
            adjacent_layers_only: adjacent_only,
            frequency_mhz: freq,
            deadlock_retries: 24,
        };

        // Routing with the indirect-switch fallback (§VI): when no route
        // exists, add one unattached switch per layer (a pure transit
        // switch) and retry.
        let mut switch_layer = conn.switch_layer.clone();
        let mut est_pos = conn.est_positions.clone();
        let mut indirect: Vec<usize> = Vec::new();
        let mut topo: Option<Topology> = None;
        let mut last_err: Option<PathError> = None;

        // Class-threaded routing follows the tempered annealer's
        // thread-collapse pattern: a parallel sweep already saturates the
        // machine with candidate workers, so the two class passes then run
        // sequentially on the worker's thread (the result is identical
        // either way — the threads only schedule the passes).
        let class_threads = cfg.parallelism.effective_jobs() <= 1;
        for round in 0..=cfg.indirect_switch_rounds {
            match alloc.compute_paths_classed(
                &self.graph,
                &conn.core_attach,
                &switch_layer,
                &est_pos,
                &core_layers,
                soc.layers,
                &cfg.library,
                &path_cfg,
                cfg.alpha,
                class_threads,
            ) {
                Ok(mut t) => {
                    t.indirect_switches = indirect.clone();
                    topo = Some(t);
                    break;
                }
                Err(e @ (PathError::NoRoute { .. } | PathError::DeadlockUnavoidable { .. }))
                    if round < cfg.indirect_switch_rounds =>
                {
                    last_err = Some(e);
                    // Add one transit switch per populated layer at the
                    // layer centroid.
                    for layer in 0..soc.layers {
                        let members = soc.cores_in_layer(layer);
                        if members.is_empty() {
                            continue;
                        }
                        let (mut cx, mut cy) = (0.0, 0.0);
                        for &c in &members {
                            let (x, y) = soc.cores[c].center();
                            cx += x;
                            cy += y;
                        }
                        indirect.push(switch_layer.len());
                        switch_layer.push(layer);
                        est_pos
                            .push((cx / members.len() as f64, cy / members.len() as f64));
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        let mut topo = topo.ok_or_else(|| {
            last_err.map_or(RejectReason::RoutingFailed, RejectReason::from)
        })?;

        // Switch placement LP (§VII), warm-started within this candidate's
        // attempt chain.
        placement.place(&mut topo, soc, &self.graph).map_err(RejectReason::from)?;

        // Physical insertion + final evaluation: the shove-insertion
        // routine by default, or the tempered constrained annealer when
        // `anneal_replicas` is set. The replica pool is worker-aware: a
        // parallel sweep already saturates the machine with candidate
        // workers, so each anneal then multiplexes its replicas onto one
        // thread (the *result* is identical either way — threads only
        // schedule).
        let layout = if cfg.run_layout {
            if cfg.anneal_replicas >= 1 {
                let temper = sunfloor_floorplan::TemperConfig {
                    base: sunfloor_floorplan::AnnealConfig::default()
                        .with_iterations(TEMPERED_LAYOUT_ITERATIONS)
                        .with_seed(cfg.rng_seed),
                    replicas: cfg.anneal_replicas,
                    threads: if cfg.parallelism.effective_jobs() > 1 { 1 } else { 0 },
                    ..sunfloor_floorplan::TemperConfig::default()
                };
                let (l, stats) = layout_design_tempered(&mut topo, soc, &cfg.library, &temper);
                *anneal += stats;
                Some(l)
            } else {
                Some(layout_design(&mut topo, soc, &cfg.library, cfg.layout_search_radius_mm))
            }
        } else {
            None
        };
        let metrics = evaluate(&topo, soc, &self.graph, &cfg.library, freq);

        // Final constraint screening (Fig. 3's last step). The finiteness
        // check comes first: with overflowed metrics the remaining
        // comparisons (notably the NaN-poisoned latency slack) are
        // meaningless.
        if !metrics.is_finite() {
            return Err(RejectReason::NonFiniteMetrics);
        }
        if metrics.max_inter_layer_links() > cfg.max_ill {
            return Err(RejectReason::IllExceeded {
                got: metrics.max_inter_layer_links(),
                limit: cfg.max_ill,
            });
        }
        for s in 0..topo.switch_count() {
            if topo.switch_size(s) > max_sw {
                return Err(RejectReason::SwitchTooLarge {
                    switch: s,
                    ports: topo.switch_size(s),
                    limit: max_sw,
                    frequency_mhz: freq,
                });
            }
        }
        if !metrics.meets_latency() {
            return Err(RejectReason::LatencyViolated {
                excess_cycles: metrics.worst_latency_violation,
            });
        }

        Ok(DesignPoint {
            requested_switches: conn.switch_count(),
            topology: topo,
            metrics,
            layout,
            phase,
            theta: conn.theta,
        })
    }
}
