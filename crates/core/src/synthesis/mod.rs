//! The SunFloor 3D synthesis driver (paper Fig. 3), redesigned as a module
//! family around a streaming engine.
//!
//! For every operating frequency and every switch count, the driver builds
//! a core-to-switch connectivity (Phase 1 with the θ escalation loop of
//! Algorithm 1; Phase 2's layer-by-layer Algorithm 2 as fallback or on
//! request), routes the flows under the TSV and switch-size constraints,
//! solves the switch-placement LP, inserts the components into the
//! floorplan, and keeps every design point that meets all constraints. The
//! output is the power/latency/area trade-off set from which a designer (or
//! [`SynthesisOutcome::best_power`]) picks the final topology.
//!
//! The API splits into five pieces:
//!
//! * [`config`] — [`SynthesisConfig`] with an eagerly validating
//!   [`SynthesisConfig::builder`], typed [`ConfigError`]s and the
//!   [`Parallelism`] knob;
//! * [`candidates`] — the explicit [`Candidate`] enumeration of the
//!   design-space sweep;
//! * [`engine`] — the [`SynthesisEngine`] whose
//!   [`run`](SynthesisEngine::run) /
//!   [`run_with_observer`](SynthesisEngine::run_with_observer) methods
//!   evaluate candidates (optionally fanned out over scoped threads) under
//!   an early-[`StopPolicy`];
//! * [`diagnostics`] — typed [`RejectReason`]s (whose `Display` preserves
//!   the legacy message text) and the [`SweepEvent`] stream;
//! * [`outcome`] — [`DesignPoint`], [`RejectedPoint`] and the
//!   [`SynthesisOutcome`] trade-off set.
//!
//! Candidates are independent — the θ-escalation loop runs *inside* a
//! candidate — so `Parallelism::Jobs(n)` evaluates them concurrently while
//! committing results in candidate order: serial and parallel runs produce
//! bit-for-bit identical outcomes.

pub mod candidates;
pub mod config;
pub mod diagnostics;
pub mod engine;
pub mod outcome;

pub use candidates::{Candidate, SweepParam};
pub use config::{ConfigError, Parallelism, SynthesisConfig, SynthesisConfigBuilder, SynthesisMode};
pub use diagnostics::{RejectReason, SweepEvent, SweepObserver, SynthesisError};
pub use engine::{StopPolicy, SynthesisEngine};
pub use outcome::{DesignPoint, PhaseKind, RejectedPoint, SynthesisOutcome};

pub use crate::graph::PartitionStats;
pub use crate::place::LpStats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommSpec, Core, Flow, MessageType, SocSpec};

    /// A small 8-core, 2-layer SoC with mixed traffic.
    fn small_soc() -> (SocSpec, CommSpec) {
        let mut cores = Vec::new();
        for i in 0..8 {
            cores.push(Core {
                name: format!("c{i}"),
                width: 1.5,
                height: 1.5,
                x: f64::from(i % 2) * 2.0,
                y: f64::from((i / 2) % 2) * 2.0,
                layer: u32::from(i >= 4),
            });
        }
        let soc = SocSpec::new(cores, 2).unwrap();
        let f = |src, dst, bw: f64, class| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: 12.0,
            message_type: class,
        };
        let comm = CommSpec::new(
            vec![
                f(0, 4, 400.0, MessageType::Request),
                f(4, 0, 200.0, MessageType::Response),
                f(1, 5, 300.0, MessageType::Request),
                f(2, 6, 250.0, MessageType::Request),
                f(3, 7, 150.0, MessageType::Request),
                f(0, 1, 80.0, MessageType::Request),
                f(2, 3, 60.0, MessageType::Request),
                f(5, 6, 50.0, MessageType::Request),
            ],
            &soc,
        )
        .unwrap();
        (soc, comm)
    }

    fn quick_cfg() -> SynthesisConfig {
        SynthesisConfig::builder()
            .switch_count_range(1, 6)
            .run_layout(false)
            .build()
            .unwrap()
    }

    fn run(soc: &SocSpec, comm: &CommSpec, cfg: SynthesisConfig) -> SynthesisOutcome {
        SynthesisEngine::new(soc, comm, cfg).unwrap().run()
    }

    #[test]
    fn produces_feasible_points() {
        let (soc, comm) = small_soc();
        let outcome = run(&soc, &comm, quick_cfg());
        assert!(!outcome.points.is_empty(), "rejected: {:?}", outcome.rejected);
        for p in &outcome.points {
            assert!(p.metrics.meets_latency());
            assert!(p.metrics.max_inter_layer_links() <= 25);
            // Every flow is routed.
            for path in &p.topology.flow_paths {
                assert!(!path.switches.is_empty());
            }
        }
    }

    #[test]
    fn best_power_is_minimal() {
        let (soc, comm) = small_soc();
        let outcome = run(&soc, &comm, quick_cfg());
        let best = outcome.best_power().unwrap();
        for p in &outcome.points {
            assert!(p.metrics.power.total_mw() >= best.metrics.power.total_mw() - 1e-12);
        }
    }

    #[test]
    fn pareto_front_is_monotone() {
        let (soc, comm) = small_soc();
        let outcome = run(&soc, &comm, quick_cfg());
        let front = outcome.pareto_front();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].metrics.power.total_mw() <= w[1].metrics.power.total_mw());
            assert!(w[0].metrics.avg_latency_cycles > w[1].metrics.avg_latency_cycles);
        }
    }

    #[test]
    fn phase2_only_keeps_cores_in_layer() {
        let (soc, comm) = small_soc();
        let cfg = SynthesisConfig::builder()
            .mode(SynthesisMode::Phase2Only)
            .run_layout(false)
            .build()
            .unwrap();
        let outcome = run(&soc, &comm, cfg);
        assert!(!outcome.points.is_empty(), "rejected: {:?}", outcome.rejected);
        for p in &outcome.points {
            assert_eq!(p.phase, PhaseKind::Phase2);
            for (c, &sw) in p.topology.core_attach.iter().enumerate() {
                assert_eq!(soc.cores[c].layer, p.topology.switch_layer[sw]);
            }
            // Adjacent layers only.
            for l in &p.topology.links {
                assert!(
                    p.topology.switch_layer[l.from].abs_diff(p.topology.switch_layer[l.to]) <= 1
                );
            }
        }
    }

    #[test]
    fn phase2_survives_budgets_and_stays_adjacent() {
        // The role of Phase 2 (§V-B): deliver topologies under inter-layer
        // restrictions, never using non-adjacent links, with cores attached
        // strictly in-layer. (Whether it beats Phase 1's vertical-link
        // count depends on the benchmark; the cross-benchmark comparison
        // lives in the integration suite.)
        let (soc, comm) = small_soc();
        let cfg = SynthesisConfig::builder()
            .mode(SynthesisMode::Phase2Only)
            .max_ill(6)
            .run_layout(false)
            .build()
            .unwrap();
        let p2 = run(&soc, &comm, cfg);
        let b2 = p2.best_power().expect("phase 2 feasible under a tight budget");
        assert!(b2.metrics.max_inter_layer_links() <= 6);
        for l in &b2.topology.links {
            assert!(b2.topology.switch_layer[l.from].abs_diff(b2.topology.switch_layer[l.to]) <= 1);
        }
    }

    #[test]
    fn tight_ill_constraint_rejects_or_escalates() {
        let (soc, comm) = small_soc();
        let cfg = SynthesisConfig::builder()
            .switch_count_range(1, 6)
            .run_layout(false)
            .max_ill(2)
            .build()
            .unwrap();
        let outcome = run(&soc, &comm, cfg);
        // Either no point at all, or every surviving point obeys the bound.
        for p in &outcome.points {
            assert!(p.metrics.max_inter_layer_links() <= 2);
        }
    }

    #[test]
    fn layout_fills_positions_and_area() {
        let (soc, comm) = small_soc();
        let cfg = SynthesisConfig::builder().switch_count_range(2, 3).build().unwrap();
        let outcome = run(&soc, &comm, cfg);
        let p = outcome.best_power().expect("a feasible point");
        let layout = p.layout.as_ref().expect("layout ran");
        assert_eq!(layout.layers.len(), 2);
        assert!(layout.die_area_mm2() > 0.0);
        for plan in &layout.layers {
            assert!(plan.overlapping_pair().is_none());
        }
    }

    #[test]
    fn unusable_frequency_errors() {
        let (soc, comm) = small_soc();
        let cfg = SynthesisConfig::builder().frequency_mhz(50_000.0).build().unwrap();
        assert!(matches!(
            SynthesisEngine::new(&soc, &comm, cfg),
            Err(SynthesisError::NoUsableFrequency)
        ));
    }

    #[test]
    fn invalid_config_is_rejected_before_exploration() {
        let (soc, comm) = small_soc();
        // A hand-rolled (non-builder) config is still validated by the
        // engine.
        let cfg = SynthesisConfig { alpha: 7.5, ..SynthesisConfig::default() };
        assert!(matches!(
            SynthesisEngine::new(&soc, &comm, cfg),
            Err(SynthesisError::Config(ConfigError::AlphaOutOfRange(_)))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let (soc, comm) = small_soc();
        let a = run(&soc, &comm, quick_cfg());
        let b = run(&soc, &comm, quick_cfg());
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.topology, y.topology);
        }
    }

    #[test]
    fn parallel_run_is_identical_to_serial() {
        let (soc, comm) = small_soc();
        let serial = run(&soc, &comm, quick_cfg());
        for jobs in [2usize, 4, 8] {
            let cfg = SynthesisConfig::builder()
                .switch_count_range(1, 6)
                .run_layout(false)
                .jobs(jobs)
                .build()
                .unwrap();
            let parallel = run(&soc, &comm, cfg);
            assert_eq!(serial, parallel, "jobs={jobs} diverged from the serial sweep");
        }
    }

    #[test]
    fn tempered_layout_sweep_is_identical_serial_and_parallel() {
        let (soc, comm) = small_soc();
        let tempered = |jobs: usize| {
            SynthesisConfig::builder()
                .switch_count_range(2, 3)
                .anneal_replicas(2)
                .jobs(jobs)
                .build()
                .unwrap()
        };
        let serial = run(&soc, &comm, tempered(1));
        assert!(!serial.points.is_empty(), "rejected: {:?}", serial.rejected);
        assert!(serial.anneal_stats.runs > 0, "tempered layout path did not run");
        for jobs in [2usize, 4] {
            let parallel = run(&soc, &comm, tempered(jobs));
            assert_eq!(serial, parallel, "jobs={jobs} diverged with anneal_replicas=2");
        }
    }

    #[test]
    fn candidate_list_is_explicit_and_ordered() {
        let (soc, comm) = small_soc();
        let engine = SynthesisEngine::new(&soc, &comm, quick_cfg()).unwrap();
        let cands = engine.candidates();
        let counts: Vec<usize> = cands.iter().map(|c| c.sweep.value()).collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 5, 6]);
        assert!(cands.iter().all(|c| c.frequency_mhz == 400.0));
        assert!(cands.iter().all(|c| matches!(c.sweep, SweepParam::SwitchCount(_))));
    }

    #[test]
    fn observer_receives_one_terminal_event_per_candidate() {
        use std::collections::BTreeMap;
        let (soc, comm) = small_soc();
        let engine = SynthesisEngine::new(&soc, &comm, quick_cfg()).unwrap();
        let mut events: Vec<SweepEvent> = Vec::new();
        let outcome = engine.run_with_observer(&mut |e: &SweepEvent| events.push(e.clone()));

        let mut started: BTreeMap<String, usize> = BTreeMap::new();
        let mut terminal: BTreeMap<String, usize> = BTreeMap::new();
        for e in &events {
            match e {
                SweepEvent::CandidateStarted { candidate } => {
                    *started.entry(candidate.to_string()).or_default() += 1;
                }
                SweepEvent::CandidateAccepted { candidate, .. }
                | SweepEvent::CandidateRejected { candidate, .. } => {
                    *terminal.entry(candidate.to_string()).or_default() += 1;
                }
                SweepEvent::ThetaEscalated { .. } => {}
            }
        }
        assert!(!started.is_empty());
        assert_eq!(started, terminal, "each started candidate needs exactly one terminal event");
        assert!(terminal.values().all(|&n| n == 1), "{terminal:?}");

        // Accepted events line up with the outcome's points.
        let accepted: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                SweepEvent::CandidateAccepted { point_index, .. } => Some(*point_index),
                _ => None,
            })
            .collect();
        assert_eq!(accepted, (0..outcome.points.len()).collect::<Vec<_>>());
    }

    #[test]
    fn observer_stream_is_identical_serial_and_parallel() {
        let (soc, comm) = small_soc();
        let mut serial_events: Vec<SweepEvent> = Vec::new();
        let serial = SynthesisEngine::new(&soc, &comm, quick_cfg())
            .unwrap()
            .run_with_observer(&mut |e: &SweepEvent| serial_events.push(e.clone()));
        let cfg = SynthesisConfig::builder()
            .switch_count_range(1, 6)
            .run_layout(false)
            .jobs(4)
            .build()
            .unwrap();
        let mut parallel_events: Vec<SweepEvent> = Vec::new();
        let parallel = SynthesisEngine::new(&soc, &comm, cfg)
            .unwrap()
            .run_with_observer(&mut |e: &SweepEvent| parallel_events.push(e.clone()));
        assert_eq!(serial, parallel);
        assert_eq!(serial_events, parallel_events);
    }

    #[test]
    fn first_feasible_stops_after_the_first_accepted_candidate() {
        let (soc, comm) = small_soc();
        let engine = SynthesisEngine::new(&soc, &comm, quick_cfg()).unwrap();
        let full = engine.run();
        let first = engine.run_with_policy(StopPolicy::FirstFeasible);
        assert_eq!(first.points.len(), 1);
        assert_eq!(first.points[0], full.points[0]);
        // Identical under parallel evaluation too.
        let cfg = SynthesisConfig::builder()
            .switch_count_range(1, 6)
            .run_layout(false)
            .jobs(4)
            .build()
            .unwrap();
        let par = SynthesisEngine::new(&soc, &comm, cfg)
            .unwrap()
            .run_with_policy(StopPolicy::FirstFeasible);
        assert_eq!(first, par);
    }

    #[test]
    fn point_budget_caps_the_collected_points() {
        let (soc, comm) = small_soc();
        let engine = SynthesisEngine::new(&soc, &comm, quick_cfg()).unwrap();
        let full = engine.run();
        assert!(full.points.len() >= 2, "need at least two points for this test");
        let budgeted = engine.run_with_policy(StopPolicy::PointBudget(2));
        assert_eq!(budgeted.points.len(), 2);
        assert_eq!(budgeted.points[..], full.points[..2]);
    }

    #[test]
    fn zero_deadline_stops_immediately() {
        let (soc, comm) = small_soc();
        let engine = SynthesisEngine::new(&soc, &comm, quick_cfg()).unwrap();
        let outcome =
            engine.run_with_policy(StopPolicy::Deadline(std::time::Duration::ZERO));
        assert!(outcome.points.is_empty());
        assert!(outcome.rejected.is_empty());
    }

}
