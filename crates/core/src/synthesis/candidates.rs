//! Explicit enumeration of the design-space candidates the engine sweeps:
//! every (frequency × sweep-parameter) pair of Fig. 3's nested loops.

use super::config::SynthesisConfig;
use super::outcome::PhaseKind;
use crate::phase2;
use crate::spec::SocSpec;
use std::fmt;

/// The per-candidate sweep parameter: what the inner loop of Fig. 3 varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// Phase 1: the switch count requested from the min-cut partitioner.
    SwitchCount(usize),
    /// Phase 2: the per-layer increment over the minimum switch count of
    /// Algorithm 2.
    Increment(usize),
}

impl SweepParam {
    /// The raw sweep value.
    #[must_use]
    pub fn value(self) -> usize {
        match self {
            Self::SwitchCount(v) | Self::Increment(v) => v,
        }
    }

    /// Which phase evaluates this parameter.
    #[must_use]
    pub fn phase(self) -> PhaseKind {
        match self {
            Self::SwitchCount(_) => PhaseKind::Phase1,
            Self::Increment(_) => PhaseKind::Phase2,
        }
    }
}

/// One point of the design-space sweep: a frequency paired with a sweep
/// parameter. Candidates are independent of each other (the θ-escalation
/// loop runs inside a candidate), which is what lets the engine evaluate
/// them in parallel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Operating frequency, MHz.
    pub frequency_mhz: f64,
    /// The sweep parameter evaluated at that frequency.
    pub sweep: SweepParam,
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sweep {
            SweepParam::SwitchCount(k) => {
                write!(f, "{k} switches @ {} MHz (phase 1)", self.frequency_mhz)
            }
            SweepParam::Increment(i) => {
                write!(f, "increment {i} @ {} MHz (phase 2)", self.frequency_mhz)
            }
        }
    }
}

/// Phase 1 candidates at one frequency: the requested switch counts
/// `lo..=hi` (clamped to `1..=cores`) by `switch_count_step`.
pub(crate) fn phase1_candidates(
    cfg: &SynthesisConfig,
    soc: &SocSpec,
    freq: f64,
) -> Vec<Candidate> {
    let n = soc.core_count();
    let (lo, hi) = match cfg.switch_count_range {
        Some((lo, hi)) => (lo.max(1), hi.min(n)),
        None => (1, n),
    };
    (lo..=hi)
        .step_by(cfg.switch_count_step.max(1))
        .map(|k| Candidate { frequency_mhz: freq, sweep: SweepParam::SwitchCount(k) })
        .collect()
}

/// Phase 2 candidates at one frequency: the per-layer increments. A
/// configured `switch_count_range` maps conservatively onto increments —
/// both bounds are honored (the lower bound used to be silently dropped),
/// with the upper bound clamped to Algorithm 2's maximum increment.
pub(crate) fn phase2_candidates(
    cfg: &SynthesisConfig,
    soc: &SocSpec,
    freq: f64,
) -> Vec<Candidate> {
    let max_sw = cfg.library.switch.max_size_for_frequency(freq);
    let max_inc = phase2::max_increment(soc, max_sw);
    let (lo, hi) = match cfg.switch_count_range {
        Some((lo, hi)) => (lo, max_inc.min(hi)),
        None => (0, max_inc),
    };
    if lo > hi {
        return Vec::new();
    }
    (lo..=hi)
        .step_by(cfg.switch_count_step.max(1))
        .map(|inc| Candidate { frequency_mhz: freq, sweep: SweepParam::Increment(inc) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Core;

    fn soc(cores: usize, layers: u32) -> SocSpec {
        SocSpec::new(
            (0..cores)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.0,
                    height: 1.0,
                    x: 0.0,
                    y: 0.0,
                    layer: i as u32 % layers,
                })
                .collect(),
            layers,
        )
        .unwrap()
    }

    #[test]
    fn phase1_defaults_to_full_core_range() {
        let cfg = SynthesisConfig::default();
        let cands = phase1_candidates(&cfg, &soc(6, 2), 400.0);
        let counts: Vec<usize> = cands.iter().map(|c| c.sweep.value()).collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 5, 6]);
        assert!(cands.iter().all(|c| c.sweep.phase() == PhaseKind::Phase1));
    }

    #[test]
    fn phase1_honors_range_and_stride() {
        let cfg = SynthesisConfig::builder()
            .switch_count_range(2, 9)
            .switch_count_step(3)
            .build()
            .unwrap();
        let counts: Vec<usize> = phase1_candidates(&cfg, &soc(12, 2), 400.0)
            .iter()
            .map(|c| c.sweep.value())
            .collect();
        assert_eq!(counts, vec![2, 5, 8]);
    }

    /// Regression: the Phase 2 sweep used to drop the lower bound of
    /// `switch_count_range` (`let _ = lo;`), so a requested `4..8` silently
    /// explored increments `0..=8`. Both bounds must be honored now.
    #[test]
    fn phase2_honors_lower_bound_of_switch_range() {
        let cfg = SynthesisConfig::builder().switch_count_range(4, 8).build().unwrap();
        let s = soc(16, 2);
        let incs: Vec<usize> =
            phase2_candidates(&cfg, &s, 400.0).iter().map(|c| c.sweep.value()).collect();
        assert!(!incs.is_empty(), "a 16-core stack admits increments beyond 4");
        assert!(incs.iter().all(|&i| i >= 4), "lower bound dropped: {incs:?}");
        assert!(incs.iter().all(|&i| i <= 8), "upper bound dropped: {incs:?}");
        assert_eq!(incs[0], 4, "sweep must start at the requested lower bound");
    }

    #[test]
    fn phase2_range_beyond_max_increment_is_empty() {
        let cfg = SynthesisConfig::builder().switch_count_range(50, 60).build().unwrap();
        assert!(phase2_candidates(&cfg, &soc(4, 2), 400.0).is_empty());
    }

    #[test]
    fn phase2_defaults_to_zero_through_max_increment() {
        let cfg = SynthesisConfig::default();
        let s = soc(8, 2);
        let max_inc =
            phase2::max_increment(&s, cfg.library.switch.max_size_for_frequency(400.0));
        let incs: Vec<usize> =
            phase2_candidates(&cfg, &s, 400.0).iter().map(|c| c.sweep.value()).collect();
        assert_eq!(incs, (0..=max_inc).collect::<Vec<_>>());
    }
}
