//! Synthesis configuration: the knob set of the Fig. 3 driver, with a
//! builder that validates eagerly so a bad sweep is rejected before any
//! exploration starts.

use std::error::Error;
use std::fmt;
use sunfloor_models::NocLibrary;

/// Which connectivity phases the driver may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SynthesisMode {
    /// Phase 1 first; fall back to Phase 2 when Phase 1 yields no feasible
    /// point (the two-phase method of §IV).
    #[default]
    Auto,
    /// Phase 1 only (cores may attach to switches in any layer).
    Phase1Only,
    /// Phase 2 only (layer-by-layer; also for technologies restricted to
    /// adjacent-layer TSVs).
    Phase2Only,
}

/// How candidate evaluation is spread over worker threads.
///
/// Candidates of the design-space sweep are independent (the θ-escalation
/// loop stays inside each candidate), so the engine can fan them out over
/// scoped threads. Results are committed in candidate order regardless of
/// completion order, so serial and parallel runs produce identical
/// [`super::SynthesisOutcome`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Evaluate candidates one at a time on the calling thread.
    #[default]
    Serial,
    /// Evaluate up to `n` candidates concurrently on scoped worker threads
    /// (`0` and `1` behave like [`Parallelism::Serial`]).
    Jobs(usize),
}

impl Parallelism {
    /// The worker count this setting resolves to (at least 1).
    #[must_use]
    pub fn effective_jobs(self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Jobs(n) => n.max(1),
        }
    }
}

/// Synthesis configuration.
///
/// Build one with [`SynthesisConfig::builder`], which validates every field
/// eagerly and returns a typed [`ConfigError`] for inconsistent values. The
/// fields stay public for inspection and for struct-update construction in
/// legacy code; [`super::SynthesisEngine::new`] re-validates, so an invalid
/// hand-rolled config is still caught before exploration starts.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    /// Candidate operating frequencies, MHz (the sweep of Fig. 3's outer
    /// loop).
    pub frequencies_mhz: Vec<f64>,
    /// Maximum directed vertical links per adjacent-layer boundary.
    pub max_ill: u32,
    /// Definition-3 α weighting bandwidth vs latency tightness.
    pub alpha: f64,
    /// θ escalation schedule for the SPG (the paper found 1..15 step 3
    /// works well).
    pub theta_min: f64,
    /// Largest θ tried.
    pub theta_max: f64,
    /// θ increment.
    pub theta_step: f64,
    /// Phase selection.
    pub mode: SynthesisMode,
    /// Component library (power/area/timing models).
    pub library: NocLibrary,
    /// RNG seed for the partitioner — identical seeds reproduce runs.
    pub rng_seed: u64,
    /// Insert components into the floorplan and re-evaluate with final
    /// positions (disable for fast topology-only exploration).
    pub run_layout: bool,
    /// Free-space search radius of the insertion routine, mm.
    pub layout_search_radius_mm: f64,
    /// Optional restriction of the switch-count sweep (inclusive); `None`
    /// sweeps 1..=cores for Phase 1 and the full increment range for
    /// Phase 2.
    pub switch_count_range: Option<(usize, usize)>,
    /// Stride of the switch-count sweep (1 = every count; larger values
    /// thin the exploration for big designs).
    pub switch_count_step: usize,
    /// Soft margin below `max_ill` (Algorithm 3).
    pub soft_ill_margin: u32,
    /// Soft margin below the switch-size limit (Algorithm 3).
    pub soft_switch_margin: u32,
    /// Extra indirect-switch rounds attempted when routing fails (§VI).
    pub indirect_switch_rounds: u32,
    /// Worker threads for candidate evaluation (serial and parallel runs
    /// produce identical outcomes).
    pub parallelism: Parallelism,
    /// Replicas of the parallel-tempering layout annealer. `0` (the
    /// default) keeps the custom shove-insertion routine of §VII; `1` and
    /// up replace it with the deterministic tempered constrained annealer
    /// at that many exchange-coupled chains. Replica worker threads are
    /// budgeted against [`SynthesisConfig::parallelism`]: a parallel sweep
    /// runs each candidate's anneal single-threaded so the two fan-outs
    /// never oversubscribe.
    pub anneal_replicas: usize,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            frequencies_mhz: vec![400.0],
            max_ill: 25,
            alpha: 1.0,
            theta_min: 1.0,
            theta_max: 15.0,
            theta_step: 3.0,
            mode: SynthesisMode::Auto,
            library: NocLibrary::lp65(),
            rng_seed: 0x51B0_A7E5,
            run_layout: true,
            layout_search_radius_mm: 3.0,
            switch_count_range: None,
            switch_count_step: 1,
            soft_ill_margin: 2,
            soft_switch_margin: 1,
            indirect_switch_rounds: 2,
            parallelism: Parallelism::Serial,
            anneal_replicas: 0,
        }
    }
}

impl SynthesisConfig {
    /// Starts a validated configuration from the defaults.
    #[must_use]
    pub fn builder() -> SynthesisConfigBuilder {
        SynthesisConfigBuilder { cfg: Self::default() }
    }

    /// Checks every field for consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: empty or non-positive
    /// frequency sweep, `alpha` outside `[0, 1]`, an inverted or
    /// non-positive θ schedule, an inverted switch-count range, a zero
    /// sweep stride, or a non-positive layout search radius.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.frequencies_mhz.is_empty() {
            return Err(ConfigError::NoFrequencies);
        }
        for &f in &self.frequencies_mhz {
            if !f.is_finite() || f <= 0.0 {
                return Err(ConfigError::NonPositiveFrequency(f));
            }
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(ConfigError::AlphaOutOfRange(self.alpha));
        }
        if !self.theta_min.is_finite()
            || !self.theta_max.is_finite()
            || self.theta_min > self.theta_max
        {
            return Err(ConfigError::InvalidThetaRange {
                min: self.theta_min,
                max: self.theta_max,
            });
        }
        if !self.theta_step.is_finite() || self.theta_step <= 0.0 {
            return Err(ConfigError::NonPositiveThetaStep(self.theta_step));
        }
        if let Some((lo, hi)) = self.switch_count_range {
            if lo > hi {
                return Err(ConfigError::InvertedSwitchRange { lo, hi });
            }
        }
        if self.switch_count_step == 0 {
            return Err(ConfigError::ZeroSwitchStep);
        }
        if !self.layout_search_radius_mm.is_finite() || self.layout_search_radius_mm <= 0.0 {
            return Err(ConfigError::NonPositiveSearchRadius(self.layout_search_radius_mm));
        }
        Ok(())
    }
}

/// A configuration field rejected by [`SynthesisConfig::validate`] /
/// [`SynthesisConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The frequency sweep is empty.
    NoFrequencies,
    /// A frequency in the sweep is zero, negative, NaN or infinite.
    NonPositiveFrequency(f64),
    /// `alpha` falls outside `[0, 1]`.
    AlphaOutOfRange(f64),
    /// `theta_min > theta_max` (or either is NaN or infinite).
    InvalidThetaRange {
        /// Configured `theta_min`.
        min: f64,
        /// Configured `theta_max`.
        max: f64,
    },
    /// `theta_step` is zero, negative or non-finite.
    NonPositiveThetaStep(f64),
    /// `switch_count_range` has `lo > hi`.
    InvertedSwitchRange {
        /// Configured lower bound.
        lo: usize,
        /// Configured upper bound.
        hi: usize,
    },
    /// `switch_count_step` is zero.
    ZeroSwitchStep,
    /// `layout_search_radius_mm` is zero, negative or non-finite.
    NonPositiveSearchRadius(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoFrequencies => write!(f, "the frequency sweep is empty"),
            Self::NonPositiveFrequency(v) => {
                write!(f, "frequency {v} MHz is not positive and finite")
            }
            Self::AlphaOutOfRange(a) => write!(f, "alpha {a} is outside [0, 1]"),
            Self::InvalidThetaRange { min, max } => {
                write!(f, "theta schedule is inverted: theta_min {min} > theta_max {max}")
            }
            Self::NonPositiveThetaStep(s) => write!(f, "theta_step {s} is not positive"),
            Self::InvertedSwitchRange { lo, hi } => {
                write!(f, "switch-count range is inverted: {lo} > {hi}")
            }
            Self::ZeroSwitchStep => write!(f, "switch_count_step must be at least 1"),
            Self::NonPositiveSearchRadius(r) => {
                write!(f, "layout search radius {r} mm is not positive")
            }
        }
    }
}

impl Error for ConfigError {}

/// Builder returned by [`SynthesisConfig::builder`]; every setter is
/// chainable and [`SynthesisConfigBuilder::build`] validates the result.
#[derive(Debug, Clone)]
pub struct SynthesisConfigBuilder {
    cfg: SynthesisConfig,
}

impl SynthesisConfigBuilder {
    /// Replaces the frequency sweep (MHz).
    #[must_use]
    pub fn frequencies_mhz(mut self, freqs: impl IntoIterator<Item = f64>) -> Self {
        self.cfg.frequencies_mhz = freqs.into_iter().collect();
        self
    }

    /// Sweeps a single frequency (MHz).
    #[must_use]
    pub fn frequency_mhz(self, freq: f64) -> Self {
        self.frequencies_mhz([freq])
    }

    /// Sets the vertical-link budget per adjacent-layer boundary.
    #[must_use]
    pub fn max_ill(mut self, max_ill: u32) -> Self {
        self.cfg.max_ill = max_ill;
        self
    }

    /// Sets the Definition-3 α weight (validated to `[0, 1]`).
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.cfg.alpha = alpha;
        self
    }

    /// Sets the θ escalation schedule `min..=max` by `step`.
    #[must_use]
    pub fn theta_schedule(mut self, min: f64, max: f64, step: f64) -> Self {
        self.cfg.theta_min = min;
        self.cfg.theta_max = max;
        self.cfg.theta_step = step;
        self
    }

    /// Selects which connectivity phases the driver may use.
    #[must_use]
    pub fn mode(mut self, mode: SynthesisMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Swaps in a different component library.
    #[must_use]
    pub fn library(mut self, library: NocLibrary) -> Self {
        self.cfg.library = library;
        self
    }

    /// Seeds the partitioner RNG — identical seeds reproduce runs.
    #[must_use]
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.cfg.rng_seed = seed;
        self
    }

    /// Enables or disables floorplan insertion and post-layout evaluation.
    #[must_use]
    pub fn run_layout(mut self, run: bool) -> Self {
        self.cfg.run_layout = run;
        self
    }

    /// Sets the free-space search radius of the insertion routine, mm.
    #[must_use]
    pub fn layout_search_radius_mm(mut self, radius: f64) -> Self {
        self.cfg.layout_search_radius_mm = radius;
        self
    }

    /// Restricts the switch-count sweep to `lo..=hi` (inclusive).
    #[must_use]
    pub fn switch_count_range(mut self, lo: usize, hi: usize) -> Self {
        self.cfg.switch_count_range = Some((lo, hi));
        self
    }

    /// Sets the stride of the switch-count sweep (validated to be ≥ 1).
    #[must_use]
    pub fn switch_count_step(mut self, step: usize) -> Self {
        self.cfg.switch_count_step = step;
        self
    }

    /// Sets the Algorithm 3 soft margins below `max_ill` and below the
    /// switch-size limit.
    #[must_use]
    pub fn soft_margins(mut self, ill: u32, switch: u32) -> Self {
        self.cfg.soft_ill_margin = ill;
        self.cfg.soft_switch_margin = switch;
        self
    }

    /// Sets how many indirect-switch rounds routing failures may trigger.
    #[must_use]
    pub fn indirect_switch_rounds(mut self, rounds: u32) -> Self {
        self.cfg.indirect_switch_rounds = rounds;
        self
    }

    /// Sets the candidate-evaluation parallelism.
    #[must_use]
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.cfg.parallelism = parallelism;
        self
    }

    /// Shorthand for [`Self::parallelism`]: `jobs <= 1` is serial,
    /// anything larger fans out over that many scoped worker threads.
    #[must_use]
    pub fn jobs(self, jobs: usize) -> Self {
        self.parallelism(if jobs <= 1 { Parallelism::Serial } else { Parallelism::Jobs(jobs) })
    }

    /// Routes the layout step through the parallel-tempering constrained
    /// annealer with `replicas` chains (`0` keeps the shove-insertion
    /// routine). The result is deterministic for a given configuration
    /// regardless of sweep parallelism or thread scheduling.
    #[must_use]
    pub fn anneal_replicas(mut self, replicas: usize) -> Self {
        self.cfg.anneal_replicas = replicas;
        self
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found by
    /// [`SynthesisConfig::validate`].
    pub fn build(self) -> Result<SynthesisConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SynthesisConfig::default().validate(), Ok(()));
        assert!(SynthesisConfig::builder().build().is_ok());
    }

    #[test]
    fn builder_rejects_empty_frequency_sweep() {
        let err = SynthesisConfig::builder().frequencies_mhz([]).build().unwrap_err();
        assert_eq!(err, ConfigError::NoFrequencies);
    }

    #[test]
    fn builder_rejects_non_positive_frequencies() {
        for bad in [0.0, -400.0, f64::NAN, f64::INFINITY] {
            let err = SynthesisConfig::builder()
                .frequencies_mhz([400.0, bad])
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::NonPositiveFrequency(_)),
                "{bad} accepted: {err}"
            );
        }
    }

    #[test]
    fn builder_rejects_alpha_outside_unit_interval() {
        for bad in [-0.1, 1.1, f64::NAN] {
            let err = SynthesisConfig::builder().alpha(bad).build().unwrap_err();
            assert!(matches!(err, ConfigError::AlphaOutOfRange(_)), "{bad} accepted");
        }
        assert!(SynthesisConfig::builder().alpha(0.0).build().is_ok());
        assert!(SynthesisConfig::builder().alpha(1.0).build().is_ok());
    }

    #[test]
    fn builder_rejects_inverted_theta_schedule() {
        let err = SynthesisConfig::builder().theta_schedule(10.0, 5.0, 1.0).build().unwrap_err();
        assert_eq!(err, ConfigError::InvalidThetaRange { min: 10.0, max: 5.0 });
    }

    #[test]
    fn builder_rejects_unbounded_theta_window() {
        // An infinite theta_max would make the escalation loop unbounded.
        let err = SynthesisConfig::builder()
            .theta_schedule(1.0, f64::INFINITY, 3.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidThetaRange { .. }));
    }

    #[test]
    fn builder_rejects_non_positive_theta_step() {
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let err =
                SynthesisConfig::builder().theta_schedule(1.0, 15.0, bad).build().unwrap_err();
            assert!(matches!(err, ConfigError::NonPositiveThetaStep(_)), "{bad} accepted");
        }
    }

    #[test]
    fn builder_rejects_inverted_switch_range() {
        let err = SynthesisConfig::builder().switch_count_range(8, 4).build().unwrap_err();
        assert_eq!(err, ConfigError::InvertedSwitchRange { lo: 8, hi: 4 });
        assert!(SynthesisConfig::builder().switch_count_range(4, 4).build().is_ok());
    }

    #[test]
    fn builder_rejects_zero_sweep_stride() {
        let err = SynthesisConfig::builder().switch_count_step(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroSwitchStep);
    }

    #[test]
    fn builder_rejects_non_positive_search_radius() {
        let err =
            SynthesisConfig::builder().layout_search_radius_mm(-1.0).build().unwrap_err();
        assert!(matches!(err, ConfigError::NonPositiveSearchRadius(_)));
    }

    #[test]
    fn builder_round_trips_every_field() {
        let cfg = SynthesisConfig::builder()
            .frequencies_mhz([300.0, 500.0])
            .max_ill(12)
            .alpha(0.5)
            .theta_schedule(2.0, 10.0, 2.0)
            .mode(SynthesisMode::Phase2Only)
            .rng_seed(42)
            .run_layout(false)
            .layout_search_radius_mm(5.0)
            .switch_count_range(2, 9)
            .switch_count_step(3)
            .soft_margins(1, 2)
            .indirect_switch_rounds(4)
            .jobs(8)
            .anneal_replicas(3)
            .build()
            .unwrap();
        assert_eq!(cfg.frequencies_mhz, vec![300.0, 500.0]);
        assert_eq!(cfg.max_ill, 12);
        assert_eq!(cfg.alpha, 0.5);
        assert_eq!((cfg.theta_min, cfg.theta_max, cfg.theta_step), (2.0, 10.0, 2.0));
        assert_eq!(cfg.mode, SynthesisMode::Phase2Only);
        assert_eq!(cfg.rng_seed, 42);
        assert!(!cfg.run_layout);
        assert_eq!(cfg.layout_search_radius_mm, 5.0);
        assert_eq!(cfg.switch_count_range, Some((2, 9)));
        assert_eq!(cfg.switch_count_step, 3);
        assert_eq!((cfg.soft_ill_margin, cfg.soft_switch_margin), (1, 2));
        assert_eq!(cfg.indirect_switch_rounds, 4);
        assert_eq!(cfg.parallelism, Parallelism::Jobs(8));
        assert_eq!(cfg.anneal_replicas, 3);
    }

    #[test]
    fn jobs_of_one_or_zero_collapse_to_serial() {
        assert_eq!(SynthesisConfig::builder().jobs(0).build().unwrap().parallelism, Parallelism::Serial);
        assert_eq!(SynthesisConfig::builder().jobs(1).build().unwrap().parallelism, Parallelism::Serial);
        assert_eq!(Parallelism::Jobs(0).effective_jobs(), 1);
        assert_eq!(Parallelism::Serial.effective_jobs(), 1);
        assert_eq!(Parallelism::Jobs(6).effective_jobs(), 6);
    }
}
