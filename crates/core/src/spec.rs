//! Input specifications: cores (with sizes, positions and 3-D layer
//! assignment) and the application's communication characteristics.
//!
//! Mirrors the two input files of the original tool (paper §IV): the *core
//! specification file* ("the name of the different cores, the sizes, and
//! positions … The assignment of the cores to the different layers") and the
//! *communication specification file* ("the bandwidth of communication
//! across different cores, latency constraints and message type
//! (request/response) of the different traffic flows").

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// One IP core: geometry plus 3-D layer assignment. Positions are the
/// lower-left corner in the per-layer input floorplan, in millimetres.
#[derive(Debug, Clone, PartialEq)]
pub struct Core {
    /// Unique core name.
    pub name: String,
    /// Width in millimetres.
    pub width: f64,
    /// Height in millimetres.
    pub height: f64,
    /// Lower-left x in the layer floorplan (mm).
    pub x: f64,
    /// Lower-left y in the layer floorplan (mm).
    pub y: f64,
    /// 3-D layer index (0 = bottom die).
    pub layer: u32,
}

impl Core {
    /// Center of the core in its layer floorplan.
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }
}

/// The core specification: all cores of the SoC and the stack height.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SocSpec {
    /// All cores, indexed by position (flow endpoints refer to these
    /// indices).
    pub cores: Vec<Core>,
    /// Number of 3-D layers (1 = a 2-D design).
    pub layers: u32,
}

impl SocSpec {
    /// Builds and validates a specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on duplicate names, empty designs, bad layer
    /// references or non-positive geometry.
    pub fn new(cores: Vec<Core>, layers: u32) -> Result<Self, SpecError> {
        let spec = Self { cores, layers };
        spec.validate()?;
        Ok(spec)
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Indices of the cores assigned to `layer`.
    #[must_use]
    pub fn cores_in_layer(&self, layer: u32) -> Vec<usize> {
        (0..self.cores.len()).filter(|&i| self.cores[i].layer == layer).collect()
    }

    /// Index of the core called `name`.
    #[must_use]
    pub fn core_index(&self, name: &str) -> Option<usize> {
        self.cores.iter().position(|c| c.name == name)
    }

    /// Checks all invariants.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.cores.is_empty() {
            return Err(SpecError::EmptyDesign);
        }
        if self.layers == 0 {
            return Err(SpecError::ZeroLayers);
        }
        // Every layer of the stack needs at least one core somewhere below
        // it in the roster; otherwise a hostile `layers 4000000000` line
        // would make every per-layer loop downstream effectively unbounded.
        if self.layers as usize > self.cores.len() {
            return Err(SpecError::TooManyLayers {
                layers: self.layers,
                cores: self.cores.len(),
            });
        }
        let mut seen = BTreeMap::new();
        for (i, c) in self.cores.iter().enumerate() {
            if c.name.is_empty() || c.name.contains(|ch: char| ch.is_whitespace() || ch == '#') {
                return Err(SpecError::BadCoreName { name: c.name.clone() });
            }
            // NaN fails every `>` comparison, so the finite check must be
            // explicit — `width <= 0.0` alone would wave NaN through.
            if !(c.width.is_finite() && c.height.is_finite() && c.width > 0.0 && c.height > 0.0)
            {
                return Err(SpecError::BadGeometry { core: c.name.clone() });
            }
            if !(c.x.is_finite() && c.y.is_finite()) {
                return Err(SpecError::NonFinitePosition { core: c.name.clone() });
            }
            if c.layer >= self.layers {
                return Err(SpecError::LayerOutOfRange {
                    core: c.name.clone(),
                    layer: c.layer,
                    layers: self.layers,
                });
            }
            if let Some(first) = seen.insert(c.name.clone(), i) {
                let _ = first;
                return Err(SpecError::DuplicateCore { name: c.name.clone() });
            }
        }
        Ok(())
    }

    /// Flattens the design onto a single layer, *keeping positions
    /// unchanged*. Used when handing a 3-D benchmark to the 2-D flow after a
    /// fresh single-die floorplan has been computed.
    #[must_use]
    pub fn flattened(&self) -> Self {
        let mut cores = self.cores.clone();
        for c in &mut cores {
            c.layer = 0;
        }
        Self { cores, layers: 1 }
    }

    /// Serializes to the plain-text core-spec format (see [`Self::parse`]).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("# SunFloor 3D core specification\n");
        out.push_str(&format!("layers {}\n", self.layers));
        for c in &self.cores {
            out.push_str(&format!(
                "core {} {} {} {} {} {}\n",
                c.name, c.width, c.height, c.x, c.y, c.layer
            ));
        }
        out
    }

    /// Parses the plain-text core-spec format:
    ///
    /// ```text
    /// layers <n>
    /// core <name> <width> <height> <x> <y> <layer>
    /// ```
    ///
    /// Blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] with the line number on malformed input
    /// and any validation error on inconsistent content.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut layers = 1u32;
        let mut cores = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let parse_err = |what: &str| SpecError::Parse { line: ln + 1, what: what.to_string() };
            match it.next() {
                Some("layers") => {
                    layers = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| parse_err("expected `layers <n>`"))?;
                    if it.next().is_some() {
                        return Err(parse_err("trailing tokens after `layers <n>`"));
                    }
                }
                Some("core") => {
                    let name = it.next().ok_or_else(|| parse_err("missing core name"))?;
                    let mut num = |what: &str| -> Result<f64, SpecError> {
                        it.next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| parse_err(what))
                    };
                    let width = num("missing width")?;
                    let height = num("missing height")?;
                    let x = num("missing x")?;
                    let y = num("missing y")?;
                    // Parsed as `u32` directly — an f64-then-cast would
                    // silently truncate `3.7` or saturate `-1`/`1e99`.
                    let layer: u32 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| parse_err("missing or non-integer layer"))?;
                    if it.next().is_some() {
                        return Err(parse_err("trailing tokens after core definition"));
                    }
                    cores.push(Core { name: name.to_string(), width, height, x, y, layer });
                }
                Some(tok) => {
                    return Err(parse_err(&format!("unknown directive `{tok}`")));
                }
                None => unreachable!("empty lines were skipped"),
            }
        }
        Self::new(cores, layers)
    }
}

/// Whether a flow carries requests or responses. Keeping the two classes on
/// disjoint channel-dependency graphs removes message-dependent deadlock
/// (§VI, after Hansson et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MessageType {
    /// Request traffic (reads, writes).
    #[default]
    Request,
    /// Response traffic (read data, acknowledgements).
    Response,
}

/// One traffic flow of the communication specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Source core index.
    pub src: usize,
    /// Destination core index.
    pub dst: usize,
    /// Average bandwidth in megabytes per second (as annotated on the
    /// paper's communication graphs).
    pub bandwidth_mbs: f64,
    /// Maximum tolerated zero-load latency, in cycles.
    pub max_latency_cycles: f64,
    /// Message class of the flow.
    pub message_type: MessageType,
}

impl Flow {
    /// Bandwidth in gigabits per second.
    #[must_use]
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_mbs * 8.0 / 1000.0
    }
}

/// The communication specification: every traffic flow of the application.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommSpec {
    /// All flows.
    pub flows: Vec<Flow>,
}

impl CommSpec {
    /// Builds and validates against a core specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on out-of-range endpoints, self-flows or
    /// non-positive bandwidth/latency.
    pub fn new(flows: Vec<Flow>, soc: &SocSpec) -> Result<Self, SpecError> {
        let spec = Self { flows };
        spec.validate(soc)?;
        Ok(spec)
    }

    /// Number of flows.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Total application bandwidth in megabytes per second.
    #[must_use]
    pub fn total_bandwidth_mbs(&self) -> f64 {
        self.flows.iter().map(|f| f.bandwidth_mbs).sum()
    }

    /// Checks all invariants against `soc`.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    pub fn validate(&self, soc: &SocSpec) -> Result<(), SpecError> {
        for (i, f) in self.flows.iter().enumerate() {
            if f.src >= soc.core_count() || f.dst >= soc.core_count() {
                return Err(SpecError::FlowEndpointOutOfRange { flow: i });
            }
            if f.src == f.dst {
                return Err(SpecError::SelfFlow { flow: i });
            }
            if !(f.bandwidth_mbs.is_finite()
                && f.max_latency_cycles.is_finite()
                && f.bandwidth_mbs > 0.0
                && f.max_latency_cycles > 0.0)
            {
                return Err(SpecError::BadFlowNumbers { flow: i });
            }
        }
        Ok(())
    }

    /// Serializes to the plain-text comm-spec format (see [`Self::parse`]).
    #[must_use]
    pub fn to_text(&self, soc: &SocSpec) -> String {
        let mut out = String::from("# SunFloor 3D communication specification\n");
        for f in &self.flows {
            let kind = match f.message_type {
                MessageType::Request => "request",
                MessageType::Response => "response",
            };
            out.push_str(&format!(
                "flow {} {} {} {} {}\n",
                soc.cores[f.src].name, soc.cores[f.dst].name, f.bandwidth_mbs,
                f.max_latency_cycles, kind
            ));
        }
        out
    }

    /// Parses the plain-text comm-spec format:
    ///
    /// ```text
    /// flow <src_core> <dst_core> <bandwidth_MBs> <max_latency_cycles> <request|response>
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on malformed lines, unknown core names,
    /// and any validation error.
    pub fn parse(text: &str, soc: &SocSpec) -> Result<Self, SpecError> {
        let mut flows = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let parse_err = |what: &str| SpecError::Parse { line: ln + 1, what: what.to_string() };
            let mut it = line.split_whitespace();
            match it.next() {
                Some("flow") => {
                    let src_name = it.next().ok_or_else(|| parse_err("missing source"))?;
                    let dst_name = it.next().ok_or_else(|| parse_err("missing destination"))?;
                    let src = soc
                        .core_index(src_name)
                        .ok_or_else(|| parse_err(&format!("unknown core `{src_name}`")))?;
                    let dst = soc
                        .core_index(dst_name)
                        .ok_or_else(|| parse_err(&format!("unknown core `{dst_name}`")))?;
                    let bandwidth_mbs: f64 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| parse_err("missing bandwidth"))?;
                    let max_latency_cycles: f64 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| parse_err("missing latency"))?;
                    let message_type = match it.next() {
                        Some("request") | None => MessageType::Request,
                        Some("response") => MessageType::Response,
                        Some(other) => {
                            return Err(parse_err(&format!("unknown message type `{other}`")))
                        }
                    };
                    if it.next().is_some() {
                        return Err(parse_err("trailing tokens after flow definition"));
                    }
                    flows.push(Flow { src, dst, bandwidth_mbs, max_latency_cycles, message_type });
                }
                Some(tok) => return Err(parse_err(&format!("unknown directive `{tok}`"))),
                None => unreachable!(),
            }
        }
        Self::new(flows, soc)
    }
}

/// Errors raised while building or parsing specifications.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The design has no cores.
    EmptyDesign,
    /// `layers` was zero.
    ZeroLayers,
    /// More layers than cores: at least one layer would be empty, and
    /// per-layer sweeps would iterate an absurd range.
    TooManyLayers {
        /// Requested layer count.
        layers: u32,
        /// Number of cores in the design.
        cores: usize,
    },
    /// Two cores share a name.
    DuplicateCore {
        /// The duplicated name.
        name: String,
    },
    /// A core name is empty or contains whitespace/`#`, which would not
    /// survive a `to_text` → `parse` roundtrip.
    BadCoreName {
        /// The offending name.
        name: String,
    },
    /// A core has non-positive or non-finite width or height.
    BadGeometry {
        /// Core name.
        core: String,
    },
    /// A core position is NaN or infinite.
    NonFinitePosition {
        /// Core name.
        core: String,
    },
    /// A core references a layer `>= layers`.
    LayerOutOfRange {
        /// Core name.
        core: String,
        /// Offending layer.
        layer: u32,
        /// Number of layers in the design.
        layers: u32,
    },
    /// A flow references a core index out of range.
    FlowEndpointOutOfRange {
        /// Flow index.
        flow: usize,
    },
    /// A flow connects a core to itself.
    SelfFlow {
        /// Flow index.
        flow: usize,
    },
    /// A flow has non-positive bandwidth or latency budget.
    BadFlowNumbers {
        /// Flow index.
        flow: usize,
    },
    /// A text file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDesign => write!(f, "design contains no cores"),
            Self::ZeroLayers => write!(f, "design must have at least one layer"),
            Self::TooManyLayers { layers, cores } => {
                write!(f, "{layers} layers requested but only {cores} cores exist")
            }
            Self::DuplicateCore { name } => write!(f, "duplicate core name `{name}`"),
            Self::BadCoreName { name } => {
                write!(f, "core name `{name}` is empty or contains whitespace/`#`")
            }
            Self::BadGeometry { core } => {
                write!(f, "core `{core}` has non-positive or non-finite dimensions")
            }
            Self::NonFinitePosition { core } => {
                write!(f, "core `{core}` has a non-finite position")
            }
            Self::LayerOutOfRange { core, layer, layers } => {
                write!(f, "core `{core}` assigned to layer {layer} of {layers}")
            }
            Self::FlowEndpointOutOfRange { flow } => {
                write!(f, "flow {flow} references a core out of range")
            }
            Self::SelfFlow { flow } => write!(f, "flow {flow} connects a core to itself"),
            Self::BadFlowNumbers { flow } => {
                write!(f, "flow {flow} has non-positive bandwidth or latency")
            }
            Self::Parse { line, what } => write!(f, "parse error at line {line}: {what}"),
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_soc() -> SocSpec {
        SocSpec::new(
            vec![
                Core { name: "cpu".into(), width: 2.0, height: 2.0, x: 0.0, y: 0.0, layer: 0 },
                Core { name: "mem".into(), width: 1.0, height: 1.0, x: 3.0, y: 0.0, layer: 1 },
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_core_spec_text() {
        let soc = tiny_soc();
        let parsed = SocSpec::parse(&soc.to_text()).unwrap();
        assert_eq!(parsed, soc);
    }

    #[test]
    fn roundtrip_comm_spec_text() {
        let soc = tiny_soc();
        let comm = CommSpec::new(
            vec![
                Flow {
                    src: 0,
                    dst: 1,
                    bandwidth_mbs: 400.0,
                    max_latency_cycles: 6.0,
                    message_type: MessageType::Request,
                },
                Flow {
                    src: 1,
                    dst: 0,
                    bandwidth_mbs: 100.0,
                    max_latency_cycles: 8.0,
                    message_type: MessageType::Response,
                },
            ],
            &soc,
        )
        .unwrap();
        let parsed = CommSpec::parse(&comm.to_text(&soc), &soc).unwrap();
        assert_eq!(parsed, comm);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\nlayers 2\ncore a 1 1 0 0 0 # trailing comment\ncore b 1 1 2 0 1\n";
        let soc = SocSpec::parse(text).unwrap();
        assert_eq!(soc.core_count(), 2);
        assert_eq!(soc.cores[1].layer, 1);
    }

    #[test]
    fn duplicate_core_rejected() {
        let err = SocSpec::parse("core a 1 1 0 0 0\ncore a 1 1 2 0 0\n").unwrap_err();
        assert_eq!(err, SpecError::DuplicateCore { name: "a".into() });
    }

    #[test]
    fn layer_out_of_range_rejected() {
        let err = SocSpec::parse("layers 2\ncore a 1 1 0 0 0\ncore b 1 1 2 0 5\n").unwrap_err();
        assert!(matches!(err, SpecError::LayerOutOfRange { layer: 5, layers: 2, .. }));
    }

    #[test]
    fn self_flow_rejected() {
        let soc = tiny_soc();
        let err = CommSpec::parse("flow cpu cpu 10 5 request\n", &soc).unwrap_err();
        assert_eq!(err, SpecError::SelfFlow { flow: 0 });
    }

    #[test]
    fn unknown_core_in_flow_rejected() {
        let soc = tiny_soc();
        let err = CommSpec::parse("flow cpu gpu 10 5 request\n", &soc).unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("gpu"));
    }

    #[test]
    fn default_message_type_is_request() {
        let soc = tiny_soc();
        let comm = CommSpec::parse("flow cpu mem 10 5\n", &soc).unwrap();
        assert_eq!(comm.flows[0].message_type, MessageType::Request);
    }

    #[test]
    fn bandwidth_conversion() {
        let f = Flow {
            src: 0,
            dst: 1,
            bandwidth_mbs: 1000.0,
            max_latency_cycles: 5.0,
            message_type: MessageType::Request,
        };
        assert!((f.bandwidth_gbps() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn cores_in_layer_filters() {
        let soc = tiny_soc();
        assert_eq!(soc.cores_in_layer(0), vec![0]);
        assert_eq!(soc.cores_in_layer(1), vec![1]);
    }

    #[test]
    fn flattened_moves_everyone_to_layer_zero() {
        let flat = tiny_soc().flattened();
        assert_eq!(flat.layers, 1);
        assert!(flat.cores.iter().all(|c| c.layer == 0));
    }

    #[test]
    fn non_finite_geometry_rejected() {
        for bad in ["nan", "inf", "-inf"] {
            let err = SocSpec::parse(&format!("core a {bad} 1 0 0 0\n")).unwrap_err();
            assert_eq!(err, SpecError::BadGeometry { core: "a".into() }, "width {bad}");
        }
        let err = SocSpec::parse("core a 1 1 nan 0 0\n").unwrap_err();
        assert_eq!(err, SpecError::NonFinitePosition { core: "a".into() });
    }

    #[test]
    fn non_finite_flow_numbers_rejected() {
        let soc = tiny_soc();
        for bad in ["nan", "inf"] {
            let err = CommSpec::parse(&format!("flow cpu mem {bad} 5\n"), &soc).unwrap_err();
            assert_eq!(err, SpecError::BadFlowNumbers { flow: 0 }, "bandwidth {bad}");
            let err = CommSpec::parse(&format!("flow cpu mem 10 {bad}\n"), &soc).unwrap_err();
            assert_eq!(err, SpecError::BadFlowNumbers { flow: 0 }, "latency {bad}");
        }
    }

    #[test]
    fn fractional_or_negative_layer_field_rejected() {
        for bad in ["3.7", "-1", "1e99", "x"] {
            let err = SocSpec::parse(&format!("core a 1 1 0 0 {bad}\n")).unwrap_err();
            assert!(matches!(err, SpecError::Parse { line: 1, .. }), "layer {bad}: {err}");
        }
    }

    #[test]
    fn more_layers_than_cores_rejected() {
        let err = SocSpec::parse("layers 4000000000\ncore a 1 1 0 0 0\n").unwrap_err();
        assert_eq!(err, SpecError::TooManyLayers { layers: 4_000_000_000, cores: 1 });
    }

    #[test]
    fn bad_core_names_rejected_at_construction() {
        for bad in ["", "a#b"] {
            let err = SocSpec::new(
                vec![Core {
                    name: bad.into(),
                    width: 1.0,
                    height: 1.0,
                    x: 0.0,
                    y: 0.0,
                    layer: 0,
                }],
                1,
            )
            .unwrap_err();
            assert_eq!(err, SpecError::BadCoreName { name: bad.into() }, "name {bad:?}");
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(SocSpec::parse("layers 1 extra\ncore a 1 1 0 0 0\n").is_err());
        assert!(SocSpec::parse("core a 1 1 0 0 0 extra\n").is_err());
        let soc = tiny_soc();
        assert!(CommSpec::parse("flow cpu mem 10 5 request extra\n", &soc).is_err());
    }
}
