//! Phase 2 core-to-switch connectivity (paper §V-B, Algorithm 2).
//!
//! The layer-by-layer variant: cores connect only to switches in their own
//! layer, and switches link only to switches in the same or adjacent layers.
//! The minimum number of switches per layer follows from the frequency-
//! dependent maximum switch size (`nij = ⌈cores_in_layer / max_sw_size⌉`,
//! Algorithm 2 steps 2–4); each iteration then increments every layer's
//! switch count by one (pruning rule 2 of §V-C) until the layer's core count
//! is reached.

use crate::graph::CommGraph;
use crate::phase1::Connectivity;
use crate::spec::SocSpec;
use sunfloor_partition::{PartitionConfig, PartitionError};

/// Minimum switches required in each layer at the given maximum switch size
/// (Algorithm 2, steps 2–4). Layers without cores get zero.
#[must_use]
pub fn min_switches_per_layer(soc: &SocSpec, max_switch_size: u32) -> Vec<usize> {
    (0..soc.layers)
        .map(|l| {
            let cores = soc.cores_in_layer(l).len();
            if cores == 0 {
                0
            } else {
                cores.div_ceil(max_switch_size.max(1) as usize)
            }
        })
        .collect()
}

/// Largest useful value of the per-layer increment `i` in Algorithm 2's
/// outer loop: beyond it every layer already has one switch per core.
#[must_use]
pub fn max_increment(soc: &SocSpec, max_switch_size: u32) -> usize {
    let minima = min_switches_per_layer(soc, max_switch_size);
    (0..soc.layers as usize)
        .map(|l| {
            let cores = soc.cores_in_layer(l as u32).len();
            cores.saturating_sub(minima[l])
        })
        .max()
        .unwrap_or(0)
}

/// Builds the Phase-2 candidate for increment `i`: each layer `j` is min-cut
/// partitioned into `min(nij + i, cores_in_layer)` blocks and every block
/// gets a same-layer switch.
///
/// # Errors
///
/// Propagates [`PartitionError`] from the per-layer partitioner (cannot
/// happen for valid `i`, as the block count is clamped to the layer's core
/// count).
pub fn connectivity(
    graph: &CommGraph,
    soc: &SocSpec,
    increment: usize,
    max_switch_size: u32,
    alpha: f64,
    seed: u64,
) -> Result<Connectivity, PartitionError> {
    let minima = min_switches_per_layer(soc, max_switch_size);
    let mut core_attach = vec![0usize; soc.core_count()];
    let mut switch_layer = Vec::new();
    let mut est_positions = Vec::new();
    // One member buffer reused across every block of every layer.
    let mut block_local: Vec<usize> = Vec::new();

    for layer in 0..soc.layers {
        let (lpg, members) = graph.layer_partitioning_graph(soc, layer, alpha);
        if members.is_empty() {
            continue;
        }
        let np = (minima[layer as usize] + increment).clamp(1, members.len());
        let parts = lpg.partition(&PartitionConfig::k_way(np).with_seed(seed))?;

        let base = switch_layer.len();
        for block in 0..np as u32 {
            parts.members_into(block, &mut block_local);
            debug_assert!(!block_local.is_empty());
            let (mut cx, mut cy) = (0.0, 0.0);
            for &l in &block_local {
                let (x, y) = soc.cores[members[l]].center();
                cx += x;
                cy += y;
            }
            est_positions.push((cx / block_local.len() as f64, cy / block_local.len() as f64));
            switch_layer.push(layer);
            for &l in &block_local {
                core_attach[members[l]] = base + block as usize;
            }
        }
    }

    Ok(Connectivity { core_attach, switch_layer, est_positions, theta: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CommSpec, Core, Flow, MessageType};

    fn soc_3layers() -> (SocSpec, CommGraph) {
        // Layer 0: 5 cores, layer 1: 3 cores, layer 2: 4 cores.
        let counts = [5usize, 3, 4];
        let mut cores = Vec::new();
        for (l, &n) in counts.iter().enumerate() {
            for i in 0..n {
                cores.push(Core {
                    name: format!("l{l}c{i}"),
                    width: 1.0,
                    height: 1.0,
                    x: i as f64 * 2.0,
                    y: l as f64,
                    layer: l as u32,
                });
            }
        }
        let soc = SocSpec::new(cores, 3).unwrap();
        // A pipeline through all cores (inter- and intra-layer flows).
        let n = soc.core_count();
        let flows = (0..n - 1)
            .map(|i| Flow {
                src: i,
                dst: i + 1,
                bandwidth_mbs: 100.0,
                max_latency_cycles: 12.0,
                message_type: MessageType::Request,
            })
            .collect();
        let comm = CommSpec::new(flows, &soc).unwrap();
        let graph = CommGraph::new(&soc, &comm);
        (soc, graph)
    }

    #[test]
    fn minimum_switch_counts_follow_ceiling_division() {
        let (soc, _) = soc_3layers();
        assert_eq!(min_switches_per_layer(&soc, 4), vec![2, 1, 1]);
        assert_eq!(min_switches_per_layer(&soc, 11), vec![1, 1, 1]);
        assert_eq!(min_switches_per_layer(&soc, 2), vec![3, 2, 2]);
    }

    #[test]
    fn max_increment_reaches_one_switch_per_core() {
        let (soc, _) = soc_3layers();
        // max over layers of (cores - minimum) with max_sw_size = 4:
        // layer 0: 5-2=3, layer 1: 3-1=2, layer 2: 4-1=3.
        assert_eq!(max_increment(&soc, 4), 3);
    }

    #[test]
    fn all_switches_serve_their_own_layer() {
        let (soc, graph) = soc_3layers();
        for inc in 0..=max_increment(&soc, 4) {
            let c = connectivity(&graph, &soc, inc, 4, 1.0, 7).unwrap();
            for (core, &sw) in c.core_attach.iter().enumerate() {
                assert_eq!(
                    soc.cores[core].layer, c.switch_layer[sw],
                    "core {core} attached across layers at increment {inc}"
                );
            }
        }
    }

    #[test]
    fn increment_grows_switch_count_per_layer() {
        let (soc, graph) = soc_3layers();
        let c0 = connectivity(&graph, &soc, 0, 4, 1.0, 7).unwrap();
        let c1 = connectivity(&graph, &soc, 1, 4, 1.0, 7).unwrap();
        assert_eq!(c0.switch_count(), 2 + 1 + 1);
        assert_eq!(c1.switch_count(), 3 + 2 + 2);
    }

    #[test]
    fn increment_clamps_at_layer_core_count() {
        let (soc, graph) = soc_3layers();
        let c = connectivity(&graph, &soc, 99, 4, 1.0, 7).unwrap();
        // Every core alone on its switch.
        assert_eq!(c.switch_count(), soc.core_count());
        for (core, &sw) in c.core_attach.iter().enumerate() {
            assert_eq!(c.switch_layer[sw], soc.cores[core].layer);
            assert_eq!(
                (0..soc.core_count()).filter(|&o| c.core_attach[o] == sw).count(),
                1
            );
        }
    }

    #[test]
    fn no_switch_exceeds_core_capacity_at_minimum() {
        let (soc, graph) = soc_3layers();
        let max_sw = 4u32;
        let c = connectivity(&graph, &soc, 0, max_sw, 1.0, 7).unwrap();
        for s in 0..c.switch_count() {
            let attached = c.core_attach.iter().filter(|&&a| a == s).count();
            assert!(attached as u32 <= max_sw, "switch {s} hosts {attached} cores");
        }
    }
}
