//! Communication graph and the derived partitioning graphs.
//!
//! Definition 2 (communication graph), Definition 3 (partitioning graph PG),
//! Definition 4 (scaled partitioning graph SPG, eq. 1) and Definition 5
//! (layer partitioning graph LPG) of the paper.

use crate::spec::{CommSpec, MessageType, SocSpec};
use sunfloor_partition::WeightedGraph;

/// One edge of the communication graph: a traffic flow between two cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEdge {
    /// Source core index.
    pub src: usize,
    /// Destination core index.
    pub dst: usize,
    /// Bandwidth in megabytes per second.
    pub bandwidth_mbs: f64,
    /// Latency budget in cycles.
    pub latency_cycles: f64,
    /// Index of the flow in the communication specification.
    pub flow: usize,
    /// Message class (request/response).
    pub class: MessageType,
}

/// The directed communication graph `G(V, E)`: one vertex per core, one edge
/// per traffic flow, annotated with bandwidth and latency constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct CommGraph {
    n: usize,
    edges: Vec<CommEdge>,
    max_bw: f64,
    min_lat: f64,
}

impl CommGraph {
    /// Builds the communication graph from the two specifications.
    #[must_use]
    pub fn new(soc: &SocSpec, comm: &CommSpec) -> Self {
        let edges: Vec<CommEdge> = comm
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| CommEdge {
                src: f.src,
                dst: f.dst,
                bandwidth_mbs: f.bandwidth_mbs,
                latency_cycles: f.max_latency_cycles,
                flow: i,
                class: f.message_type,
            })
            .collect();
        let max_bw = edges.iter().map(|e| e.bandwidth_mbs).fold(0.0, f64::max);
        let min_lat = edges.iter().map(|e| e.latency_cycles).fold(f64::INFINITY, f64::min);
        Self { n: soc.core_count(), edges, max_bw, min_lat }
    }

    /// Number of cores (vertices).
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.n
    }

    /// Largest bandwidth over all flows (`max_bw` in Definition 3).
    #[must_use]
    pub fn max_bandwidth_mbs(&self) -> f64 {
        self.max_bw
    }

    /// Tightest latency constraint over all flows (`min_lat`).
    #[must_use]
    pub fn min_latency_cycles(&self) -> f64 {
        self.min_lat
    }

    /// Definition 3 edge weight: `h = α·bw/max_bw + (1−α)·min_lat/lat`.
    #[must_use]
    pub fn edge_weight(&self, bandwidth_mbs: f64, latency_cycles: f64, alpha: f64) -> f64 {
        let bw_term = if self.max_bw > 0.0 { bandwidth_mbs / self.max_bw } else { 0.0 };
        let lat_term = if self.min_lat.is_finite() && latency_cycles > 0.0 {
            self.min_lat / latency_cycles
        } else {
            0.0
        };
        alpha * bw_term + (1.0 - alpha) * lat_term
    }

    /// Maximum Definition-3 weight over all edges (`max_wt` in eq. 1).
    #[must_use]
    pub fn max_weight(&self, alpha: f64) -> f64 {
        self.edges
            .iter()
            .map(|e| self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha))
            .fold(0.0, f64::max)
    }

    /// The **PG** (Definition 3): same vertices/edges as the communication
    /// graph, with α-combined weights, folded to the undirected form the
    /// min-cut partitioner consumes.
    #[must_use]
    pub fn partitioning_graph(&self, alpha: f64) -> WeightedGraph {
        let mut g = WeightedGraph::new(self.n);
        for e in &self.edges {
            g.add_edge(e.src, e.dst, self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha));
        }
        g
    }

    /// The **SPG** (Definition 4, eq. 1): inter-layer edge weights are scaled
    /// down by `θ·|Δlayer|` and weak edges of weight `θ·max_wt/(10·θ_max)`
    /// are added between core pairs sharing a layer, so the partitioner is
    /// pulled towards same-layer clusters and the number of inter-layer
    /// links shrinks.
    ///
    /// The weak same-layer clique of eq. (1) is **not materialized**: it is
    /// folded into the graph as a [`sunfloor_partition`] group attraction —
    /// one implicit complete graph per layer with the uniform weak weight,
    /// accounted for analytically (from per-(layer, block) member counts)
    /// inside every cut evaluation and FM gain. The objective is exactly the
    /// dense Definition-4 one (same-layer flow edges are compensated by the
    /// weak weight, so pair totals match the dense graph's edge weights),
    /// but the partitioner only ever touches the `O(|flows|)` edge set
    /// instead of the paper's literal `O(n²)` one. The only divergence is a
    /// zero-weight flow on a same-layer pair: the literal dense builder
    /// suppresses that pair's weak edge, the fold still attracts it — a
    /// weightless flow carries no Definition-3 signal either way.
    /// [`tests/partition_warm.rs`] pins the folded cut against the dense
    /// reference ([`Self::scaled_partitioning_graph_dense`]) on every
    /// in-tree benchmark.
    #[must_use]
    pub fn scaled_partitioning_graph(
        &self,
        soc: &SocSpec,
        alpha: f64,
        theta: f64,
        theta_max: f64,
    ) -> WeightedGraph {
        let mut g = WeightedGraph::new(self.n);
        let max_wt = self.max_weight(alpha);
        // eq. (1), case 3: weight of the added same-layer edges.
        let intra_extra = theta * max_wt / (10.0 * theta_max);
        for e in &self.edges {
            let h = self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha);
            let (ls, ld) = (soc.cores[e.src].layer, soc.cores[e.dst].layer);
            let w = if ls == ld {
                h
            } else {
                let dist = f64::from(ls.abs_diff(ld));
                h / (theta * dist)
            };
            g.add_edge(e.src, e.dst, w);
        }
        if intra_extra > 0.0 && self.n > 0 {
            g.set_group_attraction(
                soc.cores.iter().map(|c| c.layer).collect(),
                intra_extra,
            );
        }
        g
    }

    /// The dense Definition-4 SPG exactly as the paper states it: weak edges
    /// between **all** non-communicating same-layer pairs. Retained as the
    /// reference oracle for the sparse production path
    /// ([`Self::scaled_partitioning_graph`]) — the quality-anchor tests and
    /// the `theta_sparse_vs_dense` criterion group measure against it.
    #[must_use]
    pub fn scaled_partitioning_graph_dense(
        &self,
        soc: &SocSpec,
        alpha: f64,
        theta: f64,
        theta_max: f64,
    ) -> WeightedGraph {
        let mut g = WeightedGraph::new(self.n);
        let max_wt = self.max_weight(alpha);
        let intra_extra = theta * max_wt / (10.0 * theta_max);

        // Track which PG edges exist so added edges do not double up.
        let mut has_edge = vec![false; self.n * self.n];
        for e in &self.edges {
            let h = self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha);
            let (ls, ld) = (soc.cores[e.src].layer, soc.cores[e.dst].layer);
            let w = if ls == ld {
                h
            } else {
                let dist = f64::from(ls.abs_diff(ld));
                h / (theta * dist)
            };
            g.add_edge(e.src, e.dst, w);
            has_edge[e.src * self.n + e.dst] = true;
            has_edge[e.dst * self.n + e.src] = true;
        }
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if !has_edge[a * self.n + b] && soc.cores[a].layer == soc.cores[b].layer {
                    g.add_edge(a, b, intra_extra);
                }
            }
        }
        g
    }

    /// The **LPG** for `layer` (Definition 5): vertices are only that layer's
    /// cores (returned as the mapping `local -> global core index`), edges
    /// are the intra-layer flows with Definition-3 weights, and isolated
    /// vertices get near-zero edges to every other vertex so the partitioner
    /// still has freedom to place them.
    #[must_use]
    pub fn layer_partitioning_graph(
        &self,
        soc: &SocSpec,
        layer: u32,
        alpha: f64,
    ) -> (WeightedGraph, Vec<usize>) {
        let members = soc.cores_in_layer(layer);
        let mut local_of = vec![usize::MAX; self.n];
        for (l, &g) in members.iter().enumerate() {
            local_of[g] = l;
        }
        let m = members.len();
        let mut g = WeightedGraph::new(m);
        let mut connected = vec![false; m];
        for e in &self.edges {
            let (ls, ld) = (local_of[e.src], local_of[e.dst]);
            if ls != usize::MAX && ld != usize::MAX {
                g.add_edge(ls, ld, self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha));
                connected[ls] = true;
                connected[ld] = true;
            }
        }
        // Near-zero edges from isolated vertices to everyone in the layer.
        let tiny = (self.max_weight(alpha) * 1e-4).max(1e-9);
        for (v, &is_connected) in connected.iter().enumerate() {
            if !is_connected {
                for u in 0..m {
                    if u != v {
                        g.add_edge(v, u, tiny);
                    }
                }
            }
        }
        (g, members)
    }

    /// All edges (one per flow, in flow order).
    #[must_use]
    pub fn edge_list(&self) -> &[CommEdge] {
        &self.edges
    }

    /// Builds the θ-independent part of the SPG cache: the reference graph
    /// (topology + θ=`SPG_THETA_REF` weights) plus, per directed adjacency
    /// entry, the data needed to recompute its weight at any θ with the
    /// exact float operations of [`Self::scaled_partitioning_graph`].
    fn spg_template(&self, soc: &SocSpec, alpha: f64, theta_max: f64) -> SpgTemplate {
        let graph = self.scaled_partitioning_graph(soc, alpha, SPG_THETA_REF, theta_max);
        let n = self.n;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        for v in 0..n {
            offsets.push(total);
            total += graph.neighbors(v).len();
        }
        offsets.push(total);

        // Collect each directed entry's flow contributions in flow order —
        // the accumulation order `add_edge` used, so re-summing at a new θ
        // reproduces the scratch-built SPG bit for bit.
        let mut contrib: Vec<Vec<f64>> = vec![Vec::new(); total];
        let mut dist_of = vec![0.0f64; total];
        for e in &self.edges {
            if e.src == e.dst {
                continue;
            }
            let h = self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha);
            let (ls, ld) = (soc.cores[e.src].layer, soc.cores[e.dst].layer);
            let dist = f64::from(ls.abs_diff(ld));
            let w_ref = if ls == ld { h } else { h / (SPG_THETA_REF * dist) };
            if w_ref <= 0.0 {
                // `add_edge` drops non-positive weights; at any θ > 0 the
                // weight stays non-positive, so the entry never exists.
                continue;
            }
            for (a, b) in [(e.src, e.dst), (e.dst, e.src)] {
                let pos = graph
                    .neighbors(a)
                    .iter()
                    .position(|&(t, _)| t as usize == b)
                    // sf-allow(panic-in-lib): invariant — `graph` was built from these same edges with a positive reference weight, so the directed entry exists; a miss is template corruption, not a recoverable state
                    .expect("flow edge present in the reference SPG");
                let idx = offsets[a] + pos;
                contrib[idx].push(h);
                dist_of[idx] = dist;
            }
        }

        let mut kinds = Vec::with_capacity(total);
        let mut hs = Vec::new();
        for idx in 0..total {
            // Every adjacency entry is a flow edge: the weak same-layer
            // clique lives in the graph's group attraction, not its edges.
            debug_assert!(!contrib[idx].is_empty(), "SPG entry without a flow contribution");
            if dist_of[idx] == 0.0 {
                // Intra-layer flow edge: the θ-independent accumulated flow
                // weight; the stored entry is this minus the θ-dependent
                // attraction compensation.
                let mut acc = 0.0;
                for &h in &contrib[idx] {
                    acc += h;
                }
                kinds.push(SpgEntryKind::Intra(acc));
            } else {
                let start = hs.len() as u32;
                hs.extend_from_slice(&contrib[idx]);
                kinds.push(SpgEntryKind::Inter {
                    start,
                    len: contrib[idx].len() as u32,
                    dist: dist_of[idx],
                });
            }
        }
        SpgTemplate {
            graph,
            kinds,
            hs,
            max_wt: self.max_weight(alpha),
            theta_max,
            current_theta: SPG_THETA_REF,
        }
    }

    /// Flow indices in decreasing Definition-3 criticality (ties broken by
    /// flow index, so the order is deterministic) — the routing order of
    /// §VI.
    #[must_use]
    pub fn flows_by_criticality(&self, alpha: f64) -> Vec<usize> {
        let mut order = Vec::new();
        let mut weights = Vec::new();
        self.flows_by_criticality_into(alpha, &mut order, &mut weights);
        order
    }

    /// [`Self::flows_by_criticality`] into caller-provided buffers (`order`
    /// receives the result; `weights` is pure scratch), so hot loops — the
    /// per-candidate router — reuse both allocations.
    pub fn flows_by_criticality_into(
        &self,
        alpha: f64,
        order: &mut Vec<usize>,
        weights: &mut Vec<f64>,
    ) {
        order.clear();
        order.extend(0..self.edges.len());
        // Weights are precomputed once: the comparator runs O(n log n)
        // times and `edge_weight` is not free.
        weights.clear();
        weights.extend(
            self.edges.iter().map(|e| self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha)),
        );
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    }
}

/// Reference θ the cached SPG template is built at (the weights stored in
/// the template's graph before the first rescale).
const SPG_THETA_REF: f64 = 1.0;

/// How one cached SPG adjacency entry's weight depends on θ.
#[derive(Debug, Clone)]
enum SpgEntryKind {
    /// Intra-layer flow edge: the θ-independent accumulated flow weight.
    /// The stored entry is this minus the θ-dependent group-attraction
    /// compensation `θ·max_wt/(10·θ_max)` (both endpoints share a layer).
    Intra(f64),
    /// Inter-layer flow edge: weight is the flow contributions
    /// `hs[start..start + len]` re-accumulated as `Σ h / (θ·dist)`.
    Inter {
        start: u32,
        len: u32,
        dist: f64,
    },
}

/// The θ-independent skeleton of the scaled partitioning graph: topology
/// plus per-entry weight recipes, rescaled in place per θ.
#[derive(Debug, Clone)]
struct SpgTemplate {
    graph: WeightedGraph,
    /// Per directed adjacency entry, in [`WeightedGraph::reweigh`] order.
    kinds: Vec<SpgEntryKind>,
    /// Flat inter-layer flow contributions referenced by the kinds.
    hs: Vec<f64>,
    max_wt: f64,
    theta_max: f64,
    current_theta: f64,
}

impl SpgTemplate {
    /// Rewrites the weights in place for `theta`. A no-op when the graph
    /// already sits at `theta` — the result is a pure function of θ, so
    /// skipping the rewrite cannot change any downstream partition.
    // sf: hot-path
    fn rescale(&mut self, theta: f64) {
        if self.current_theta == theta {
            return;
        }
        let Self { graph, kinds, hs, max_wt, theta_max, current_theta } = self;
        let extra = theta * *max_wt / (10.0 * *theta_max);
        let mut idx = 0usize;
        graph.reweigh(|_, _, _| {
            let kind = &kinds[idx];
            idx += 1;
            match *kind {
                // Accumulate-then-subtract, the exact float operations of
                // `add_edge` + `set_group_attraction` on the scratch path.
                SpgEntryKind::Intra(acc) => acc - extra,
                SpgEntryKind::Inter { start, len, dist } => {
                    let mut acc = 0.0;
                    for &h in &hs[start as usize..(start + len) as usize] {
                        acc += h / (theta * dist);
                    }
                    acc
                }
            }
        });
        if graph.attraction().is_some() {
            graph.reweigh_attraction(extra);
        }
        *current_theta = theta;
    }
}

/// Deterministic counters of how the Phase-1 partitioning work was served.
///
/// Every field counts per-candidate (or per-seed-chain) events, so serial
/// and parallel sweeps report identical totals — worker-local effects such
/// as each worker lazily building its own SPG template are deliberately
/// *not* counted here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartitionStats {
    /// Phase-1 base partitions served from the engine's precomputed
    /// warm-chained seed set instead of being recomputed.
    pub base_cache_hits: u64,
    /// Partitions refined from a warm initial assignment.
    pub warm_partitions: u64,
    /// Partitions recursive-bisected from scratch.
    pub cold_partitions: u64,
    /// SPGs derived by rescaling the cached template in place (one per
    /// θ-escalation attempt) instead of rebuilding the graph.
    pub spg_derivations: u64,
}

impl PartitionStats {
    /// Total partitioning requests answered without a from-scratch
    /// recursive bisection — the headline `partition_cache_hits` number.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.base_cache_hits + self.warm_partitions
    }
}

impl std::ops::AddAssign for PartitionStats {
    fn add_assign(&mut self, rhs: Self) {
        self.base_cache_hits += rhs.base_cache_hits;
        self.warm_partitions += rhs.warm_partitions;
        self.cold_partitions += rhs.cold_partitions;
        self.spg_derivations += rhs.spg_derivations;
    }
}

impl std::ops::Sub for PartitionStats {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self {
            base_cache_hits: self.base_cache_hits - rhs.base_cache_hits,
            warm_partitions: self.warm_partitions - rhs.warm_partitions,
            cold_partitions: self.cold_partitions - rhs.cold_partitions,
            spg_derivations: self.spg_derivations - rhs.spg_derivations,
        }
    }
}

/// Caches the partitioning graphs one `CommGraph` induces so a design-space
/// sweep stops rebuilding them per candidate: the α-weighted PG is
/// constructed once, and every SPG is derived by rescaling a cached
/// template's edge weights in place (θ only scales weights — the edge set
/// never changes). Weights are bit-identical to the scratch-built graphs of
/// [`CommGraph::partitioning_graph`] / [`CommGraph::scaled_partitioning_graph`].
///
/// A cache is tied to the first `CommGraph`/`SocSpec` it sees (the
/// synthesis engine keeps one per sweep worker); changing `alpha` or
/// `theta_max` rebuilds the cached graphs.
#[derive(Debug, Clone, Default)]
pub struct PartitionCache {
    pg: Option<(f64, WeightedGraph)>,
    spg: Option<SpgTemplate>,
    spg_alpha: f64,
    /// Deterministic counters of the partitioning work this cache served;
    /// see [`PartitionStats`].
    pub stats: PartitionStats,
}

impl PartitionCache {
    /// An empty cache; graphs are built on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The α-weighted PG, built once and reused.
    pub fn pg(&mut self, graph: &CommGraph, alpha: f64) -> &WeightedGraph {
        let rebuild = !matches!(&self.pg, Some((a, _)) if *a == alpha);
        if rebuild {
            self.pg = None;
        }
        &self.pg.get_or_insert_with(|| (alpha, graph.partitioning_graph(alpha))).1
    }

    /// The SPG at `theta`, derived by rescaling the cached template in
    /// place (built on first use).
    pub fn spg(
        &mut self,
        graph: &CommGraph,
        soc: &SocSpec,
        alpha: f64,
        theta: f64,
        theta_max: f64,
    ) -> &WeightedGraph {
        let rebuild = match &self.spg {
            Some(t) => t.theta_max != theta_max || self.spg_alpha != alpha,
            None => true,
        };
        if rebuild {
            self.spg = None;
            self.spg_alpha = alpha;
        }
        let template =
            self.spg.get_or_insert_with(|| graph.spg_template(soc, alpha, theta_max));
        template.rescale(theta);
        &template.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Core, Flow, MessageType};

    fn soc_2x2() -> SocSpec {
        // Four cores, two layers: 0,1 on layer 0; 2,3 on layer 1.
        SocSpec::new(
            (0..4)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.0,
                    height: 1.0,
                    x: f64::from(i % 2) * 2.0,
                    y: 0.0,
                    layer: u32::from(i >= 2),
                })
                .collect(),
            2,
        )
        .unwrap()
    }

    fn flows() -> Vec<Flow> {
        // Matches the shape of the paper's Fig. 4 example: inter-layer flows
        // heavier than intra-layer ones.
        let f = |src, dst, bw: f64, lat: f64| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: lat,
            message_type: MessageType::Request,
        };
        vec![f(0, 2, 400.0, 4.0), f(1, 3, 400.0, 4.0), f(0, 1, 100.0, 8.0), f(2, 3, 100.0, 8.0)]
    }

    fn graph() -> (SocSpec, CommGraph) {
        let soc = soc_2x2();
        let comm = CommSpec::new(flows(), &soc).unwrap();
        let g = CommGraph::new(&soc, &comm);
        (soc, g)
    }

    #[test]
    fn definition3_weight_alpha_extremes() {
        let (_, g) = graph();
        // alpha = 1: pure bandwidth ratio.
        assert!((g.edge_weight(400.0, 4.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((g.edge_weight(100.0, 8.0, 1.0) - 0.25).abs() < 1e-12);
        // alpha = 0: pure latency tightness (min_lat = 4).
        assert!((g.edge_weight(400.0, 4.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((g.edge_weight(100.0, 8.0, 0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pg_prefers_clustering_heavy_interlayer_pairs() {
        let (_, g) = graph();
        let pg = g.partitioning_graph(1.0);
        // inter-layer edges (0-2, 1-3) are heavier than intra-layer ones.
        assert!(pg.edge_weight(0, 2) > pg.edge_weight(0, 1));
    }

    #[test]
    fn spg_scales_down_interlayer_and_adds_intralayer_edges() {
        let (soc, g) = graph();
        let theta = 10.0;
        let spg = g.scaled_partitioning_graph(&soc, 1.0, theta, 15.0);
        // Inter-layer edge scaled by 1/theta.
        let pg = g.partitioning_graph(1.0);
        assert!(
            (spg.edge_weight(0, 2) - pg.edge_weight(0, 2) / theta).abs() < 1e-12,
            "scaled weight wrong"
        );
        // Same-layer pairs 1-0 and 2-3 communicate already; 0-3 spans
        // layers -> no stored edge and no attraction between them.
        assert_eq!(spg.edge_weight(0, 3), 0.0);
        // The weak same-layer weight theta*max_wt/(10*theta_max) lives in
        // the group attraction, not in materialized edges — craft a spec
        // with a non-communicating same-layer pair and check the split
        // cost:
        let soc2 = soc;
        let comm2 = CommSpec::new(
            vec![Flow {
                src: 0,
                dst: 2,
                bandwidth_mbs: 100.0,
                max_latency_cycles: 5.0,
                message_type: MessageType::Request,
            }],
            &soc2,
        )
        .unwrap();
        let g2 = CommGraph::new(&soc2, &comm2);
        let spg2 = g2.scaled_partitioning_graph(&soc2, 1.0, theta, 15.0);
        let expected = theta * g2.max_weight(1.0) / (10.0 * 15.0);
        let at = spg2.attraction().expect("SPG carries the layer attraction");
        assert!((at.weight() - expected).abs() < 1e-12);
        assert_eq!(spg2.edge_weight(0, 1), 0.0, "no weak edge is materialized");
        // Splitting the non-communicating same-layer pair 0-1 costs exactly
        // one weak weight (the 0-2 flow stays uncut).
        assert!((spg2.cut_weight(&[0, 1, 0, 0]) - expected).abs() < 1e-12);
    }

    #[test]
    fn added_edges_are_weaker_than_any_pg_edge() {
        // eq. (1): extra edges have at most one tenth the max PG weight even
        // at theta = theta_max.
        let (soc, g) = graph();
        let spg = g.scaled_partitioning_graph(&soc, 1.0, 15.0, 15.0);
        let max_wt = g.max_weight(1.0);
        // 0 and 1 share a layer; their PG edge is 0.25*max; extra edges are
        // only for non-PG pairs, so check on a non-communicating same-layer
        // pair is covered above. Here, verify no extra edge exceeds max/10.
        let _ = spg;
        assert!(15.0 * max_wt / (10.0 * 15.0) <= max_wt / 10.0 + 1e-12);
    }

    #[test]
    fn lpg_is_per_layer_and_reindexes() {
        let (soc, g) = graph();
        let (lpg0, members0) = g.layer_partitioning_graph(&soc, 0, 1.0);
        assert_eq!(members0, vec![0, 1]);
        assert!(lpg0.edge_weight(0, 1) > 0.0, "intra-layer flow kept");
        let (lpg1, members1) = g.layer_partitioning_graph(&soc, 1, 1.0);
        assert_eq!(members1, vec![2, 3]);
        assert!(lpg1.edge_weight(0, 1) > 0.0);
    }

    #[test]
    fn lpg_gives_isolated_cores_weak_edges() {
        let soc = soc_2x2();
        // Only one intra-layer flow on layer 0; cores 2,3 (layer 1) have no
        // intra-layer traffic at all.
        let comm = CommSpec::new(
            vec![Flow {
                src: 0,
                dst: 1,
                bandwidth_mbs: 100.0,
                max_latency_cycles: 5.0,
                message_type: MessageType::Request,
            }],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        let (lpg1, _) = g.layer_partitioning_graph(&soc, 1, 1.0);
        let w = lpg1.edge_weight(0, 1);
        assert!(w > 0.0 && w < 1e-3, "isolated cores should get tiny edges, got {w}");
    }

    /// The folded SPG carries the dense Definition-4 objective exactly:
    /// every pair's total weight (stored edge plus implicit same-layer
    /// attraction) matches the dense reference's edge weight, and cut
    /// weights agree on every assignment.
    #[test]
    fn folded_spg_matches_dense_objective() {
        let (soc, g) = graph();
        for theta in [1.0, 7.0, 15.0] {
            let folded = g.scaled_partitioning_graph(&soc, 1.0, theta, 15.0);
            let dense = g.scaled_partitioning_graph_dense(&soc, 1.0, theta, 15.0);
            let at = folded.attraction().expect("SPG carries the layer attraction");
            assert_eq!(at.group_of(), &[0, 0, 1, 1]);
            for a in 0..4usize {
                for b in (a + 1)..4 {
                    let same_layer = soc.cores[a].layer == soc.cores[b].layer;
                    let total = folded.edge_weight(a, b)
                        + if same_layer { at.weight() } else { 0.0 };
                    assert!(
                        (total - dense.edge_weight(a, b)).abs() < 1e-12,
                        "θ={theta} pair {a}-{b}: folded total {total} != dense {}",
                        dense.edge_weight(a, b)
                    );
                }
            }
            // Cut weights agree on every 2-block assignment of 4 vertices.
            for bits in 0u32..16 {
                let assignment: Vec<u32> = (0..4).map(|v| (bits >> v) & 1).collect();
                let (s, d) = (folded.cut_weight(&assignment), dense.cut_weight(&assignment));
                assert!(
                    (s - d).abs() < 1e-9,
                    "θ={theta} {assignment:?}: folded cut {s} != dense cut {d}"
                );
            }
        }
    }

    /// On a wide layer the folded SPG materializes only the flow edges —
    /// the weak clique stays implicit — yet still evaluates to the dense
    /// Definition-4 cut.
    #[test]
    fn folded_spg_keeps_only_flow_edges_on_wide_layers() {
        // 12 cores on one layer, in a row; a single flow between cores 0,1.
        let soc = SocSpec::new(
            (0..12)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.0,
                    height: 1.0,
                    x: f64::from(i) * 2.0,
                    y: 0.0,
                    layer: 0,
                })
                .collect(),
            1,
        )
        .unwrap();
        let comm = CommSpec::new(
            vec![Flow {
                src: 0,
                dst: 1,
                bandwidth_mbs: 100.0,
                max_latency_cycles: 5.0,
                message_type: MessageType::Request,
            }],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        let folded = g.scaled_partitioning_graph(&soc, 1.0, 7.0, 15.0);
        let dense = g.scaled_partitioning_graph_dense(&soc, 1.0, 7.0, 15.0);
        let edge_count = |wg: &WeightedGraph| {
            (0..12).map(|v| wg.neighbors(v).len()).sum::<usize>() / 2
        };
        assert_eq!(edge_count(&folded), 1, "only the flow edge is materialized");
        assert_eq!(edge_count(&dense), 12 * 11 / 2, "dense carries the full weak clique");
        // Deterministic pseudo-random assignments into 2 and 3 blocks.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            (state >> 33) as u32
        };
        for blocks in [2u32, 3] {
            for round in 0..16 {
                let assignment: Vec<u32> = (0..12).map(|_| next() % blocks).collect();
                let (s, d) = (folded.cut_weight(&assignment), dense.cut_weight(&assignment));
                assert!(
                    (s - d).abs() < 1e-9,
                    "blocks={blocks} round={round} {assignment:?}: folded cut {s} != dense {d}"
                );
            }
        }
    }

    /// The cache must reproduce the scratch-built graphs bit for bit: same
    /// topology, same weights, for the PG and for SPGs across the whole θ
    /// escalation schedule — in any θ order (rescaling is stateless in θ).
    #[test]
    fn partition_cache_matches_scratch_construction_bit_for_bit() {
        let (soc, g) = graph();
        let alpha = 0.6;
        let theta_max = 15.0;
        let mut cache = PartitionCache::new();
        assert_eq!(cache.pg(&g, alpha), &g.partitioning_graph(alpha));
        for theta in [1.0, 4.0, 7.0, 13.0, 7.0, 1.0, 15.0] {
            let scratch = g.scaled_partitioning_graph(&soc, alpha, theta, theta_max);
            assert_eq!(
                cache.spg(&g, &soc, alpha, theta, theta_max),
                &scratch,
                "cached SPG drifted from scratch construction at theta {theta}"
            );
        }
        // Bidirectional flows on the same pair must re-accumulate in the
        // same order too.
        let soc2 = soc_2x2();
        let comm2 = CommSpec::new(
            vec![
                Flow {
                    src: 0,
                    dst: 2,
                    bandwidth_mbs: 300.0,
                    max_latency_cycles: 5.0,
                    message_type: MessageType::Request,
                },
                Flow {
                    src: 2,
                    dst: 0,
                    bandwidth_mbs: 120.0,
                    max_latency_cycles: 9.0,
                    message_type: MessageType::Response,
                },
            ],
            &soc2,
        )
        .unwrap();
        let g2 = CommGraph::new(&soc2, &comm2);
        let mut cache2 = PartitionCache::new();
        for theta in [2.0, 11.0] {
            assert_eq!(
                cache2.spg(&g2, &soc2, 1.0, theta, theta_max),
                &g2.scaled_partitioning_graph(&soc2, 1.0, theta, theta_max)
            );
        }
    }
}
