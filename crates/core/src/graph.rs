//! Communication graph and the derived partitioning graphs.
//!
//! Definition 2 (communication graph), Definition 3 (partitioning graph PG),
//! Definition 4 (scaled partitioning graph SPG, eq. 1) and Definition 5
//! (layer partitioning graph LPG) of the paper.

use crate::spec::{CommSpec, MessageType, SocSpec};
use sunfloor_partition::WeightedGraph;

/// One edge of the communication graph: a traffic flow between two cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEdge {
    /// Source core index.
    pub src: usize,
    /// Destination core index.
    pub dst: usize,
    /// Bandwidth in megabytes per second.
    pub bandwidth_mbs: f64,
    /// Latency budget in cycles.
    pub latency_cycles: f64,
    /// Index of the flow in the communication specification.
    pub flow: usize,
    /// Message class (request/response).
    pub class: MessageType,
}

/// The directed communication graph `G(V, E)`: one vertex per core, one edge
/// per traffic flow, annotated with bandwidth and latency constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct CommGraph {
    n: usize,
    edges: Vec<CommEdge>,
    max_bw: f64,
    min_lat: f64,
}

impl CommGraph {
    /// Builds the communication graph from the two specifications.
    #[must_use]
    pub fn new(soc: &SocSpec, comm: &CommSpec) -> Self {
        let edges: Vec<CommEdge> = comm
            .flows
            .iter()
            .enumerate()
            .map(|(i, f)| CommEdge {
                src: f.src,
                dst: f.dst,
                bandwidth_mbs: f.bandwidth_mbs,
                latency_cycles: f.max_latency_cycles,
                flow: i,
                class: f.message_type,
            })
            .collect();
        let max_bw = edges.iter().map(|e| e.bandwidth_mbs).fold(0.0, f64::max);
        let min_lat = edges.iter().map(|e| e.latency_cycles).fold(f64::INFINITY, f64::min);
        Self { n: soc.core_count(), edges, max_bw, min_lat }
    }

    /// Number of cores (vertices).
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.n
    }

    /// Largest bandwidth over all flows (`max_bw` in Definition 3).
    #[must_use]
    pub fn max_bandwidth_mbs(&self) -> f64 {
        self.max_bw
    }

    /// Tightest latency constraint over all flows (`min_lat`).
    #[must_use]
    pub fn min_latency_cycles(&self) -> f64 {
        self.min_lat
    }

    /// Definition 3 edge weight: `h = α·bw/max_bw + (1−α)·min_lat/lat`.
    #[must_use]
    pub fn edge_weight(&self, bandwidth_mbs: f64, latency_cycles: f64, alpha: f64) -> f64 {
        let bw_term = if self.max_bw > 0.0 { bandwidth_mbs / self.max_bw } else { 0.0 };
        let lat_term = if self.min_lat.is_finite() && latency_cycles > 0.0 {
            self.min_lat / latency_cycles
        } else {
            0.0
        };
        alpha * bw_term + (1.0 - alpha) * lat_term
    }

    /// Maximum Definition-3 weight over all edges (`max_wt` in eq. 1).
    #[must_use]
    pub fn max_weight(&self, alpha: f64) -> f64 {
        self.edges
            .iter()
            .map(|e| self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha))
            .fold(0.0, f64::max)
    }

    /// The **PG** (Definition 3): same vertices/edges as the communication
    /// graph, with α-combined weights, folded to the undirected form the
    /// min-cut partitioner consumes.
    #[must_use]
    pub fn partitioning_graph(&self, alpha: f64) -> WeightedGraph {
        let mut g = WeightedGraph::new(self.n);
        for e in &self.edges {
            g.add_edge(e.src, e.dst, self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha));
        }
        g
    }

    /// The **SPG** (Definition 4, eq. 1): inter-layer edge weights are scaled
    /// down by `θ·|Δlayer|` and weak edges of weight `θ·max_wt/(10·θ_max)`
    /// are added between *all* core pairs sharing a layer, so the partitioner
    /// is pulled towards same-layer clusters and the number of inter-layer
    /// links shrinks.
    #[must_use]
    pub fn scaled_partitioning_graph(
        &self,
        soc: &SocSpec,
        alpha: f64,
        theta: f64,
        theta_max: f64,
    ) -> WeightedGraph {
        let mut g = WeightedGraph::new(self.n);
        let max_wt = self.max_weight(alpha);
        // eq. (1), case 3: weight of the added same-layer edges.
        let intra_extra = theta * max_wt / (10.0 * theta_max);

        // Track which PG edges exist so added edges do not double up.
        let mut has_edge = vec![false; self.n * self.n];
        for e in &self.edges {
            let h = self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha);
            let (ls, ld) = (soc.cores[e.src].layer, soc.cores[e.dst].layer);
            let w = if ls == ld {
                h
            } else {
                let dist = f64::from(ls.abs_diff(ld));
                h / (theta * dist)
            };
            g.add_edge(e.src, e.dst, w);
            has_edge[e.src * self.n + e.dst] = true;
            has_edge[e.dst * self.n + e.src] = true;
        }
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if !has_edge[a * self.n + b] && soc.cores[a].layer == soc.cores[b].layer {
                    g.add_edge(a, b, intra_extra);
                }
            }
        }
        g
    }

    /// The **LPG** for `layer` (Definition 5): vertices are only that layer's
    /// cores (returned as the mapping `local -> global core index`), edges
    /// are the intra-layer flows with Definition-3 weights, and isolated
    /// vertices get near-zero edges to every other vertex so the partitioner
    /// still has freedom to place them.
    #[must_use]
    pub fn layer_partitioning_graph(
        &self,
        soc: &SocSpec,
        layer: u32,
        alpha: f64,
    ) -> (WeightedGraph, Vec<usize>) {
        let members = soc.cores_in_layer(layer);
        let mut local_of = vec![usize::MAX; self.n];
        for (l, &g) in members.iter().enumerate() {
            local_of[g] = l;
        }
        let m = members.len();
        let mut g = WeightedGraph::new(m);
        let mut connected = vec![false; m];
        for e in &self.edges {
            let (ls, ld) = (local_of[e.src], local_of[e.dst]);
            if ls != usize::MAX && ld != usize::MAX {
                g.add_edge(ls, ld, self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha));
                connected[ls] = true;
                connected[ld] = true;
            }
        }
        // Near-zero edges from isolated vertices to everyone in the layer.
        let tiny = (self.max_weight(alpha) * 1e-4).max(1e-9);
        for (v, &is_connected) in connected.iter().enumerate() {
            if !is_connected {
                for u in 0..m {
                    if u != v {
                        g.add_edge(v, u, tiny);
                    }
                }
            }
        }
        (g, members)
    }

    /// All edges (one per flow, in flow order).
    #[must_use]
    pub fn edge_list(&self) -> &[CommEdge] {
        &self.edges
    }

    /// Flow indices in decreasing Definition-3 criticality (ties broken by
    /// flow index, so the order is deterministic) — the routing order of
    /// §VI.
    #[must_use]
    pub fn flows_by_criticality(&self, alpha: f64) -> Vec<usize> {
        let mut order = Vec::new();
        let mut weights = Vec::new();
        self.flows_by_criticality_into(alpha, &mut order, &mut weights);
        order
    }

    /// [`Self::flows_by_criticality`] into caller-provided buffers (`order`
    /// receives the result; `weights` is pure scratch), so hot loops — the
    /// per-candidate router — reuse both allocations.
    pub fn flows_by_criticality_into(
        &self,
        alpha: f64,
        order: &mut Vec<usize>,
        weights: &mut Vec<f64>,
    ) {
        order.clear();
        order.extend(0..self.edges.len());
        // Weights are precomputed once: the comparator runs O(n log n)
        // times and `edge_weight` is not free.
        weights.clear();
        weights.extend(
            self.edges.iter().map(|e| self.edge_weight(e.bandwidth_mbs, e.latency_cycles, alpha)),
        );
        order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Core, Flow, MessageType};

    fn soc_2x2() -> SocSpec {
        // Four cores, two layers: 0,1 on layer 0; 2,3 on layer 1.
        SocSpec::new(
            (0..4)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 1.0,
                    height: 1.0,
                    x: f64::from(i % 2) * 2.0,
                    y: 0.0,
                    layer: u32::from(i >= 2),
                })
                .collect(),
            2,
        )
        .unwrap()
    }

    fn flows() -> Vec<Flow> {
        // Matches the shape of the paper's Fig. 4 example: inter-layer flows
        // heavier than intra-layer ones.
        let f = |src, dst, bw: f64, lat: f64| Flow {
            src,
            dst,
            bandwidth_mbs: bw,
            max_latency_cycles: lat,
            message_type: MessageType::Request,
        };
        vec![f(0, 2, 400.0, 4.0), f(1, 3, 400.0, 4.0), f(0, 1, 100.0, 8.0), f(2, 3, 100.0, 8.0)]
    }

    fn graph() -> (SocSpec, CommGraph) {
        let soc = soc_2x2();
        let comm = CommSpec::new(flows(), &soc).unwrap();
        let g = CommGraph::new(&soc, &comm);
        (soc, g)
    }

    #[test]
    fn definition3_weight_alpha_extremes() {
        let (_, g) = graph();
        // alpha = 1: pure bandwidth ratio.
        assert!((g.edge_weight(400.0, 4.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((g.edge_weight(100.0, 8.0, 1.0) - 0.25).abs() < 1e-12);
        // alpha = 0: pure latency tightness (min_lat = 4).
        assert!((g.edge_weight(400.0, 4.0, 0.0) - 1.0).abs() < 1e-12);
        assert!((g.edge_weight(100.0, 8.0, 0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pg_prefers_clustering_heavy_interlayer_pairs() {
        let (_, g) = graph();
        let pg = g.partitioning_graph(1.0);
        // inter-layer edges (0-2, 1-3) are heavier than intra-layer ones.
        assert!(pg.edge_weight(0, 2) > pg.edge_weight(0, 1));
    }

    #[test]
    fn spg_scales_down_interlayer_and_adds_intralayer_edges() {
        let (soc, g) = graph();
        let theta = 10.0;
        let spg = g.scaled_partitioning_graph(&soc, 1.0, theta, 15.0);
        // Inter-layer edge scaled by 1/theta.
        let pg = g.partitioning_graph(1.0);
        assert!(
            (spg.edge_weight(0, 2) - pg.edge_weight(0, 2) / theta).abs() < 1e-12,
            "scaled weight wrong"
        );
        // New same-layer edge 1-0 exists in PG already; 2-3 exists too; but
        // 0-3? different layers -> no extra edge.
        assert_eq!(spg.edge_weight(0, 3), 0.0);
        // Extra edge weight = theta*max_wt/(10*theta_max) for absent
        // same-layer pairs — none absent here, so craft one:
        let soc2 = soc;
        let comm2 = CommSpec::new(
            vec![Flow {
                src: 0,
                dst: 2,
                bandwidth_mbs: 100.0,
                max_latency_cycles: 5.0,
                message_type: MessageType::Request,
            }],
            &soc2,
        )
        .unwrap();
        let g2 = CommGraph::new(&soc2, &comm2);
        let spg2 = g2.scaled_partitioning_graph(&soc2, 1.0, theta, 15.0);
        let expected = theta * g2.max_weight(1.0) / (10.0 * 15.0);
        assert!((spg2.edge_weight(0, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn added_edges_are_weaker_than_any_pg_edge() {
        // eq. (1): extra edges have at most one tenth the max PG weight even
        // at theta = theta_max.
        let (soc, g) = graph();
        let spg = g.scaled_partitioning_graph(&soc, 1.0, 15.0, 15.0);
        let max_wt = g.max_weight(1.0);
        // 0 and 1 share a layer; their PG edge is 0.25*max; extra edges are
        // only for non-PG pairs, so check on a non-communicating same-layer
        // pair is covered above. Here, verify no extra edge exceeds max/10.
        let _ = spg;
        assert!(15.0 * max_wt / (10.0 * 15.0) <= max_wt / 10.0 + 1e-12);
    }

    #[test]
    fn lpg_is_per_layer_and_reindexes() {
        let (soc, g) = graph();
        let (lpg0, members0) = g.layer_partitioning_graph(&soc, 0, 1.0);
        assert_eq!(members0, vec![0, 1]);
        assert!(lpg0.edge_weight(0, 1) > 0.0, "intra-layer flow kept");
        let (lpg1, members1) = g.layer_partitioning_graph(&soc, 1, 1.0);
        assert_eq!(members1, vec![2, 3]);
        assert!(lpg1.edge_weight(0, 1) > 0.0);
    }

    #[test]
    fn lpg_gives_isolated_cores_weak_edges() {
        let soc = soc_2x2();
        // Only one intra-layer flow on layer 0; cores 2,3 (layer 1) have no
        // intra-layer traffic at all.
        let comm = CommSpec::new(
            vec![Flow {
                src: 0,
                dst: 1,
                bandwidth_mbs: 100.0,
                max_latency_cycles: 5.0,
                message_type: MessageType::Request,
            }],
            &soc,
        )
        .unwrap();
        let g = CommGraph::new(&soc, &comm);
        let (lpg1, _) = g.layer_partitioning_graph(&soc, 1, 1.0);
        let w = lpg1.edge_weight(0, 1);
        assert!(w > 0.0 && w < 1e-3, "isolated cores should get tiny edges, got {w}");
    }
}
