//! Physical layout of the synthesized NoC: switch/TSV-macro insertion into
//! the per-layer floorplans (paper §III and §VII).
//!
//! Switches are inserted near their LP-optimal positions with the custom
//! shove-based routine; explicit TSV macros are added on every intermediate
//! layer a vertical link drills through (Fig. 2 — the macro at the two end
//! layers is embedded in the switch/NI itself and needs no separate block).

use crate::spec::SocSpec;
use crate::topology::Topology;
use std::ops::AddAssign;
use sunfloor_floorplan::{
    anneal_tempered_constrained_with_stats, insert_components, Block, ConstrainedInput, Floorplan,
    IdealTarget, InsertRequest, PlacedBlock, SequencePair, TemperConfig,
};
use sunfloor_models::NocLibrary;

/// Result of laying out one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// One legal floorplan per layer (cores, switches, TSV macros).
    pub layers: Vec<Floorplan>,
    /// Die area required per layer, mm².
    pub layer_area_mm2: Vec<f64>,
    /// Total Manhattan displacement cores suffered during insertion.
    pub core_displacement_mm: f64,
    /// Total deviation of switches from their LP-ideal centers.
    pub switch_deviation_mm: f64,
}

impl Layout {
    /// The stack's die area: wafer-to-wafer stacking uses equal dies, so the
    /// largest layer dictates the area (mm²).
    #[must_use]
    pub fn die_area_mm2(&self) -> f64 {
        self.layer_area_mm2.iter().copied().fold(0.0, f64::max)
    }
}

/// Counters from the tempered-annealing layout path, accumulated per
/// candidate like `PartitionStats`/`LpStats` so serial and parallel sweeps
/// report identical totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnnealStats {
    /// Tempered layer anneals executed.
    pub runs: u64,
    /// Replica-exchange attempts across all runs.
    pub swap_attempts: u64,
    /// Replica-exchange acceptances across all runs.
    pub swap_accepts: u64,
}

impl AnnealStats {
    /// Fraction of attempted replica exchanges that were accepted.
    #[must_use]
    pub fn swap_acceptance(&self) -> f64 {
        if self.swap_attempts == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.swap_accepts as f64 / self.swap_attempts as f64
            }
        }
    }
}

impl AddAssign for AnnealStats {
    fn add_assign(&mut self, rhs: Self) {
        self.runs += rhs.runs;
        self.swap_attempts += rhs.swap_attempts;
        self.swap_accepts += rhs.swap_accepts;
    }
}

/// The cores of one layer as placed blocks, in `cores_in_layer` order.
fn layer_cores(soc: &SocSpec, layer: u32) -> Vec<PlacedBlock> {
    soc.cores_in_layer(layer)
        .into_iter()
        .map(|c| {
            let core = &soc.cores[c];
            PlacedBlock::new(Block::new(core.name.clone(), core.width, core.height), core.x, core.y)
        })
        .collect()
}

/// The NoC components destined for one layer: this layer's switches (with
/// the switch ids they map back to), then the explicit TSV macros of every
/// vertical link or core attachment whose interior crosses the layer
/// (Fig. 2 — end-layer macros are embedded in the switch/NI itself).
fn layer_requests(
    topo: &Topology,
    soc: &SocSpec,
    lib: &NocLibrary,
    layer: u32,
) -> (Vec<InsertRequest>, Vec<usize>) {
    let mut requests = Vec::new();
    let mut switch_ids = Vec::new();
    for s in 0..topo.switch_count() {
        if topo.switch_layer[s] != layer {
            continue;
        }
        let area = lib.switch.area_mm2(topo.input_ports(s), topo.output_ports(s));
        let side = area.sqrt();
        requests.push(InsertRequest::new(
            Block::new(format!("sw{s}"), side, side),
            topo.switch_pos[s],
        ));
        switch_ids.push(s);
    }

    let macro_side = lib.tsv.macro_area_mm2(lib.link.flit_width_bits).sqrt();
    let add_macro = |a_layer: u32, b_layer: u32, a_pos: (f64, f64), b_pos: (f64, f64),
                         tag: String,
                         requests: &mut Vec<InsertRequest>| {
        let (lo, hi) = if a_layer <= b_layer { (a_layer, b_layer) } else { (b_layer, a_layer) };
        if lo < layer && layer < hi {
            let mid = ((a_pos.0 + b_pos.0) / 2.0, (a_pos.1 + b_pos.1) / 2.0);
            requests.push(InsertRequest::new(Block::new(tag, macro_side, macro_side), mid));
        }
    };
    for (li, l) in topo.links.iter().enumerate() {
        add_macro(
            topo.switch_layer[l.from],
            topo.switch_layer[l.to],
            topo.switch_pos[l.from],
            topo.switch_pos[l.to],
            format!("tsv_l{li}"),
            &mut requests,
        );
    }
    for (c, &sw) in topo.core_attach.iter().enumerate() {
        add_macro(
            soc.cores[c].layer,
            topo.switch_layer[sw],
            soc.cores[c].center(),
            topo.switch_pos[sw],
            format!("tsv_c{c}"),
            &mut requests,
        );
    }
    (requests, switch_ids)
}

/// Inserts the NoC components of `topo` into the input core placement and
/// rewrites `topo.switch_pos` with the final post-insertion switch centers.
///
/// `search_radius_mm` bounds the free-space search of the custom insertion
/// routine (§VII: a constant, identical for all switches).
#[must_use]
pub fn layout_design(
    topo: &mut Topology,
    soc: &SocSpec,
    lib: &NocLibrary,
    search_radius_mm: f64,
) -> Layout {
    let mut plans = Vec::with_capacity(soc.layers as usize);
    let mut areas = Vec::with_capacity(soc.layers as usize);
    let mut core_disp = 0.0;
    let mut sw_dev = 0.0;

    for layer in 0..soc.layers {
        let cores = layer_cores(soc, layer);
        let (requests, switch_ids) = layer_requests(topo, soc, lib, layer);

        let result = insert_components(&cores, &requests, search_radius_mm);
        core_disp += result.core_displacement;
        sw_dev += result.component_deviation;
        for (k, &s) in switch_ids.iter().enumerate() {
            topo.switch_pos[s] = result.component_centers[k];
        }
        areas.push(result.plan.area());
        plans.push(result.plan);
    }

    Layout {
        layers: plans,
        layer_area_mm2: areas,
        core_displacement_mm: core_disp,
        switch_deviation_mm: sw_dev,
    }
}

/// Weight charged per mm of a component's Manhattan deviation from its
/// LP-ideal center in the tempered layout path (the same weight the
/// §VIII-D constrained-floorplanner baseline uses).
const IDEAL_WEIGHT: f64 = 2.0;

/// Alternative to [`layout_design`]: places each layer's NoC components
/// with the deterministic parallel-tempering constrained annealer instead
/// of the shove-insertion routine. Cores keep their relative order (the
/// constrained-mode guarantee) but may shift; components are pulled toward
/// their LP-ideal centers. Rewrites `topo.switch_pos` like
/// [`layout_design`] and additionally returns the accumulated
/// [`AnnealStats`].
///
/// The per-layer seed is derived from `temper.base.rng_seed` and the layer
/// index, so the result is a pure function of `(topo, soc, lib, temper)` —
/// scheduling-independent like everything else in the sweep.
#[must_use]
pub fn layout_design_tempered(
    topo: &mut Topology,
    soc: &SocSpec,
    lib: &NocLibrary,
    temper: &TemperConfig,
) -> (Layout, AnnealStats) {
    let mut plans = Vec::with_capacity(soc.layers as usize);
    let mut areas = Vec::with_capacity(soc.layers as usize);
    let mut core_disp = 0.0;
    let mut sw_dev = 0.0;
    let mut stats = AnnealStats::default();

    for layer in 0..soc.layers {
        let cores = layer_cores(soc, layer);
        let (requests, switch_ids) = layer_requests(topo, soc, lib, layer);

        // Seed placement: cores as given, components centered on their
        // ideal spots (overlaps are fine — the sequence pair only encodes
        // relative order, and packing legalizes).
        let mut blocks: Vec<Block> = cores.iter().map(|p| p.block.clone()).collect();
        let mut placed = cores.clone();
        let mut ideal: Vec<IdealTarget> = vec![None; cores.len()];
        for req in &requests {
            blocks.push(req.block.clone());
            placed.push(PlacedBlock::new(
                req.block.clone(),
                req.ideal.0 - req.block.width / 2.0,
                req.ideal.1 - req.block.height / 2.0,
            ));
            ideal.push(Some((req.ideal.0, req.ideal.1, IDEAL_WEIGHT)));
        }
        let input = ConstrainedInput {
            seed: SequencePair::from_placement(&placed),
            blocks,
            ideal,
            fixed_order_count: cores.len(),
        };
        // Decorrelate layers without losing determinism: the layer index
        // perturbs the seed through a fixed odd constant.
        let cfg_layer = temper
            .clone()
            .with_seed(temper.base.rng_seed ^ u64::from(layer).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (plan, tstats) = anneal_tempered_constrained_with_stats(&input, &[], &cfg_layer);
        stats.runs += 1;
        stats.swap_attempts += tstats.swap_attempts;
        stats.swap_accepts += tstats.swap_accepts;

        for (i, core) in cores.iter().enumerate() {
            let moved = &plan.blocks[i];
            core_disp += (moved.x - core.x).abs() + (moved.y - core.y).abs();
        }
        for (k, req) in requests.iter().enumerate() {
            let c = plan.blocks[cores.len() + k].center();
            sw_dev += (c.0 - req.ideal.0).abs() + (c.1 - req.ideal.1).abs();
        }
        for (k, &s) in switch_ids.iter().enumerate() {
            topo.switch_pos[s] = plan.blocks[cores.len() + k].center();
        }
        areas.push(plan.area());
        plans.push(plan);
    }

    (
        Layout {
            layers: plans,
            layer_area_mm2: areas,
            core_displacement_mm: core_disp,
            switch_deviation_mm: sw_dev,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CommGraph;
    use crate::paths::{compute_paths, PathConfig};
    use crate::spec::{CommSpec, Core, Flow, MessageType};

    fn three_layer_design() -> (SocSpec, CommGraph, Topology) {
        let soc = SocSpec::new(
            (0..6)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 2.0,
                    height: 2.0,
                    x: f64::from(i % 2) * 2.5,
                    y: 0.0,
                    layer: i / 2,
                })
                .collect(),
            3,
        )
        .unwrap();
        let f = |src, dst| Flow {
            src,
            dst,
            bandwidth_mbs: 200.0,
            max_latency_cycles: 10.0,
            message_type: MessageType::Request,
        };
        let comm = CommSpec::new(vec![f(0, 4), f(1, 3), f(2, 5)], &soc).unwrap();
        let graph = CommGraph::new(&soc, &comm);
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &graph,
            &[0, 0, 1, 1, 2, 2],
            &[0, 1, 2],
            &[(1.0, 1.0), (2.0, 1.0), (1.5, 1.0)],
            &[0, 0, 1, 1, 2, 2],
            3,
            &NocLibrary::lp65(),
            &cfg,
            1.0,
        )
        .unwrap();
        (soc, graph, topo)
    }

    #[test]
    fn layouts_are_legal_per_layer() {
        let (soc, _, mut topo) = three_layer_design();
        let layout = layout_design(&mut topo, &soc, &NocLibrary::lp65(), 3.0);
        assert_eq!(layout.layers.len(), 3);
        for (l, plan) in layout.layers.iter().enumerate() {
            assert!(plan.overlapping_pair().is_none(), "overlap on layer {l}");
        }
        assert!(layout.die_area_mm2() >= layout.layer_area_mm2[0]);
    }

    #[test]
    fn switch_positions_updated_to_final_centers() {
        let (soc, _, mut topo) = three_layer_design();
        let before = topo.switch_pos.clone();
        let layout = layout_design(&mut topo, &soc, &NocLibrary::lp65(), 3.0);
        let _ = layout;
        // Positions are now block centers inside the floorplans; each switch
        // block must exist on its layer's plan at that center.
        for s in 0..topo.switch_count() {
            let plan = &layout.layers[topo.switch_layer[s] as usize];
            let found = plan
                .blocks
                .iter()
                .any(|b| b.block.name == format!("sw{s}") && {
                    let (cx, cy) = b.center();
                    (cx - topo.switch_pos[s].0).abs() < 1e-9
                        && (cy - topo.switch_pos[s].1).abs() < 1e-9
                });
            assert!(found, "switch {s} center not found in its layer plan");
        }
        let _ = before;
    }

    #[test]
    fn tempered_layout_is_legal_and_writes_switch_centers_back() {
        let (soc, _, mut topo) = three_layer_design();
        let temper = TemperConfig {
            base: sunfloor_floorplan::AnnealConfig::default().with_iterations(2_000),
            replicas: 2,
            ..TemperConfig::default()
        };
        let (layout, stats) = layout_design_tempered(&mut topo, &soc, &NocLibrary::lp65(), &temper);
        assert_eq!(layout.layers.len(), 3);
        for (l, plan) in layout.layers.iter().enumerate() {
            assert!(plan.overlapping_pair().is_none(), "overlap on layer {l}");
            // The cores stay first and keep their identity on each layer.
            let cores: Vec<&str> = soc
                .cores
                .iter()
                .filter(|c| c.layer == l as u32)
                .map(|c| c.name.as_str())
                .collect();
            for (i, name) in cores.iter().enumerate() {
                assert_eq!(plan.blocks[i].block.name, *name, "core order broken on layer {l}");
            }
        }
        for s in 0..topo.switch_count() {
            let plan = &layout.layers[topo.switch_layer[s] as usize];
            let found = plan.blocks.iter().any(|b| {
                b.block.name == format!("sw{s}") && {
                    let (cx, cy) = b.center();
                    (cx - topo.switch_pos[s].0).abs() < 1e-9
                        && (cy - topo.switch_pos[s].1).abs() < 1e-9
                }
            });
            assert!(found, "switch {s} center not written back");
        }
        assert_eq!(stats.runs, 3, "one tempered anneal per layer");
    }

    #[test]
    fn tempered_layout_is_deterministic_across_runs() {
        let temper = TemperConfig {
            base: sunfloor_floorplan::AnnealConfig::default().with_iterations(2_000),
            replicas: 3,
            ..TemperConfig::default()
        };
        let (soc, _, mut topo_a) = three_layer_design();
        let mut topo_b = topo_a.clone();
        let (la, sa) = layout_design_tempered(&mut topo_a, &soc, &NocLibrary::lp65(), &temper);
        let (lb, sb) = layout_design_tempered(&mut topo_b, &soc, &NocLibrary::lp65(), &temper);
        assert_eq!(la, lb, "tempered layout must be a pure function of its inputs");
        assert_eq!(sa, sb);
        assert_eq!(topo_a.switch_pos, topo_b.switch_pos);
    }

    #[test]
    fn intermediate_tsv_macro_placed_for_multi_layer_link() {
        let (soc, _, mut topo) = three_layer_design();
        // Force a direct layer-0 to layer-2 link by construction if routing
        // produced one; otherwise synthesize the situation manually.
        let spans: Vec<_> = topo
            .links
            .iter()
            .filter(|l| topo.switch_layer[l.from].abs_diff(topo.switch_layer[l.to]) >= 2)
            .collect();
        let has_span = !spans.is_empty();
        let layout = layout_design(&mut topo, &soc, &NocLibrary::lp65(), 3.0);
        let macros_on_middle =
            layout.layers[1].blocks.iter().filter(|b| b.block.name.starts_with("tsv_")).count();
        if has_span {
            assert!(macros_on_middle > 0, "multi-layer link needs a TSV macro on layer 1");
        }
    }
}
