//! Physical layout of the synthesized NoC: switch/TSV-macro insertion into
//! the per-layer floorplans (paper §III and §VII).
//!
//! Switches are inserted near their LP-optimal positions with the custom
//! shove-based routine; explicit TSV macros are added on every intermediate
//! layer a vertical link drills through (Fig. 2 — the macro at the two end
//! layers is embedded in the switch/NI itself and needs no separate block).

use crate::spec::SocSpec;
use crate::topology::Topology;
use sunfloor_floorplan::{insert_components, Block, Floorplan, InsertRequest, PlacedBlock};
use sunfloor_models::NocLibrary;

/// Result of laying out one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// One legal floorplan per layer (cores, switches, TSV macros).
    pub layers: Vec<Floorplan>,
    /// Die area required per layer, mm².
    pub layer_area_mm2: Vec<f64>,
    /// Total Manhattan displacement cores suffered during insertion.
    pub core_displacement_mm: f64,
    /// Total deviation of switches from their LP-ideal centers.
    pub switch_deviation_mm: f64,
}

impl Layout {
    /// The stack's die area: wafer-to-wafer stacking uses equal dies, so the
    /// largest layer dictates the area (mm²).
    #[must_use]
    pub fn die_area_mm2(&self) -> f64 {
        self.layer_area_mm2.iter().copied().fold(0.0, f64::max)
    }
}

/// Inserts the NoC components of `topo` into the input core placement and
/// rewrites `topo.switch_pos` with the final post-insertion switch centers.
///
/// `search_radius_mm` bounds the free-space search of the custom insertion
/// routine (§VII: a constant, identical for all switches).
#[must_use]
pub fn layout_design(
    topo: &mut Topology,
    soc: &SocSpec,
    lib: &NocLibrary,
    search_radius_mm: f64,
) -> Layout {
    let mut plans = Vec::with_capacity(soc.layers as usize);
    let mut areas = Vec::with_capacity(soc.layers as usize);
    let mut core_disp = 0.0;
    let mut sw_dev = 0.0;

    // Map: layer -> list of (switch index, request) so final centers can be
    // written back to the right switches.
    for layer in 0..soc.layers {
        let cores: Vec<PlacedBlock> = soc
            .cores_in_layer(layer)
            .into_iter()
            .map(|c| {
                let core = &soc.cores[c];
                PlacedBlock::new(
                    Block::new(core.name.clone(), core.width, core.height),
                    core.x,
                    core.y,
                )
            })
            .collect();

        let mut requests = Vec::new();
        let mut switch_ids = Vec::new();
        for s in 0..topo.switch_count() {
            if topo.switch_layer[s] != layer {
                continue;
            }
            let area = lib.switch.area_mm2(topo.input_ports(s), topo.output_ports(s));
            let side = area.sqrt();
            requests.push(InsertRequest::new(
                Block::new(format!("sw{s}"), side, side),
                topo.switch_pos[s],
            ));
            switch_ids.push(s);
        }

        // Explicit TSV macros on intermediate layers (links or vertical core
        // attachments spanning >= 2 layers whose interior crosses `layer`).
        let macro_side = lib.tsv.macro_area_mm2(lib.link.flit_width_bits).sqrt();
        let add_macro = |a_layer: u32, b_layer: u32, a_pos: (f64, f64), b_pos: (f64, f64),
                             tag: String,
                             requests: &mut Vec<InsertRequest>| {
            let (lo, hi) = if a_layer <= b_layer { (a_layer, b_layer) } else { (b_layer, a_layer) };
            if lo < layer && layer < hi {
                let mid = ((a_pos.0 + b_pos.0) / 2.0, (a_pos.1 + b_pos.1) / 2.0);
                requests.push(InsertRequest::new(
                    Block::new(tag, macro_side, macro_side),
                    mid,
                ));
            }
        };
        for (li, l) in topo.links.iter().enumerate() {
            add_macro(
                topo.switch_layer[l.from],
                topo.switch_layer[l.to],
                topo.switch_pos[l.from],
                topo.switch_pos[l.to],
                format!("tsv_l{li}"),
                &mut requests,
            );
        }
        for (c, &sw) in topo.core_attach.iter().enumerate() {
            add_macro(
                soc.cores[c].layer,
                topo.switch_layer[sw],
                soc.cores[c].center(),
                topo.switch_pos[sw],
                format!("tsv_c{c}"),
                &mut requests,
            );
        }

        let result = insert_components(&cores, &requests, search_radius_mm);
        core_disp += result.core_displacement;
        sw_dev += result.component_deviation;
        for (k, &s) in switch_ids.iter().enumerate() {
            topo.switch_pos[s] = result.component_centers[k];
        }
        areas.push(result.plan.area());
        plans.push(result.plan);
    }

    Layout {
        layers: plans,
        layer_area_mm2: areas,
        core_displacement_mm: core_disp,
        switch_deviation_mm: sw_dev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CommGraph;
    use crate::paths::{compute_paths, PathConfig};
    use crate::spec::{CommSpec, Core, Flow, MessageType};

    fn three_layer_design() -> (SocSpec, CommGraph, Topology) {
        let soc = SocSpec::new(
            (0..6)
                .map(|i| Core {
                    name: format!("c{i}"),
                    width: 2.0,
                    height: 2.0,
                    x: f64::from(i % 2) * 2.5,
                    y: 0.0,
                    layer: i / 2,
                })
                .collect(),
            3,
        )
        .unwrap();
        let f = |src, dst| Flow {
            src,
            dst,
            bandwidth_mbs: 200.0,
            max_latency_cycles: 10.0,
            message_type: MessageType::Request,
        };
        let comm = CommSpec::new(vec![f(0, 4), f(1, 3), f(2, 5)], &soc).unwrap();
        let graph = CommGraph::new(&soc, &comm);
        let cfg = PathConfig::new(25, 11, 400.0);
        let topo = compute_paths(
            &graph,
            &[0, 0, 1, 1, 2, 2],
            &[0, 1, 2],
            &[(1.0, 1.0), (2.0, 1.0), (1.5, 1.0)],
            &[0, 0, 1, 1, 2, 2],
            3,
            &NocLibrary::lp65(),
            &cfg,
            1.0,
        )
        .unwrap();
        (soc, graph, topo)
    }

    #[test]
    fn layouts_are_legal_per_layer() {
        let (soc, _, mut topo) = three_layer_design();
        let layout = layout_design(&mut topo, &soc, &NocLibrary::lp65(), 3.0);
        assert_eq!(layout.layers.len(), 3);
        for (l, plan) in layout.layers.iter().enumerate() {
            assert!(plan.overlapping_pair().is_none(), "overlap on layer {l}");
        }
        assert!(layout.die_area_mm2() >= layout.layer_area_mm2[0]);
    }

    #[test]
    fn switch_positions_updated_to_final_centers() {
        let (soc, _, mut topo) = three_layer_design();
        let before = topo.switch_pos.clone();
        let layout = layout_design(&mut topo, &soc, &NocLibrary::lp65(), 3.0);
        let _ = layout;
        // Positions are now block centers inside the floorplans; each switch
        // block must exist on its layer's plan at that center.
        for s in 0..topo.switch_count() {
            let plan = &layout.layers[topo.switch_layer[s] as usize];
            let found = plan
                .blocks
                .iter()
                .any(|b| b.block.name == format!("sw{s}") && {
                    let (cx, cy) = b.center();
                    (cx - topo.switch_pos[s].0).abs() < 1e-9
                        && (cy - topo.switch_pos[s].1).abs() < 1e-9
                });
            assert!(found, "switch {s} center not found in its layer plan");
        }
        let _ = before;
    }

    #[test]
    fn intermediate_tsv_macro_placed_for_multi_layer_link() {
        let (soc, _, mut topo) = three_layer_design();
        // Force a direct layer-0 to layer-2 link by construction if routing
        // produced one; otherwise synthesize the situation manually.
        let spans: Vec<_> = topo
            .links
            .iter()
            .filter(|l| topo.switch_layer[l.from].abs_diff(topo.switch_layer[l.to]) >= 2)
            .collect();
        let has_span = !spans.is_empty();
        let layout = layout_design(&mut topo, &soc, &NocLibrary::lp65(), 3.0);
        let macros_on_middle =
            layout.layers[1].blocks.iter().filter(|b| b.block.name.starts_with("tsv_")).count();
        if has_span {
            assert!(macros_on_middle > 0, "multi-layer link needs a TSV macro on layer 1");
        }
    }
}
