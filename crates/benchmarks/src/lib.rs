//! SoC benchmarks reproducing the communication structures of the SunFloor
//! 3D evaluation (paper §VIII).
//!
//! The original benchmark netlists are proprietary; these generators rebuild
//! the *published structure* of each one — core counts, processor/memory
//! roles, flows per core, bandwidth distribution, bottleneck and pipeline
//! patterns — which is what the evaluation's cross-benchmark trends depend
//! on:
//!
//! | Paper name   | Generator                 | Structure |
//! |--------------|---------------------------|-----------|
//! | `D_26_media` | [`media26`]               | 26-core multimedia + baseband SoC: ARM host, DSPs, accelerator pipelines, 8 memories, DMA, peripherals; 3 layers |
//! | `D_36_4/6/8` | [`distributed`]           | 18 processors × 18 memories, each processor talking to 4/6/8 memories at equal *total* bandwidth; 2 layers |
//! | `D_35_bot`   | [`bottleneck`]            | 16 processors with private memories plus 3 shared memories everyone hits; 2 layers |
//! | `D_65_pipe`  | [`pipeline(65)`][pipeline]| 65 cores in a pipeline; 3 layers |
//! | `D_38_tvopd` | [`tvopd`]                 | 38-core TV object-plane-decoder-style parallel pipelines; 2 layers |
//!
//! Layer assignments follow the paper's stated policy for the case study —
//! "the cores are assigned to the … layers such that highly communicating
//! cores are placed one above the other" (§V-A Example 1): processors sit
//! under the memories they talk to, pipeline stages are blocked so most
//! traffic stays short. Initial per-layer floorplans are produced by the
//! sequence-pair annealer with the paper's objectives (area + wirelength),
//! with a fixed seed for reproducibility.
//!
//! # Example
//!
//! ```
//! use sunfloor_benchmarks::media26;
//!
//! let bench = media26();
//! assert_eq!(bench.soc.core_count(), 26);
//! assert_eq!(bench.soc.layers, 3);
//! assert!(bench.comm.flow_count() > 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod layout2d;
mod media;
mod synthetic;

pub use catalog::{all_table1_benchmarks, Benchmark};
pub use layout2d::flatten_to_2d;
pub use media::media26;
pub use synthetic::{
    bottleneck, distributed, pipeline, pipeline_seeded, tvopd, tvopd_seeded, PIPELINE_SEED_BASE,
    TVOPD_SEED,
};
