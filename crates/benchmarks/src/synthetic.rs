//! Synthetic benchmark families of §VIII-B: distributed (`D_36_x`),
//! bottleneck (`D_35_bot`) and pipelined (`D_65_pipe`, `D_38_tvopd`).

use crate::catalog::Benchmark;
use crate::layout2d::floorplan_layers;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sunfloor_core::spec::{CommSpec, Core, Flow, MessageType, SocSpec};

/// Total application bandwidth of the distributed benchmarks, MB/s. "The
/// total bandwidth is the same in the three benchmarks" (§VIII-B), so each
/// of the 18 processors spreads `TOTAL/18` over its 4/6/8 flows.
const DISTRIBUTED_TOTAL_MBS: f64 = 3600.0;

/// Default RNG seed base for [`pipeline`] (the generator adds `n` so each
/// family member gets a distinct but reproducible roster).
pub const PIPELINE_SEED_BASE: u64 = 0x65;

/// Default RNG seed for [`tvopd`].
pub const TVOPD_SEED: u64 = 0x38;

/// Builds the validated `(SocSpec, CommSpec)` pair, runs the per-layer 2-D
/// floorplanner and wraps the result. Every generator in this module
/// funnels through here: the rosters are valid by construction (distinct
/// names, layers in range, flow endpoints in bounds), so the spec
/// constructors cannot fail on generator output.
fn assemble(
    name: String,
    cores: Vec<Core>,
    layers: u32,
    flows: Vec<Flow>,
    seed: u64,
) -> Benchmark {
    // sf-allow(panic-in-lib): generator rosters are valid by construction
    let mut soc = SocSpec::new(cores, layers).expect("generator roster is valid");
    // sf-allow(panic-in-lib): generator flows reference in-bounds cores only
    let comm = CommSpec::new(flows, &soc).expect("generator flows are valid");
    floorplan_layers(&mut soc, &comm, seed);
    Benchmark::new(name, soc, comm)
}

/// `D_36_<flows_per_proc>`: 18 processors and 18 memories; each processor
/// sends `flows_per_proc` request flows to distinct memories (chosen
/// deterministically), with total bandwidth constant across the family.
/// Processors sit on layer 0, memories on layer 1 — each processor under
/// the memories it uses, per the paper's stacking policy.
///
/// # Panics
///
/// Panics if `flows_per_proc` is 0 or exceeds the 18 memories.
#[must_use]
pub fn distributed(flows_per_proc: usize) -> Benchmark {
    assert!(
        (1..=18).contains(&flows_per_proc),
        "flows per processor must be in 1..=18, got {flows_per_proc}"
    );
    let mut cores = Vec::with_capacity(36);
    for i in 0..18 {
        cores.push(Core {
            name: format!("proc{i}"),
            width: 2.0,
            height: 2.0,
            x: 0.0,
            y: 0.0,
            layer: 0,
        });
    }
    for i in 0..18 {
        cores.push(Core {
            name: format!("mem{i}"),
            width: 1.8,
            height: 1.6,
            x: 0.0,
            y: 0.0,
            layer: 1,
        });
    }
    let bw_per_flow = DISTRIBUTED_TOTAL_MBS / (18.0 * flows_per_proc as f64);
    let mut flows = Vec::new();
    for p in 0..18usize {
        for k in 0..flows_per_proc {
            // Each processor works on a contiguous neighborhood of the
            // memory bank starting at its own memory — the locality that
            // lets the 3-D stack put memories directly above their
            // processors.
            let m = (p + k) % 18;
            flows.push(Flow {
                src: p,
                dst: 18 + m,
                bandwidth_mbs: bw_per_flow,
                max_latency_cycles: 12.0,
                message_type: MessageType::Request,
            });
        }
    }
    assemble(
        format!("D_36_{flows_per_proc}"),
        cores,
        2,
        flows,
        0x36_u64 + flows_per_proc as u64,
    )
}

/// `D_35_bot`: bottleneck communication — 16 processors each with a private
/// memory (high-bandwidth request/response pair) and 3 shared memories that
/// *all* processors hit at lower bandwidth (§VIII-B). Processors on layer 0
/// with their private memories stacked above on layer 1; the shared
/// memories also sit on layer 1.
#[must_use]
pub fn bottleneck() -> Benchmark {
    let mut cores = Vec::with_capacity(35);
    for i in 0..16 {
        cores.push(Core {
            name: format!("proc{i}"),
            width: 2.0,
            height: 2.0,
            x: 0.0,
            y: 0.0,
            layer: 0,
        });
    }
    for i in 0..16 {
        cores.push(Core {
            name: format!("pmem{i}"),
            width: 1.6,
            height: 1.5,
            x: 0.0,
            y: 0.0,
            layer: 1,
        });
    }
    for i in 0..3 {
        cores.push(Core {
            name: format!("smem{i}"),
            width: 2.2,
            height: 2.0,
            x: 0.0,
            y: 0.0,
            layer: 1,
        });
    }
    let mut flows = Vec::new();
    for p in 0..16usize {
        // Private memory: heavy, tight latency.
        flows.push(Flow {
            src: p,
            dst: 16 + p,
            bandwidth_mbs: 180.0,
            max_latency_cycles: 8.0,
            message_type: MessageType::Request,
        });
        flows.push(Flow {
            src: 16 + p,
            dst: p,
            bandwidth_mbs: 180.0,
            max_latency_cycles: 8.0,
            message_type: MessageType::Response,
        });
        // Shared memories: everyone talks to all three, lightly.
        for s in 0..3usize {
            flows.push(Flow {
                src: p,
                dst: 32 + s,
                bandwidth_mbs: 25.0,
                max_latency_cycles: 12.0,
                message_type: MessageType::Request,
            });
        }
    }
    assemble("D_35_bot".to_string(), cores, 2, flows, 0x35_u64)
}

/// `D_65_pipe`-style benchmark: `n` cores communicating in a pipeline, "each
/// core communicates only to one or few other cores" (§VIII-B). Cores are
/// blocked onto layers in pipeline order so most traffic stays intra-layer
/// (the reason the paper sees the smallest 3-D gains here). Bandwidths vary
/// mildly and deterministically along the pipeline.
///
/// # Panics
///
/// Panics if `n < 4`.
#[must_use]
pub fn pipeline(n: usize) -> Benchmark {
    pipeline_seeded(n, PIPELINE_SEED_BASE)
}

/// [`pipeline`] with an explicit RNG seed base, for callers that need to
/// control the generator's randomness from their own configuration. The
/// same `(n, seed_base)` pair always yields the same benchmark.
///
/// # Panics
///
/// Panics if `n < 4`.
#[must_use]
pub fn pipeline_seeded(n: usize, seed_base: u64) -> Benchmark {
    assert!(n >= 4, "pipeline benchmark needs at least 4 cores");
    let layers: u32 = if n > 40 { 3 } else { 2 };
    let per_layer = n.div_ceil(layers as usize);
    let mut rng = StdRng::seed_from_u64(seed_base.wrapping_add(n as u64));

    let cores: Vec<Core> = (0..n)
        .map(|i| Core {
            name: format!("stage{i}"),
            width: rng.gen_range(1.2..2.4),
            height: rng.gen_range(1.2..2.4),
            x: 0.0,
            y: 0.0,
            layer: (i / per_layer) as u32,
        })
        .collect();

    let mut flows = Vec::new();
    for i in 0..n - 1 {
        flows.push(Flow {
            src: i,
            dst: i + 1,
            bandwidth_mbs: 120.0 + 60.0 * f64::from(i as u32 % 3),
            max_latency_cycles: 10.0,
            message_type: MessageType::Request,
        });
        // "one or few": every fourth stage also feeds the stage after next.
        if i % 4 == 0 && i + 2 < n {
            flows.push(Flow {
                src: i,
                dst: i + 2,
                bandwidth_mbs: 60.0,
                max_latency_cycles: 12.0,
                message_type: MessageType::Request,
            });
        }
    }
    let name = if seed_base == PIPELINE_SEED_BASE {
        format!("D_{n}_pipe")
    } else {
        format!("D_{n}_pipe_s{seed_base}")
    };
    assemble(name, cores, layers, flows, seed_base.wrapping_add(n as u64))
}

/// `D_38_tvopd`: a TV object-plane-decoder-style design — three parallel
/// VOPD-like decode pipelines (12 stages each) plus a shared front end and
/// display mixer, 38 cores total on 2 layers.
#[must_use]
pub fn tvopd() -> Benchmark {
    tvopd_seeded(TVOPD_SEED)
}

/// [`tvopd`] with an explicit RNG seed, for callers that need to control
/// the generator's randomness from their own configuration. The same seed
/// always yields the same benchmark.
#[must_use]
pub fn tvopd_seeded(seed: u64) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cores = Vec::with_capacity(38);
    // Shared front end and back end.
    cores.push(Core {
        name: "stream_in".into(),
        width: 1.4,
        height: 1.2,
        x: 0.0,
        y: 0.0,
        layer: 0,
    });
    cores.push(Core { name: "mixer".into(), width: 2.0, height: 1.8, x: 0.0, y: 0.0, layer: 1 });
    // Three 12-stage decode pipelines, blocked onto the two layers so the
    // core counts balance 19/19: pipeline 0 on layer 0, pipeline 2 on layer
    // 1, pipeline 1 split halfway.
    for p in 0..3u32 {
        for s in 0..12u32 {
            let layer = match p {
                0 => 0,
                1 => u32::from(s >= 6),
                _ => 1,
            };
            cores.push(Core {
                name: format!("p{p}s{s}"),
                width: rng.gen_range(1.0..2.0),
                height: rng.gen_range(1.0..2.0),
                x: 0.0,
                y: 0.0,
                layer,
            });
        }
    }
    // Core indices follow push order above: `stream_in` is 0, `mixer` is 1
    // and stage `s` of pipeline `p` lands at `2 + 12·p + s`.
    const STREAM_IN: usize = 0;
    const MIXER: usize = 1;
    let stage = |p: usize, s: usize| 2 + 12 * p + s;
    let mut flows = Vec::new();
    for p in 0..3usize {
        // Demux from the shared stream input into each pipeline head.
        flows.push(Flow {
            src: STREAM_IN,
            dst: stage(p, 0),
            bandwidth_mbs: 140.0,
            max_latency_cycles: 10.0,
            message_type: MessageType::Request,
        });
        for s in 0..11usize {
            flows.push(Flow {
                src: stage(p, s),
                dst: stage(p, s + 1),
                bandwidth_mbs: 100.0 + 40.0 * f64::from(s as u32 % 2),
                max_latency_cycles: 10.0,
                message_type: MessageType::Request,
            });
        }
        // Pipeline tail into the mixer.
        flows.push(Flow {
            src: stage(p, 11),
            dst: MIXER,
            bandwidth_mbs: 130.0,
            max_latency_cycles: 10.0,
            message_type: MessageType::Request,
        });
    }
    let name = if seed == TVOPD_SEED {
        "D_38_tvopd".to_string()
    } else {
        format!("D_38_tvopd_s{seed}")
    };
    assemble(name, cores, 2, flows, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_total_bandwidth_constant_across_family() {
        let totals: Vec<f64> = [4, 6, 8]
            .iter()
            .map(|&k| distributed(k).comm.total_bandwidth_mbs())
            .collect();
        assert!((totals[0] - totals[1]).abs() < 1e-6, "{totals:?}");
        assert!((totals[1] - totals[2]).abs() < 1e-6, "{totals:?}");
    }

    #[test]
    fn distributed_flow_counts_match_name() {
        for k in [4usize, 6, 8] {
            let b = distributed(k);
            assert_eq!(b.comm.flow_count(), 18 * k);
            // Every processor has exactly k flows, all to memories.
            for p in 0..18usize {
                let flows: Vec<_> =
                    b.comm.flows.iter().filter(|f| f.src == p).collect();
                assert_eq!(flows.len(), k);
                let mut dsts: Vec<usize> = flows.iter().map(|f| f.dst).collect();
                dsts.sort_unstable();
                dsts.dedup();
                assert_eq!(dsts.len(), k, "proc {p} flows must hit distinct memories");
                assert!(dsts.iter().all(|&d| d >= 18));
            }
        }
    }

    #[test]
    fn distributed_stacks_processors_under_memories() {
        let b = distributed(4);
        for c in &b.soc.cores {
            let expect = if c.name.starts_with("proc") { 0 } else { 1 };
            assert_eq!(c.layer, expect, "{}", c.name);
        }
    }

    #[test]
    fn bottleneck_structure() {
        let b = bottleneck();
        assert_eq!(b.soc.core_count(), 35);
        // 16 private pairs (2 flows each) + 16*3 shared = 80 flows.
        assert_eq!(b.comm.flow_count(), 16 * 2 + 16 * 3);
        // Shared memories receive from every processor.
        for s in 0..3usize {
            let inbound =
                b.comm.flows.iter().filter(|f| f.dst == 32 + s).count();
            assert_eq!(inbound, 16, "shared memory {s}");
        }
        // Private traffic outweighs shared traffic per processor.
        let private: f64 = b
            .comm
            .flows
            .iter()
            .filter(|f| f.src == 0 && f.dst == 16)
            .map(|f| f.bandwidth_mbs)
            .sum();
        let shared: f64 = b
            .comm
            .flows
            .iter()
            .filter(|f| f.src == 0 && f.dst >= 32)
            .map(|f| f.bandwidth_mbs)
            .sum();
        assert!(private > shared, "bottleneck: private {private} vs shared {shared}");
    }

    #[test]
    fn pipeline_degree_is_low() {
        let b = pipeline(65);
        assert_eq!(b.soc.core_count(), 65);
        assert_eq!(b.soc.layers, 3);
        for c in 0..65usize {
            let degree = b.comm.flows.iter().filter(|f| f.src == c || f.dst == c).count();
            assert!(degree <= 5, "core {c} has degree {degree}, not a pipeline");
        }
    }

    #[test]
    fn pipeline_traffic_mostly_intra_layer() {
        let b = pipeline(65);
        let inter = b
            .comm
            .flows
            .iter()
            .filter(|f| b.soc.cores[f.src].layer != b.soc.cores[f.dst].layer)
            .count();
        assert!(
            inter * 5 < b.comm.flow_count(),
            "pipeline should be mostly intra-layer: {inter}/{}",
            b.comm.flow_count()
        );
    }

    #[test]
    fn tvopd_has_three_pipelines_through_mixer() {
        let b = tvopd();
        assert_eq!(b.soc.core_count(), 38);
        let mixer = b.soc.core_index("mixer").unwrap();
        assert_eq!(b.comm.flows.iter().filter(|f| f.dst == mixer).count(), 3);
        let src = b.soc.core_index("stream_in").unwrap();
        assert_eq!(b.comm.flows.iter().filter(|f| f.src == src).count(), 3);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(distributed(6), distributed(6));
        assert_eq!(bottleneck(), bottleneck());
        assert_eq!(pipeline(65), pipeline(65));
        assert_eq!(tvopd(), tvopd());
    }

    #[test]
    #[should_panic(expected = "flows per processor")]
    fn distributed_rejects_zero_flows() {
        let _ = distributed(0);
    }
}
