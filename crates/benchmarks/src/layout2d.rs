//! Initial floorplan generation for benchmarks, and the 2-D flattening used
//! by the 2-D vs 3-D comparison (paper §VIII-A: "The initial positions of
//! the cores in each layer of the 3-D and for the 2-D design are obtained
//! using existing tools. For fair comparisons, we use the same objectives of
//! minimizing area and wire-length when obtaining the floorplan for both the
//! cases").

use crate::catalog::Benchmark;
use sunfloor_core::spec::{CommSpec, SocSpec};
use sunfloor_floorplan::{anneal, anneal_toward, AnnealConfig, Block, Net};

/// Annealer effort for benchmark generation: enough iterations to produce
/// tight plans, small enough to keep generation fast and deterministic.
fn cfg(seed: u64) -> AnnealConfig {
    AnnealConfig::default().with_iterations(15_000).with_seed(seed)
}

/// Cost per millimetre of misalignment between a core and the centroid of
/// its already-placed inter-layer partners, per MB/s of traffic.
const ALIGN_WEIGHT_PER_MBS: f64 = 0.08;

/// Floorplans every layer of `soc` in place, writing the resulting positions
/// into the core records. Each layer minimizes area plus the weighted
/// wirelength of its *intra-layer* traffic; layers after the first are
/// additionally pulled into vertical alignment with the inter-layer
/// partners already placed below — the paper's "highly communicating cores
/// are placed one above the other" input policy (§V-A Example 1).
pub fn floorplan_layers(soc: &mut SocSpec, comm: &CommSpec, seed: u64) {
    for layer in 0..soc.layers {
        let members = soc.cores_in_layer(layer);
        if members.is_empty() {
            continue;
        }
        let blocks: Vec<Block> = members
            .iter()
            .map(|&c| Block::new(soc.cores[c].name.clone(), soc.cores[c].width, soc.cores[c].height))
            .collect();
        let local_of = |core: usize| members.iter().position(|&m| m == core);
        let mut nets = Vec::new();
        // Vertical-alignment targets: bandwidth-weighted centroid of the
        // partners in layers already placed.
        let mut pull = vec![(0.0f64, 0.0f64, 0.0f64); members.len()]; // (Σw·x, Σw·y, Σw)
        for f in &comm.flows {
            match (local_of(f.src), local_of(f.dst)) {
                (Some(a), Some(b)) => nets.push(Net::two_pin(a, b, f.bandwidth_mbs / 100.0)),
                (Some(a), None) | (None, Some(a)) => {
                    let other = if local_of(f.src).is_some() { f.dst } else { f.src };
                    if soc.cores[other].layer < layer {
                        let (x, y) = soc.cores[other].center();
                        pull[a].0 += f.bandwidth_mbs * x;
                        pull[a].1 += f.bandwidth_mbs * y;
                        pull[a].2 += f.bandwidth_mbs;
                    }
                }
                (None, None) => {}
            }
        }
        // Affinity nets: same-layer cores that communicate with the same
        // remote core should sit near each other (so the remote core can be
        // stacked above both). Weight = the smaller of the two cores'
        // traffic with the shared partner.
        let mut remote_traffic = vec![vec![0.0f64; soc.core_count()]; members.len()];
        for f in &comm.flows {
            if let (Some(a), None) = (local_of(f.src), local_of(f.dst)) {
                remote_traffic[a][f.dst] += f.bandwidth_mbs;
            }
            if let (None, Some(b)) = (local_of(f.src), local_of(f.dst)) {
                remote_traffic[b][f.src] += f.bandwidth_mbs;
            }
        }
        for a in 0..members.len() {
            for b in (a + 1)..members.len() {
                let shared: f64 = (0..soc.core_count())
                    .map(|r| remote_traffic[a][r].min(remote_traffic[b][r]))
                    .sum();
                if shared > 0.0 {
                    nets.push(Net::two_pin(a, b, shared / 100.0));
                }
            }
        }
        let targets: Vec<Option<(f64, f64, f64)>> = pull
            .iter()
            .map(|&(wx, wy, w)| {
                (w > 0.0).then(|| (wx / w, wy / w, ALIGN_WEIGHT_PER_MBS * w))
            })
            .collect();
        let layer_cfg = cfg(seed.wrapping_add(u64::from(layer)));
        let plan = if targets.iter().all(Option::is_none) {
            anneal(&blocks, &nets, &layer_cfg)
        } else {
            anneal_toward(&blocks, &nets, &targets, &layer_cfg)
        };
        for (local, &core) in members.iter().enumerate() {
            soc.cores[core].x = plan.blocks[local].x;
            soc.cores[core].y = plan.blocks[local].y;
        }
    }
}

/// Builds the 2-D counterpart of a 3-D benchmark: all cores on one die,
/// freshly floorplanned with the same objectives over *all* traffic. Used
/// for Table I and Figs. 10/12.
#[must_use]
pub fn flatten_to_2d(bench: &Benchmark) -> Benchmark {
    let mut soc = bench.soc.flattened();
    let blocks: Vec<Block> = soc
        .cores
        .iter()
        .map(|c| Block::new(c.name.clone(), c.width, c.height))
        .collect();
    let nets: Vec<Net> = bench
        .comm
        .flows
        .iter()
        .map(|f| Net::two_pin(f.src, f.dst, f.bandwidth_mbs / 100.0))
        .collect();
    let plan = anneal(&blocks, &nets, &cfg(0x2D_u64));
    for (i, b) in plan.blocks.iter().enumerate() {
        soc.cores[i].x = b.x;
        soc.cores[i].y = b.y;
    }
    Benchmark::new(format!("{}_2d", bench.name), soc, bench.comm.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattening_preserves_cores_and_flows() {
        let b3 = crate::distributed(4);
        let b2 = flatten_to_2d(&b3);
        assert_eq!(b2.soc.core_count(), b3.soc.core_count());
        assert_eq!(b2.comm, b3.comm);
        assert_eq!(b2.soc.layers, 1);
        assert!(b2.name.ends_with("_2d"));
    }

    #[test]
    fn flattened_floorplan_is_legal_and_larger_than_any_layer() {
        let b3 = crate::distributed(4);
        let b2 = flatten_to_2d(&b3);
        // Legality: no pair of cores overlaps.
        let n = b2.soc.core_count();
        for i in 0..n {
            for j in (i + 1)..n {
                let a = &b2.soc.cores[i];
                let b = &b2.soc.cores[j];
                let ox = a.x < b.x + b.width && b.x < a.x + a.width;
                let oy = a.y < b.y + b.height && b.y < a.y + a.height;
                assert!(!(ox && oy), "{} overlaps {}", a.name, b.name);
            }
        }
        // The single 2-D die must hold all cores: its cell area is the sum
        // of all layers' cells.
        let die_w = b2
            .soc
            .cores
            .iter()
            .map(|c| c.x + c.width)
            .fold(0.0f64, f64::max);
        let layer0_w = b3
            .soc
            .cores
            .iter()
            .filter(|c| c.layer == 0)
            .map(|c| c.x + c.width)
            .fold(0.0f64, f64::max);
        assert!(die_w > 0.0 && layer0_w > 0.0);
    }
}
