//! The benchmark container type and the Table-I catalog.

use sunfloor_core::spec::{CommSpec, SocSpec, SpecError};

/// A complete benchmark: core specification (with layer assignment and
/// per-layer initial floorplan) plus the communication specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Benchmark name using the paper's naming (`D_26_media`, …).
    pub name: String,
    /// Core specification.
    pub soc: SocSpec,
    /// Communication specification.
    pub comm: CommSpec,
}

impl Benchmark {
    /// Builds a benchmark, validating the generated specification.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found in the core or communication
    /// specification.
    pub fn try_new(
        name: impl Into<String>,
        soc: SocSpec,
        comm: CommSpec,
    ) -> Result<Self, SpecError> {
        soc.validate()?;
        comm.validate(&soc)?;
        Ok(Self { name: name.into(), soc, comm })
    }

    /// Builds and validates a benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the generated specification is internally inconsistent —
    /// generators are expected to produce valid benchmarks. Callers holding
    /// untrusted specs should use [`Benchmark::try_new`] instead.
    #[must_use]
    pub fn new(name: impl Into<String>, soc: SocSpec, comm: CommSpec) -> Self {
        // sf-allow(panic-in-lib): infallible convenience wrapper for the in-tree generators; try_new is the typed-error path
        Self::try_new(name, soc, comm).expect("generator produced an invalid benchmark")
    }
}

/// The six benchmarks of Table I, in the paper's row order:
/// `D_36_4`, `D_36_6`, `D_36_8`, `D_35_bot`, `D_65_pipe`, `D_38_tvopd`.
#[must_use]
pub fn all_table1_benchmarks() -> Vec<Benchmark> {
    vec![
        crate::distributed(4),
        crate::distributed(6),
        crate::distributed(8),
        crate::bottleneck(),
        crate::pipeline(65),
        crate::tvopd(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_catalog_matches_paper_rows() {
        let benches = all_table1_benchmarks();
        let names: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["D_36_4", "D_36_6", "D_36_8", "D_35_bot", "D_65_pipe", "D_38_tvopd"]
        );
        let cores: Vec<usize> = benches.iter().map(|b| b.soc.core_count()).collect();
        assert_eq!(cores, vec![36, 36, 36, 35, 65, 38]);
    }

    #[test]
    fn try_new_surfaces_spec_errors_instead_of_panicking() {
        let good = crate::distributed(4);
        let mut bad_soc = good.soc.clone();
        bad_soc.cores[0].layer = 99;
        let err = Benchmark::try_new("broken", bad_soc, good.comm.clone());
        assert!(err.is_err(), "an out-of-range layer must be a typed error");
        assert!(Benchmark::try_new("ok", good.soc, good.comm).is_ok());
    }
}
