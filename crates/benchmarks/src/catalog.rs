//! The benchmark container type and the Table-I catalog.

use sunfloor_core::spec::{CommSpec, SocSpec};

/// A complete benchmark: core specification (with layer assignment and
/// per-layer initial floorplan) plus the communication specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Benchmark name using the paper's naming (`D_26_media`, …).
    pub name: String,
    /// Core specification.
    pub soc: SocSpec,
    /// Communication specification.
    pub comm: CommSpec,
}

impl Benchmark {
    /// Builds and validates a benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the generated specification is internally inconsistent —
    /// generators are expected to produce valid benchmarks.
    #[must_use]
    pub fn new(name: impl Into<String>, soc: SocSpec, comm: CommSpec) -> Self {
        soc.validate().expect("generator produced an invalid core spec");
        comm.validate(&soc).expect("generator produced an invalid comm spec");
        Self { name: name.into(), soc, comm }
    }
}

/// The six benchmarks of Table I, in the paper's row order:
/// `D_36_4`, `D_36_6`, `D_36_8`, `D_35_bot`, `D_65_pipe`, `D_38_tvopd`.
#[must_use]
pub fn all_table1_benchmarks() -> Vec<Benchmark> {
    vec![
        crate::distributed(4),
        crate::distributed(6),
        crate::distributed(8),
        crate::bottleneck(),
        crate::pipeline(65),
        crate::tvopd(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_catalog_matches_paper_rows() {
        let benches = all_table1_benchmarks();
        let names: Vec<&str> = benches.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["D_36_4", "D_36_6", "D_36_8", "D_35_bot", "D_65_pipe", "D_38_tvopd"]
        );
        let cores: Vec<usize> = benches.iter().map(|b| b.soc.core_count()).collect();
        assert_eq!(cores, vec![36, 36, 36, 35, 65, 38]);
    }
}
