//! The `D_26_media` multimedia & wireless SoC case study (paper §VIII-A,
//! Fig. 9).
//!
//! "The benchmark contains 26 cores with irregular sizes, and performs
//! based-band and multimedia processing. The system includes ARM, DSP cores,
//! multiple memory banks, DMA engine and several peripheral devices. The
//! cores are manually mapped on to three layers in 3-D."

use crate::catalog::Benchmark;
use crate::layout2d::floorplan_layers;
use sunfloor_core::spec::{CommSpec, Core, Flow, MessageType, SocSpec};

/// Core roster: `(name, width mm, height mm, layer)`.
///
/// The manual 3-layer mapping stacks the heavy producer/consumer pairs:
/// compute cores above the memories they stream into, baseband chain on one
/// layer with its memories above it.
const CORES: &[(&str, f64, f64, u32)] = &[
    // Layer 0: host + video pipeline front end.
    ("arm", 2.6, 2.4, 0),
    ("dsp1", 2.2, 2.0, 0),
    ("cam_if", 1.2, 1.0, 0),
    ("img_pre", 1.8, 1.4, 0),
    ("vid_enc", 2.4, 2.2, 0),
    ("dma", 1.4, 1.2, 0),
    ("usb", 1.2, 1.4, 0),
    ("uart", 0.8, 0.8, 0),
    ("gpio", 0.8, 0.7, 0),
    // Layer 1: memories + stream processing.
    ("mem0", 1.8, 1.6, 1),
    ("mem1", 1.8, 1.6, 1),
    ("mem2", 1.8, 1.6, 1),
    ("mem3", 1.8, 1.6, 1),
    ("vid_dec", 2.4, 2.0, 1),
    ("img_post", 1.8, 1.4, 1),
    ("disp_ctl", 1.4, 1.2, 1),
    ("aud_codec", 1.4, 1.3, 1),
    // Layer 2: baseband + its memories.
    ("dsp2", 2.2, 2.0, 2),
    ("dsp3", 2.0, 2.0, 2),
    ("fft", 1.6, 1.5, 2),
    ("viterbi", 1.6, 1.4, 2),
    ("turbo_dec", 1.7, 1.5, 2),
    ("rf_if", 1.3, 1.1, 2),
    ("mem4", 1.8, 1.6, 2),
    ("mem5", 1.8, 1.6, 2),
    ("crypto", 1.4, 1.2, 2),
];

/// Flow table: `(src, dst, bandwidth MB/s, latency budget cycles, response?)`.
///
/// Mirrors the Fig. 9 structure: heavy streaming along the video pipeline,
/// processor↔memory request/response pairs, DMA fan-out, low-bandwidth
/// control star from the ARM.
const FLOWS: &[(&str, &str, f64, f64, bool)] = &[
    // Video pipeline (camera -> preprocess -> encode -> memory -> decode ->
    // postprocess -> display).
    ("cam_if", "img_pre", 360.0, 8.0, false),
    ("img_pre", "vid_enc", 320.0, 8.0, false),
    ("vid_enc", "mem0", 400.0, 6.0, false),
    ("mem0", "vid_dec", 400.0, 6.0, true),
    ("vid_dec", "img_post", 320.0, 8.0, false),
    ("img_post", "disp_ctl", 300.0, 8.0, false),
    // ARM host: memory traffic + control star.
    ("arm", "mem1", 250.0, 6.0, false),
    ("mem1", "arm", 250.0, 6.0, true),
    ("arm", "dma", 60.0, 10.0, false),
    ("arm", "usb", 40.0, 12.0, false),
    ("arm", "uart", 10.0, 14.0, false),
    ("arm", "gpio", 10.0, 14.0, false),
    ("arm", "disp_ctl", 30.0, 12.0, false),
    ("arm", "crypto", 50.0, 12.0, false),
    ("arm", "aud_codec", 40.0, 12.0, false),
    // DSP1 signal processing against mem2.
    ("dsp1", "mem2", 300.0, 6.0, false),
    ("mem2", "dsp1", 300.0, 6.0, true),
    ("dsp1", "aud_codec", 80.0, 10.0, false),
    // DMA moves blocks among memories and USB.
    ("dma", "mem0", 200.0, 8.0, false),
    ("dma", "mem3", 220.0, 8.0, false),
    ("mem3", "dma", 220.0, 8.0, true),
    ("dma", "usb", 120.0, 10.0, false),
    // Baseband chain on layer 2: rf -> fft -> viterbi/turbo -> dsp2/dsp3.
    ("rf_if", "fft", 380.0, 6.0, false),
    ("fft", "viterbi", 260.0, 8.0, false),
    ("fft", "turbo_dec", 260.0, 8.0, false),
    ("viterbi", "dsp2", 200.0, 8.0, false),
    ("turbo_dec", "dsp3", 200.0, 8.0, false),
    ("dsp2", "mem4", 320.0, 6.0, false),
    ("mem4", "dsp2", 320.0, 6.0, true),
    ("dsp3", "mem5", 300.0, 6.0, false),
    ("mem5", "dsp3", 300.0, 6.0, true),
    ("dsp2", "arm", 90.0, 10.0, false),
    ("dsp3", "arm", 90.0, 10.0, false),
    // Crypto sits between the baseband and host memories.
    ("crypto", "mem5", 110.0, 10.0, false),
    ("crypto", "mem1", 100.0, 10.0, false),
    // Audio path.
    ("aud_codec", "mem2", 90.0, 10.0, false),
    // Cross-pipeline: encoded video streamed out over USB via mem3.
    ("mem3", "usb", 150.0, 10.0, true),
    ("vid_enc", "mem3", 180.0, 8.0, false),
];

/// Builds the `D_26_media` benchmark: 26 irregular cores on 3 layers with
/// annealed per-layer floorplans and the Fig. 9-style communication graph.
#[must_use]
pub fn media26() -> Benchmark {
    let cores: Vec<Core> = CORES
        .iter()
        .map(|&(name, w, h, layer)| Core {
            name: name.to_string(),
            width: w,
            height: h,
            x: 0.0,
            y: 0.0,
            layer,
        })
        .collect();
    // sf-allow(panic-in-lib): the static CORES roster is valid by construction (distinct names, layers in range)
    let mut soc = SocSpec::new(cores, 3).expect("valid core roster");

    let flows: Vec<Flow> = FLOWS
        .iter()
        .map(|&(s, d, bw, lat, resp)| Flow {
            // sf-allow(panic-in-lib): every FLOWS endpoint names a CORES entry; a miss is a typo in the static tables
            src: soc.core_index(s).unwrap_or_else(|| panic!("unknown core {s}")),
            // sf-allow(panic-in-lib): every FLOWS endpoint names a CORES entry; a miss is a typo in the static tables
            dst: soc.core_index(d).unwrap_or_else(|| panic!("unknown core {d}")),
            bandwidth_mbs: bw,
            max_latency_cycles: lat,
            message_type: if resp { MessageType::Response } else { MessageType::Request },
        })
        .collect();
    // sf-allow(panic-in-lib): the static FLOWS table references in-bounds cores with positive bandwidths
    let comm = CommSpec::new(flows, &soc).expect("valid flow table");

    floorplan_layers(&mut soc, &comm, 0xD26_u64);
    Benchmark::new("D_26_media", soc, comm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_26_cores_on_3_layers() {
        let b = media26();
        assert_eq!(b.soc.core_count(), 26);
        assert_eq!(b.soc.layers, 3);
        for l in 0..3 {
            assert!(!b.soc.cores_in_layer(l).is_empty(), "layer {l} empty");
        }
    }

    #[test]
    fn floorplans_are_legal() {
        let b = media26();
        // No overlapping cores within any layer.
        for layer in 0..b.soc.layers {
            let members = b.soc.cores_in_layer(layer);
            for (i, &a) in members.iter().enumerate() {
                for &c in &members[i + 1..] {
                    let ca = &b.soc.cores[a];
                    let cb = &b.soc.cores[c];
                    let overlap_x = ca.x < cb.x + cb.width && cb.x < ca.x + ca.width;
                    let overlap_y = ca.y < cb.y + cb.height && cb.y < ca.y + ca.height;
                    assert!(
                        !(overlap_x && overlap_y),
                        "{} overlaps {} on layer {layer}",
                        ca.name,
                        cb.name
                    );
                }
            }
        }
    }

    #[test]
    fn heavy_pairs_are_stacked_not_coplanar() {
        // The paper stacks highly communicating cores: the video encoder
        // (layer 0) streams into mem0 (layer 1); the decoder reads it there.
        let b = media26();
        let enc = b.soc.core_index("vid_enc").unwrap();
        let mem0 = b.soc.core_index("mem0").unwrap();
        assert_ne!(b.soc.cores[enc].layer, b.soc.cores[mem0].layer);
    }

    #[test]
    fn request_response_pairs_present() {
        let b = media26();
        let responses =
            b.comm.flows.iter().filter(|f| f.message_type == MessageType::Response).count();
        assert!(responses >= 5, "memory read responses expected, got {responses}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(media26(), media26());
    }
}
