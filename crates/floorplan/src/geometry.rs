//! Blocks, rectangles, placements and floorplan-level metrics.

/// An axis-aligned rectangle with its lower-left corner at `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left x.
    pub x: f64,
    /// Lower-left y.
    pub y: f64,
    /// Width (x extent).
    pub w: f64,
    /// Height (y extent).
    pub h: f64,
}

impl Rect {
    /// Creates a rectangle.
    #[must_use]
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        Self { x, y, w, h }
    }

    /// Center point.
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Whether the *interiors* of the rectangles intersect (shared edges do
    /// not count as overlap).
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        const TOL: f64 = 1e-9;
        self.x + self.w > other.x + TOL
            && other.x + other.w > self.x + TOL
            && self.y + self.h > other.y + TOL
            && other.y + other.h > self.y + TOL
    }

    /// Area of the rectangle.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }
}

/// A rectangular block (core, switch or TSV macro) before placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Human-readable name, kept through the flow for reporting.
    pub name: String,
    /// Width in millimetres.
    pub width: f64,
    /// Height in millimetres.
    pub height: f64,
    /// Whether the annealer may rotate the block by 90°.
    pub rotatable: bool,
}

impl Block {
    /// A non-rotatable block.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive.
    #[must_use]
    pub fn new(name: impl Into<String>, width: f64, height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "block dimensions must be positive");
        Self { name: name.into(), width, height, rotatable: false }
    }

    /// A block the annealer may rotate (builder style).
    #[must_use]
    pub fn rotatable(mut self) -> Self {
        self.rotatable = true;
        self
    }

    /// Block area.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// A block with a concrete position (and possibly a 90° rotation).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedBlock {
    /// The block being placed.
    pub block: Block,
    /// Lower-left x.
    pub x: f64,
    /// Lower-left y.
    pub y: f64,
    /// Whether the block is rotated by 90°.
    pub rotated: bool,
}

impl PlacedBlock {
    /// Places `block` with its lower-left corner at `(x, y)`, unrotated.
    #[must_use]
    pub fn new(block: Block, x: f64, y: f64) -> Self {
        Self { block, x, y, rotated: false }
    }

    /// Effective width, accounting for rotation.
    #[must_use]
    pub fn width(&self) -> f64 {
        if self.rotated {
            self.block.height
        } else {
            self.block.width
        }
    }

    /// Effective height, accounting for rotation.
    #[must_use]
    pub fn height(&self) -> f64 {
        if self.rotated {
            self.block.width
        } else {
            self.block.height
        }
    }

    /// Occupied rectangle.
    #[must_use]
    pub fn rect(&self) -> Rect {
        Rect::new(self.x, self.y, self.width(), self.height())
    }

    /// Center point.
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        self.rect().center()
    }
}

/// A multi-pin net connecting blocks (by index) with a weight; wirelength is
/// measured as weighted half-perimeter (HPWL) over block centers.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Indices of connected blocks.
    pub pins: Vec<usize>,
    /// Net weight (typically communication bandwidth).
    pub weight: f64,
}

impl Net {
    /// A two-pin net.
    #[must_use]
    pub fn two_pin(a: usize, b: usize, weight: f64) -> Self {
        Self { pins: vec![a, b], weight }
    }
}

/// A set of placed blocks on one die/layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Floorplan {
    /// The placed blocks.
    pub blocks: Vec<PlacedBlock>,
}

impl Floorplan {
    /// Bounding box `(width, height)` of all blocks, anchored at the
    /// minimum coordinates actually used.
    #[must_use]
    pub fn bounding_box(&self) -> (f64, f64) {
        if self.blocks.is_empty() {
            return (0.0, 0.0);
        }
        let min_x = self.blocks.iter().map(|b| b.x).fold(f64::INFINITY, f64::min);
        let min_y = self.blocks.iter().map(|b| b.y).fold(f64::INFINITY, f64::min);
        let max_x = self.blocks.iter().map(|b| b.x + b.width()).fold(f64::NEG_INFINITY, f64::max);
        let max_y = self.blocks.iter().map(|b| b.y + b.height()).fold(f64::NEG_INFINITY, f64::max);
        (max_x - min_x, max_y - min_y)
    }

    /// Bounding-box area.
    #[must_use]
    pub fn area(&self) -> f64 {
        let (w, h) = self.bounding_box();
        w * h
    }

    /// Sum of block areas (lower bound on any legal bounding box).
    #[must_use]
    pub fn cell_area(&self) -> f64 {
        self.blocks.iter().map(|b| b.block.area()).sum()
    }

    /// First pair of overlapping blocks, if any.
    #[must_use]
    pub fn overlapping_pair(&self) -> Option<(usize, usize)> {
        for i in 0..self.blocks.len() {
            for j in (i + 1)..self.blocks.len() {
                if self.blocks[i].rect().overlaps(&self.blocks[j].rect()) {
                    return Some((i, j));
                }
            }
        }
        None
    }

    /// Weighted half-perimeter wirelength of `nets` over block centers.
    ///
    /// # Panics
    ///
    /// Panics if a net references a block index out of range.
    #[must_use]
    pub fn hpwl(&self, nets: &[Net]) -> f64 {
        let mut total = 0.0;
        for net in nets {
            if net.pins.len() < 2 {
                continue;
            }
            let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
            for &p in &net.pins {
                let (cx, cy) = self.blocks[p].center();
                min_x = min_x.min(cx);
                max_x = max_x.max(cx);
                min_y = min_y.min(cy);
                max_y = max_y.max(cy);
            }
            total += net.weight * ((max_x - min_x) + (max_y - min_y));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_overlap_excludes_shared_edges() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(2.0, 0.0, 2.0, 2.0); // abutting, not overlapping
        let c = Rect::new(1.9, 0.0, 2.0, 2.0);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
    }

    #[test]
    fn placed_block_rotation_swaps_dimensions() {
        let mut p = PlacedBlock::new(Block::new("b", 3.0, 1.0), 0.0, 0.0);
        assert_eq!((p.width(), p.height()), (3.0, 1.0));
        p.rotated = true;
        assert_eq!((p.width(), p.height()), (1.0, 3.0));
    }

    #[test]
    fn bounding_box_and_area() {
        let plan = Floorplan {
            blocks: vec![
                PlacedBlock::new(Block::new("a", 2.0, 2.0), 0.0, 0.0),
                PlacedBlock::new(Block::new("b", 1.0, 1.0), 3.0, 3.0),
            ],
        };
        assert_eq!(plan.bounding_box(), (4.0, 4.0));
        assert_eq!(plan.area(), 16.0);
        assert_eq!(plan.cell_area(), 5.0);
    }

    #[test]
    fn hpwl_weighted() {
        let plan = Floorplan {
            blocks: vec![
                PlacedBlock::new(Block::new("a", 2.0, 2.0), 0.0, 0.0), // center (1,1)
                PlacedBlock::new(Block::new("b", 2.0, 2.0), 4.0, 2.0), // center (5,3)
            ],
        };
        let nets = vec![Net::two_pin(0, 1, 2.0)];
        assert!((plan.hpwl(&nets) - 2.0 * (4.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn overlap_detection_finds_pair() {
        let plan = Floorplan {
            blocks: vec![
                PlacedBlock::new(Block::new("a", 2.0, 2.0), 0.0, 0.0),
                PlacedBlock::new(Block::new("b", 2.0, 2.0), 1.0, 1.0),
            ],
        };
        assert_eq!(plan.overlapping_pair(), Some((0, 1)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn block_rejects_zero_dimension() {
        let _ = Block::new("bad", 0.0, 1.0);
    }
}
