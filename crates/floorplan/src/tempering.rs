//! Deterministic parallel tempering (replica exchange) over the
//! sequence-pair annealer.
//!
//! N replicas run the same annealing schedule at staggered temperatures:
//! replica `i` starts on ladder rung `i`, an effective temperature of
//! `base_temp · stagger^i`. Every `swap_interval` iterations all replicas
//! meet at a barrier and adjacent rungs attempt to exchange temperatures
//! with the standard replica-exchange acceptance probability
//! `min(1, exp((E_cold − E_hot)·(1/T_cold − 1/T_hot)))` — hot replicas
//! explore, cold replicas refine, and good configurations migrate down
//! the ladder.
//!
//! # Determinism contract
//!
//! The final floorplan is a *pure function of the configuration*
//! (`TemperConfig`, which includes the replica count) — bit-for-bit
//! independent of the thread count and OS scheduling:
//!
//! * Replica `i` owns its own `StdRng`, seeded `rng_seed + i`, and its own
//!   incremental pack/net-cache state. No replica ever reads another
//!   replica's RNG or placement.
//! * Swap rounds are barrier-synchronized reductions: every replica
//!   publishes its energy, *one* designated worker evaluates all pairs in
//!   ladder order with a dedicated swap RNG (seeded from `rng_seed`
//!   alone), and only then do replicas resume. The swap decisions depend
//!   on energies and the swap RNG — never on which thread stepped which
//!   replica or in what order they reached the barrier.
//! * The winner is the lowest best-seen cost, ties broken by the lowest
//!   replica index — a strict-less scan in index order.
//!
//! `threads` therefore only chooses how replicas are multiplexed onto
//! workers; `TemperConfig::with_replicas(1)` degenerates to exactly the
//! serial [`anneal`](crate::anneal) result for the same `AnnealConfig`.

use crate::annealer::{AnnealConfig, ConstrainedInput, IdealTarget, ReplicaState};
use crate::geometry::{Block, Floorplan, Net};
use crate::seqpair::SequencePair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Configuration of a parallel-tempering run.
#[derive(Debug, Clone, PartialEq)]
pub struct TemperConfig {
    /// The per-replica annealing configuration (iterations are *per
    /// replica*; the aggregate move budget is `iterations · replicas`).
    pub base: AnnealConfig,
    /// Number of replicas (ladder rungs). `1` degenerates to the serial
    /// annealer; values are clamped to at least 1.
    pub replicas: usize,
    /// Iterations each replica runs between swap rounds (clamped to at
    /// least 1).
    pub swap_interval: u32,
    /// Temperature ratio between adjacent ladder rungs (> 1); rung `i`
    /// anneals at `stagger^i` times the base schedule.
    pub stagger: f64,
    /// Worker threads to multiplex replicas onto: `0` means one thread
    /// per replica. Scheduling only — never affects the result.
    pub threads: usize,
}

impl Default for TemperConfig {
    fn default() -> Self {
        Self {
            base: AnnealConfig::default(),
            replicas: 4,
            swap_interval: 500,
            stagger: 1.6,
            threads: 0,
        }
    }
}

impl TemperConfig {
    /// Overrides the replica count (builder style).
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// Overrides the worker-thread budget (builder style). `0` restores
    /// one thread per replica.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the RNG seed of the base schedule (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base.rng_seed = seed;
        self
    }

    /// Overrides the per-replica iteration budget (builder style).
    #[must_use]
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.base = self.base.with_iterations(iterations);
        self
    }
}

/// Counters from a tempered run — scheduling-independent, like the result.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TemperStats {
    /// Replicas that ran.
    pub replicas: usize,
    /// Adjacent-rung exchanges attempted across all swap rounds.
    pub swap_attempts: u64,
    /// Exchanges accepted.
    pub swap_accepts: u64,
    /// Index of the replica that produced the returned floorplan.
    pub best_replica: usize,
    /// Its best (internal annealing) cost.
    pub best_cost: f64,
    /// Aggregate move budget spent: `iterations · replicas`.
    pub iterations_total: u64,
}

impl TemperStats {
    /// Fraction of attempted exchanges that were accepted.
    #[must_use]
    pub fn swap_acceptance(&self) -> f64 {
        if self.swap_attempts == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.swap_accepts as f64 / self.swap_attempts as f64
            }
        }
    }
}

/// Tempered counterpart of [`anneal`](crate::anneal): floorplans `blocks`
/// minimizing `area + λ·HPWL(nets)` with `cfg.replicas` exchange-coupled
/// chains. The crate-level docs spell out the determinism contract.
///
/// # Panics
///
/// Panics if any net references a block index out of range.
#[must_use]
pub fn anneal_tempered(blocks: &[Block], nets: &[Net], cfg: &TemperConfig) -> Floorplan {
    anneal_tempered_with_stats(blocks, nets, cfg).0
}

/// Like [`anneal_tempered`], additionally returning the run's
/// [`TemperStats`].
///
/// # Panics
///
/// Panics if any net references a block index out of range.
#[must_use]
pub fn anneal_tempered_with_stats(
    blocks: &[Block],
    nets: &[Net],
    cfg: &TemperConfig,
) -> (Floorplan, TemperStats) {
    if blocks.is_empty() {
        return (Floorplan::default(), TemperStats::default());
    }
    for net in nets {
        for &p in &net.pins {
            assert!(p < blocks.len(), "net references block {p} out of range");
        }
    }
    let movable: Vec<bool> = vec![true; blocks.len()];
    run_tempered(blocks, nets, &movable, None, SequencePair::identity(blocks.len()), cfg)
}

/// Tempered counterpart of [`anneal_constrained`](crate::anneal_constrained):
/// keeps the cores' relative order intact while inserting NoC components,
/// with `cfg.replicas` exchange-coupled chains.
///
/// # Panics
///
/// Panics if the seed sequence pair length disagrees with `blocks`.
#[must_use]
pub fn anneal_tempered_constrained(
    input: &ConstrainedInput,
    nets: &[Net],
    cfg: &TemperConfig,
) -> Floorplan {
    anneal_tempered_constrained_with_stats(input, nets, cfg).0
}

/// Like [`anneal_tempered_constrained`], additionally returning the run's
/// [`TemperStats`].
///
/// # Panics
///
/// Panics if the seed sequence pair length disagrees with `blocks`.
#[must_use]
pub fn anneal_tempered_constrained_with_stats(
    input: &ConstrainedInput,
    nets: &[Net],
    cfg: &TemperConfig,
) -> (Floorplan, TemperStats) {
    assert_eq!(input.seed.len(), input.blocks.len(), "seed/blocks length mismatch");
    if input.blocks.is_empty() {
        return (Floorplan::default(), TemperStats::default());
    }
    let movable: Vec<bool> =
        (0..input.blocks.len()).map(|i| i >= input.fixed_order_count).collect();
    run_tempered(&input.blocks, nets, &movable, Some(&input.ideal), input.seed.clone(), cfg)
}

/// Ladder multiplier of rung `k`.
fn rung(stagger: f64, k: usize) -> f64 {
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    stagger.powi(k as i32)
}

/// Splits the per-replica budget into swap-round chunks: full
/// `swap_interval` chunks plus a final remainder.
fn round_schedule(iterations: u32, swap_interval: u32) -> Vec<u32> {
    let mut schedule = Vec::new();
    let mut left = iterations;
    while left > swap_interval {
        schedule.push(swap_interval);
        left -= swap_interval;
    }
    schedule.push(left);
    schedule
}

fn run_tempered(
    blocks: &[Block],
    nets: &[Net],
    movable: &[bool],
    ideal: Option<&[IdealTarget]>,
    seed_sp: SequencePair,
    cfg: &TemperConfig,
) -> (Floorplan, TemperStats) {
    let r = cfg.replicas.max(1);
    let stagger = if cfg.stagger > 1.0 { cfg.stagger } else { TemperConfig::default().stagger };
    let mut replicas: Vec<ReplicaState<'_>> = (0..r)
        .map(|i| {
            ReplicaState::new(
                blocks,
                nets,
                movable,
                ideal,
                seed_sp.clone(),
                &cfg.base,
                cfg.base.rng_seed.wrapping_add(i as u64),
                rung(stagger, i),
            )
        })
        .collect();

    let mut stats = TemperStats {
        replicas: r,
        iterations_total: u64::from(cfg.base.iterations) * r as u64,
        ..TemperStats::default()
    };

    if r == 1 {
        // Degenerate ladder: exactly the serial annealer (same seed, same
        // schedule, ladder 1.0, no swap rounds).
        replicas[0].step(cfg.base.iterations);
    } else {
        let threads = if cfg.threads == 0 { r } else { cfg.threads.clamp(1, r) };
        let schedule = round_schedule(cfg.base.iterations, cfg.swap_interval.max(1));
        // Published per-replica energies and ladder assignments (f64 bits).
        // The barriers around each swap round order every access, so the
        // atomics only provide race-free storage, not synchronization.
        let energies: Vec<AtomicU64> = (0..r).map(|_| AtomicU64::new(0)).collect();
        let ladders: Vec<AtomicU64> =
            replicas.iter().map(|rep| AtomicU64::new(rep.ladder().to_bits())).collect();
        let swap_attempts = AtomicU64::new(0);
        let swap_accepts = AtomicU64::new(0);
        let barrier = Barrier::new(threads);
        // Decorrelate the coordinator's swap stream from the replicas'
        // move streams (splitmix of the base seed with an odd constant).
        let swap_seed = cfg.base.rng_seed ^ 0x9E37_79B9_7F4A_7C15;

        // Static assignment of replicas to worker lanes (round-robin).
        // Any static assignment would do: results never depend on which
        // lane steps which replica, only the wall-clock does.
        let mut lanes: Vec<Vec<(usize, &mut ReplicaState<'_>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, rep) in replicas.iter_mut().enumerate() {
            lanes[i % threads].push((i, rep));
        }

        std::thread::scope(|s| {
            let (schedule, energies, ladders) = (&schedule, &energies, &ladders);
            let (barrier, swap_attempts, swap_accepts) = (&barrier, &swap_attempts, &swap_accepts);
            for (tid, mut lane) in lanes.into_iter().enumerate() {
                s.spawn(move || {
                    // Lane 0 (which owns replica 0) doubles as the swap
                    // coordinator between the two barriers of each round.
                    let mut coordinator = (tid == 0).then(|| {
                        (StdRng::seed_from_u64(swap_seed), (0..r).collect::<Vec<usize>>(), 0u64, 0u64)
                    });
                    for (round, &chunk) in schedule.iter().enumerate() {
                        for (i, rep) in &mut lane {
                            rep.step(chunk);
                            energies[*i].store(rep.cur_cost().to_bits(), Ordering::Relaxed);
                        }
                        barrier.wait();
                        if let Some((rng, holders, attempts, accepts)) = coordinator.as_mut() {
                            let base_temp = lane[0].1.base_temp();
                            swap_round(
                                round, rng, holders, energies, ladders, base_temp, stagger,
                                attempts, accepts,
                            );
                        }
                        barrier.wait();
                        for (i, rep) in &mut lane {
                            rep.set_ladder(f64::from_bits(ladders[*i].load(Ordering::Relaxed)));
                        }
                    }
                    if let Some((_, _, attempts, accepts)) = coordinator {
                        swap_attempts.store(attempts, Ordering::Relaxed);
                        swap_accepts.store(accepts, Ordering::Relaxed);
                    }
                });
            }
        });

        stats.swap_attempts = swap_attempts.load(Ordering::Relaxed);
        stats.swap_accepts = swap_accepts.load(Ordering::Relaxed);
    }

    // Deterministic reduction: lowest best cost wins, ties to the lowest
    // replica index (strict-less scan in index order).
    let mut best = 0usize;
    for i in 1..r {
        if replicas[i].best_cost() < replicas[best].best_cost() {
            best = i;
        }
    }
    stats.best_replica = best;
    stats.best_cost = replicas[best].best_cost();
    (replicas[best].build_best(), stats)
}

/// One replica-exchange round, run by the coordinator alone between the
/// two barriers. Rung pairs `(k, k+1)` are visited in ladder order —
/// even-based pairs on even rounds, odd-based on odd rounds — and each
/// exchange is accepted with `min(1, exp((E_cold − E_hot)·(1/T_cold −
/// 1/T_hot)))`. `holders[k]` tracks which replica currently anneals on
/// rung `k`, so pairing stays adjacent-in-temperature as assignments
/// migrate.
// sf: hot-path
#[allow(clippy::too_many_arguments)]
fn swap_round(
    round: usize,
    rng: &mut StdRng,
    holders: &mut [usize],
    energies: &[AtomicU64],
    ladders: &[AtomicU64],
    base_temp: f64,
    stagger: f64,
    attempts: &mut u64,
    accepts: &mut u64,
) {
    let r = holders.len();
    let mut k = round % 2;
    while k + 1 < r {
        let a = holders[k]; // colder rung
        let b = holders[k + 1]; // hotter rung
        let e_a = f64::from_bits(energies[a].load(Ordering::Relaxed));
        let e_b = f64::from_bits(energies[b].load(Ordering::Relaxed));
        let t_a = base_temp * rung(stagger, k);
        let t_b = base_temp * rung(stagger, k + 1);
        let d = (e_a - e_b) * (1.0 / t_a - 1.0 / t_b);
        *attempts += 1;
        if d >= 0.0 || rng.gen_bool(d.exp().clamp(0.0, 1.0)) {
            ladders[a].store(rung(stagger, k + 1).to_bits(), Ordering::Relaxed);
            ladders[b].store(rung(stagger, k).to_bits(), Ordering::Relaxed);
            holders.swap(k, k + 1);
            *accepts += 1;
        }
        k += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal;
    use crate::geometry::PlacedBlock;

    fn blocks(n: usize) -> Vec<Block> {
        (0..n)
            .map(|i| {
                let w = 1.0 + f64::from(u32::try_from(i % 5).unwrap()) * 0.5;
                let h = 1.0 + f64::from(u32::try_from(i % 3).unwrap()) * 0.7;
                Block::new(format!("b{i}"), w, h)
            })
            .collect()
    }

    fn ring_nets(n: usize) -> Vec<Net> {
        (0..n).map(|i| Net::two_pin(i, (i + 7) % n, 1.0)).collect()
    }

    #[test]
    fn single_replica_matches_serial_annealer_bit_for_bit() {
        let blocks = blocks(12);
        let nets = ring_nets(12);
        let base = AnnealConfig::default().with_iterations(4000).with_seed(42);
        let serial = anneal(&blocks, &nets, &base);
        let tempered = anneal_tempered(
            &blocks,
            &nets,
            &TemperConfig { base, ..TemperConfig::default() }.with_replicas(1),
        );
        assert_eq!(serial, tempered);
    }

    #[test]
    fn result_is_invariant_under_thread_count() {
        let blocks = blocks(14);
        let nets = ring_nets(14);
        let cfg = TemperConfig::default().with_iterations(3000).with_seed(7).with_replicas(4);
        let reference = anneal_tempered(&blocks, &nets, &cfg);
        for threads in [1, 2, 3, 4] {
            let plan = anneal_tempered(&blocks, &nets, &cfg.clone().with_threads(threads));
            assert_eq!(reference, plan, "thread count {threads} changed the floorplan");
        }
    }

    #[test]
    fn stats_are_deterministic_and_swaps_happen() {
        let blocks = blocks(14);
        let nets = ring_nets(14);
        let cfg = TemperConfig::default().with_iterations(4000).with_seed(11).with_replicas(4);
        let (_, a) = anneal_tempered_with_stats(&blocks, &nets, &cfg);
        let (_, b) = anneal_tempered_with_stats(&blocks, &nets, &cfg.clone().with_threads(2));
        assert_eq!(a, b, "stats must be scheduling-independent");
        assert!(a.swap_attempts > 0, "no exchanges attempted");
        assert!(a.swap_accepts <= a.swap_attempts);
        assert_eq!(a.iterations_total, 4 * 4000);
        assert!((0.0..=1.0).contains(&a.swap_acceptance()));
    }

    #[test]
    fn tempered_result_is_legal() {
        let blocks = blocks(10);
        let nets = ring_nets(10);
        let cfg = TemperConfig::default().with_iterations(3000).with_replicas(3);
        let plan = anneal_tempered(&blocks, &nets, &cfg);
        assert!(plan.overlapping_pair().is_none());
        assert_eq!(plan.blocks.len(), 10);
    }

    #[test]
    fn empty_input_and_degenerate_configs() {
        assert_eq!(anneal_tempered(&[], &[], &TemperConfig::default()).blocks.len(), 0);
        // replicas = 0 clamps to 1.
        let one = anneal_tempered(
            &[Block::new("solo", 2.0, 2.0)],
            &[],
            &TemperConfig { replicas: 0, ..TemperConfig::default() },
        );
        assert_eq!(one.blocks.len(), 1);
    }

    #[test]
    fn constrained_tempering_preserves_core_relative_order() {
        let cores = vec![
            PlacedBlock::new(Block::new("c0", 2.0, 2.0), 0.0, 0.0),
            PlacedBlock::new(Block::new("c1", 2.0, 2.0), 2.5, 0.0),
            PlacedBlock::new(Block::new("c2", 2.0, 2.0), 5.0, 0.0),
        ];
        let mut all: Vec<Block> = cores.iter().map(|p| p.block.clone()).collect();
        all.push(Block::new("sw0", 0.5, 0.5));
        all.push(Block::new("sw1", 0.5, 0.5));
        let mut placed = cores.clone();
        placed.push(PlacedBlock::new(all[3].clone(), 1.0, 2.5));
        placed.push(PlacedBlock::new(all[4].clone(), 4.0, 2.5));
        let input = ConstrainedInput {
            seed: SequencePair::from_placement(&placed),
            blocks: all,
            ideal: vec![None, None, None, Some((1.2, 2.2, 2.0)), Some((4.2, 2.2, 2.0))],
            fixed_order_count: 3,
        };
        let cfg = TemperConfig::default().with_iterations(3000).with_replicas(3);
        let (plan, stats) = anneal_tempered_constrained_with_stats(&input, &[], &cfg);
        assert!(plan.overlapping_pair().is_none());
        let x0 = plan.blocks[0].center().0;
        let x1 = plan.blocks[1].center().0;
        let x2 = plan.blocks[2].center().0;
        assert!(x0 < x1 && x1 < x2, "core order broken: {x0} {x1} {x2}");
        assert_eq!(stats.replicas, 3);
        // Thread-count invariance holds for the constrained variant too.
        let serial_sched = anneal_tempered_constrained(&input, &[], &cfg.clone().with_threads(1));
        assert_eq!(plan, serial_sched);
    }

    #[test]
    fn round_schedule_covers_the_budget_exactly() {
        for (iters, interval) in [(3000u32, 500u32), (999, 1000), (1, 1), (1000, 333)] {
            let s = round_schedule(iters, interval);
            assert_eq!(s.iter().sum::<u32>(), iters, "{iters}/{interval}");
            assert!(s.iter().all(|&c| c >= 1 && c <= interval), "{s:?}");
        }
    }
}
