//! Simulated-annealing floorplanner over sequence pairs.

use crate::geometry::{Block, Floorplan, Net};
use crate::seqpair::{PackScratch, SequencePair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-block attraction target: `(x, y, weight)` — the block's ideal center
/// and the cost per mm of Manhattan deviation from it — or `None` for
/// blocks that are free to land anywhere.
pub type IdealTarget = Option<(f64, f64, f64)>;

/// Configuration of a simulated-annealing floorplanning run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealConfig {
    /// Total accepted/rejected move attempts.
    pub iterations: u32,
    /// Weight of wirelength relative to area in the cost function.
    pub lambda_wirelength: f64,
    /// Weight of the aspect-ratio penalty `area·(max(w,h)/min(w,h) − 1)`.
    /// Many block sets pack into minimal area as a degenerate strip; dies
    /// must stay near-square, so this defaults on.
    pub lambda_aspect: f64,
    /// RNG seed — identical seeds give identical floorplans.
    pub rng_seed: u64,
    /// Optional fixed outline `(width, height)`; exceeding it is penalized
    /// heavily (fixed-outline mode of Parquet-class tools).
    pub outline: Option<(f64, f64)>,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            iterations: 30_000,
            lambda_wirelength: 0.35,
            lambda_aspect: 0.3,
            rng_seed: 0x5EED,
            outline: None,
        }
    }
}

impl AnnealConfig {
    /// Overrides the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Overrides the iteration budget (builder style).
    #[must_use]
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations.max(1);
        self
    }
}

/// Floorplans `blocks` minimizing `area + λ·HPWL(nets)`.
///
/// This is the "standard floorplanner" role of the flow: generating the
/// initial core placement per layer (paper §VIII-A obtains them "using
/// existing tools", i.e. Parquet, with "the same objectives of minimizing
/// area and wire-length").
///
/// # Panics
///
/// Panics if any net references a block index out of range.
#[must_use]
pub fn anneal(blocks: &[Block], nets: &[Net], cfg: &AnnealConfig) -> Floorplan {
    if blocks.is_empty() {
        return Floorplan::default();
    }
    for net in nets {
        for &p in &net.pins {
            assert!(p < blocks.len(), "net references block {p} out of range");
        }
    }
    let movable: Vec<bool> = vec![true; blocks.len()];
    run_sa(blocks, nets, &movable, None, cfg)
}

/// Like [`anneal`], but additionally pulls selected blocks towards target
/// positions: `targets[i] = Some((x, y, weight))` charges `weight` per
/// millimetre of Manhattan deviation of block `i`'s center from `(x, y)`.
///
/// Used to align a layer's floorplan under the cores it communicates with
/// in already-placed layers — the paper's "highly communicating cores are
/// placed one above the other" policy.
///
/// # Panics
///
/// Panics if `targets.len() != blocks.len()` or a net references a block
/// out of range.
#[must_use]
pub fn anneal_toward(
    blocks: &[Block],
    nets: &[Net],
    targets: &[IdealTarget],
    cfg: &AnnealConfig,
) -> Floorplan {
    assert_eq!(targets.len(), blocks.len(), "one target slot per block");
    if blocks.is_empty() {
        return Floorplan::default();
    }
    for net in nets {
        for &p in &net.pins {
            assert!(p < blocks.len(), "net references block {p} out of range");
        }
    }
    let movable: Vec<bool> = vec![true; blocks.len()];
    run_sa(blocks, nets, &movable, Some(targets), cfg)
}

/// Input to [`anneal_constrained`]: an existing placement plus component
/// ideal positions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstrainedInput {
    /// All blocks; indices `0..fixed_order_count` are cores whose relative
    /// order must be preserved, the rest are NoC components free to move.
    pub blocks: Vec<Block>,
    /// Seed sequence pair (typically [`SequencePair::from_placement`] of the
    /// input floorplan with components appended).
    pub seed: SequencePair,
    /// `ideal[i]` is the LP-computed target center for block `i` with a
    /// penalty weight (cost per mm of Manhattan deviation), if any.
    pub ideal: Vec<IdealTarget>,
    /// Number of leading blocks that are order-frozen cores.
    pub fixed_order_count: usize,
}

/// The §VIII-D baseline: a standard annealer constrained to keep the cores'
/// relative order intact while inserting NoC components, minimizing area and
/// the components' displacement from their ideal positions.
///
/// # Panics
///
/// Panics if the seed sequence pair length disagrees with `blocks`.
#[must_use]
pub fn anneal_constrained(input: &ConstrainedInput, nets: &[Net], cfg: &AnnealConfig) -> Floorplan {
    assert_eq!(input.seed.len(), input.blocks.len(), "seed/blocks length mismatch");
    let movable: Vec<bool> =
        (0..input.blocks.len()).map(|i| i >= input.fixed_order_count).collect();
    run_sa_seeded(
        &input.blocks,
        nets,
        &movable,
        Some(&input.ideal),
        input.seed.clone(),
        cfg,
    )
}

fn run_sa(
    blocks: &[Block],
    nets: &[Net],
    movable: &[bool],
    ideal: Option<&[IdealTarget]>,
    cfg: &AnnealConfig,
) -> Floorplan {
    run_sa_seeded(blocks, nets, movable, ideal, SequencePair::identity(blocks.len()), cfg)
}

/// Cached per-net weighted-HPWL contributions with delta updates.
///
/// The packed placement changes for many blocks on some moves and for few
/// on others; only nets incident to a block whose position or effective
/// size changed are re-measured. The *total* is always re-summed over the
/// cached per-net values in net order, so it is bit-identical to a
/// from-scratch [`Floorplan::hpwl`] evaluation — the accept/reject
/// decisions (and thus the final floorplan for a given seed) cannot drift.
struct NetCache {
    /// `weight · HPWL` per net at the currently accepted placement.
    cost: Vec<f64>,
    /// Nets incident to each block.
    nets_of: Vec<Vec<usize>>,
    /// Per-net dirty stamp for the current candidate (generation-tagged).
    stamp: Vec<u32>,
    gen: u32,
    /// Undo log of `(net, previous value)` for the current candidate.
    undo: Vec<(usize, f64)>,
}

impl NetCache {
    fn new(n_blocks: usize, nets: &[Net]) -> Self {
        let mut nets_of = vec![Vec::new(); n_blocks];
        for (k, net) in nets.iter().enumerate() {
            for &p in &net.pins {
                if !nets_of[p].contains(&k) {
                    nets_of[p].push(k);
                }
            }
        }
        Self { cost: vec![0.0; nets.len()], nets_of, stamp: vec![0; nets.len()], gen: 0, undo: Vec::new() }
    }

    /// Net `k`'s weighted HPWL over block centers — the exact per-net term
    /// of [`Floorplan::hpwl`].
    // sf: hot-path
    fn measure(net: &Net, x: &[f64], y: &[f64], w: &[f64], h: &[f64]) -> f64 {
        if net.pins.len() < 2 {
            return 0.0;
        }
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &p in &net.pins {
            let cx = x[p] + w[p] / 2.0;
            let cy = y[p] + h[p] / 2.0;
            min_x = min_x.min(cx);
            max_x = max_x.max(cx);
            min_y = min_y.min(cy);
            max_y = max_y.max(cy);
        }
        net.weight * ((max_x - min_x) + (max_y - min_y))
    }

    fn rebuild_all(&mut self, nets: &[Net], x: &[f64], y: &[f64], w: &[f64], h: &[f64]) {
        for (k, net) in nets.iter().enumerate() {
            self.cost[k] = Self::measure(net, x, y, w, h);
        }
    }

    /// Re-measures every net incident to a moved block against the
    /// candidate placement, logging old values for [`Self::revert`].
    // sf: hot-path
    #[allow(clippy::too_many_arguments)]
    fn update_for_move(
        &mut self,
        moved: impl Iterator<Item = usize>,
        nets: &[Net],
        x: &[f64],
        y: &[f64],
        w: &[f64],
        h: &[f64],
    ) {
        self.gen += 1;
        self.undo.clear();
        for b in moved {
            for i in 0..self.nets_of[b].len() {
                let k = self.nets_of[b][i];
                if self.stamp[k] == self.gen {
                    continue;
                }
                self.stamp[k] = self.gen;
                self.undo.push((k, self.cost[k]));
                self.cost[k] = Self::measure(&nets[k], x, y, w, h);
            }
        }
    }

    /// Sum of the cached per-net values, in net order — bit-identical to a
    /// fresh `hpwl` accumulation.
    // sf: hot-path
    fn total(&self) -> f64 {
        let mut total = 0.0;
        for &c in &self.cost {
            total += c;
        }
        total
    }

    /// Rolls the last [`Self::update_for_move`] back (candidate rejected).
    // sf: hot-path
    fn revert(&mut self) {
        for &(k, old) in self.undo.iter().rev() {
            self.cost[k] = old;
        }
        self.undo.clear();
    }
}

/// One annealing move, recorded so a rejected candidate can be undone
/// in place instead of cloning the whole state up front.
enum Move {
    /// Reinsert in one permutation: `(pos-perm?, from, to)`.
    Perm(bool, usize, usize),
    /// Reinserts in both permutations, in application order.
    Both((usize, usize), (usize, usize)),
    /// Rotation flip of a block.
    Rot(usize),
}

fn run_sa_seeded(
    blocks: &[Block],
    nets: &[Net],
    movable: &[bool],
    ideal: Option<&[IdealTarget]>,
    seed_sp: SequencePair,
    cfg: &AnnealConfig,
) -> Floorplan {
    let mut replica = ReplicaState::new(blocks, nets, movable, ideal, seed_sp, cfg, cfg.rng_seed, 1.0);
    replica.step(cfg.iterations);
    replica.build_best()
}

/// One complete annealing chain: the sequence pair, its incremental
/// rank/pack/net-cache machinery, the accepted and best states, the RNG
/// and the temperature schedule.
///
/// The serial annealer builds exactly one of these and steps it for the
/// whole budget; [`crate::tempering`] builds N (one per replica, with a
/// per-replica RNG seed and a ladder temperature multiplier) and steps
/// them in barrier-synchronized chunks. Chunked stepping is bit-identical
/// to one big `step` call — the state carries everything across calls —
/// which is what makes single-replica tempering equal the serial annealer.
pub(crate) struct ReplicaState<'a> {
    blocks: &'a [Block],
    nets: &'a [Net],
    ideal: Option<&'a [IdealTarget]>,
    cfg: &'a AnnealConfig,
    /// Indices of blocks the moves may touch.
    movable_idx: Vec<usize>,
    sp: SequencePair,
    rotated: Vec<bool>,
    /// Sequence ranks (inverse permutations), maintained incrementally by
    /// `reinsert`/`undo_reinsert` instead of rebuilt per pack; they also
    /// replace the O(n) position scan when removing a block.
    pp: Vec<usize>,
    nn: Vec<usize>,
    /// Reusable packing scratch (candidate coordinates), the accepted
    /// state's coordinate arrays, and the rotation-effective dimensions —
    /// maintained incrementally (a rotation move swaps one block's pair,
    /// and a rejected move swaps it back) instead of being rebuilt from
    /// the block list on every pack. `step` never clones a `Floorplan`
    /// and never allocates after `new`.
    scratch: PackScratch,
    cache: NetCache,
    w: Vec<f64>,
    h: Vec<f64>,
    cur_x: Vec<f64>,
    cur_y: Vec<f64>,
    cur_cost: f64,
    best_cost: f64,
    best_sp: SequencePair,
    best_rot: Vec<bool>,
    rng: StdRng,
    /// Base temperature, decayed once per iteration. Identical across all
    /// replicas of a tempered run because every replica starts from the
    /// same seed placement and steps the same number of iterations.
    temp: f64,
    alpha: f64,
    /// Temperature-ladder multiplier: moves are accepted against
    /// `temp * ladder`. The serial annealer uses `1.0` (multiplying by
    /// `1.0` is exact in IEEE arithmetic, so the serial path is untouched);
    /// tempering swap rounds exchange these values between replicas.
    ladder: f64,
}

impl<'a> ReplicaState<'a> {
    /// Sets up a chain at `seed_sp` with its own RNG stream and ladder
    /// slot. The temperature schedule starts where ~an average move is
    /// accepted with p≈0.8 and decays geometrically to near-greedy over
    /// `cfg.iterations` steps.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        blocks: &'a [Block],
        nets: &'a [Net],
        movable: &[bool],
        ideal: Option<&'a [IdealTarget]>,
        seed_sp: SequencePair,
        cfg: &'a AnnealConfig,
        rng_seed: u64,
        ladder: f64,
    ) -> Self {
        let n = blocks.len();
        let rng = StdRng::seed_from_u64(rng_seed);
        let sp = seed_sp;
        let rotated = vec![false; n];
        let mut pp = vec![0usize; n];
        let mut nn = vec![0usize; n];
        for (i, &b) in sp.pos.iter().enumerate() {
            pp[b] = i;
        }
        for (i, &b) in sp.neg.iter().enumerate() {
            nn[b] = i;
        }

        let mut scratch = PackScratch::default();
        let mut cache = NetCache::new(n, nets);
        let mut w = vec![0.0f64; n];
        let mut h = vec![0.0f64; n];
        for b in 0..n {
            w[b] = blocks[b].width;
            h[b] = blocks[b].height;
        }
        let bb = sp.pack_coords_ranked(&pp, &nn, &w, &h, &mut scratch);
        cache.rebuild_all(nets, &scratch.x, &scratch.y, &w, &h);
        let cur_cost = cost_of(&scratch.x, &scratch.y, &w, &h, bb, cache.total(), ideal, cfg);
        let cur_x = scratch.x.clone();
        let cur_y = scratch.y.clone();

        let movable_idx: Vec<usize> = (0..n).filter(|&i| movable[i]).collect();
        let temp = (cur_cost * 0.1).max(1e-6);
        let t_final = temp * 1e-4;
        let alpha = (t_final / temp).powf(1.0 / f64::from(cfg.iterations.max(2)));

        Self {
            blocks,
            nets,
            ideal,
            cfg,
            movable_idx,
            best_cost: cur_cost,
            best_sp: sp.clone(),
            best_rot: rotated.clone(),
            sp,
            rotated,
            pp,
            nn,
            scratch,
            cache,
            w,
            h,
            cur_x,
            cur_y,
            cur_cost,
            rng,
            temp,
            alpha,
            ladder,
        }
    }

    /// Whether moves exist at all: degenerate inputs (fewer than two
    /// blocks, or nothing movable) stay at the seed placement.
    fn steppable(&self) -> bool {
        self.blocks.len() >= 2 && !self.movable_idx.is_empty()
    }

    /// Runs `iters` annealing iterations, advancing the RNG, the accepted
    /// state and the base temperature. Acceptance tests use the effective
    /// temperature `temp * ladder`.
    // sf: hot-path
    pub(crate) fn step(&mut self, iters: u32) {
        if !self.steppable() {
            return;
        }
        let n = self.blocks.len();
        for _ in 0..iters {
            let m = self.movable_idx[self.rng.gen_range(0..self.movable_idx.len())];
            // Mutate in place, remembering how to undo.
            let mv = match self.rng.gen_range(0..4u8) {
                0 => {
                    let (f, t) = reinsert(&mut self.sp.pos, &mut self.pp, m, &mut self.rng);
                    Move::Perm(true, f, t)
                }
                1 => {
                    let (f, t) = reinsert(&mut self.sp.neg, &mut self.nn, m, &mut self.rng);
                    Move::Perm(false, f, t)
                }
                2 => {
                    let p = reinsert(&mut self.sp.pos, &mut self.pp, m, &mut self.rng);
                    let q = reinsert(&mut self.sp.neg, &mut self.nn, m, &mut self.rng);
                    Move::Both(p, q)
                }
                _ => {
                    if self.blocks[m].rotatable {
                        self.rotated[m] = !self.rotated[m];
                        std::mem::swap(&mut self.w[m], &mut self.h[m]);
                        Move::Rot(m)
                    } else {
                        let (f, t) = reinsert(&mut self.sp.pos, &mut self.pp, m, &mut self.rng);
                        Move::Perm(true, f, t)
                    }
                }
            };
            // The only block whose footprint can differ from the accepted
            // state is the one a rotation move just flipped.
            let rotated_block = match mv {
                Move::Rot(b) if self.w[b] != self.h[b] => Some(b),
                _ => None,
            };

            let bb =
                self.sp.pack_coords_ranked(&self.pp, &self.nn, &self.w, &self.h, &mut self.scratch);
            // Only nets touching a block whose position or footprint
            // changed need re-measuring.
            let (scratch, cur_x, cur_y) = (&self.scratch, &self.cur_x, &self.cur_y);
            let moved = (0..n).filter(|&b| {
                scratch.x[b] != cur_x[b] || scratch.y[b] != cur_y[b] || rotated_block == Some(b)
            });
            self.cache.update_for_move(moved, self.nets, &scratch.x, &scratch.y, &self.w, &self.h);
            let cand_cost = cost_of(
                &self.scratch.x,
                &self.scratch.y,
                &self.w,
                &self.h,
                bb,
                self.cache.total(),
                self.ideal,
                self.cfg,
            );

            let delta = cand_cost - self.cur_cost;
            let t_eff = self.temp * self.ladder;
            if delta <= 0.0 || self.rng.gen_bool((-delta / t_eff).exp().clamp(0.0, 1.0)) {
                // Accept: the candidate arrays become the current state.
                std::mem::swap(&mut self.cur_x, &mut self.scratch.x);
                std::mem::swap(&mut self.cur_y, &mut self.scratch.y);
                self.cur_cost = cand_cost;
                self.cache.undo.clear();
                if self.cur_cost < self.best_cost {
                    self.best_cost = self.cur_cost;
                    self.best_sp.pos.clone_from(&self.sp.pos);
                    self.best_sp.neg.clone_from(&self.sp.neg);
                    self.best_rot.clone_from(&self.rotated);
                }
            } else {
                // Reject: undo the move and the net-cache deltas.
                self.cache.revert();
                match mv {
                    Move::Perm(true, f, t) => undo_reinsert(&mut self.sp.pos, &mut self.pp, f, t),
                    Move::Perm(false, f, t) => undo_reinsert(&mut self.sp.neg, &mut self.nn, f, t),
                    Move::Both((pf, pt), (nf, nt)) => {
                        undo_reinsert(&mut self.sp.neg, &mut self.nn, nf, nt);
                        undo_reinsert(&mut self.sp.pos, &mut self.pp, pf, pt);
                    }
                    Move::Rot(b) => {
                        self.rotated[b] = !self.rotated[b];
                        std::mem::swap(&mut self.w[b], &mut self.h[b]);
                    }
                }
            }
            self.temp *= self.alpha;
        }
    }

    /// Cost of the currently *accepted* state (the replica's energy).
    pub(crate) fn cur_cost(&self) -> f64 {
        self.cur_cost
    }

    /// Cost of the best state seen so far.
    pub(crate) fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// The shared base temperature (before the ladder multiplier).
    pub(crate) fn base_temp(&self) -> f64 {
        self.temp
    }

    /// This replica's ladder multiplier.
    pub(crate) fn ladder(&self) -> f64 {
        self.ladder
    }

    /// Reassigns the ladder multiplier (a tempering swap).
    pub(crate) fn set_ladder(&mut self, ladder: f64) {
        self.ladder = ladder;
    }

    /// Packs the best state seen into a finished floorplan.
    pub(crate) fn build_best(&self) -> Floorplan {
        self.best_sp.pack(self.blocks, &self.best_rot)
    }
}

/// The annealing cost of a packed placement — the same terms as the
/// original clone-per-iteration implementation: bounding-box area,
/// weighted wirelength, aspect penalty, fixed-outline penalty and
/// ideal-position deviation. The bounding box comes straight from the
/// packer (a packed placement is flush against both axes, so the box
/// equals the extent maxima the original min/max fold produced).
// sf: hot-path
#[allow(clippy::too_many_arguments)]
fn cost_of(
    x: &[f64],
    y: &[f64],
    w: &[f64],
    h: &[f64],
    (bw, bh): (f64, f64),
    hpwl_total: f64,
    ideal: Option<&[IdealTarget]>,
    cfg: &AnnealConfig,
) -> f64 {
    let area = bw * bh;

    let mut c = area + cfg.lambda_wirelength * hpwl_total;
    if bw > 0.0 && bh > 0.0 {
        let aspect = if bw > bh { bw / bh } else { bh / bw };
        c += cfg.lambda_aspect * area * (aspect - 1.0);
    }
    if let Some((ow, oh)) = cfg.outline {
        let over = (bw - ow).max(0.0) + (bh - oh).max(0.0);
        c += 50.0 * over * over + 100.0 * over;
    }
    if let Some(targets) = ideal {
        for (b, t) in targets.iter().enumerate() {
            if let Some((tx, ty, weight)) = t {
                let cx = x[b] + w[b] / 2.0;
                let cy = y[b] + h[b] / 2.0;
                c += weight * ((cx - tx).abs() + (cy - ty).abs());
            }
        }
    }
    c
}

/// Removes block `b` from the permutation and reinserts it at a random
/// position — a move that preserves the relative order of all other blocks,
/// which is what keeps the cores' arrangement intact in constrained mode.
/// Returns `(from, to)` so the move can be undone without cloning. `ranks`
/// is the permutation's inverse: it locates `b` without a scan and is
/// patched up for the shifted range afterwards.
// sf: hot-path
fn reinsert(
    perm: &mut Vec<usize>,
    ranks: &mut [usize],
    b: usize,
    rng: &mut StdRng,
) -> (usize, usize) {
    let from = ranks[b];
    debug_assert_eq!(perm[from], b, "stale rank for block {b}");
    perm.remove(from);
    let to = rng.gen_range(0..=perm.len());
    perm.insert(to, b);
    for i in from.min(to)..=from.max(to) {
        ranks[perm[i]] = i;
    }
    (from, to)
}

/// Inverse of [`reinsert`]: the block sits at `to`; put it back at `from`.
// sf: hot-path
fn undo_reinsert(perm: &mut Vec<usize>, ranks: &mut [usize], from: usize, to: usize) {
    let b = perm.remove(to);
    perm.insert(from, b);
    for i in from.min(to)..=from.max(to) {
        ranks[perm[i]] = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PlacedBlock;

    fn blocks_mixed() -> Vec<Block> {
        vec![
            Block::new("a", 2.0, 3.0),
            Block::new("b", 3.0, 2.0),
            Block::new("c", 1.0, 1.0),
            Block::new("d", 2.0, 2.0),
            Block::new("e", 1.0, 2.0),
            Block::new("f", 2.0, 1.0),
        ]
    }

    #[test]
    fn result_is_legal_and_reasonably_tight() {
        let blocks = blocks_mixed();
        let plan = anneal(&blocks, &[], &AnnealConfig::default().with_iterations(8000));
        assert!(plan.overlapping_pair().is_none());
        let cell: f64 = plan.cell_area();
        assert!(plan.area() <= 2.0 * cell, "area {} vs cells {}", plan.area(), cell);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let blocks = blocks_mixed();
        let cfg = AnnealConfig::default().with_iterations(2000).with_seed(42);
        let a = anneal(&blocks, &[], &cfg);
        let b = anneal(&blocks, &[], &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn wirelength_objective_pulls_connected_blocks_together() {
        // Many blocks, one heavily connected pair: with a strong lambda the
        // pair should end close.
        let blocks: Vec<Block> =
            (0..8).map(|i| Block::new(format!("b{i}"), 2.0, 2.0)).collect();
        let nets = vec![Net::two_pin(0, 7, 50.0)];
        let cfg = AnnealConfig {
            iterations: 15_000,
            lambda_wirelength: 2.0,
            ..AnnealConfig::default()
        };
        let plan = anneal(&blocks, &nets, &cfg);
        let (ax, ay) = plan.blocks[0].center();
        let (bx, by) = plan.blocks[7].center();
        let dist = (ax - bx).abs() + (ay - by).abs();
        assert!(dist <= 6.0, "connected blocks ended {dist} apart");
    }

    #[test]
    fn rotatable_blocks_can_rotate() {
        let blocks = vec![
            Block::new("tall", 1.0, 6.0).rotatable(),
            Block::new("flat", 6.0, 1.0),
        ];
        let plan = anneal(&blocks, &[], &AnnealConfig::default().with_iterations(4000));
        assert!(plan.overlapping_pair().is_none());
        // Best packing rotates the tall block to stack two 6x1 rows.
        assert!(plan.area() <= 14.0, "area {}", plan.area());
    }

    #[test]
    fn empty_and_single_block_inputs() {
        assert_eq!(anneal(&[], &[], &AnnealConfig::default()).blocks.len(), 0);
        let one = anneal(&[Block::new("solo", 2.0, 2.0)], &[], &AnnealConfig::default());
        assert_eq!(one.blocks.len(), 1);
        assert_eq!(one.area(), 4.0);
    }

    #[test]
    fn constrained_mode_preserves_core_relative_order() {
        // Cores in a fixed row; two components to insert.
        let cores = vec![
            PlacedBlock::new(Block::new("c0", 2.0, 2.0), 0.0, 0.0),
            PlacedBlock::new(Block::new("c1", 2.0, 2.0), 2.5, 0.0),
            PlacedBlock::new(Block::new("c2", 2.0, 2.0), 5.0, 0.0),
        ];
        let mut blocks: Vec<Block> = cores.iter().map(|p| p.block.clone()).collect();
        blocks.push(Block::new("sw0", 0.5, 0.5));
        blocks.push(Block::new("sw1", 0.5, 0.5));
        let mut placed = cores.clone();
        placed.push(PlacedBlock::new(blocks[3].clone(), 1.0, 2.5));
        placed.push(PlacedBlock::new(blocks[4].clone(), 4.0, 2.5));
        let input = ConstrainedInput {
            seed: SequencePair::from_placement(&placed),
            blocks,
            ideal: vec![None, None, None, Some((1.2, 2.2, 2.0)), Some((4.2, 2.2, 2.0))],
            fixed_order_count: 3,
        };
        let plan =
            anneal_constrained(&input, &[], &AnnealConfig::default().with_iterations(5000));
        assert!(plan.overlapping_pair().is_none());
        // Core x-order must be preserved: c0 left of c1 left of c2.
        let x0 = plan.blocks[0].center().0;
        let x1 = plan.blocks[1].center().0;
        let x2 = plan.blocks[2].center().0;
        assert!(x0 < x1 && x1 < x2, "core order broken: {x0} {x1} {x2}");
    }

    #[test]
    fn fixed_outline_is_respected_when_feasible() {
        let blocks: Vec<Block> =
            (0..6).map(|i| Block::new(format!("b{i}"), 2.0, 2.0)).collect();
        let cfg = AnnealConfig {
            iterations: 20_000,
            lambda_wirelength: 0.0,
            rng_seed: 3,
            outline: Some((6.5, 6.5)),
            ..AnnealConfig::default()
        };
        let plan = anneal(&blocks, &[], &cfg);
        let (w, h) = plan.bounding_box();
        assert!(w <= 6.5 + 1e-9 && h <= 6.5 + 1e-9, "outline exceeded: {w}x{h}");
    }
}
