//! SunFloor's custom NoC-component insertion routine.
//!
//! Paper §VII: "we consider one switch or TSV macro at a time. We try to find
//! a free space near its ideal location to place it. … If no space is
//! available, we displace the already placed blocks from their positions in
//! the x or y direction by the size of the component, creating space. …
//! We iteratively move the necessary blocks in the same direction as the
//! first block, until we remove all overlaps. As more components are placed,
//! they can re-use the gap created by the earlier components."

use crate::geometry::{Block, Floorplan, PlacedBlock, Rect};

/// One NoC component (switch or TSV macro) to insert, with the ideal
/// *center* position computed by the switch-placement LP.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertRequest {
    /// The component block.
    pub block: Block,
    /// Desired center coordinates.
    pub ideal: (f64, f64),
}

impl InsertRequest {
    /// Creates an insertion request for `block` centered at `ideal`.
    #[must_use]
    pub fn new(block: Block, ideal: (f64, f64)) -> Self {
        Self { block, ideal }
    }
}

/// Outcome of inserting components into an existing core placement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertionResult {
    /// The final legal floorplan: first the (possibly displaced) cores in
    /// their input order, then the components in request order.
    pub plan: Floorplan,
    /// Final center of each inserted component, in request order.
    pub component_centers: Vec<(f64, f64)>,
    /// Total Manhattan displacement the cores suffered.
    pub core_displacement: f64,
    /// Total Manhattan deviation of components from their ideal centers.
    pub component_deviation: f64,
}

/// Inserts `requests` one at a time into the placement `cores`, returning a
/// legal (overlap-free) floorplan that disturbs the cores as little as
/// possible.
///
/// `search_radius` bounds the free-space search around each ideal location —
/// "the area in which we look for free space is the same for all of the
/// switches, as it is given as a constant" (§VII).
#[must_use]
pub fn insert_components(
    cores: &[PlacedBlock],
    requests: &[InsertRequest],
    search_radius: f64,
) -> InsertionResult {
    let mut placed: Vec<PlacedBlock> = cores.to_vec();
    let n_cores = cores.len();
    let mut centers = Vec::with_capacity(requests.len());
    let mut deviation = 0.0;

    for req in requests {
        let w = req.block.width;
        let h = req.block.height;
        let ideal_ll = (req.ideal.0 - w / 2.0, req.ideal.1 - h / 2.0);

        let spot = find_free_spot(&placed, w, h, ideal_ll, search_radius)
            .unwrap_or_else(|| {
                shove_open(&mut placed, w, h, ideal_ll);
                ideal_ll
            });

        let pb = PlacedBlock::new(req.block.clone(), spot.0.max(0.0), spot.1.max(0.0));
        let c = pb.center();
        deviation += (c.0 - req.ideal.0).abs() + (c.1 - req.ideal.1).abs();
        centers.push(c);
        placed.push(pb);
    }

    let core_displacement = cores
        .iter()
        .zip(&placed[..n_cores])
        .map(|(a, b)| (a.x - b.x).abs() + (a.y - b.y).abs())
        .sum();

    InsertionResult {
        plan: Floorplan { blocks: placed },
        component_centers: centers,
        core_displacement,
        component_deviation: deviation,
    }
}

/// Searches expanding rings around `ideal_ll` for a position where a `w`×`h`
/// rectangle overlaps nothing. Candidates on each ring are visited nearest
/// first; coordinates are clamped to the first quadrant.
fn find_free_spot(
    placed: &[PlacedBlock],
    w: f64,
    h: f64,
    ideal_ll: (f64, f64),
    search_radius: f64,
) -> Option<(f64, f64)> {
    let step = (w.min(h) / 2.0).max(0.05);
    let rings = (search_radius / step).ceil() as i32;

    let free = |x: f64, y: f64| -> bool {
        let r = Rect::new(x, y, w, h);
        placed.iter().all(|p| !p.rect().overlaps(&r))
    };

    let clamp = |v: f64| v.max(0.0);

    // Ring 0: the ideal spot itself.
    let (ix, iy) = (clamp(ideal_ll.0), clamp(ideal_ll.1));
    if free(ix, iy) {
        return Some((ix, iy));
    }
    for ring in 1..=rings {
        let r = f64::from(ring) * step;
        let mut candidates: Vec<(f64, f64)> = Vec::new();
        let k = 4 * ring; // denser sampling on larger rings
        for i in 0..k {
            let t = f64::from(i) / f64::from(k) * std::f64::consts::TAU;
            candidates.push((clamp(ideal_ll.0 + r * t.cos()), clamp(ideal_ll.1 + r * t.sin())));
        }
        candidates.sort_by(|a, b| {
            let da = (a.0 - ideal_ll.0).abs() + (a.1 - ideal_ll.1).abs();
            let db = (b.0 - ideal_ll.0).abs() + (b.1 - ideal_ll.1).abs();
            da.total_cmp(&db)
        });
        for (x, y) in candidates {
            if free(x, y) {
                return Some((x, y));
            }
        }
    }
    None
}

/// Clears a `w`×`h` hole at `ll` by displacing every overlapping block along
/// one axis (the one minimizing total displaced area), then iteratively
/// pushing followers in the same direction until no overlap remains — the
/// paper's shove strategy.
///
/// Blocks are only ever pushed in the +x or +y direction: movement is then
/// strictly monotone, so the cascade always terminates (pushing towards the
/// axes could pin a block at 0 and loop forever).
fn shove_open(placed: &mut [PlacedBlock], w: f64, h: f64, ll: (f64, f64)) {
    let hole = Rect::new(ll.0.max(0.0), ll.1.max(0.0), w, h);

    // Pick the axis requiring the smaller total displacement.
    let spread_x: f64 = placed
        .iter()
        .filter(|p| p.rect().overlaps(&hole))
        .map(|p| (hole.x + hole.w - p.x).max(0.0))
        .sum();
    let spread_y: f64 = placed
        .iter()
        .filter(|p| p.rect().overlaps(&hole))
        .map(|p| (hole.y + hole.h - p.y).max(0.0))
        .sum();
    let push_x = spread_x <= spread_y;

    // Plow sweep: process blocks in ascending order along the push axis and
    // clear each against the hole plus every already-processed block. Each
    // clearing step moves a block strictly forward past a finite obstacle
    // set, so the sweep terminates and leaves no overlap.
    const GAP: f64 = 1e-6;
    let mut order: Vec<usize> = (0..placed.len()).collect();
    order.sort_by(|&a, &b| {
        if push_x {
            placed[a].x.total_cmp(&placed[b].x)
        } else {
            placed[a].y.total_cmp(&placed[b].y)
        }
    });
    let mut settled: Vec<Rect> = vec![hole];
    for &i in &order {
        loop {
            let rect = placed[i].rect();
            let Some(ob) = settled.iter().find(|o| o.overlaps(&rect)).copied() else {
                break;
            };
            if push_x {
                placed[i].x = ob.x + ob.w + GAP;
            } else {
                placed[i].y = ob.y + ob.h + GAP;
            }
        }
        settled.push(placed[i].rect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_cores(nx: usize, ny: usize, size: f64, gap: f64) -> Vec<PlacedBlock> {
        let mut v = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                v.push(PlacedBlock::new(
                    Block::new(format!("c{i}_{j}"), size, size),
                    i as f64 * (size + gap),
                    j as f64 * (size + gap),
                ));
            }
        }
        v
    }

    #[test]
    fn component_lands_in_existing_gap() {
        // 2x2 cores with a 1.0 gap: a 0.5 switch fits between them.
        let cores = grid_cores(2, 2, 2.0, 1.0);
        let req = vec![InsertRequest::new(Block::new("sw", 0.5, 0.5), (2.5, 2.5))];
        let res = insert_components(&cores, &req, 5.0);
        assert!(res.plan.overlapping_pair().is_none());
        assert_eq!(res.core_displacement, 0.0, "cores should not move");
        let (cx, cy) = res.component_centers[0];
        assert!((cx - 2.5).abs() < 1e-9 && (cy - 2.5).abs() < 1e-9, "got ({cx},{cy})");
    }

    #[test]
    fn tight_pack_forces_a_shove() {
        // Zero-gap 3x3 grid: no free space anywhere near the middle.
        let cores = grid_cores(3, 3, 2.0, 0.0);
        let req = vec![InsertRequest::new(Block::new("sw", 1.0, 1.0), (3.0, 3.0))];
        let res = insert_components(&cores, &req, 1.4);
        assert!(res.plan.overlapping_pair().is_none(), "overlap left behind");
        assert!(res.core_displacement > 0.0, "a shove must move cores");
    }

    #[test]
    fn later_components_reuse_created_gaps() {
        let cores = grid_cores(3, 3, 2.0, 0.0);
        let reqs = vec![
            InsertRequest::new(Block::new("sw0", 1.0, 1.0), (3.0, 3.0)),
            InsertRequest::new(Block::new("sw1", 0.8, 0.8), (3.2, 3.1)),
        ];
        let res = insert_components(&cores, &reqs, 2.0);
        assert!(res.plan.overlapping_pair().is_none());
        // The second component should sit close to the first (same region),
        // benefiting from the shoved-open space.
        let (ax, ay) = res.component_centers[0];
        let (bx, by) = res.component_centers[1];
        assert!((ax - bx).abs() + (ay - by).abs() < 6.0);
    }

    #[test]
    fn insertion_into_empty_die() {
        let res = insert_components(
            &[],
            &[InsertRequest::new(Block::new("sw", 1.0, 1.0), (4.0, 4.0))],
            2.0,
        );
        assert_eq!(res.component_centers[0], (4.0, 4.0));
        assert_eq!(res.component_deviation, 0.0);
    }

    #[test]
    fn ideal_position_near_origin_is_clamped() {
        let res = insert_components(
            &[],
            &[InsertRequest::new(Block::new("sw", 2.0, 2.0), (0.0, 0.0))],
            2.0,
        );
        let b = &res.plan.blocks[0];
        assert!(b.x >= 0.0 && b.y >= 0.0);
        assert!(res.plan.overlapping_pair().is_none());
    }

    #[test]
    fn many_insertions_stay_legal() {
        let cores = grid_cores(4, 4, 1.5, 0.2);
        let reqs: Vec<InsertRequest> = (0..8)
            .map(|i| {
                InsertRequest::new(
                    Block::new(format!("sw{i}"), 0.4, 0.4),
                    (0.9 * i as f64, 6.0 - 0.7 * i as f64),
                )
            })
            .collect();
        let res = insert_components(&cores, &reqs, 3.0);
        assert!(res.plan.overlapping_pair().is_none());
        assert_eq!(res.plan.blocks.len(), 16 + 8);
    }
}
