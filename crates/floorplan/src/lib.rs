//! Block floorplanning for 2-D dies and 3-D layer stacks.
//!
//! SunFloor 3D needs floorplanning in three places (paper §VII–§VIII):
//!
//! 1. **Initial core placement.** The tool takes core positions as input; the
//!    paper produced them with the Parquet floorplanner. [`anneal`] rebuilds
//!    that capability: a sequence-pair simulated-annealing floorplanner
//!    minimizing `area + λ·wirelength`.
//! 2. **NoC component insertion.** After the switch-position LP, switches and
//!    TSV macros must be inserted near their ideal coordinates without
//!    disturbing the cores. [`insert_components`] implements the paper's custom
//!    routine: look for free space near the ideal location, otherwise
//!    displace already-placed blocks in x or y by the size of the component,
//!    iteratively pushing followers until no overlap remains.
//! 3. **The §VIII-D baseline.** A *constrained standard floorplanner* —
//!    the annealer restricted so the cores' relative order never changes and
//!    switch displacement from the ideal spot is penalized — reproduces the
//!    unpredictable-quality baseline of Figs. 18–20.
//!
//! # Example
//!
//! ```
//! use sunfloor_floorplan::{anneal, AnnealConfig, Block, Net};
//!
//! let blocks = vec![
//!     Block::new("cpu", 2.0, 2.0),
//!     Block::new("mem", 2.0, 1.0),
//!     Block::new("dsp", 1.0, 3.0),
//! ];
//! let nets = vec![Net::two_pin(0, 1, 5.0), Net::two_pin(0, 2, 1.0)];
//! let plan = anneal(&blocks, &nets, &AnnealConfig::default());
//! assert!(plan.overlapping_pair().is_none());
//! assert!(plan.area() >= 2.0 * 2.0 + 2.0 * 1.0 + 1.0 * 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealer;
mod geometry;
mod insertion;
mod seqpair;

pub use annealer::{
    anneal, anneal_constrained, anneal_toward, AnnealConfig, ConstrainedInput, IdealTarget,
};
pub use geometry::{Block, Floorplan, Net, PlacedBlock, Rect};
pub use insertion::{insert_components, InsertRequest, InsertionResult};
pub use seqpair::{PackScratch, SequencePair};
