//! Block floorplanning for 2-D dies and 3-D layer stacks.
//!
//! SunFloor 3D needs floorplanning in three places (paper §VII–§VIII):
//!
//! 1. **Initial core placement.** The tool takes core positions as input; the
//!    paper produced them with the Parquet floorplanner. [`anneal`] rebuilds
//!    that capability: a sequence-pair simulated-annealing floorplanner
//!    minimizing `area + λ·wirelength`.
//! 2. **NoC component insertion.** After the switch-position LP, switches and
//!    TSV macros must be inserted near their ideal coordinates without
//!    disturbing the cores. [`insert_components`] implements the paper's custom
//!    routine: look for free space near the ideal location, otherwise
//!    displace already-placed blocks in x or y by the size of the component,
//!    iteratively pushing followers until no overlap remains.
//! 3. **The §VIII-D baseline.** A *constrained standard floorplanner* —
//!    the annealer restricted so the cores' relative order never changes and
//!    switch displacement from the ideal spot is penalized — reproduces the
//!    unpredictable-quality baseline of Figs. 18–20.
//!
//! # `anneal` vs `anneal_tempered`
//!
//! [`anneal`] runs one simulated-annealing chain; it is cheap and fully
//! deterministic per seed, and remains the right tool for small block
//! sets. [`anneal_tempered`] runs N exchange-coupled chains ("replicas")
//! at staggered temperatures on scoped threads — the standard SA scale-up
//! for large floorplans, spending an `N×` aggregate move budget in
//! roughly the wall-clock of one chain. Each replica owns its RNG
//! (seeded `rng_seed + replica_index`) and its own incremental
//! pack/net-cache state; every `swap_interval` iterations the replicas
//! meet at a barrier and adjacent temperature rungs attempt to swap.
//!
//! The determinism contract for swap rounds: swaps are a
//! barrier-synchronized reduction over the replicas' published energies,
//! evaluated by a single coordinator in ladder order with its own
//! seed-derived RNG. The final floorplan is therefore a pure function of
//! the [`TemperConfig`] (which includes the replica count) — bit-for-bit
//! independent of thread count and OS scheduling, and with one replica it
//! equals the serial [`anneal`] result exactly. See [`tempering`](anneal_tempered)
//! for details.
//!
//! # Example
//!
//! ```
//! use sunfloor_floorplan::{anneal, AnnealConfig, Block, Net};
//!
//! let blocks = vec![
//!     Block::new("cpu", 2.0, 2.0),
//!     Block::new("mem", 2.0, 1.0),
//!     Block::new("dsp", 1.0, 3.0),
//! ];
//! let nets = vec![Net::two_pin(0, 1, 5.0), Net::two_pin(0, 2, 1.0)];
//! let plan = anneal(&blocks, &nets, &AnnealConfig::default());
//! assert!(plan.overlapping_pair().is_none());
//! assert!(plan.area() >= 2.0 * 2.0 + 2.0 * 1.0 + 1.0 * 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealer;
mod geometry;
mod insertion;
mod seqpair;
mod tempering;

pub use annealer::{
    anneal, anneal_constrained, anneal_toward, AnnealConfig, ConstrainedInput, IdealTarget,
};
pub use geometry::{Block, Floorplan, Net, PlacedBlock, Rect};
pub use insertion::{insert_components, InsertRequest, InsertionResult};
pub use seqpair::{PackScratch, SequencePair};
pub use tempering::{
    anneal_tempered, anneal_tempered_constrained, anneal_tempered_constrained_with_stats,
    anneal_tempered_with_stats, TemperConfig, TemperStats,
};
